//! Bit-identity, arena-reuse, and perf tests of the batch evaluation
//! kernel ([`coldtall::core::evaluate_batch`] / `EvalArena`).
//!
//! The kernel evaluates a whole (configuration x benchmark x
//! temperature) grid in one call, hoisting the grid-invariants — the
//! 350 K SRAM baseline services, the cooling wall factor, the traffic
//! table — out of the per-row path. The contract under test:
//!
//! * batch rows are **bit-identical** to the scalar
//!   [`Explorer::evaluate`] oracle over the full study x SPEC2017 x
//!   temperature grid, at any pool width, including infeasible rows
//!   (refresh-dead, bandwidth-saturated, and the non-finite baseline
//!   guard),
//! * a reused arena allocates nothing after its first fill (column
//!   capacities are stable across repeated sweeps),
//! * on a warm explorer the batched path is strictly faster per row
//!   than the scalar per-row loop (`perf_smoke`, gated by
//!   `scripts/check.sh`),
//! * repeated sweeps over the *same* explorer at new temperatures hit
//!   the geometry cache (nonzero `geometry.hits`) without re-solving.

use std::sync::{Mutex, MutexGuard, PoisonError};

use coldtall::array::Objective;
use coldtall::core::{evaluate_batch, pool, EvalArena, Explorer, Feasibility, MemoryConfig};
use coldtall::cryo::study_temperatures;
use coldtall::obs::Registry;
use coldtall::tech::ProcessNode;
use coldtall::units::Kelvin;
use coldtall::workloads::{benchmark, spec2017, Benchmark};
use coldtall_bench::timing::time_median_pair;

/// Tests that force a pool width share the process-global override.
static POOL_LOCK: Mutex<()> = Mutex::new(());

struct PinnedPool(#[allow(dead_code)] MutexGuard<'static, ()>);

impl PinnedPool {
    fn threads(n: usize) -> Self {
        let guard = POOL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        pool::set_max_threads(n);
        Self(guard)
    }
}

impl Drop for PinnedPool {
    fn drop(&mut self) {
        pool::set_max_threads(0);
    }
}

/// The full study set expanded across every study temperature: the
/// densest grid the repo evaluates, containing viable, slowdown, and
/// refresh-dead rows.
fn expanded_study() -> Vec<MemoryConfig> {
    MemoryConfig::study_set()
        .iter()
        .flat_map(|config| {
            study_temperatures()
                .iter()
                .map(|&t| config.clone().at_temperature(t))
        })
        .collect()
}

fn observed_explorer(registry: &Registry) -> Explorer {
    Explorer::with_registry(
        ProcessNode::ptm_22nm_hp(),
        Objective::EnergyDelayProduct,
        registry,
    )
}

/// Runs the scalar per-row oracle and every batch-kernel consumer over
/// the full study x SPEC2017 x temperature grid on `threads` pool
/// threads, each on a fresh explorer, and asserts bit-identity.
fn assert_batch_matches_scalar_oracle(threads: usize) {
    let _pinned = PinnedPool::threads(threads);
    let configs = expanded_study();

    // The scalar oracle: one `Explorer::evaluate` call per grid cell,
    // in the batch kernel's row-major (config-major) order.
    let registry = Registry::new();
    let explorer = observed_explorer(&registry);
    let scalar: Vec<_> = configs
        .iter()
        .flat_map(|config| spec2017().iter().map(|b| explorer.evaluate(config, b)))
        .collect();

    let run = |consume: fn(&Explorer, &coldtall::core::ExecutionPlan) -> Vec<_>| {
        let registry = Registry::new();
        let explorer = observed_explorer(&registry);
        let plan = explorer.plan_sweep(&configs).expect("study configs resolve");
        consume(&explorer, &plan)
    };
    let batched = run(|explorer, plan| {
        let mut arena = EvalArena::new();
        evaluate_batch(explorer, plan, &mut arena);
        arena.to_rows()
    });
    let executed = run(Explorer::execute);
    let executed_par = run(Explorer::execute_par);

    assert_eq!(
        scalar, batched,
        "evaluate_batch must be bit-identical to the scalar oracle at {threads} threads"
    );
    assert_eq!(batched, executed, "execute rides the same kernel");
    assert_eq!(
        executed, executed_par,
        "pooled execution must match sequential at {threads} threads"
    );

    // The grid genuinely exercises the infeasible paths: the 350 K
    // 3T-eDRAM points are refresh-dead (infinite relative latency).
    assert!(
        batched
            .iter()
            .any(|row| row.feasibility == Feasibility::RefreshDead),
        "the expanded study grid must contain refresh-dead rows"
    );
    assert!(
        batched
            .iter()
            .any(|row| row.feasibility == Feasibility::Viable),
        "the expanded study grid must contain viable rows"
    );
}

#[test]
fn batch_is_bit_identical_to_the_scalar_oracle_at_one_thread() {
    assert_batch_matches_scalar_oracle(1);
}

#[test]
fn batch_is_bit_identical_to_the_scalar_oracle_at_four_threads() {
    assert_batch_matches_scalar_oracle(4);
}

/// A traffic profile intense enough to saturate every array in the
/// study — including the 350 K SRAM baseline, which drives the hoisted
/// `base_service` to infinity and exercises the batch kernel's
/// non-finite-baseline guard on exactly the same branch the scalar
/// path takes.
fn saturating_benchmarks() -> &'static [Benchmark] {
    let profile = benchmark("namd").expect("namd profile exists").scaled(1e12);
    Box::leak(vec![profile].into_boxed_slice())
}

#[test]
fn batch_matches_scalar_on_bandwidth_saturated_rows() {
    let configs = MemoryConfig::study_set();
    let benchmarks = saturating_benchmarks();

    let registry = Registry::new();
    let explorer = observed_explorer(&registry);
    let plan = coldtall::core::SweepPlan::new(configs.clone())
        .with_benchmarks(benchmarks)
        .compile(explorer.backends())
        .expect("study configs resolve");

    let scalar: Vec<_> = configs
        .iter()
        .flat_map(|config| benchmarks.iter().map(|b| explorer.evaluate(config, b)))
        .collect();
    let mut arena = EvalArena::new();
    evaluate_batch(&explorer, &plan, &mut arena);

    assert_eq!(
        scalar,
        arena.to_rows(),
        "saturated rows must be bit-identical between batch and scalar"
    );
    assert!(
        arena
            .feasibility()
            .contains(&Feasibility::BandwidthSaturated),
        "the scaled profile must saturate at least one array"
    );
    // Every row is unserviceable (saturated or refresh-dead): the
    // infinite-over-infinite latency ratio never leaks a NaN.
    for (row, &latency) in arena.relative_latency().iter().enumerate() {
        assert!(
            latency.is_infinite(),
            "row {row}: saturated grid must report infinite relative latency, got {latency}"
        );
    }
}

#[test]
fn arena_reuse_allocates_nothing_after_the_first_sweep() {
    let explorer = Explorer::with_defaults();
    let plan = explorer
        .plan_sweep(&expanded_study())
        .expect("study configs resolve");

    let mut arena = EvalArena::new();
    explorer.execute_into(&plan, &mut arena);
    let first = arena.to_rows();
    assert_eq!(arena.rows(), plan.rows());
    let capacity = arena.row_capacity();
    assert!(capacity >= arena.rows());

    // Refill the same arena repeatedly: rows stay bit-identical and no
    // column ever reallocates (the minimum capacity across all columns
    // is exactly what the first sweep left behind).
    for round in 0..3 {
        explorer.execute_into(&plan, &mut arena);
        assert_eq!(arena.to_rows(), first, "round {round} changed the rows");
        assert_eq!(
            arena.row_capacity(),
            capacity,
            "round {round} reallocated an arena column"
        );
    }
}

/// The headline perf invariant gated by `scripts/check.sh`: on a warm
/// explorer (characterizations cached, so the evaluation kernel is
/// what gets measured) the batched path is strictly faster per row
/// than the scalar per-row loop.
#[test]
fn perf_smoke() {
    let _pinned = PinnedPool::threads(1);
    let configs = expanded_study();
    let explorer = Explorer::with_defaults();
    let plan = explorer.plan_sweep(&configs).expect("study configs resolve");
    // Warm every characterization so both sides measure evaluation.
    let reference = explorer.execute(&plan);
    let rows = reference.len();

    let mut arena = EvalArena::new();
    let (per_row, batched) = time_median_pair(
        ("per_row", "batched"),
        9,
        || -> Vec<_> {
            configs
                .iter()
                .flat_map(|config| spec2017().iter().map(|b| explorer.evaluate(config, b)))
                .collect()
        },
        || evaluate_batch(&explorer, &plan, &mut arena),
    );

    assert_eq!(arena.to_rows(), reference, "timed runs stay bit-identical");
    assert!(
        batched.median_ns_per(rows) < per_row.median_ns_per(rows),
        "batched evaluation must be strictly faster per row: batched {:.0} ns/row \
         vs per-row {:.0} ns/row over {rows} rows",
        batched.median_ns_per(rows),
        per_row.median_ns_per(rows),
    );
}

/// The geometry cache is alive across sweeps of the *same* explorer:
/// characterizing already-solved geometries at new temperatures probes
/// the temperature-stripped geometry key and hits, instead of
/// re-solving. (A fresh explorer per sweep — what `BENCH_sweep.json`
/// used to time exclusively — never revisits a geometry, which is why
/// its `geometry.hits` read zero.)
#[test]
fn new_temperatures_on_a_warm_explorer_hit_the_geometry_cache() {
    let registry = Registry::new();
    let explorer = observed_explorer(&registry);
    let configs = expanded_study();
    let plan = explorer.plan_sweep(&configs).expect("study configs resolve");
    let _ = explorer.execute(&plan);
    let solves = registry.counter_value("geometry.solves").unwrap();
    let hits = registry.counter_value("geometry.hits").unwrap();
    assert!(solves > 0, "the first sweep solves every distinct geometry");

    // The same study set shifted by +1 K: every characterization key is
    // new (temperature is part of the design-point key), but every
    // geometry key is already cached.
    let shifted: Vec<MemoryConfig> = configs
        .iter()
        .map(|config| {
            config
                .clone()
                .at_temperature(Kelvin::new(config.temperature().get() + 1.0))
        })
        .collect();
    let shifted_plan = explorer.plan_sweep(&shifted).expect("shifted configs resolve");
    let _ = explorer.execute(&shifted_plan);

    assert_eq!(
        registry.counter_value("geometry.solves"),
        Some(solves),
        "no geometry is ever re-solved"
    );
    assert!(
        registry.counter_value("geometry.hits").unwrap() > hits,
        "the shifted sweep must hit the warm geometry cache"
    );
}
