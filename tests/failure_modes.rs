//! Failure injection: every documented panic across the stack fires
//! with its documented message, and invalid configurations cannot slip
//! through silently.

use coldtall::array::{ArraySpec, Objective, Stacking};
use coldtall::cachesim::{CacheConfig, CpuConfig, Hierarchy, MemoryAccess};
use coldtall::cell::{CellModel, MemoryTechnology, Tentpole};
use coldtall::core::MemoryConfig;
use coldtall::tech::{OperatingPoint, ProcessNode};
use coldtall::units::{Capacity, Kelvin, Volts, Watts};

fn catch(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(f);
    std::panic::set_hook(hook);
    match result {
        Ok(()) => panic!("expected a panic"),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default(),
    }
}

#[test]
fn units_reject_nonsense() {
    assert!(catch(|| {
        let _ = Kelvin::new(-3.0);
    })
    .contains("finite and positive"));
    assert!(catch(|| {
        let _ = coldtall::units::Seconds::new(f64::NAN);
    })
    .contains("NaN"));
}

#[test]
fn tech_rejects_nonsense() {
    let node = ProcessNode::ptm_22nm_hp();
    assert!(catch(|| {
        let _ = OperatingPoint::custom(Kelvin::ROOM, Volts::new(-0.1), None);
    })
    .contains("positive"));
    assert!(catch(move || {
        let nmos = coldtall::tech::Mosfet::nmos(&node);
        let _ = nmos.with_vth_boost(Volts::new(-0.1));
    })
    .contains("non-negative"));
}

#[test]
fn array_rejects_impossible_configurations() {
    let node = ProcessNode::ptm_22nm_hp();
    let cell = CellModel::sram(&node);
    let spec = ArraySpec::llc_16mib(cell.clone(), &node);
    assert!(catch(move || {
        let _ = spec.with_stacking(Stacking::FaceToFace, 8);
    })
    .contains("does not support"));
    let spec2 = ArraySpec::llc_16mib(cell.clone(), &node);
    assert!(catch(move || {
        let _ = spec2.with_line_bits(0);
    })
    .contains("positive"));
    let spec3 = ArraySpec::llc_16mib(cell, &node);
    assert!(catch(move || {
        let _ = spec3.with_capacity(Capacity::from_bits(8));
    })
    .contains("at least one line"));
}

#[test]
fn tiny_capacities_still_characterize() {
    // Not a panic: the smallest sensible arrays must still work.
    let node = ProcessNode::ptm_22nm_hp();
    let cell = CellModel::tentpole(MemoryTechnology::SttRam, Tentpole::Optimistic, &node);
    let a = ArraySpec::new(cell, &node, Capacity::from_kibibytes(64))
        .characterize(Objective::EnergyDelayProduct);
    assert!(a.read_latency.get() > 0.0);
    assert!(a.footprint.as_mm2() < 2.0);
}

#[test]
fn cachesim_rejects_malformed_geometry() {
    assert!(catch(|| {
        let _ = CacheConfig::new(Capacity::from_bytes(96), 2, 64);
    })
    .contains("whole number of sets"));
    assert!(catch(|| {
        let mut h = Hierarchy::new(CpuConfig::skylake_desktop());
        h.access(MemoryAccess::data_read(99, 0));
    })
    .contains("out of range"));
}

#[test]
fn core_rejects_invalid_design_points() {
    assert!(catch(|| {
        let _ = MemoryConfig::envm_3d(MemoryTechnology::Pcm, Tentpole::Optimistic, 5);
    })
    .contains("1, 2, 4, or 8"));
    assert!(catch(|| {
        let _ = coldtall::core::HybridLlc::new(
            MemoryConfig::sram_350k(),
            MemoryConfig::sram_350k(),
            0,
        );
    })
    .contains("between 1 and 15"));
}

#[test]
fn cryo_rejects_negative_power() {
    assert!(catch(|| {
        let _ = coldtall::cryo::CoolingSystem::Server100kW
            .wall_power(Watts::new(-1.0), Kelvin::LN2);
    })
    .contains("non-negative"));
    assert!(catch(|| {
        let _ = coldtall::cryo::overhead_for_capacity(Watts::new(0.0));
    })
    .contains("positive"));
}

#[test]
fn trace_parser_reports_line_numbers() {
    let err = coldtall::cachesim::trace::read_trace("0 R 0x40\nbogus\n".as_bytes()).unwrap_err();
    assert_eq!(err.line, 2);
}
