//! Fault injection: drive the CLI and the library with adversarial
//! inputs and assert typed, panic-free failure.
//!
//! The contract under test (ISSUE 3 tentpole): no combination of CLI
//! arguments or environment variables can reach a panic — every
//! invalid input is either a typed [`coldtall::core::Error`] (library)
//! or an `error: ...` line on stderr with exit code 1 (CLI) — and no
//! evaluation the explorer produces ever carries a NaN field.

use std::process::Command;

use coldtall::array::{ArraySpec, Stacking};
use coldtall::cachesim::LlcTraffic;
use coldtall::cell::{CellModel, MemoryTechnology, Tentpole};
use coldtall::core::{Explorer, MemoryConfig};
use coldtall::tech::ProcessNode;
use coldtall::units::{Capacity, Kelvin};

fn run_with_env(args: &[&str], envs: &[(&str, &str)]) -> (bool, String, String) {
    let mut command = Command::new(env!("CARGO_BIN_EXE_coldtall"));
    command.args(args);
    for (key, value) in envs {
        command.env(key, value);
    }
    let output = command.output().expect("binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// Asserts the adversarial invocation fails *gracefully*: exit code 1,
/// an `error: ...` diagnostic on stderr, and no panic backtrace.
fn assert_graceful_failure(args: &[&str]) {
    let (ok, _, err) = run_with_env(args, &[]);
    assert!(!ok, "must reject: coldtall {args:?}");
    assert!(
        err.contains("error:"),
        "coldtall {args:?} must explain itself on stderr, got: {err}"
    );
    assert!(
        !err.contains("panicked"),
        "coldtall {args:?} reached a panic: {err}"
    );
}

#[test]
fn hostile_cli_arguments_never_panic() {
    let cases: &[&[&str]] = &[
        // Out-of-range and malformed numeric values, every command.
        &["characterize", "--temp", "0"],
        &["characterize", "--temp", "-77"],
        &["characterize", "--temp", "nan"],
        &["characterize", "--temp", "inf"],
        &["characterize", "--temp", "1e9"],
        &["characterize", "--temp", ""],
        &["characterize", "--dies", "255"],
        &["characterize", "--dies", "-1"],
        &["characterize", "--dies", "two"],
        &["evaluate", "--dies", "0", "--tech", "pcm"],
        &["evaluate", "--bench", "doom3"],
        &["evaluate", "--bench", ""],
        &["evaluate", "--tech", "flash"],
        &["evaluate", "--tentpole", "hopeful"],
        &["recommend", "--bench", "NAMD"],
        &["recommend", "--max-area", "banana"],
        &["recommend", "--max-area", "-1"],
        // Structural abuse of the option grammar.
        &["characterize", "--temp"],
        &["characterize", "--temp", "--tech", "sram"],
        &["characterize", "--temp=77", "--temp", "300"],
        &["evaluate", "--benhc", "mcf"],
        &["sweep", "--bench", "mcf"],
        &["table2", "extra-positional"],
        &["list", "--tech", "sram"],
        // Stacked volatile memories outside the study.
        &["characterize", "--tech", "edram", "--dies", "8"],
        // Backend pinning abuse: unknown names, empty names, a pin
        // that contradicts the registry's resolution, and commands
        // that do not accept the option at all.
        &["characterize", "--backend", "nvsim"],
        &["characterize", "--backend", ""],
        &["characterize", "--backend", "destiny"],
        &["evaluate", "--backend", "cryomem", "--tech", "pcm", "--dies", "4"],
        &["evaluate", "--backend", "CRYOMEM"],
        &["sweep", "--backend", "cryomem"],
        &["recommend", "--backend", "destiny"],
        &["backends", "--tech", "sram"],
        &["backends", "extra-positional"],
        // Adaptive search: unknown objective names, region filters
        // that match nothing, an infeasible-everywhere region (every
        // plane refresh-dead at 350 K), malformed numeric caps, and
        // structural flag abuse.
        &["search", "--objective", "speed"],
        &["search", "--objective", "POWER"],
        &["search", "--objective", ""],
        &["search", "--tech", "edram", "--dies", "8"],
        &["search", "--tech", "flash"],
        &["search", "--tech", "edram", "--temps", "350"],
        &["search", "--temps", "banana"],
        &["search", "--temps", "500"],
        &["search", "--dies", "3"],
        &["search", "--max-latency", "abc"],
        &["search", "--max-power"],
        &["search", "--bench", "namd"],
        &["search", "extra-positional"],
        &["search", "--objective=power", "--objective", "area"],
    ];
    for args in cases {
        assert_graceful_failure(args);
    }
}

#[test]
fn hostile_environment_never_breaks_a_run() {
    // Every command must survive garbage COLDTALL_THREADS: warn once,
    // auto-detect, and produce its normal output.
    for threads in ["garbage", "0", "-4", "184467440737095516160", "³"] {
        let (ok, out, err) =
            run_with_env(&["recommend", "--bench", "povray"], &[("COLDTALL_THREADS", threads)]);
        assert!(ok, "COLDTALL_THREADS={threads} must not break recommend: {err}");
        assert!(out.contains("77K"), "output unchanged under bad env");
        assert!(
            !err.contains("panicked"),
            "COLDTALL_THREADS={threads} reached a panic: {err}"
        );
    }
}

#[test]
fn hostile_env_and_bad_args_compose() {
    // A bad argument with a bad environment still dies with a clean
    // diagnostic, not a panic.
    let (ok, _, err) = run_with_env(
        &["evaluate", "--bench", "doom"],
        &[("COLDTALL_THREADS", "zero")],
    );
    assert!(!ok);
    assert!(err.contains("error: unknown benchmark 'doom'"), "stderr: {err}");
    assert!(!err.contains("panicked"));
}

#[test]
fn kelvin_rejects_every_non_physical_temperature() {
    for bad in [0.0, -1.0, -273.15, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert!(
            Kelvin::try_new(bad).is_err(),
            "Kelvin::try_new({bad}) must fail"
        );
    }
    assert!(Kelvin::try_new(f64::MIN_POSITIVE).is_ok(), "tiny but legal");
}

#[test]
fn spec_builders_reject_bad_geometry_without_panicking() {
    let node = ProcessNode::ptm_22nm_hp();
    let cell = CellModel::tentpole(MemoryTechnology::Pcm, Tentpole::Optimistic, &node);
    let spec = ArraySpec::llc_16mib(cell, &node);
    // The array layer allows any 1-8 die stack (the 1/2/4/8 study set
    // is a core-level restriction); zero and over-tall stacks fail.
    for dies in [0u8, 9, 16, 255] {
        assert!(spec.clone().try_with_dies(dies).is_err(), "dies={dies}");
    }
    // Face-to-face bonding joins exactly two dies.
    assert!(spec.clone().try_with_stacking(Stacking::FaceToFace, 4).is_err());
    assert!(spec.clone().try_with_stacking(Stacking::Planar, 2).is_err());
    // A capacity smaller than one line cannot hold a line.
    assert!(spec.clone().try_with_capacity(Capacity::from_bytes(8)).is_err());
    assert!(spec.clone().try_with_line_bits(0).is_err());
    // The happy path still works after all those failed moves.
    assert!(spec.try_with_dies(8).is_ok());
}

#[test]
fn traffic_rejects_non_finite_and_negative_rates() {
    for (r, w) in [
        (f64::NAN, 0.0),
        (0.0, f64::NAN),
        (f64::INFINITY, 1.0),
        (-1.0, 0.0),
        (0.0, -0.5),
    ] {
        assert!(LlcTraffic::try_new(r, w).is_err(), "({r}, {w}) must fail");
    }
    assert!(LlcTraffic::try_new(0.0, 0.0).is_ok(), "idle is legal");
}

#[test]
fn config_and_benchmark_lookups_are_typed() {
    for dies in [0u8, 3, 6, 12, 200] {
        assert!(
            MemoryConfig::try_envm_3d(MemoryTechnology::Pcm, Tentpole::Optimistic, dies).is_err(),
            "dies={dies}"
        );
    }
    for name in ["", "flash", "dram4", "SRAM ", "🦀"] {
        assert!(MemoryConfig::parse_technology(name).is_err(), "tech {name:?}");
    }
    let explorer = Explorer::with_defaults();
    for name in ["", "doom", "Namd", "namd "] {
        let err = explorer
            .try_evaluate(&MemoryConfig::sram_350k(), name)
            .expect_err("unknown benchmark must be typed");
        assert!(err.to_string().contains("unknown benchmark"), "{err}");
    }
}

/// The finite-or-explicitly-infeasible invariant, swept exhaustively:
/// every row of the full study (including refresh-dead and saturated
/// ones) validates — `INFINITY` sentinels are declared through the
/// feasibility verdict and NaN appears nowhere.
#[test]
fn every_study_row_validates_nan_free() {
    let explorer = Explorer::with_defaults();
    let rows = explorer
        .try_sweep_configs(&MemoryConfig::study_set())
        .expect("full study validates");
    assert_eq!(rows.len(), 31 * 23);
    for row in &rows {
        assert!(
            row.validate().is_ok(),
            "{} on {} violates the invariant",
            row.config_label,
            row.benchmark
        );
        assert!(!row.relative_latency.is_nan());
        assert!(!row.relative_power.is_nan());
        assert!(!row.footprint_mm2.is_nan());
        assert!(!row.lifetime_years.is_nan());
        if row.relative_latency.is_infinite() {
            assert!(
                !row.feasibility.is_serviceable(),
                "{}: an infinite latency must come with an unserviceable verdict",
                row.config_label
            );
        }
    }
}

/// A registry with no backends at all — the worst misconfiguration a
/// library embedder can produce — fails with typed errors at every
/// entry point, never a panic.
#[test]
fn zero_backend_registry_fails_typed_at_every_entry_point() {
    use coldtall::core::{BackendRegistry, Error, SweepPlan};
    let empty = BackendRegistry::new();

    let err = empty.resolve(&MemoryConfig::sram_350k()).unwrap_err();
    assert!(matches!(err, Error::NoBackend { .. }), "{err}");
    assert!(err.to_string().contains("no characterization backend"));

    let err = SweepPlan::study().compile(&empty).unwrap_err();
    assert!(matches!(err, Error::NoBackend { .. }), "{err}");

    let metrics = coldtall::obs::Registry::new();
    let err = Explorer::try_with_backends(
        ProcessNode::ptm_22nm_hp(),
        coldtall::array::Objective::EnergyDelayProduct,
        BackendRegistry::new(),
        &metrics,
    )
    .expect_err("an explorer cannot exist without a baseline backend");
    assert!(matches!(err, Error::NoBackend { .. }), "{err}");
}

/// Adversarial-but-legal corners of the library API: extreme yet valid
/// temperatures evaluate without panicking and produce validated rows.
#[test]
fn extreme_legal_temperatures_evaluate_cleanly() {
    let explorer = Explorer::with_defaults();
    for t in [60.0, 77.0, 150.0, 300.0, 400.0] {
        let temp = Kelvin::try_new(t).expect("legal temperature");
        let config = MemoryConfig::volatile_2d(MemoryTechnology::Sram, temp);
        let row = explorer
            .try_evaluate(&config, "namd")
            .unwrap_or_else(|e| panic!("SRAM at {t} K must evaluate: {e}"));
        assert!(row.validate().is_ok());
    }
}
