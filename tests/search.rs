//! The adaptive-search equivalence harness (ISSUE 7 tentpole): the
//! branch-and-bound search must return a **bit-identical** Pareto
//! frontier to the exhaustive sweep-then-filter extraction, while
//! provably skipping work.
//!
//! The contract under test:
//!
//! * on the paper's full study set × temperature grid, the adaptive
//!   frontier equals [`pareto_front_arena`] over the exhaustive sweep,
//!   at 1 and 4 pool threads, for every constraint combination
//!   [`recommend`] supports — and the search reports
//!   `points_skipped > 0` every time,
//! * the incremental [`ParetoFrontier`] is insertion-order invariant,
//!   equivalent to a brute-force filter-at-the-end front on grids with
//!   NaN/∞ poison rows, and dominance eviction never drops a
//!   non-dominated point,
//! * every pruned region's lower bounds sit at or below every member
//!   row's true values (brute-forced, no tolerance).

use std::collections::HashSet;
use std::sync::{Mutex, MutexGuard, PoisonError};

use coldtall::array::Objective;
use coldtall::core::{
    pareto_front, pareto_front_arena, pool, recommend, Constraints, EvalArena, Explorer,
    LlcEvaluation, MemoryConfig, ParetoFrontier, PruneReason,
};
use coldtall::cryo::study_temperatures;
use coldtall::obs::Registry;
use coldtall::tech::ProcessNode;
use coldtall::workloads::{benchmark, spec2017};

/// Tests that force a pool width share the process-global override.
static POOL_LOCK: Mutex<()> = Mutex::new(());

struct PinnedPool(#[allow(dead_code)] MutexGuard<'static, ()>);

impl PinnedPool {
    fn threads(n: usize) -> Self {
        let guard = POOL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        pool::set_max_threads(n);
        Self(guard)
    }
}

impl Drop for PinnedPool {
    fn drop(&mut self) {
        pool::set_max_threads(0);
    }
}

/// The paper's full study set expanded across every study temperature.
fn expanded_study() -> Vec<MemoryConfig> {
    MemoryConfig::study_set()
        .iter()
        .flat_map(|config| {
            study_temperatures()
                .iter()
                .map(|&t| config.clone().at_temperature(t))
        })
        .collect()
}

fn observed_explorer(registry: &Registry) -> Explorer {
    Explorer::with_registry(
        ProcessNode::ptm_22nm_hp(),
        Objective::EnergyDelayProduct,
        registry,
    )
}

/// Every constraint combination the `recommend` path supports:
/// unconstrained, the paper defaults, and each cap alone plus a
/// combined screen.
fn constraint_grid() -> Vec<Constraints> {
    let mut area = Constraints::none();
    area.max_area_mm2 = Some(1.0);
    let mut power = Constraints::none();
    power.max_relative_power = Some(0.5);
    let mut lifetime = Constraints::none();
    lifetime.min_lifetime_years = 10.0;
    let combined = Constraints {
        max_area_mm2: Some(5.0),
        max_relative_power: Some(1.0),
        ..Constraints::default()
    };
    vec![
        Constraints::none(),
        Constraints::default(),
        area,
        power,
        lifetime,
        combined,
    ]
}

/// The exhaustive-equivalence contract at one pool width: the adaptive
/// frontier is bit-identical to filtering the full sweep, under every
/// constraint set, and the search always avoids provable work.
fn assert_search_matches_exhaustive(threads: usize) {
    let _pinned = PinnedPool::threads(threads);
    let configs = expanded_study();

    // The exhaustive reference: one batched sweep into an arena.
    let registry = Registry::new();
    let exhaustive = observed_explorer(&registry);
    let plan = exhaustive.plan_sweep(&configs).expect("study configs resolve");
    let mut arena = EvalArena::new();
    exhaustive.execute_into(&plan, &mut arena);
    let rows = arena.to_rows();
    assert_eq!(rows.len(), configs.len() * spec2017().len());

    // Unconstrained: bit-identical to the arena extraction.
    let registry = Registry::new();
    let outcome = observed_explorer(&registry)
        .search("expanded study", &configs, &Constraints::none())
        .expect("the expanded study searches");
    assert_eq!(
        outcome.frontier,
        pareto_front_arena(&arena),
        "adaptive frontier diverged from the exhaustive arena extraction at {threads} threads"
    );

    // Every constraint combination: bit-identical to filtering the
    // exhaustive rows first, and the screen matches `recommend`'s.
    for (i, constraints) in constraint_grid().iter().enumerate() {
        let registry = Registry::new();
        let outcome = observed_explorer(&registry)
            .search("expanded study", &configs, constraints)
            .expect("the expanded study searches");
        let satisfied: Vec<LlcEvaluation> = rows
            .iter()
            .filter(|row| constraints.satisfied_by(row))
            .cloned()
            .collect();
        assert_eq!(
            outcome.frontier,
            pareto_front(&satisfied),
            "constraint set #{i} diverged at {threads} threads"
        );
        assert!(
            outcome.stats.points_skipped > 0,
            "constraint set #{i}: the expanded grid holds refresh-dead planes, \
             so the search must skip points"
        );
        assert_eq!(
            outcome.stats.points_evaluated + outcome.stats.points_skipped,
            outcome.stats.rows_total,
            "constraint set #{i}: work accounting must be exact"
        );
        // The lowest-power frontier point achieves exactly the power
        // `recommend` picks over the same rows and screen.
        match (recommend(&rows, constraints), outcome.frontier.first()) {
            (Some(pick), Some(best)) => assert_eq!(
                pick.relative_power.to_bits(),
                best.relative_power.to_bits(),
                "constraint set #{i}: frontier head disagrees with recommend"
            ),
            (None, None) => {}
            (pick, head) => panic!(
                "constraint set #{i}: recommend {:?} but frontier head {:?}",
                pick.map(|p| &p.config_label),
                head.map(|h| &h.config_label)
            ),
        }
    }
}

#[test]
fn search_matches_exhaustive_at_one_thread() {
    assert_search_matches_exhaustive(1);
}

/// The cryogenic-NVM region (Δ(T) STT-MRAM across both tentpoles,
/// 1-8 dies, 77-387 K): the adaptive frontier is bit-identical to the
/// exhaustive arena extraction at both pool widths, and the search
/// still avoids provable work — here purely by dominance, since no
/// STT-RAM plane is refresh-dead.
#[test]
fn cryo_stt_region_search_matches_exhaustive() {
    for threads in [1, 4] {
        let _pinned = PinnedPool::threads(threads);
        let configs = MemoryConfig::cryo_stt_study_set();

        let exhaustive = Explorer::with_defaults();
        let plan = exhaustive
            .plan_sweep(&configs)
            .expect("every cryo-STT point resolves to a backend");
        let mut arena = EvalArena::new();
        exhaustive.execute_into(&plan, &mut arena);

        let outcome = Explorer::with_defaults()
            .search("cryo-STT region", &configs, &Constraints::none())
            .expect("the cryo-STT region searches");
        assert_eq!(
            outcome.frontier,
            pareto_front_arena(&arena),
            "cryo-STT adaptive frontier diverged from the exhaustive \
             extraction at {threads} threads"
        );
        assert_eq!(
            outcome.stats.rows_total,
            configs.len() as u64 * spec2017().len() as u64
        );
        assert!(
            outcome.stats.points_skipped > 0,
            "dominance pruning must skip work on the cryo-STT region"
        );
        assert_eq!(
            outcome.stats.points_evaluated + outcome.stats.points_skipped,
            outcome.stats.rows_total,
            "work accounting must be exact on the cryo-STT region"
        );
    }
}

#[test]
fn search_matches_exhaustive_at_four_threads() {
    assert_search_matches_exhaustive(4);
}

/// The search perf gate (wired into `scripts/check.sh`): work
/// avoidance is real and exactly accounted, with the telemetry
/// counters mirroring the reported statistics.
#[test]
fn perf_smoke() {
    let registry = Registry::new();
    let explorer = observed_explorer(&registry);
    let outcome = explorer
        .search("study", &MemoryConfig::study_set(), &Constraints::none())
        .expect("the study set searches");
    let stats = outcome.stats;
    assert_eq!(stats.rows_total, 31 * 23);
    assert!(
        stats.points_skipped > 0,
        "the study set holds a refresh-dead plane, so points must be skipped"
    );
    assert!(
        stats.points_evaluated < stats.rows_total,
        "adaptive search must evaluate strictly fewer points than the grid holds"
    );
    assert_eq!(stats.points_evaluated + stats.points_skipped, stats.rows_total);
    assert_eq!(
        stats.points_skipped,
        stats.skipped_infeasible + stats.skipped_pruned
    );
    for (counter, value) in [
        ("search.points.evaluated", stats.points_evaluated),
        ("search.points.skipped", stats.points_skipped),
        ("search.points.skipped_infeasible", stats.skipped_infeasible),
        ("search.points.skipped_pruned", stats.skipped_pruned),
        ("search.regions.expanded", stats.regions_expanded),
        ("search.regions.pruned", stats.regions_pruned),
        ("search.regions.refined", stats.regions_refined),
        ("search.bounds.computed", stats.bounds_computed),
    ] {
        assert_eq!(
            registry.counter_value(counter),
            Some(value),
            "counter {counter} must mirror the reported stats"
        );
    }
    // The bound-tightness histograms recorded one sample per refined
    // plane coordinate with a finite, positive actual minimum.
    let report = registry.render_text();
    for span in [
        "search.tightness.power",
        "search.tightness.latency",
        "search.tightness.area",
    ] {
        assert!(report.contains(span), "telemetry must report {span}");
    }
}

/// Bound soundness, brute-forced with no tolerance: for every pruned
/// region, every member row's true values sit at or above the bounds
/// that justified skipping it.
#[test]
fn every_pruned_region_bound_is_below_every_member_row() {
    let explorer = Explorer::with_defaults();
    let outcome = explorer
        .search("study", &MemoryConfig::study_set(), &Constraints::none())
        .expect("the study set searches");
    assert!(
        outcome.pruned.iter().any(|r| r.reason == PruneReason::Infeasible),
        "the 350 K 3T-eDRAM plane must be skipped as infeasible"
    );
    assert!(
        outcome.pruned.iter().any(|r| r.reason == PruneReason::Dominated),
        "the incumbent frontier must dominate at least one region"
    );
    for region in &outcome.pruned {
        assert!(!region.configs.is_empty(), "a pruned region has members");
        for config in &region.configs {
            for bench in spec2017() {
                let row = explorer.evaluate(config, bench);
                assert!(
                    region.power_lb <= row.relative_power,
                    "{} on {}: power bound {} above true {}",
                    row.config_label,
                    row.benchmark,
                    region.power_lb,
                    row.relative_power
                );
                assert!(
                    region.latency_lb <= row.relative_latency,
                    "{} on {}: latency bound {} above true {}",
                    row.config_label,
                    row.benchmark,
                    region.latency_lb,
                    row.relative_latency
                );
                assert!(
                    region.area_lb <= row.footprint_mm2,
                    "{} on {}: area bound {} above true {}",
                    row.config_label,
                    row.benchmark,
                    region.area_lb,
                    row.footprint_mm2
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// ParetoFrontier property tests on synthetic grids.
// ---------------------------------------------------------------------

/// A synthetic row set over a coordinate grid, each row uniquely
/// labelled, with NaN/∞ poison rows from the PR 3 taxonomy appended
/// (an infinite-latency sentinel, a NaN power, a negative-infinity
/// footprint).
fn synthetic_rows() -> Vec<LlcEvaluation> {
    let explorer = Explorer::with_defaults();
    let template = explorer.evaluate(
        &MemoryConfig::sram_350k(),
        benchmark("namd").expect("namd profile exists"),
    );
    let grid = [0.25, 0.5, 1.0, 2.0];
    let mut rows = Vec::new();
    for &p in &grid {
        for &l in &grid {
            for &a in &grid {
                let mut row = template.clone();
                row.config_label = format!("p{p}-l{l}-a{a}");
                row.relative_power = p;
                row.relative_latency = l;
                row.footprint_mm2 = a;
                rows.push(row);
            }
        }
    }
    let mut unserviceable = template.clone();
    unserviceable.config_label = "poison-inf-latency".to_string();
    unserviceable.relative_latency = f64::INFINITY;
    unserviceable.relative_power = 0.01;
    rows.push(unserviceable);
    let mut nan_power = template.clone();
    nan_power.config_label = "poison-nan-power".to_string();
    nan_power.relative_power = f64::NAN;
    rows.push(nan_power);
    let mut neg_inf_area = template;
    neg_inf_area.config_label = "poison-neg-inf-area".to_string();
    neg_inf_area.footprint_mm2 = f64::NEG_INFINITY;
    rows.push(neg_inf_area);
    rows
}

fn finite(row: &LlcEvaluation) -> bool {
    row.relative_power.is_finite()
        && row.relative_latency.is_finite()
        && row.footprint_mm2.is_finite()
}

fn dominates(a: &LlcEvaluation, b: &LlcEvaluation) -> bool {
    let no_worse = a.relative_power <= b.relative_power
        && a.relative_latency <= b.relative_latency
        && a.footprint_mm2 <= b.footprint_mm2;
    let better = a.relative_power < b.relative_power
        || a.relative_latency < b.relative_latency
        || a.footprint_mm2 < b.footprint_mm2;
    no_worse && better
}

/// The filter-at-the-end oracle the incremental structure replaced:
/// keep every finite row no other finite row dominates, stable-sort by
/// power, first label wins among consecutive duplicates.
fn brute_force_front(rows: &[LlcEvaluation]) -> Vec<LlcEvaluation> {
    let mut front: Vec<LlcEvaluation> = rows
        .iter()
        .filter(|row| finite(row))
        .filter(|row| !rows.iter().filter(|o| finite(o)).any(|o| dominates(o, row)))
        .cloned()
        .collect();
    front.sort_by(|a, b| a.relative_power.total_cmp(&b.relative_power));
    front.dedup_by(|a, b| a.config_label == b.config_label);
    front
}

#[test]
fn frontier_equals_the_filter_at_the_end_front_on_poisoned_grids() {
    let rows = synthetic_rows();
    assert_eq!(pareto_front(&rows), brute_force_front(&rows));

    // Duplicated rows exercise the coordinate-equal tie rule: twins
    // never evict each other, and label dedup keeps the first.
    let mut doubled = rows.clone();
    doubled.extend(rows.iter().cloned());
    assert_eq!(pareto_front(&doubled), brute_force_front(&doubled));
}

#[test]
fn frontier_membership_is_insertion_order_invariant() {
    let rows = synthetic_rows();
    let forward = {
        let mut frontier = ParetoFrontier::new();
        for (i, row) in rows.iter().enumerate() {
            frontier.insert(i, row);
        }
        frontier.into_sorted()
    };
    // Reversed, stride-shuffled, and interleaved orders — the seq
    // passed stays the original index, only arrival order changes.
    let orders: Vec<Vec<usize>> = vec![
        (0..rows.len()).rev().collect(),
        (0..rows.len()).step_by(3).chain((0..rows.len()).filter(|i| i % 3 != 0)).collect(),
        (0..rows.len() / 2).flat_map(|i| [rows.len() - 1 - i, i]).collect::<Vec<_>>()
            .into_iter().chain(if rows.len() % 2 == 1 { Some(rows.len() / 2) } else { None })
            .collect(),
    ];
    for order in orders {
        assert_eq!(order.len(), rows.len(), "each order is a permutation");
        let mut frontier = ParetoFrontier::new();
        for &i in &order {
            frontier.insert(i, &rows[i]);
        }
        assert_eq!(
            frontier.into_sorted(),
            forward,
            "frontier must not depend on insertion order"
        );
    }
}

#[test]
fn dominance_eviction_never_drops_a_non_dominated_point() {
    let rows = synthetic_rows();
    let mut frontier = ParetoFrontier::new();
    for (i, row) in rows.iter().enumerate() {
        frontier.insert(i, row);
    }
    let kept: HashSet<usize> = frontier.iter().map(|(seq, _, _)| seq).collect();
    for (i, row) in rows.iter().enumerate() {
        if !finite(row) {
            assert!(!kept.contains(&i), "poison row {i} must never be accepted");
            continue;
        }
        let non_dominated = !rows.iter().filter(|o| finite(o)).any(|o| dominates(o, row));
        assert_eq!(
            kept.contains(&i),
            non_dominated,
            "row {i} ({}) kept={} but non-dominated={}",
            row.config_label,
            kept.contains(&i),
            non_dominated
        );
    }
}
