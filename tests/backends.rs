//! Integration tests of the characterization-backend seam.
//!
//! The refactor's acceptance contract, proven end to end from outside
//! the crate:
//!
//! * the default registry resolves every study design point to exactly
//!   one backend — the default backends overlap on single-die SRAM and
//!   priority routes it to CryoMEM, reproducing the historical
//!   partition point for point (the migration test),
//! * overlap resolution is principled: priority breaks specificity
//!   ties, a strictly-containing capability set yields to the more
//!   specific backend, and a genuinely ambiguous overlap is a typed
//!   error naming every claimant,
//! * dispatching through the trait is bit-identical to the pre-refactor
//!   direct `to_spec().characterize()` path, for every study point,
//! * a full study sweep (study set x SPEC2017) produces byte-identical
//!   rows under a 1-thread and a 4-thread worker pool,
//! * `--backend` pinning overrides the policy as an assertion: a pin
//!   that contradicts resolution exits 1, it never reroutes,
//! * a mock backend registered at test time flows its (doctored)
//!   output and its per-backend telemetry through the explorer.

use std::sync::{Mutex, MutexGuard, PoisonError};

use coldtall::array::{ArrayCharacterization, ArraySpec, Objective};
use coldtall::cell::{CellModel, MemoryTechnology};
use coldtall::core::pool;
use coldtall::core::{
    BackendCapabilities, BackendRegistry, CharacterizationBackend, CryoMemBackend, Error,
    Explorer, MemoryConfig, SweepPlan,
};
use coldtall::obs::Registry;
use coldtall::tech::ProcessNode;
use coldtall::units::Kelvin;
use coldtall::workloads::spec2017;

/// Tests that force a pool width share the process-global override.
static POOL_LOCK: Mutex<()> = Mutex::new(());

struct PinnedPool(#[allow(dead_code)] MutexGuard<'static, ()>);

impl PinnedPool {
    fn threads(n: usize) -> Self {
        let guard = POOL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        pool::set_max_threads(n);
        Self(guard)
    }
}

impl Drop for PinnedPool {
    fn drop(&mut self) {
        pool::set_max_threads(0);
    }
}

#[test]
fn every_study_point_resolves_to_exactly_one_default_backend() {
    let registry = BackendRegistry::with_defaults();
    let mut cryomem = 0;
    let mut destiny = 0;
    for config in MemoryConfig::study_set() {
        let backend = registry
            .resolve(&config)
            .unwrap_or_else(|e| panic!("{}: {e}", config.label()));
        match backend.name() {
            "cryomem" => {
                cryomem += 1;
                assert!(!config.technology().is_nonvolatile(), "{}", config.label());
                assert_eq!(config.dies(), 1, "{}", config.label());
            }
            "destiny" => {
                destiny += 1;
                assert!(
                    config.technology().is_nonvolatile() || config.dies() > 1,
                    "{}",
                    config.label()
                );
            }
            other => panic!("unexpected backend '{other}' for {}", config.label()),
        }
    }
    // 4 single-die volatile points; 3 stacked SRAM + 24 eNVM points.
    assert_eq!((cryomem, destiny), (4, 27));
}

/// The tentpole's equivalence guarantee: for every study design point,
/// the registry-dispatched characterization is bit-identical to the
/// pre-refactor direct lowering.
#[test]
fn backend_dispatch_is_bit_identical_to_direct_lowering() {
    let explorer = Explorer::with_defaults();
    let node = ProcessNode::ptm_22nm_hp();
    for config in MemoryConfig::study_set() {
        let via_registry = explorer.characterize(&config);
        let direct = config.to_spec(&node).characterize(Objective::EnergyDelayProduct);
        assert_eq!(via_registry, direct, "{}", config.label());
    }
}

/// The full study grid — study set x SPEC2017 — is byte-identical
/// between a 1-thread and a 4-thread pool, through the plan/execute
/// pipeline.
#[test]
fn study_sweep_rows_identical_under_1_and_4_thread_pools() {
    let one = {
        let _pinned = PinnedPool::threads(1);
        Explorer::with_defaults().sweep()
    };
    let four = {
        let _pinned = PinnedPool::threads(4);
        Explorer::with_defaults().sweep()
    };
    assert_eq!(one.len(), MemoryConfig::study_set().len() * spec2017().len());
    assert_eq!(one, four, "sweep rows must not depend on the pool width");
}

#[test]
fn compiled_study_plan_names_a_backend_per_job() {
    let explorer = Explorer::with_defaults();
    let plan = explorer
        .plan_sweep(&MemoryConfig::study_set())
        .expect("the study compiles");
    assert_eq!(plan.jobs().len(), 31);
    let cryomem = plan.jobs().iter().filter(|j| j.backend() == "cryomem").count();
    let destiny = plan.jobs().iter().filter(|j| j.backend() == "destiny").count();
    assert_eq!((cryomem, destiny), (4, 27));
}

#[test]
fn zero_backend_registry_is_a_typed_error_never_a_panic() {
    // At plan compilation...
    let err = SweepPlan::study()
        .compile(&BackendRegistry::new())
        .unwrap_err();
    assert!(matches!(err, Error::NoBackend { .. }), "{err}");

    // ...and at explorer construction (the baseline is characterized
    // eagerly, so an unusable registry is rejected up front).
    let metrics = Registry::new();
    let err = Explorer::try_with_backends(
        ProcessNode::ptm_22nm_hp(),
        Objective::EnergyDelayProduct,
        BackendRegistry::new(),
        &metrics,
    )
    .expect_err("empty registry must be rejected");
    assert!(matches!(err, Error::NoBackend { .. }), "{err}");
}

/// A capability-only backend for resolution-policy tests; the default
/// trait methods supply characterization, which these tests never call.
#[derive(Debug)]
struct CapBackend {
    name: &'static str,
    caps: BackendCapabilities,
}

impl CharacterizationBackend for CapBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn capabilities(&self) -> BackendCapabilities {
        self.caps.clone()
    }
}

fn caps_of(techs: &[MemoryTechnology], dies: &[u8]) -> BackendCapabilities {
    BackendCapabilities::new(
        techs.to_vec(),
        Kelvin::new(60.0),
        Kelvin::new(400.0),
        dies.to_vec(),
    )
}

#[test]
fn priority_beats_a_specificity_tie() {
    // Identical capability sets: specificity cannot separate them, so
    // the explicit registration priority decides.
    let mut registry = BackendRegistry::new();
    registry.register(std::sync::Arc::new(CapBackend {
        name: "low",
        caps: caps_of(&[MemoryTechnology::Sram], &[1]),
    }));
    registry.register_with_priority(
        std::sync::Arc::new(CapBackend {
            name: "high",
            caps: caps_of(&[MemoryTechnology::Sram], &[1]),
        }),
        5,
    );
    let resolved = registry.resolve(&MemoryConfig::sram_77k()).unwrap();
    assert_eq!(resolved.name(), "high");
}

#[test]
fn strict_containment_yields_to_the_specific_backend() {
    // The generalist covers SRAM and 3T-eDRAM at every die count; the
    // specialist covers single-die SRAM only. On the overlap the
    // generalist yields — even though it outranks the specialist on
    // priority — because specificity applies before priority.
    let mut registry = BackendRegistry::new();
    registry.register_with_priority(
        std::sync::Arc::new(CapBackend {
            name: "generalist",
            caps: caps_of(
                &[MemoryTechnology::Sram, MemoryTechnology::Edram3T],
                &[1, 2, 4, 8],
            ),
        }),
        100,
    );
    registry.register(std::sync::Arc::new(CapBackend {
        name: "specialist",
        caps: caps_of(&[MemoryTechnology::Sram], &[1]),
    }));
    let sram = MemoryConfig::sram_77k();
    assert_eq!(registry.resolve(&sram).unwrap().name(), "specialist");
    // Points only the generalist covers still route to it.
    assert_eq!(
        registry.resolve(&MemoryConfig::edram_77k()).unwrap().name(),
        "generalist"
    );
}

#[test]
fn ambiguous_overlap_is_a_typed_error_naming_every_claimant() {
    // Two non-nested overlapping backends at equal priority, plus a
    // strictly-containing generalist: the generalist yields, the other
    // two tie, and the error names all three claimants in
    // registration order.
    let mut registry = BackendRegistry::new();
    registry.register(std::sync::Arc::new(CapBackend {
        name: "sram-and-3t",
        caps: caps_of(&[MemoryTechnology::Sram, MemoryTechnology::Edram3T], &[1]),
    }));
    registry.register(std::sync::Arc::new(CapBackend {
        name: "sram-and-1t1c",
        caps: caps_of(&[MemoryTechnology::Sram, MemoryTechnology::Edram1T1C], &[1]),
    }));
    registry.register_with_priority(
        std::sync::Arc::new(CapBackend {
            name: "everything",
            caps: caps_of(
                &[
                    MemoryTechnology::Sram,
                    MemoryTechnology::Edram3T,
                    MemoryTechnology::Edram1T1C,
                ],
                &[1, 2],
            ),
        }),
        100,
    );
    let err = registry.resolve(&MemoryConfig::sram_77k()).unwrap_err();
    match err {
        Error::BackendConflict { config, backends } => {
            assert_eq!(config, "77K SRAM");
            assert_eq!(backends, ["sram-and-3t", "sram-and-1t1c", "everything"]);
        }
        other => panic!("expected BackendConflict, got {other}"),
    }
    // The non-overlapping regions still resolve: the eDRAMs are each
    // claimed by one specialist plus the yielded generalist.
    assert_eq!(
        registry.resolve(&MemoryConfig::edram_77k()).unwrap().name(),
        "sram-and-3t"
    );
}

#[test]
fn overlapping_registrations_are_an_ambiguity_error() {
    // A duplicate CryoMEM registered at CryoMEM's own priority
    // reintroduces a genuine tie on the single-die SRAM overlap; the
    // error names every claimant, including the out-prioritized
    // Destiny.
    let mut registry = BackendRegistry::with_defaults();
    registry.register_with_priority(
        std::sync::Arc::new(CryoMemBackend),
        BackendRegistry::CRYOMEM_PRIORITY,
    );
    let err = registry.resolve(&MemoryConfig::sram_77k()).unwrap_err();
    match err {
        Error::BackendConflict { config, backends } => {
            assert_eq!(config, "77K SRAM");
            assert_eq!(backends, ["cryomem", "destiny", "cryomem"]);
        }
        other => panic!("expected BackendConflict, got {other}"),
    }
    // A duplicate at *default* priority is not ambiguous: the
    // registry's CryoMEM outranks it.
    let mut registry = BackendRegistry::with_defaults();
    registry.register(std::sync::Arc::new(CryoMemBackend));
    assert_eq!(
        registry.resolve(&MemoryConfig::sram_77k()).unwrap().name(),
        "cryomem"
    );
}

/// The migration guarantee: every design point the old exclusive
/// partition resolved keeps its backend under the overlap policy.
/// The old rule was volatility/stack-height: Destiny took every
/// non-volatile point and stacked SRAM, CryoMEM took single-die
/// volatile arrays.
#[test]
fn registry_migration_preserves_every_resolved_point() {
    let registry = BackendRegistry::with_defaults();
    let mut checked = 0;
    for config in MemoryConfig::study_set() {
        for &t in coldtall::cryo::study_temperatures() {
            // Stacked volatile arrays are modeled at the 350 K
            // reference only — the old registry never resolved them
            // elsewhere, so there is nothing to migrate.
            if !config.technology().is_nonvolatile() && config.dies() > 1 && t != Kelvin::REFERENCE
            {
                continue;
            }
            let point = config.clone().at_temperature(t);
            let expected = if point.technology().is_nonvolatile() || point.dies() > 1 {
                "destiny"
            } else {
                "cryomem"
            };
            let resolved = registry
                .resolve(&point)
                .unwrap_or_else(|e| panic!("{}: {e}", point.label()));
            assert_eq!(resolved.name(), expected, "{}", point.label());
            checked += 1;
        }
    }
    // 31 configs x 8 study temperatures, minus the 3 stacked-SRAM
    // configs at the 7 non-reference temperatures.
    assert_eq!(checked, 31 * 8 - 3 * 7);
}

/// A test-time backend: claims single-die SRAM only and stamps a
/// sentinel array efficiency on everything it characterizes, proving
/// third-party backends plug into the explorer unchanged.
#[derive(Debug)]
struct MockBackend;

/// The sentinel the mock stamps — impossible for a real organization
/// search to produce exactly.
const MOCK_EFFICIENCY: f64 = 0.123_456_789;

impl CharacterizationBackend for MockBackend {
    fn name(&self) -> &'static str {
        "mock"
    }

    fn capabilities(&self) -> BackendCapabilities {
        BackendCapabilities::new(
            vec![MemoryTechnology::Sram],
            Kelvin::new(60.0),
            Kelvin::new(400.0),
            vec![1],
        )
    }

    fn characterize(
        &self,
        config: &MemoryConfig,
        node: &ProcessNode,
        objective: Objective,
    ) -> ArrayCharacterization {
        let cell = CellModel::tentpole(config.technology(), config.tentpole(), node);
        let mut array = ArraySpec::llc_16mib(cell, node)
            .at_temperature_cryo(config.temperature())
            .characterize(objective);
        array.array_efficiency = MOCK_EFFICIENCY;
        array
    }
}

#[test]
fn mock_backend_output_and_telemetry_flow_through_the_explorer() {
    let mut backends = BackendRegistry::new();
    backends.register(std::sync::Arc::new(MockBackend));
    let metrics = Registry::new();
    let explorer = Explorer::try_with_backends(
        ProcessNode::ptm_22nm_hp(),
        Objective::EnergyDelayProduct,
        backends,
        &metrics,
    )
    .expect("the mock claims the SRAM baseline");

    // The doctored output is what callers see...
    let array = explorer.characterize(&MemoryConfig::sram_77k());
    assert_eq!(array.array_efficiency, MOCK_EFFICIENCY);
    assert_eq!(explorer.baseline().array_efficiency, MOCK_EFFICIENCY);

    // ...and the dispatches land on the mock's own counter: one for
    // the eager baseline, one for the 77 K miss (the second probe is a
    // cache hit, not a dispatch).
    let _ = explorer.characterize(&MemoryConfig::sram_77k());
    assert_eq!(metrics.counter_value("backend.mock.characterizations"), Some(2));
    assert_eq!(metrics.counter_value("backend.cryomem.characterizations"), None);

    // Points outside the mock's capabilities are typed errors.
    let err = explorer
        .try_characterize(&MemoryConfig::edram_77k())
        .unwrap_err();
    assert!(matches!(err, Error::NoBackend { .. }), "{err}");
}
