//! Golden-file regression suite over `results/`.
//!
//! Every artifact the paper reproduction checks in is regenerated
//! in-process and byte-compared against the committed file, so no
//! future perf PR can silently corrupt the reproduction. The
//! comparison runs twice — pinned to one pool thread, then forced to
//! four — because the artifacts must be independent of how the sweep
//! is scheduled.
//!
//! To rebless after an *intentional* model change:
//!
//! ```sh
//! COLDTALL_BLESS=1 cargo test --test golden_results
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};

use coldtall::core::pool;
use coldtall::core::report::TextTable;
use coldtall_bench as bench;

type Generator = fn() -> TextTable;

/// Every artifact under `results/`, paired with its in-process
/// regenerator (the same `run()` the corresponding binary prints).
const ARTIFACTS: [(&str, Generator); 19] = [
    ("ablation_cooling", bench::ablation_cooling::run),
    ("ablation_ecc", bench::ablation_ecc::run),
    ("ablation_node", bench::ablation_node::run),
    ("ablation_stacking", bench::ablation_stacking::run),
    ("ablation_tags", bench::ablation_tags::run),
    ("ablation_voltage", bench::ablation_voltage::run),
    ("accel_study", bench::accel_study::run),
    ("cryo_nvm_study", bench::cryo_nvm_study::run),
    ("dynamic_temperature", bench::dynamic_temperature::run),
    ("fig1", bench::fig1::run),
    ("fig3", bench::fig3::run),
    ("fig4", bench::fig4::run),
    ("fig5", bench::fig5::run),
    ("fig6", bench::fig6::run),
    ("fig7", bench::fig7::run),
    ("hybrid_study", bench::hybrid_study::run),
    ("table1", bench::table1::run),
    ("table2", bench::table2::run),
    ("variation_study", bench::variation_study::run),
];

/// The two passes share the process-wide pool override, so they take
/// this lock and restore auto-detection on drop (even on panic).
static POOL_LOCK: Mutex<()> = Mutex::new(());

struct PinnedPool(#[allow(dead_code)] MutexGuard<'static, ()>);

impl PinnedPool {
    fn threads(n: usize) -> Self {
        let guard = POOL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        pool::set_max_threads(n);
        Self(guard)
    }
}

impl Drop for PinnedPool {
    fn drop(&mut self) {
        pool::set_max_threads(0);
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join(format!("{name}.txt"))
}

/// Renders an artifact exactly as its binary prints it (and exactly as
/// the checked-in file was captured): `# <name>`, a blank line, then
/// the table.
fn rendered(name: &str, run: Generator) -> String {
    format!("# {name}\n\n{}", run().render())
}

fn bless_requested() -> bool {
    std::env::var("COLDTALL_BLESS").is_ok_and(|v| v == "1")
}

/// A human-oriented first-divergence report for a byte mismatch.
fn describe_divergence(expected: &str, actual: &str) -> String {
    let mut report = String::new();
    for (i, (want, got)) in expected.lines().zip(actual.lines()).enumerate() {
        if want != got {
            let _ = write!(
                report,
                "first divergence at line {}:\n  expected: {want}\n  actual:   {got}",
                i + 1
            );
            return report;
        }
    }
    let _ = write!(
        report,
        "line counts differ: expected {}, actual {}",
        expected.lines().count(),
        actual.lines().count()
    );
    report
}

fn check_all_artifacts(mode: &str) {
    for (name, run) in ARTIFACTS {
        let actual = rendered(name, run);
        let path = golden_path(name);
        if bless_requested() {
            fs::write(&path, &actual)
                .unwrap_or_else(|err| panic!("blessing {} failed: {err}", path.display()));
            continue;
        }
        let expected = fs::read_to_string(&path)
            .unwrap_or_else(|err| panic!("golden file {} unreadable: {err}", path.display()));
        assert!(
            expected == actual,
            "results/{name}.txt diverged from its regenerator ({mode} pool).\n{}\n\
             If the change is intentional, rebless with:\n  COLDTALL_BLESS=1 cargo test --test golden_results",
            describe_divergence(&expected, &actual)
        );
    }
}

/// Every artifact, regenerated with the pool pinned to one thread at
/// every level, must match the checked-in bytes.
#[test]
fn artifacts_match_golden_files_sequentially() {
    let _pinned = PinnedPool::threads(1);
    check_all_artifacts("1-thread");
}

/// And again with a forced 4-worker pool: parallel scheduling must not
/// change a single byte of any artifact.
#[test]
fn artifacts_match_golden_files_with_four_threads() {
    let _pinned = PinnedPool::threads(4);
    check_all_artifacts("4-thread");
}

/// The artifacts above are all regenerated through the plan/execute
/// pipeline; pin the study plan's shape so a backend or dedup
/// regression is caught here, next to the bytes it would corrupt.
#[test]
fn study_plan_invariants_behind_the_goldens() {
    use coldtall::core::{BackendRegistry, SweepPlan};
    let plan = SweepPlan::study()
        .compile(&BackendRegistry::with_defaults())
        .expect("the study always compiles against the default backends");
    assert_eq!(plan.jobs().len(), 31, "one job per distinct design point");
    assert_eq!(plan.rows(), 31 * 23, "the full study grid");
    for job in plan.jobs() {
        assert!(
            matches!(job.backend(), "cryomem" | "destiny"),
            "unexpected backend '{}' for {}",
            job.backend(),
            job.config().label()
        );
    }
}

/// The suite covers the complete `results/` directory — a new artifact
/// must be added to [`ARTIFACTS`] (and a removed one deleted) or this
/// test fails, keeping the golden set exhaustive by construction.
#[test]
fn every_results_artifact_is_covered() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results");
    let mut on_disk: Vec<String> = fs::read_dir(&dir)
        .expect("results/ directory present")
        .map(|entry| entry.expect("readable dir entry").file_name().to_string_lossy().into_owned())
        .collect();
    on_disk.sort();
    let mut covered: Vec<String> = ARTIFACTS
        .iter()
        .map(|(name, _)| format!("{name}.txt"))
        .collect();
    covered.sort();
    assert_eq!(
        on_disk, covered,
        "results/ and the golden suite drifted apart"
    );
}
