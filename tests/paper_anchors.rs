//! Machine-checked reproduction anchors: every relative claim of the
//! paper's evaluation section asserted in a tolerant band.
//!
//! Each test names the figure or table it guards. Deviations we accept
//! (and their reasons) are documented in `EXPERIMENTS.md`; everything
//! asserted here is expected to hold for any retuning of the calibration
//! constants.

use coldtall::array::{ArrayCharacterization, ArraySpec, Objective};
use coldtall::cell::{CellModel, MemoryTechnology, Tentpole};
use coldtall::core::{Explorer, MemoryConfig};
use coldtall::cryo::{characterize_at, study_temperatures, CoolingSystem};
use coldtall::tech::ProcessNode;
use coldtall::units::Kelvin;
use coldtall::workloads::{benchmark, spec2017, TrafficBand};

fn node() -> ProcessNode {
    ProcessNode::ptm_22nm_hp()
}

fn sram_baseline() -> ArrayCharacterization {
    ArraySpec::llc_16mib(CellModel::sram(&node()), &node())
        .characterize(Objective::EnergyDelayProduct)
}

fn characterized(tech: MemoryTechnology, tentpole: Tentpole, dies: u8) -> ArrayCharacterization {
    let n = node();
    let cell = CellModel::tentpole(tech, tentpole, &n);
    let mut spec = ArraySpec::llc_16mib(cell, &n);
    if dies > 1 {
        spec = spec.with_dies(dies);
    }
    spec.characterize(Objective::EnergyDelayProduct)
}

// ---------------------------------------------------------------- Fig. 1

#[test]
fn fig1_cooling_tiers_scale_as_published() {
    // 9.65x / 14.3x / 21.8x / 39.6x from 100 kW down to 10 W.
    let factors: Vec<f64> = CoolingSystem::ALL
        .iter()
        .map(|c| c.overhead_factor())
        .collect();
    assert_eq!(factors, vec![9.65, 14.3, 21.8, 39.6]);
}

#[test]
fn fig1_namd_cryo_power_reduction_exceeds_50x_before_cooling() {
    let explorer = Explorer::with_defaults();
    let namd = benchmark("namd").unwrap();
    let warm = explorer.evaluate(&MemoryConfig::sram_350k(), namd);
    let cold = explorer.evaluate(&MemoryConfig::edram_77k(), namd);
    let no_cooling = warm.device_power / cold.device_power;
    assert!(no_cooling > 50.0, "device-power reduction = {no_cooling}");
    // Including conservative cooling there is still a >50% reduction.
    let cooled = warm.wall_power / cold.wall_power;
    assert!(cooled > 2.0, "cooled reduction = {cooled}");
}

// ---------------------------------------------------------------- Fig. 3

#[test]
fn fig3_dynamic_energy_varies_about_ten_percent_with_temperature() {
    let n = node();
    let spec = ArraySpec::llc_16mib(CellModel::sram(&n), &n);
    let base = sram_baseline();
    for &t in study_temperatures() {
        let a = characterize_at(&spec, t, Objective::EnergyDelayProduct);
        let rel = a.read_energy_per_bit() / base.read_energy_per_bit();
        assert!(
            (0.85..=1.15).contains(&rel),
            "read energy at {t} = {rel} of 350K"
        );
    }
}

#[test]
fn fig3_cryo_latency_is_about_70_percent_lower() {
    let n = node();
    let spec = ArraySpec::llc_16mib(CellModel::sram(&n), &n);
    let base = sram_baseline();
    let cold = characterize_at(&spec, Kelvin::LN2, Objective::EnergyDelayProduct);
    let rel = cold.read_latency / base.read_latency;
    assert!((0.2..=0.4).contains(&rel), "77K latency ratio = {rel}");
}

#[test]
fn fig3_cryo_leakage_collapses_about_a_million_fold() {
    let n = node();
    let spec = ArraySpec::llc_16mib(CellModel::sram(&n), &n);
    let base = sram_baseline();
    let cold = characterize_at(&spec, Kelvin::LN2, Objective::EnergyDelayProduct);
    let rel = cold.leakage_power / base.leakage_power;
    assert!(
        (1e-7..=1e-5).contains(&rel),
        "77K leakage ratio = {rel:e}"
    );
}

#[test]
fn fig3_edram_leakage_gap_grows_from_10x_to_beyond() {
    let n = node();
    let sram = ArraySpec::llc_16mib(CellModel::sram(&n), &n);
    let edram = ArraySpec::llc_16mib(CellModel::edram_3t(&n), &n);
    let obj = Objective::EnergyDelayProduct;
    let gap = |t: Kelvin| {
        characterize_at(&sram, t, obj).leakage_power
            / characterize_at(&edram, t, obj).leakage_power.get().max(1e-30)
            / 1.0
    };
    let gap_cold = characterize_at(&sram, Kelvin::LN2, obj).leakage_power.get()
        / characterize_at(&edram, Kelvin::LN2, obj).leakage_power.get();
    let gap_hot = characterize_at(&sram, Kelvin::TDP, obj).leakage_power.get()
        / characterize_at(&edram, Kelvin::TDP, obj).leakage_power.get();
    let _ = gap;
    assert!((5.0..=25.0).contains(&gap_cold), "77K gap = {gap_cold}");
    assert!(gap_hot > 2.0 * gap_cold, "gap must widen: {gap_cold} -> {gap_hot}");
}

#[test]
fn fig3_leakage_rises_monotonically_with_temperature() {
    let n = node();
    let spec = ArraySpec::llc_16mib(CellModel::sram(&n), &n);
    let mut prev = -1.0;
    for &t in study_temperatures() {
        let leak = characterize_at(&spec, t, Objective::EnergyDelayProduct)
            .leakage_power
            .get();
        assert!(leak > prev, "leakage must rise with temperature at {t}");
        prev = leak;
    }
}

#[test]
fn fig3_edram_retention_collapses_refresh_at_77k_only() {
    let n = node();
    let spec = ArraySpec::llc_16mib(CellModel::edram_3t(&n), &n);
    let obj = Objective::EnergyDelayProduct;
    let cold = characterize_at(&spec, Kelvin::LN2, obj);
    let warm = characterize_at(&spec, Kelvin::ROOM, obj);
    // Paper: 300 K 3T-eDRAM cannot run ordinary workloads (94% IPC
    // reduction); 77 K retention is >10,000x longer and refresh-free.
    assert!(warm.refresh_busy_fraction > 0.9);
    assert!(cold.refresh_busy_fraction < 1e-3);
    let gain = cold.retention.unwrap() / warm.retention.unwrap();
    assert!(gain > 1e4, "retention gain = {gain}");
}

// ---------------------------------------------------------------- Fig. 4

#[test]
fn fig4_namd_cryo_sram_wins_about_3x_including_cooling() {
    let explorer = Explorer::with_defaults();
    let namd = benchmark("namd").unwrap();
    let warm = explorer.evaluate(&MemoryConfig::sram_350k(), namd);
    let cold = explorer.evaluate(&MemoryConfig::sram_77k(), namd);
    let ratio = warm.wall_power / cold.wall_power;
    assert!((2.0..=6.0).contains(&ratio), "namd SRAM cooled win = {ratio}");
}

#[test]
fn fig4_namd_cryo_edram_is_thwarted_by_cooling() {
    let explorer = Explorer::with_defaults();
    let namd = benchmark("namd").unwrap();
    let warm = explorer.evaluate(&MemoryConfig::edram_350k(), namd);
    let cold = explorer.evaluate(&MemoryConfig::edram_77k(), namd);
    assert!(
        cold.wall_power > warm.wall_power,
        "cooling must erase the cryo eDRAM win on namd: {} vs {}",
        cold.wall_power,
        warm.wall_power
    );
}

#[test]
fn fig4_leela_cryo_wins_for_both_technologies() {
    let explorer = Explorer::with_defaults();
    let leela = benchmark("leela").unwrap();
    for (warm, cold) in [
        (MemoryConfig::sram_350k(), MemoryConfig::sram_77k()),
        (MemoryConfig::edram_350k(), MemoryConfig::edram_77k()),
    ] {
        let w = explorer.evaluate(&warm, leela);
        let c = explorer.evaluate(&cold, leela);
        assert!(
            c.wall_power.get() < w.wall_power.get() / 10.0,
            "{}: cryo must win by >10x on leela",
            warm.label()
        );
    }
}

// ---------------------------------------------------------------- Fig. 5

#[test]
fn fig5_77k_edram_is_lowest_power_across_the_suite() {
    let explorer = Explorer::with_defaults();
    let cryo_edram = MemoryConfig::edram_77k();
    let rivals = [
        MemoryConfig::sram_350k(),
        MemoryConfig::edram_350k(),
        MemoryConfig::sram_77k(),
    ];
    for bench in spec2017() {
        let champion = explorer.evaluate(&cryo_edram, bench).device_power;
        for rival in &rivals {
            let other = explorer.evaluate(rival, bench).device_power;
            assert!(
                champion.get() <= other.get(),
                "{}: 77K 3T-eDRAM must be the lowest-power volatile option",
                bench.name
            );
        }
    }
}

#[test]
fn fig5_cryo_cooled_power_exceeds_baseline_at_the_highest_traffic() {
    let explorer = Explorer::with_defaults();
    let mcf = benchmark("mcf").unwrap();
    let warm = explorer.evaluate(&MemoryConfig::sram_350k(), mcf);
    let cold = explorer.evaluate(&MemoryConfig::sram_77k(), mcf);
    assert!(
        cold.relative_power > warm.relative_power,
        "cooling must preclude cryo viability at mcf traffic"
    );
}

#[test]
fn fig5_cryo_aggregate_latency_is_2_to_4x_lower_everywhere() {
    let explorer = Explorer::with_defaults();
    for bench in spec2017() {
        for config in [MemoryConfig::sram_77k(), MemoryConfig::edram_77k()] {
            let eval = explorer.evaluate(&config, bench);
            assert!(
                (2.0..=6.0).contains(&(1.0 / eval.relative_latency)),
                "{} on {}: latency win = {}",
                config.label(),
                bench.name,
                1.0 / eval.relative_latency
            );
        }
    }
}

#[test]
fn fig5_77k_edram_latency_beats_77k_sram() {
    let explorer = Explorer::with_defaults();
    for bench in spec2017() {
        let edram = explorer.evaluate(&MemoryConfig::edram_77k(), bench);
        let sram = explorer.evaluate(&MemoryConfig::sram_77k(), bench);
        assert!(
            edram.relative_latency <= sram.relative_latency,
            "{}: 77K 3T-eDRAM must be at least as fast as 77K SRAM",
            bench.name
        );
    }
}

#[test]
fn fig5_povray_band_reduction_exceeds_2500x_even_with_cooling() {
    let explorer = Explorer::with_defaults();
    let povray = benchmark("povray").unwrap();
    let warm = explorer.evaluate(&MemoryConfig::sram_350k(), povray);
    let cold = explorer.evaluate(&MemoryConfig::edram_77k(), povray);
    let reduction = warm.wall_power / cold.wall_power;
    assert!(reduction > 1000.0, "povray reduction = {reduction}");
}

// ---------------------------------------------------------------- Fig. 6

#[test]
fn fig6_8die_sram_saves_over_80_percent_footprint() {
    let base = sram_baseline();
    let stacked = characterized(MemoryTechnology::Sram, Tentpole::Optimistic, 8);
    let rel = stacked.footprint / base.footprint;
    assert!(rel < 0.2, "8-die SRAM footprint = {rel}");
}

#[test]
fn fig6_pcm_gains_only_about_30_percent_from_stacking() {
    let one = characterized(MemoryTechnology::Pcm, Tentpole::Optimistic, 1);
    let eight = characterized(MemoryTechnology::Pcm, Tentpole::Optimistic, 8);
    let reduction = 1.0 - eight.footprint / one.footprint;
    assert!(
        (0.15..=0.5).contains(&reduction),
        "PCM 1->8 die footprint reduction = {reduction}"
    );
}

#[test]
fn fig6_8die_pcm_is_over_10x_denser_than_2d_sram() {
    let base = sram_baseline();
    let pcm = characterized(MemoryTechnology::Pcm, Tentpole::Optimistic, 8);
    let factor = base.footprint / pcm.footprint;
    assert!(factor > 10.0, "8-die PCM density win = {factor}");
}

#[test]
fn fig6_every_8die_envm_is_at_least_2x_denser_than_8die_sram() {
    let sram8 = characterized(MemoryTechnology::Sram, Tentpole::Optimistic, 8);
    for tech in MemoryTechnology::ENVM_SET {
        for tentpole in Tentpole::BOTH {
            let envm = characterized(tech, tentpole, 8);
            let factor = sram8.footprint / envm.footprint;
            assert!(
                factor >= 2.0,
                "{tech} ({tentpole}) 8-die density vs 8-die SRAM = {factor}"
            );
        }
    }
}

#[test]
fn fig6_best_read_energy_is_8die_sram_then_8die_pcm() {
    let base = sram_baseline();
    let sram8 = characterized(MemoryTechnology::Sram, Tentpole::Optimistic, 8);
    let pcm8 = characterized(MemoryTechnology::Pcm, Tentpole::Optimistic, 8);
    let stt8 = characterized(MemoryTechnology::SttRam, Tentpole::Optimistic, 8);
    let rram8 = characterized(MemoryTechnology::Rram, Tentpole::Optimistic, 8);
    // 8-die SRAM ~75% lower, 8-die PCM ~55% lower than the baseline.
    let sram_rel = sram8.read_energy / base.read_energy;
    let pcm_rel = pcm8.read_energy / base.read_energy;
    assert!((0.15..=0.4).contains(&sram_rel), "8-die SRAM read energy = {sram_rel}");
    assert!((0.35..=0.6).contains(&pcm_rel), "8-die PCM read energy = {pcm_rel}");
    assert!(sram8.read_energy < pcm8.read_energy);
    assert!(pcm8.read_energy < stt8.read_energy);
    assert!(pcm8.read_energy < rram8.read_energy);
}

#[test]
fn fig6_sram_has_lowest_write_energy_regardless_of_stacking() {
    for dies in [1u8, 2, 4, 8] {
        let sram = characterized(MemoryTechnology::Sram, Tentpole::Optimistic, dies);
        for tech in MemoryTechnology::ENVM_SET {
            let envm = characterized(tech, Tentpole::Optimistic, dies);
            assert!(
                sram.write_energy < envm.write_energy,
                "{dies}-die {tech} write energy must exceed SRAM's"
            );
        }
    }
}

#[test]
fn fig6_8die_pcm_has_the_best_read_latency() {
    let pcm8 = characterized(MemoryTechnology::Pcm, Tentpole::Optimistic, 8);
    let pcm4 = characterized(MemoryTechnology::Pcm, Tentpole::Optimistic, 4);
    let pcm2 = characterized(MemoryTechnology::Pcm, Tentpole::Optimistic, 2);
    let stt8 = characterized(MemoryTechnology::SttRam, Tentpole::Optimistic, 8);
    let rram8 = characterized(MemoryTechnology::Rram, Tentpole::Optimistic, 8);
    let sram8 = characterized(MemoryTechnology::Sram, Tentpole::Optimistic, 8);
    // 8- and 4-die PCM are within a percent of each other (the extra
    // TSV hops offset the shorter H-tree); the paper's strict ordering
    // is asserted with that tolerance.
    assert!(pcm8.read_latency.get() <= pcm4.read_latency.get() * 1.01);
    assert!(pcm4.read_latency <= pcm2.read_latency);
    assert!(pcm2.read_latency < stt8.read_latency);
    assert!(stt8.read_latency < rram8.read_latency);
    assert!(stt8.read_latency < sram8.read_latency, "STT competitive read");
}

#[test]
fn fig6_8die_stt_has_the_lowest_write_latency() {
    let stt8 = characterized(MemoryTechnology::SttRam, Tentpole::Optimistic, 8);
    let rivals = [
        characterized(MemoryTechnology::Sram, Tentpole::Optimistic, 1),
        characterized(MemoryTechnology::Sram, Tentpole::Optimistic, 8),
        characterized(MemoryTechnology::Pcm, Tentpole::Optimistic, 8),
        characterized(MemoryTechnology::Rram, Tentpole::Optimistic, 8),
    ];
    for rival in &rivals {
        assert!(
            stt8.write_latency < rival.write_latency,
            "8-die STT must write fastest"
        );
    }
    // And per die count, STT writes beat the matching SRAM config.
    for dies in [1u8, 2, 4, 8] {
        let stt = characterized(MemoryTechnology::SttRam, Tentpole::Optimistic, dies);
        let sram = characterized(MemoryTechnology::Sram, Tentpole::Optimistic, dies);
        assert!(stt.write_latency < sram.write_latency, "{dies}-die STT write");
    }
}

// ---------------------------------------------------------------- Fig. 7

#[test]
fn fig7_envms_sit_2_to_80x_below_sram_at_low_traffic() {
    let explorer = Explorer::with_defaults();
    let x264 = benchmark("x264").unwrap(); // ~1e6 reads/s
    let warm = explorer.evaluate(&MemoryConfig::sram_350k(), x264);
    for tech in MemoryTechnology::ENVM_SET {
        for tentpole in Tentpole::BOTH {
            for dies in [1u8, 8] {
                let config = MemoryConfig::envm_3d(tech, tentpole, dies);
                let eval = explorer.evaluate(&config, x264);
                let win = warm.relative_power / eval.relative_power;
                assert!(
                    (2.0..=80.0).contains(&win),
                    "{}: power win = {win}",
                    config.label()
                );
            }
        }
    }
}

#[test]
fn fig7_pessimistic_envms_win_only_single_digits() {
    // "even considering eNVMs with pessimistic underlying cell
    // properties" the win is in the 2-10x class, not orders of
    // magnitude: the periphery still burns static power.
    let explorer = Explorer::with_defaults();
    let x264 = benchmark("x264").unwrap();
    let warm = explorer.evaluate(&MemoryConfig::sram_350k(), x264);
    for tech in MemoryTechnology::ENVM_SET {
        let config = MemoryConfig::envm_3d(tech, Tentpole::Pessimistic, 1);
        let eval = explorer.evaluate(&config, x264);
        let win = warm.relative_power / eval.relative_power;
        assert!((2.0..=12.0).contains(&win), "{tech} pessimistic win = {win}");
    }
}

#[test]
fn fig7_stt_benefit_shrinks_as_write_power_dominates() {
    let explorer = Explorer::with_defaults();
    let config = MemoryConfig::envm_3d(MemoryTechnology::SttRam, Tentpole::Optimistic, 8);
    let quiet = benchmark("deepsjeng").unwrap(); // 8e4 reads/s
    let busy = benchmark("lbm").unwrap(); // write-heavy
    let quiet_win = explorer.evaluate(&MemoryConfig::sram_350k(), quiet).relative_power
        / explorer.evaluate(&config, quiet).relative_power;
    let busy_win = explorer.evaluate(&MemoryConfig::sram_350k(), busy).relative_power
        / explorer.evaluate(&config, busy).relative_power;
    assert!(
        busy_win < quiet_win / 2.0,
        "STT win must shrink with write traffic: {quiet_win} -> {busy_win}"
    );
}

#[test]
fn fig7_pessimistic_pcm_and_stt_slow_down_write_heavy_workloads() {
    let explorer = Explorer::with_defaults();
    let lbm = benchmark("lbm").unwrap();
    for tech in [MemoryTechnology::Pcm, MemoryTechnology::SttRam] {
        let config = MemoryConfig::envm_3d(tech, Tentpole::Pessimistic, 8);
        let eval = explorer.evaluate(&config, lbm);
        assert!(
            eval.slowdown,
            "pessimistic {tech} must exceed the latency envelope on lbm"
        );
    }
}

#[test]
fn fig7_stacked_stt_is_the_fastest_room_temperature_llc_except_mcf() {
    let explorer = Explorer::with_defaults();
    let stt8 = MemoryConfig::envm_3d(MemoryTechnology::SttRam, Tentpole::Optimistic, 8);
    let pcm8 = MemoryConfig::envm_3d(MemoryTechnology::Pcm, Tentpole::Optimistic, 8);
    let mut stt_wins = 0usize;
    for bench in spec2017() {
        let stt = explorer.evaluate(&stt8, bench).relative_latency;
        let pcm = explorer.evaluate(&pcm8, bench).relative_latency;
        if bench.name == "mcf" {
            assert!(pcm < stt, "read-dominated mcf must prefer 8-die PCM");
        } else if stt < pcm {
            stt_wins += 1;
        }
    }
    assert!(
        stt_wins > spec2017().len() / 2,
        "8-die STT must win most benchmarks ({stt_wins} wins)"
    );
}

#[test]
fn fig7_power_optimal_die_count_rises_with_traffic() {
    // Paper summary: higher stacking is better for power at high
    // traffic, lower stacking at low traffic.
    let explorer = Explorer::with_defaults();
    let best_dies = |bench_name: &str| {
        let bench = benchmark(bench_name).unwrap();
        [1u8, 2, 4, 8]
            .into_iter()
            .min_by(|&a, &b| {
                let pa = explorer
                    .evaluate(
                        &MemoryConfig::envm_3d(MemoryTechnology::Pcm, Tentpole::Optimistic, a),
                        bench,
                    )
                    .relative_power;
                let pb = explorer
                    .evaluate(
                        &MemoryConfig::envm_3d(MemoryTechnology::Pcm, Tentpole::Optimistic, b),
                        bench,
                    )
                    .relative_power;
                pa.total_cmp(&pb)
            })
            .unwrap()
    };
    let quiet = best_dies("leela");
    let busy = best_dies("mcf");
    assert_eq!(quiet, 1, "low traffic prefers minimal stacking");
    assert!(busy > quiet, "high traffic must prefer more stacking");
}

// -------------------------------------------------------------- Table II

#[test]
fn table2_matches_the_papers_band_structure() {
    let explorer = Explorer::with_defaults();
    let rows = coldtall::core::selection::table2(&explorer);
    assert_eq!(rows.len(), 3);

    let low = rows.iter().find(|r| r.band == TrafficBand::Low).unwrap();
    assert_eq!(low.power.label, "77K 3T-eDRAM");
    assert!(low.power.improvement > 100.0);

    let mid = rows.iter().find(|r| r.band == TrafficBand::Mid).unwrap();
    assert!(mid.power.label.contains("PCM"), "mid winner = {}", mid.power.label);
    assert_eq!(mid.power.alternate.as_deref(), Some("77K 3T-eDRAM"));
    assert!(
        (10.0..=60.0).contains(&mid.power.improvement),
        "mid-band improvement = {}",
        mid.power.improvement
    );

    let high = rows.iter().find(|r| r.band == TrafficBand::High).unwrap();
    assert!(high.power.label.contains("PCM"));
    assert!(high.power.endurance_limited, "PCM winners carry the endurance flag");

    for row in &rows {
        assert!(row.area.label.contains("8-die PCM"));
    }
}
