//! Bit-identity and counter tests of the two-phase characterization
//! kernel (geometry-batched plan execution).
//!
//! The batched paths ([`Explorer::execute`] / [`Explorer::execute_par`])
//! group a plan's characterization jobs by temperature-stripped
//! geometry key, solve each geometry once, and fan the temperatures
//! out over the cached candidate list. The contract under test:
//!
//! * rows are **bit-identical** to the per-point reference
//!   ([`Explorer::execute_per_point`]), at any pool width,
//! * the geometry cache records exactly one solve per distinct
//!   geometry key (`perf_smoke`),
//! * the organization optimizer's lower-bound prune never changes the
//!   argmin (brute force over the full candidate grid), because the
//!   bound is sound (`score_lower_bound <= score`, verified
//!   exhaustively).

use std::collections::HashSet;
use std::sync::{Mutex, MutexGuard, PoisonError};

use coldtall::array::{
    optimize, score_lower_bound, ArrayCharacterization, ArraySpec, Objective, OrgGeometry,
    Organization,
};
use coldtall::cell::{CellModel, MemoryTechnology, Tentpole};
use coldtall::core::{pool, DesignPointKey, Explorer, MemoryConfig};
use coldtall::cryo::{characterize_at, study_temperatures};
use coldtall::obs::Registry;
use coldtall::tech::ProcessNode;
use coldtall::units::Capacity;

/// Tests that force a pool width share the process-global override.
static POOL_LOCK: Mutex<()> = Mutex::new(());

struct PinnedPool(#[allow(dead_code)] MutexGuard<'static, ()>);

impl PinnedPool {
    fn threads(n: usize) -> Self {
        let guard = POOL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        pool::set_max_threads(n);
        Self(guard)
    }
}

impl Drop for PinnedPool {
    fn drop(&mut self) {
        pool::set_max_threads(0);
    }
}

/// The full study set expanded across every study temperature — the
/// densest temperature sweep the repo runs, and the workload where
/// geometry batching pays (many temperatures per geometry key).
fn expanded_study() -> Vec<MemoryConfig> {
    MemoryConfig::study_set()
        .iter()
        .flat_map(|config| {
            study_temperatures()
                .iter()
                .map(|&t| config.clone().at_temperature(t))
        })
        .collect()
}

fn observed_explorer(registry: &Registry) -> Explorer {
    Explorer::with_registry(
        ProcessNode::ptm_22nm_hp(),
        Objective::EnergyDelayProduct,
        registry,
    )
}

/// Runs the per-point reference and both batched paths over the full
/// study x temperature grid on `threads` pool threads, each on a fresh
/// explorer (cold caches), and asserts the rows are bit-identical.
fn assert_batched_paths_bit_identical(threads: usize) {
    let _pinned = PinnedPool::threads(threads);
    let configs = expanded_study();
    let run = |execute: fn(&Explorer, &coldtall::core::ExecutionPlan) -> Vec<_>| {
        let registry = Registry::new();
        let explorer = observed_explorer(&registry);
        let plan = explorer.plan_sweep(&configs).expect("study configs resolve");
        execute(&explorer, &plan)
    };
    let per_point = run(Explorer::execute_per_point);
    let batched = run(Explorer::execute);
    let batched_par = run(Explorer::execute_par);
    assert_eq!(
        per_point, batched,
        "batched execution must be bit-identical to per-point at {threads} threads"
    );
    assert_eq!(
        batched, batched_par,
        "pooled batched execution must match sequential at {threads} threads"
    );
}

#[test]
fn batched_execution_is_bit_identical_to_per_point_at_one_thread() {
    assert_batched_paths_bit_identical(1);
}

#[test]
fn batched_execution_is_bit_identical_to_per_point_at_four_threads() {
    assert_batched_paths_bit_identical(4);
}

/// The headline perf invariant: one geometry solve per distinct
/// temperature-stripped key across the whole study x temperature grid,
/// and none at all on a warm cache.
#[test]
fn perf_smoke() {
    let registry = Registry::new();
    let explorer = observed_explorer(&registry);
    let configs = expanded_study();
    let plan = explorer.plan_sweep(&configs).expect("study configs resolve");
    let distinct_geometries: HashSet<DesignPointKey> = plan
        .jobs()
        .iter()
        .map(|job| DesignPointKey::geometry_of(job.config()))
        .collect();
    assert!(
        distinct_geometries.len() < plan.jobs().len(),
        "the temperature sweep must share geometries across jobs"
    );

    let rows = explorer.execute(&plan);
    assert_eq!(rows.len(), plan.rows());
    let solves = registry
        .counter_value("geometry.solves")
        .expect("geometry cache registered");
    assert_eq!(
        solves,
        distinct_geometries.len() as u64,
        "exactly one geometry solve per distinct temperature-stripped key"
    );
    assert!(
        solves <= rows.len() as u64,
        "solves are bounded by the row count"
    );
    assert_eq!(
        registry
            .counter_value("explorer.characterize.dispatches")
            .unwrap(),
        {
            let backends: HashSet<(DesignPointKey, &str)> = plan
                .jobs()
                .iter()
                .map(|job| (DesignPointKey::geometry_of(job.config()), job.backend()))
                .collect();
            backends.len() as u64
        },
        "one batch dispatch per (geometry key, backend) group"
    );

    // A second execution is all cache hits: no new solves, no dispatch.
    let again = explorer.execute(&plan);
    assert_eq!(rows, again);
    assert_eq!(registry.counter_value("geometry.solves"), Some(solves));
}

/// Brute-force argmin over the full candidate grid, replicating the
/// optimizer's feasibility rule and first-wins tie semantics — but
/// with no pruning and no shared device context.
fn brute_force(spec: &ArraySpec, objective: Objective) -> ArrayCharacterization {
    let per_die = spec.capacity().bits_f64() * spec.storage_overhead() / f64::from(spec.dies());
    let mut best: Option<(f64, ArrayCharacterization)> = None;
    for org in Organization::candidates() {
        #[allow(clippy::cast_precision_loss)]
        if org.bits_per_subarray() as f64 > per_die {
            continue;
        }
        let array = ArrayCharacterization::evaluate(spec, org);
        let score = objective.score(&array);
        if best.as_ref().is_none_or(|(incumbent, _)| score < *incumbent) {
            best = Some((score, array));
        }
    }
    best.expect("at least one feasible organization").1
}

/// Specs spanning the regimes the prune sees: the 350 K baseline, a
/// cryogenic operating point, a refresh-bearing cell, and a stacked
/// spec small enough that the feasibility filter actually removes
/// candidates.
fn prune_specs() -> Vec<ArraySpec> {
    let node = ProcessNode::ptm_22nm_hp();
    let sram = ArraySpec::llc_16mib(CellModel::sram(&node), &node);
    let edram = ArraySpec::llc_16mib(
        CellModel::tentpole(MemoryTechnology::Edram3T, Tentpole::Optimistic, &node),
        &node,
    );
    vec![
        sram.clone(),
        sram.clone().at_temperature_cryo(coldtall::units::Kelvin::LN2),
        edram,
        sram.with_capacity(Capacity::from_mebibytes(1)).with_dies(8),
    ]
}

#[test]
fn prune_never_changes_the_argmin() {
    for spec in prune_specs() {
        for objective in [
            Objective::EnergyDelayProduct,
            Objective::ReadLatency,
            Objective::ReadEnergy,
            Objective::Area,
            Objective::StandbyPower,
        ] {
            assert_eq!(
                optimize(&spec, objective),
                brute_force(&spec, objective),
                "pruned search diverged from brute force for {objective}"
            );
        }
    }
}

#[test]
fn lower_bound_is_sound_for_every_candidate() {
    for spec in prune_specs() {
        for objective in [
            Objective::EnergyDelayProduct,
            Objective::ReadLatency,
            Objective::ReadEnergy,
            Objective::Area,
            Objective::StandbyPower,
        ] {
            for org in Organization::candidates() {
                let bound = score_lower_bound(&spec, org, objective);
                let score = objective.score(&ArrayCharacterization::evaluate(&spec, org));
                assert!(
                    bound <= score,
                    "bound {bound} exceeds score {score} for {org:?} under {objective}"
                );
            }
        }
    }
}

/// Phase 2 against the one-shot reference: re-scoring a cached
/// geometry at a temperature must equal characterizing the base spec
/// at that temperature from scratch.
#[test]
fn apply_temperature_matches_characterize_at() {
    let node = ProcessNode::ptm_22nm_hp();
    let objective = Objective::EnergyDelayProduct;
    for cell in [
        CellModel::sram(&node),
        CellModel::tentpole(MemoryTechnology::Edram3T, Tentpole::Optimistic, &node),
    ] {
        let spec = ArraySpec::llc_16mib(cell, &node);
        let geometry = OrgGeometry::solve(&spec);
        for &t in study_temperatures() {
            assert_eq!(
                geometry.apply_temperature(t, objective),
                characterize_at(&spec, t, objective)
            );
        }
    }
}
