//! Smoke and content tests of every experiment harness: each table/
//! figure regenerator must produce a complete, well-formed data series.

use coldtall_bench as bench;

#[test]
fn fig1_has_cooling_columns_and_a_cold_floor() {
    let table = bench::fig1::run();
    let csv = table.to_csv();
    let header = csv.lines().next().unwrap();
    assert!(header.contains("rel_power_100kW"));
    assert!(header.contains("rel_power_10W"));
    // The 77 K SRAM row without cooling must be far below 1.
    let cold_row = csv
        .lines()
        .find(|l| l.starts_with("SRAM,77"))
        .expect("77K SRAM row present");
    let no_cooling: f64 = cold_row.split(',').nth(2).unwrap().parse().unwrap();
    assert!(no_cooling < 0.2, "77K no-cooling power = {no_cooling}");
}

#[test]
fn fig3_normalizes_350k_sram_to_unity() {
    let csv = bench::fig3::run().to_csv();
    let row = csv
        .lines()
        .find(|l| l.starts_with("SRAM,350"))
        .expect("350K SRAM row");
    let cells: Vec<&str> = row.split(',').collect();
    for value in &cells[2..] {
        let v: f64 = value.parse().unwrap();
        assert!((v - 1.0).abs() < 1e-6, "350K SRAM must be the unit: {row}");
    }
}

#[test]
fn fig4_shows_the_namd_asymmetry() {
    let csv = bench::fig4::run().to_csv();
    let namd_edram = csv
        .lines()
        .find(|l| l.starts_with("namd,3T-eDRAM"))
        .expect("row present");
    let cells: Vec<f64> = namd_edram
        .split(',')
        .skip(2)
        .map(|c| c.parse().unwrap())
        .collect();
    let (at_350, cooled) = (cells[0], cells[2]);
    assert!(cooled > at_350, "cryo eDRAM must lose to 350K eDRAM on namd");
}

#[test]
fn fig5_and_fig7_cover_the_full_suite() {
    let fig5 = bench::fig5::run();
    let fig7 = bench::fig7::run();
    assert_eq!(fig5.len() % 23, 0);
    assert_eq!(fig7.len() % 23, 0);
    assert!(fig7.len() > fig5.len(), "fig7 sweeps a larger config set");
    for name in ["povray", "namd", "mcf", "lbm"] {
        assert!(fig5.to_csv().contains(name));
        assert!(fig7.to_csv().contains(name));
    }
}

#[test]
fn fig6_contains_all_die_counts_per_technology() {
    let csv = bench::fig6::run().to_csv();
    for tech in ["SRAM", "PCM", "STT-RAM", "RRAM"] {
        for dies in ["1", "2", "4", "8"] {
            assert!(
                csv.lines().any(|l| {
                    let c: Vec<&str> = l.split(',').collect();
                    c.first() == Some(&tech) && c.get(2) == Some(&dies)
                }),
                "missing {tech} x {dies} dies"
            );
        }
    }
}

#[test]
fn table1_prints_the_paper_parameters() {
    let rendered = bench::table1::run().render();
    for needle in ["Skylake", "22nm", "5 GHz", "16 MiB", "16 ways"] {
        assert!(rendered.contains(needle), "Table I must contain {needle}");
    }
}

#[test]
fn table2_prints_three_bands_with_winners() {
    let rendered = bench::table2::run().render();
    assert!(rendered.contains("<5e4"));
    assert!(rendered.contains("5e4..8e6"));
    assert!(rendered.contains(">8e6"));
    assert!(rendered.contains("77K 3T-eDRAM"));
    assert!(rendered.contains("endurance-limited"));
}
