//! End-to-end pipeline test: synthetic workload -> cache hierarchy ->
//! LLC traffic -> design-space exploration, exactly the cross-stack flow
//! of the paper's Fig. 2 — without the calibrated traffic table in the
//! loop.

use coldtall::cachesim::{CpuConfig, LlcTraffic};
use coldtall::core::{Explorer, MemoryConfig};
use coldtall::units::Capacity;
use coldtall::workloads::{benchmark, simulate_traffic, spec2017, Benchmark};

/// Evaluate a configuration under *simulated* (not calibrated) traffic.
fn evaluate_with_simulated_traffic(
    explorer: &Explorer,
    config: &MemoryConfig,
    bench: &Benchmark,
    traffic: LlcTraffic,
) -> f64 {
    // Recreate the application model through public APIs: power =
    // standby + traffic-weighted dynamic, with cooling.
    let array = explorer.characterize(config);
    let device = array.standby_power().get()
        + traffic.reads_per_sec * array.read_energy.get()
        + traffic.writes_per_sec * array.write_energy.get();
    let wall = config
        .cooling()
        .wall_power(coldtall::units::Watts::new(device), config.temperature());
    let _ = bench;
    wall.get()
}

#[test]
fn simulated_traffic_reproduces_the_calibrated_ordering() {
    let config = CpuConfig::skylake_desktop();
    let names = ["povray", "leela", "x264", "gcc", "mcf"];
    let mut simulated: Vec<(f64, &str)> = names
        .iter()
        .map(|&n| {
            let b = benchmark(n).unwrap();
            let t = simulate_traffic(b, config, 30_000, 99);
            (t.reads_per_sec, n)
        })
        .collect();
    simulated.sort_by(|a, b| a.0.total_cmp(&b.0));
    let simulated_order: Vec<&str> = simulated.iter().map(|(_, n)| *n).collect();
    // The calibrated table is sorted by read traffic, so the subsequence
    // order must match.
    assert_eq!(simulated_order, names.to_vec());
}

#[test]
fn end_to_end_choice_agrees_between_simulated_and_calibrated_traffic() {
    let cpu = CpuConfig::skylake_desktop();
    let explorer = Explorer::with_defaults();
    let candidates = [
        MemoryConfig::sram_350k(),
        MemoryConfig::edram_77k(),
        MemoryConfig::envm_3d(
            coldtall::cell::MemoryTechnology::Pcm,
            coldtall::cell::Tentpole::Optimistic,
            4,
        ),
    ];
    for name in ["povray", "mcf"] {
        let bench = benchmark(name).unwrap();
        let simulated = simulate_traffic(bench, cpu, 30_000, 7);

        let best_by_sim = candidates
            .iter()
            .min_by(|a, b| {
                evaluate_with_simulated_traffic(&explorer, a, bench, simulated).total_cmp(
                    &evaluate_with_simulated_traffic(&explorer, b, bench, simulated),
                )
            })
            .unwrap();
        let best_by_table = candidates
            .iter()
            .min_by(|a, b| {
                explorer
                    .evaluate(a, bench)
                    .relative_power
                    .total_cmp(&explorer.evaluate(b, bench).relative_power)
            })
            .unwrap();
        assert_eq!(
            best_by_sim.label(),
            best_by_table.label(),
            "{name}: pipeline and calibrated table must agree on the winner"
        );
    }
}

#[test]
fn full_sweep_produces_finite_sane_rows() {
    let explorer = Explorer::with_defaults();
    let rows = explorer.sweep();
    assert_eq!(rows.len(), MemoryConfig::study_set().len() * spec2017().len());
    for row in &rows {
        assert!(row.wall_power.get() > 0.0, "{}: zero power", row.config_label);
        assert!(row.relative_power > 0.0);
        assert!(row.footprint_mm2 > 0.1 && row.footprint_mm2 < 50.0);
        assert!(
            row.relative_latency > 0.0,
            "{}: non-positive latency",
            row.config_label
        );
        assert!(row.lifetime_years > 0.0);
    }
}

#[test]
fn windowed_traffic_feeds_the_temperature_scheduler() {
    // The full future-work pipeline: simulate a workload, slice it into
    // traffic windows, and plan a temperature schedule over them.
    use coldtall::cell::MemoryTechnology;
    use coldtall::core::{plan_schedule, WorkloadPhase};
    use coldtall::units::{Kelvin, Seconds};
    use coldtall::workloads::windowed_traffic;

    let config = CpuConfig::skylake_desktop();
    let windows = windowed_traffic(benchmark("x264").unwrap(), config, 3, 2_000, 5);
    let phases: Vec<WorkloadPhase> = windows
        .into_iter()
        .enumerate()
        .map(|(i, traffic)| WorkloadPhase {
            name: format!("window-{i}"),
            traffic,
            duration: Seconds::new(60.0),
        })
        .collect();
    let explorer = Explorer::with_defaults();
    let schedule = plan_schedule(
        &explorer,
        MemoryTechnology::Edram3T,
        &phases,
        &[Kelvin::LN2, Kelvin::REFERENCE],
    );
    assert_eq!(schedule.temperatures.len(), 3);
    assert!(schedule.total_energy.get() > 0.0);
    assert!(schedule.total_energy.get() <= schedule.best_fixed_energy.get() + 1e-9);
}

#[test]
fn capacity_is_conserved_through_the_stack() {
    // 16 MiB through ECC is 18 MiB of raw bits; the array must hold them.
    let explorer = Explorer::with_defaults();
    let array = explorer.characterize(&MemoryConfig::sram_350k());
    let raw_bits = array.organization.bits_per_subarray() as f64;
    let needed = Capacity::from_mebibytes(16).bits_f64() * 1.125;
    // Subarray count times subarray bits covers the ECC-padded capacity.
    let subarrays = (needed / raw_bits).ceil();
    assert!(subarrays >= 1.0);
    assert!(
        array.transfer_bits > 512.0,
        "ECC check bits must ride along: {}",
        array.transfer_bits
    );
}
