//! Property-based invariants across the stack (proptest).

use proptest::prelude::*;

use coldtall::array::{ArraySpec, Objective};
use coldtall::cachesim::{CacheConfig, SetAssociativeCache};
use coldtall::cell::{CellModel, MemoryTechnology, Tentpole};
use coldtall::cryo::CoolingSystem;
use coldtall::tech::{copper_resistivity_ratio, Mosfet, OperatingPoint, ProcessNode};
use coldtall::units::{Capacity, Kelvin, Watts};

fn node() -> ProcessNode {
    ProcessNode::ptm_22nm_hp()
}

fn any_tech() -> impl Strategy<Value = MemoryTechnology> {
    prop_oneof![
        Just(MemoryTechnology::Sram),
        Just(MemoryTechnology::Edram3T),
        Just(MemoryTechnology::Pcm),
        Just(MemoryTechnology::SttRam),
        Just(MemoryTechnology::Rram),
    ]
}

fn any_tentpole() -> impl Strategy<Value = Tentpole> {
    prop_oneof![Just(Tentpole::Optimistic), Just(Tentpole::Pessimistic)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn resistivity_monotone_and_positive(t in 60.0f64..400.0, dt in 1.0f64..50.0) {
        let lo = copper_resistivity_ratio(t);
        let hi = copper_resistivity_ratio(t + dt);
        prop_assert!(lo > 0.0);
        prop_assert!(hi >= lo);
    }

    #[test]
    fn device_leakage_monotone_in_temperature(t in 77.0f64..380.0, dt in 2.0f64..20.0) {
        let n = node();
        let dev = Mosfet::nmos(&n);
        let cold = dev.leakage_current_per_um(&OperatingPoint::nominal(&n, Kelvin::new(t)));
        let warm = dev.leakage_current_per_um(&OperatingPoint::nominal(&n, Kelvin::new(t + dt)));
        prop_assert!(warm.get() >= cold.get());
    }

    #[test]
    fn cell_leakage_never_negative(tech in any_tech(), tentpole in any_tentpole(), t in 77.0f64..400.0) {
        let n = node();
        let cell = CellModel::tentpole(tech, tentpole, &n);
        let op = OperatingPoint::cryo_optimized(&n, Kelvin::new(t));
        prop_assert!(cell.leakage_power(&n, &op).get() >= 0.0);
    }

    #[test]
    fn array_metrics_positive_for_any_study_point(
        tech in any_tech(),
        tentpole in any_tentpole(),
        dies_idx in 0usize..4,
        t in 77.0f64..390.0,
    ) {
        let dies = [1u8, 2, 4, 8][dies_idx];
        let n = node();
        let cell = CellModel::tentpole(tech, tentpole, &n);
        let mut spec = ArraySpec::llc_16mib(cell, &n);
        if dies > 1 {
            spec = spec.with_dies(dies);
        }
        let a = spec
            .at_temperature_cryo(Kelvin::new(t))
            .characterize(Objective::EnergyDelayProduct);
        prop_assert!(a.read_latency.get() > 0.0);
        prop_assert!(a.write_latency.get() > 0.0);
        prop_assert!(a.read_energy.get() > 0.0);
        prop_assert!(a.write_energy.get() > 0.0);
        prop_assert!(a.leakage_power.get() >= 0.0);
        prop_assert!(a.footprint.get() > 0.0);
        prop_assert!(a.array_efficiency > 0.0 && a.array_efficiency < 1.0);
        prop_assert!(a.write_energy >= a.read_energy * 0.5);
    }

    #[test]
    fn area_monotone_in_capacity(mib_small in 1u64..8, factor in 2u64..4) {
        let n = node();
        let small = ArraySpec::new(
            CellModel::sram(&n), &n, Capacity::from_mebibytes(mib_small),
        ).characterize(Objective::EnergyDelayProduct);
        let large = ArraySpec::new(
            CellModel::sram(&n), &n, Capacity::from_mebibytes(mib_small * factor),
        ).characterize(Objective::EnergyDelayProduct);
        prop_assert!(large.footprint.get() > small.footprint.get());
        prop_assert!(large.leakage_power.get() > small.leakage_power.get());
    }

    #[test]
    fn stacking_never_grows_the_footprint(tech in any_tech(), tentpole in any_tentpole()) {
        let n = node();
        let cell = CellModel::tentpole(tech, tentpole, &n);
        let one = ArraySpec::llc_16mib(cell.clone(), &n)
            .characterize(Objective::EnergyDelayProduct);
        let eight = ArraySpec::llc_16mib(cell, &n)
            .with_dies(8)
            .characterize(Objective::EnergyDelayProduct);
        prop_assert!(eight.footprint.get() <= one.footprint.get());
    }

    #[test]
    fn cooling_overhead_is_carnot_shaped(p in 0.0f64..100.0, t in 60.0f64..400.0) {
        let power = Watts::new(p);
        for cooling in CoolingSystem::ALL {
            let wall = cooling.wall_power(power, Kelvin::new(t));
            prop_assert!(wall.get() >= p);
            if t >= 300.0 {
                prop_assert!((wall.get() - p).abs() < 1e-12);
            }
            if t <= 77.0 && p > 0.0 {
                prop_assert!(wall.get() >= p * (1.0 + cooling.overhead_factor()));
            }
        }
    }

    #[test]
    fn cache_hits_after_fill_regardless_of_geometry(
        ways_pow in 0u32..4,
        sets_pow in 2u32..6,
        addr in 0u64..1_000_000_000,
    ) {
        let ways = 1u32 << ways_pow;
        let sets = 1u64 << sets_pow;
        let capacity = Capacity::from_bytes(sets * u64::from(ways) * 64);
        let mut cache = SetAssociativeCache::new(CacheConfig::new(capacity, ways, 64));
        cache.access(addr, false);
        prop_assert!(cache.access(addr, false).is_hit());
        prop_assert!(cache.contains(addr));
    }

    #[test]
    fn cache_occupancy_never_exceeds_capacity(
        accesses in proptest::collection::vec((0u64..1_000_000, any::<bool>()), 1..500),
    ) {
        let capacity = Capacity::from_bytes(4 * 64 * 8);
        let mut cache = SetAssociativeCache::new(CacheConfig::new(capacity, 4, 64));
        let mut distinct = std::collections::HashSet::new();
        for (addr, is_write) in accesses {
            cache.access(addr, is_write);
            distinct.insert(addr / 64);
        }
        // Lines still resident can never exceed total line slots.
        let resident = distinct
            .iter()
            .filter(|line| cache.contains(**line * 64))
            .count() as u64;
        prop_assert!(resident <= capacity.bytes() / 64);
    }

    #[test]
    fn lru_recency_is_respected(tag_count in 3u64..10) {
        // One-set cache of 2 ways: after touching tags 0..n in order,
        // only the last two survive.
        let capacity = Capacity::from_bytes(2 * 64);
        let mut cache = SetAssociativeCache::new(CacheConfig::new(capacity, 2, 64));
        for tag in 0..tag_count {
            cache.access(tag * 64, false);
        }
        prop_assert!(cache.contains((tag_count - 1) * 64));
        prop_assert!(cache.contains((tag_count - 2) * 64));
        prop_assert!(!cache.contains((tag_count - 3) * 64));
    }

    #[test]
    fn tentpole_optimism_dominates_at_array_level(tech_idx in 0usize..3, dies_idx in 0usize..4) {
        let tech = MemoryTechnology::ENVM_SET[tech_idx];
        let dies = [1u8, 2, 4, 8][dies_idx];
        let n = node();
        let build = |tp| {
            let mut spec = ArraySpec::llc_16mib(CellModel::tentpole(tech, tp, &n), &n);
            if dies > 1 {
                spec = spec.with_dies(dies);
            }
            spec.characterize(Objective::EnergyDelayProduct)
        };
        let opt = build(Tentpole::Optimistic);
        let pess = build(Tentpole::Pessimistic);
        prop_assert!(opt.read_latency <= pess.read_latency);
        prop_assert!(opt.write_latency <= pess.write_latency);
        prop_assert!(opt.read_energy <= pess.read_energy);
        prop_assert!(opt.write_energy <= pess.write_energy);
        prop_assert!(opt.footprint.get() <= pess.footprint.get());
    }
}
