//! Property-style invariants across the stack.
//!
//! Formerly proptest-driven; the offline workspace carries no external
//! crates, so each property now runs over a deterministic grid plus a
//! seeded sample from `coldtall-rng` — same invariants, reproducible
//! cases, zero dependencies.

use coldtall::array::{ArraySpec, Objective};
use coldtall::cachesim::{CacheConfig, SetAssociativeCache};
use coldtall::cell::{CellModel, MemoryTechnology, Tentpole};
use coldtall::cryo::CoolingSystem;
use coldtall::tech::{copper_resistivity_ratio, Mosfet, OperatingPoint, ProcessNode};
use coldtall::units::{Capacity, Kelvin, Watts};
use coldtall_rng::SmallRng;

fn node() -> ProcessNode {
    ProcessNode::ptm_22nm_hp()
}

const ALL_TECHS: [MemoryTechnology; 5] = [
    MemoryTechnology::Sram,
    MemoryTechnology::Edram3T,
    MemoryTechnology::Pcm,
    MemoryTechnology::SttRam,
    MemoryTechnology::Rram,
];

const BOTH_TENTPOLES: [Tentpole; 2] = [Tentpole::Optimistic, Tentpole::Pessimistic];

/// Draws `n` samples uniformly from `lo..hi` with a fixed seed, so a
/// failure names a reproducible case.
fn uniform_samples(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| lo + rng.gen_f64() * (hi - lo)).collect()
}

#[test]
fn resistivity_monotone_and_positive() {
    for &t in &uniform_samples(1, 64, 60.0, 400.0) {
        for dt in [1.0, 10.0, 50.0] {
            let lo = copper_resistivity_ratio(t);
            let hi = copper_resistivity_ratio(t + dt);
            assert!(lo > 0.0, "ratio must be positive at {t} K");
            assert!(hi >= lo, "ratio must be monotone at {t} + {dt} K");
        }
    }
}

#[test]
fn device_leakage_monotone_in_temperature() {
    let n = node();
    let dev = Mosfet::nmos(&n);
    for &t in &uniform_samples(2, 64, 77.0, 380.0) {
        for dt in [2.0, 20.0] {
            let cold = dev.leakage_current_per_um(&OperatingPoint::nominal(&n, Kelvin::new(t)));
            let warm =
                dev.leakage_current_per_um(&OperatingPoint::nominal(&n, Kelvin::new(t + dt)));
            assert!(
                warm.get() >= cold.get(),
                "leakage not monotone at {t} + {dt} K"
            );
        }
    }
}

#[test]
fn cell_leakage_never_negative() {
    let n = node();
    for tech in ALL_TECHS {
        for tentpole in BOTH_TENTPOLES {
            let cell = CellModel::tentpole(tech, tentpole, &n);
            for &t in &uniform_samples(3, 16, 77.0, 400.0) {
                let op = OperatingPoint::cryo_optimized(&n, Kelvin::new(t));
                assert!(
                    cell.leakage_power(&n, &op).get() >= 0.0,
                    "negative leakage: {tech:?}/{tentpole:?} at {t} K"
                );
            }
        }
    }
}

#[test]
fn array_metrics_positive_for_any_study_point() {
    let n = node();
    let mut rng = SmallRng::seed_from_u64(4);
    for _ in 0..64 {
        let tech = ALL_TECHS[usize::try_from(rng.gen_range(0..5)).unwrap()];
        let tentpole = BOTH_TENTPOLES[usize::try_from(rng.gen_range(0..2)).unwrap()];
        let dies = [1u8, 2, 4, 8][usize::try_from(rng.gen_range(0..4)).unwrap()];
        let t = 77.0 + rng.gen_f64() * (390.0 - 77.0);
        let cell = CellModel::tentpole(tech, tentpole, &n);
        let mut spec = ArraySpec::llc_16mib(cell, &n);
        if dies > 1 {
            spec = spec.with_dies(dies);
        }
        let a = spec
            .at_temperature_cryo(Kelvin::new(t))
            .characterize(Objective::EnergyDelayProduct);
        let case = format!("{tech:?}/{tentpole:?}/{dies} dies at {t} K");
        assert!(a.read_latency.get() > 0.0, "read latency: {case}");
        assert!(a.write_latency.get() > 0.0, "write latency: {case}");
        assert!(a.read_energy.get() > 0.0, "read energy: {case}");
        assert!(a.write_energy.get() > 0.0, "write energy: {case}");
        assert!(a.leakage_power.get() >= 0.0, "leakage: {case}");
        assert!(a.footprint.get() > 0.0, "footprint: {case}");
        assert!(
            a.array_efficiency > 0.0 && a.array_efficiency < 1.0,
            "efficiency: {case}"
        );
        assert!(
            a.write_energy >= a.read_energy * 0.5,
            "energy order: {case}"
        );
    }
}

#[test]
fn area_monotone_in_capacity() {
    let n = node();
    for mib_small in 1u64..8 {
        for factor in [2u64, 3] {
            let small =
                ArraySpec::new(CellModel::sram(&n), &n, Capacity::from_mebibytes(mib_small))
                    .characterize(Objective::EnergyDelayProduct);
            let large = ArraySpec::new(
                CellModel::sram(&n),
                &n,
                Capacity::from_mebibytes(mib_small * factor),
            )
            .characterize(Objective::EnergyDelayProduct);
            assert!(
                large.footprint.get() > small.footprint.get(),
                "footprint at {mib_small} MiB x{factor}"
            );
            assert!(
                large.leakage_power.get() > small.leakage_power.get(),
                "leakage at {mib_small} MiB x{factor}"
            );
        }
    }
}

#[test]
fn stacking_never_grows_the_footprint() {
    let n = node();
    for tech in ALL_TECHS {
        for tentpole in BOTH_TENTPOLES {
            let cell = CellModel::tentpole(tech, tentpole, &n);
            let one =
                ArraySpec::llc_16mib(cell.clone(), &n).characterize(Objective::EnergyDelayProduct);
            let eight = ArraySpec::llc_16mib(cell, &n)
                .with_dies(8)
                .characterize(Objective::EnergyDelayProduct);
            assert!(
                eight.footprint.get() <= one.footprint.get(),
                "stacking grew footprint: {tech:?}/{tentpole:?}"
            );
        }
    }
}

#[test]
fn cooling_overhead_is_carnot_shaped() {
    let powers = uniform_samples(5, 16, 0.0, 100.0);
    let temps = uniform_samples(6, 16, 60.0, 400.0);
    for &p in &powers {
        for &t in &temps {
            let power = Watts::new(p);
            for cooling in CoolingSystem::ALL {
                let wall = cooling.wall_power(power, Kelvin::new(t));
                assert!(wall.get() >= p, "wall below device at {p} W, {t} K");
                if t >= 300.0 {
                    assert!(
                        (wall.get() - p).abs() < 1e-12,
                        "warm operation must be free at {t} K"
                    );
                }
                if t <= 77.0 && p > 0.0 {
                    assert!(
                        wall.get() >= p * (1.0 + cooling.overhead_factor()),
                        "cryo overhead too small at {p} W, {t} K"
                    );
                }
            }
        }
    }
}

#[test]
fn cache_hits_after_fill_regardless_of_geometry() {
    let mut rng = SmallRng::seed_from_u64(7);
    for ways_pow in 0u32..4 {
        for sets_pow in 2u32..6 {
            let ways = 1u32 << ways_pow;
            let sets = 1u64 << sets_pow;
            let capacity = Capacity::from_bytes(sets * u64::from(ways) * 64);
            let mut cache = SetAssociativeCache::new(CacheConfig::new(capacity, ways, 64));
            let addr = rng.gen_range(0..1_000_000_000);
            cache.access(addr, false);
            assert!(cache.access(addr, false).is_hit());
            assert!(cache.contains(addr));
        }
    }
}

#[test]
fn cache_occupancy_never_exceeds_capacity() {
    let mut rng = SmallRng::seed_from_u64(8);
    for trial in 0..24 {
        let len = usize::try_from(rng.gen_range(1..500)).unwrap();
        let accesses: Vec<(u64, bool)> = (0..len)
            .map(|_| (rng.gen_range(0..1_000_000), rng.gen_bool(0.5)))
            .collect();
        let capacity = Capacity::from_bytes(4 * 64 * 8);
        let mut cache = SetAssociativeCache::new(CacheConfig::new(capacity, 4, 64));
        let mut distinct = std::collections::HashSet::new();
        for &(addr, is_write) in &accesses {
            cache.access(addr, is_write);
            distinct.insert(addr / 64);
        }
        // Lines still resident can never exceed total line slots.
        let resident = distinct
            .iter()
            .filter(|line| cache.contains(**line * 64))
            .count() as u64;
        assert!(
            resident <= capacity.bytes() / 64,
            "over-occupancy in trial {trial}"
        );
    }
}

#[test]
fn lru_recency_is_respected() {
    for tag_count in 3u64..10 {
        // One-set cache of 2 ways: after touching tags 0..n in order,
        // only the last two survive.
        let capacity = Capacity::from_bytes(2 * 64);
        let mut cache = SetAssociativeCache::new(CacheConfig::new(capacity, 2, 64));
        for tag in 0..tag_count {
            cache.access(tag * 64, false);
        }
        assert!(cache.contains((tag_count - 1) * 64));
        assert!(cache.contains((tag_count - 2) * 64));
        assert!(!cache.contains((tag_count - 3) * 64));
    }
}

#[test]
fn tentpole_optimism_dominates_at_array_level() {
    let n = node();
    for tech in MemoryTechnology::ENVM_SET {
        for dies in [1u8, 2, 4, 8] {
            let build = |tp| {
                let mut spec = ArraySpec::llc_16mib(CellModel::tentpole(tech, tp, &n), &n);
                if dies > 1 {
                    spec = spec.with_dies(dies);
                }
                spec.characterize(Objective::EnergyDelayProduct)
            };
            let opt = build(Tentpole::Optimistic);
            let pess = build(Tentpole::Pessimistic);
            let case = format!("{tech:?} at {dies} dies");
            assert!(
                opt.read_latency <= pess.read_latency,
                "read latency: {case}"
            );
            assert!(
                opt.write_latency <= pess.write_latency,
                "write latency: {case}"
            );
            assert!(opt.read_energy <= pess.read_energy, "read energy: {case}");
            assert!(
                opt.write_energy <= pess.write_energy,
                "write energy: {case}"
            );
            assert!(
                opt.footprint.get() <= pess.footprint.get(),
                "footprint: {case}"
            );
        }
    }
}

/// The observability histogram must conserve its sample count: every
/// recorded value lands in exactly one log2 bucket, over a seeded
/// random stream spanning the full magnitude range.
#[test]
fn histogram_conserves_recorded_count_across_buckets() {
    let mut rng = SmallRng::seed_from_u64(41);
    let histogram = coldtall::obs::Histogram::new();
    let n = 4096;
    for _ in 0..n {
        // Exercise every bucket width: shift a 64-bit draw by a random
        // amount so magnitudes cover the whole range, including zero.
        let shift = rng.gen_range(0..64);
        histogram.record(rng.next_u64() >> shift);
    }
    assert_eq!(histogram.count(), n);
    assert_eq!(
        histogram.bucket_counts().iter().sum::<u64>(),
        n,
        "bucket totals must equal the recorded count"
    );
    let (p50, p95, p99) = (
        histogram.quantile(0.50),
        histogram.quantile(0.95),
        histogram.quantile(0.99),
    );
    assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
}

/// Merging two histograms must equal the histogram of the concatenated
/// sample streams — bucket-for-bucket, plus count/sum/min/max.
#[test]
fn histogram_merge_equals_concatenated_samples() {
    for seed in [7u64, 8, 9] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (left, right, concatenated) = (
            coldtall::obs::Histogram::new(),
            coldtall::obs::Histogram::new(),
            coldtall::obs::Histogram::new(),
        );
        for i in 0..1000 {
            let value = rng.next_u64() >> rng.gen_range(0..64);
            if i % 3 == 0 {
                left.record(value);
            } else {
                right.record(value);
            }
            concatenated.record(value);
        }
        left.merge_from(&right);
        assert_eq!(
            left.bucket_counts(),
            concatenated.bucket_counts(),
            "seed {seed}: merged buckets diverge from concatenation"
        );
        assert_eq!(left.count(), concatenated.count());
        assert_eq!(left.sum(), concatenated.sum());
        assert_eq!(left.min(), concatenated.min());
        assert_eq!(left.max(), concatenated.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(left.quantile(q), concatenated.quantile(q), "seed {seed}, q={q}");
        }
    }
}
