//! Integration tests of the parallel sweep engine: thread-safety of
//! the explorer, determinism of the parallel paths against their
//! sequential references, and the sharded characterization cache's
//! convergence under contention.

use coldtall::core::{pool, Explorer, MemoryConfig};
use coldtall::workloads::spec2017;

/// Compile-time proof the explorer can be shared across threads.
#[test]
fn explorer_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Explorer>();
}

/// The headline determinism contract: the parallel sweep over the full
/// study set x SPEC2017 cross-product is bit-identical, in identical
/// order, to the sequential reference sweep.
#[test]
fn par_sweep_matches_sequential_over_full_study() {
    // Force a multi-worker pool even on a 1-CPU machine, so the
    // determinism contract is exercised across real threads.
    pool::set_max_threads(4);
    let configs = MemoryConfig::study_set();
    let explorer = Explorer::with_defaults();
    let par = explorer.par_sweep_configs(&configs);
    let seq = explorer.sweep_configs_seq(&configs);
    pool::set_max_threads(0);
    assert_eq!(par.len(), configs.len() * spec2017().len());
    assert_eq!(par, seq, "parallel sweep diverged from sequential");
}

/// Determinism must also hold from a cold cache on each side (the
/// parallel path characterizes concurrently, the sequential one
/// on demand).
#[test]
fn cold_cache_sweeps_agree() {
    let configs = [
        MemoryConfig::sram_350k(),
        MemoryConfig::sram_77k(),
        MemoryConfig::edram_350k(),
        MemoryConfig::edram_77k(),
    ];
    let par = Explorer::with_defaults().par_sweep_configs(&configs);
    let seq = Explorer::with_defaults().sweep_configs_seq(&configs);
    assert_eq!(par, seq);
}

/// The default entry point must produce the same rows regardless of
/// which path it selects for this machine.
#[test]
fn default_sweep_is_path_independent() {
    let configs = [MemoryConfig::sram_350k(), MemoryConfig::edram_77k()];
    let explorer = Explorer::with_defaults();
    assert_eq!(
        explorer.sweep_configs(&configs),
        explorer.sweep_configs_seq(&configs)
    );
}

/// N OS threads hammer `characterize` on overlapping configurations:
/// the sharded cache must converge on exactly one entry per distinct
/// label, and every thread must observe equal characterizations.
#[test]
fn concurrent_characterize_smoke() {
    let explorer = Explorer::with_defaults();
    let configs = MemoryConfig::study_set();
    let distinct = configs.len();
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4 * distinct)
            .map(|i| {
                let (explorer, configs) = (&explorer, &configs);
                scope.spawn(move || explorer.characterize(&configs[i % configs.len()]))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    });
    assert_eq!(explorer.cached_characterizations(), distinct);
    for (i, result) in results.iter().enumerate() {
        assert_eq!(
            result,
            &explorer.characterize(&configs[i % configs.len()]),
            "thread {i} observed a divergent characterization"
        );
    }
}

/// The pool preserves output order no matter how work is stolen.
#[test]
fn pool_output_order_is_deterministic() {
    pool::set_max_threads(4);
    let expected: Vec<usize> = (0..997).map(|i| i * 31).collect();
    for _ in 0..8 {
        assert_eq!(pool::parallel_map(997, |i| i * 31), expected);
    }
    pool::set_max_threads(0);
}

/// The Monte-Carlo variation study (parallel inner loop) stays
/// deterministic per seed.
#[test]
fn parallel_monte_carlo_is_deterministic() {
    use coldtall::cell::MemoryTechnology;
    let a = coldtall::core::monte_carlo(MemoryTechnology::Pcm, 4, 12, 9);
    let b = coldtall::core::monte_carlo(MemoryTechnology::Pcm, 4, 12, 9);
    assert_eq!(a, b);
}
