//! Integration tests of the `coldtall` command-line tool.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_coldtall"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let (ok, out, _err) = run(&[]);
    assert!(!ok);
    assert!(out.contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let (ok, out, _) = run(&["help"]);
    assert!(ok);
    assert!(out.contains("characterize"));
}

#[test]
fn list_shows_suite_and_configs() {
    let (ok, out, _) = run(&["list"]);
    assert!(ok);
    assert!(out.contains("mcf"));
    assert!(out.contains("povray"));
    assert!(out.contains("77K 3T-eDRAM"));
}

#[test]
fn characterize_cryo_edram() {
    let (ok, out, _) = run(&["characterize", "--tech", "edram", "--temp", "77"]);
    assert!(ok);
    assert!(out.contains("77K 3T-eDRAM"));
    assert!(out.contains("read latency"));
}

#[test]
fn evaluate_stacked_pcm_on_mcf() {
    let (ok, out, _) = run(&[
        "evaluate", "--bench", "mcf", "--tech", "pcm", "--dies", "8",
    ]);
    assert!(ok);
    assert!(out.contains("8-die PCM"));
    assert!(out.contains("viable"));
}

#[test]
fn recommend_quiet_workload_goes_cryogenic() {
    let (ok, out, _) = run(&["recommend", "--bench", "povray"]);
    assert!(ok);
    assert!(out.contains("77K"), "povray recommendation: {out}");
}

#[test]
fn table2_prints_three_bands() {
    let (ok, out, _) = run(&["table2"]);
    assert!(ok);
    assert!(out.contains("<5e4"));
    assert!(out.contains(">8e6"));
}

#[test]
fn backends_command_lists_capabilities() {
    let (ok, out, _) = run(&["backends"]);
    assert!(ok);
    assert!(out.contains("cryomem"), "output: {out}");
    assert!(out.contains("destiny"), "output: {out}");
    assert!(out.contains("60-400 K"), "temperature span shown: {out}");
    assert!(out.contains("1/2/4/8"), "Destiny die counts shown: {out}");
    assert!(out.contains("priority"), "resolution priority shown: {out}");
    // CryoMEM outranks Destiny on their single-die SRAM overlap.
    let priority = |name: &str| -> i32 {
        out.lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .unwrap_or_else(|| panic!("no priority cell for {name}: {out}"))
            .parse()
            .unwrap()
    };
    assert!(priority("cryomem") > priority("destiny"), "output: {out}");
}

/// ISSUE 9: single-die SRAM is claimed by both default backends; the
/// priority policy resolves it to CryoMEM. A `--backend` pin never
/// overrides that policy — pinning the losing claimant exits 1, while
/// pinning the winner succeeds.
#[test]
fn backend_pin_on_the_overlap_point_asserts_the_policy_winner() {
    let (ok, out, _) = run(&["characterize", "--tech", "sram", "--backend", "cryomem"]);
    assert!(ok);
    assert!(out.contains("backend           : cryomem"), "output: {out}");

    let (ok, _, err) = run(&["characterize", "--tech", "sram", "--backend", "destiny"]);
    assert!(!ok);
    assert!(
        err.contains("does not serve") && err.contains("cryomem"),
        "stderr: {err}"
    );
}

#[test]
fn backend_pin_matches_and_mismatches() {
    // A correct pin succeeds and the resolved backend is reported.
    let (ok, out, _) = run(&["characterize", "--tech", "edram", "--temp", "77", "--backend", "cryomem"]);
    assert!(ok);
    assert!(out.contains("backend           : cryomem"), "output: {out}");

    // Without a pin, the resolved backend is still reported.
    let (ok, out, _) = run(&["characterize", "--tech", "pcm", "--dies", "4"]);
    assert!(ok);
    assert!(out.contains("backend           : destiny"), "output: {out}");

    // A pin that contradicts the registry's resolution is an error.
    let (ok, _, err) = run(&["characterize", "--tech", "pcm", "--backend", "cryomem"]);
    assert!(!ok);
    assert!(
        err.contains("does not serve") && err.contains("destiny"),
        "stderr: {err}"
    );

    // An unknown backend name is an error, not a silent default.
    let (ok, _, err) = run(&["evaluate", "--backend", "nvsim"]);
    assert!(!ok);
    assert!(err.contains("unknown backend 'nvsim'"), "stderr: {err}");
}

#[test]
fn bad_inputs_are_reported() {
    let (ok, _, err) = run(&["evaluate", "--bench", "doom"]);
    assert!(!ok);
    assert!(err.contains("unknown benchmark"));

    let (ok, _, err) = run(&["characterize", "--tech", "flash"]);
    assert!(!ok);
    assert!(err.contains("unknown technology"));

    let (ok, _, err) = run(&["characterize", "--dies", "3", "--tech", "pcm"]);
    assert!(!ok);
    assert!(err.contains("--dies"));

    let (ok, _, err) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

fn run_with_env(args: &[&str], envs: &[(&str, &str)]) -> (bool, String, String) {
    let mut command = Command::new(env!("CARGO_BIN_EXE_coldtall"));
    command.args(args);
    for (key, value) in envs {
        command.env(key, value);
    }
    let output = command.output().expect("binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn sweep_summarizes_the_full_study() {
    let (ok, out, _) = run(&["sweep"]);
    assert!(ok);
    assert!(out.contains("713 rows"), "sweep summary: {out}");
    assert!(out.contains("31 configurations x 23 benchmarks"));
    assert!(out.contains("77K 3T-eDRAM"));
}

#[test]
fn search_reports_the_frontier_and_work_avoidance() {
    let (ok, out, _) = run(&["search", "--objective", "power"]);
    assert!(ok);
    assert!(out.contains("frontier points over 713 rows"), "search summary: {out}");
    assert!(out.contains("skipped ("), "work-avoidance accounting: {out}");
    assert!(out.contains("best by power:"), "objective pick: {out}");
    // The study set holds a refresh-dead plane (350 K 3T-eDRAM), so
    // the search must report a nonzero skip count.
    assert!(
        !out.contains(" 0 skipped ("),
        "the search must provably skip points on the study set: {out}"
    );
}

#[test]
fn search_constraint_caps_parse_and_screen() {
    let (ok, out, _) = run(&[
        "search",
        "--max-latency",
        "1.0",
        "--max-area",
        "5",
        "--objective",
        "area",
    ]);
    assert!(ok);
    assert!(out.contains("best by area:"), "objective pick: {out}");
    assert!(
        !out.contains("3T-eDRAM"),
        "a 5 mm^2 area cap excludes the 7.54 mm^2 cryogenic eDRAM: {out}"
    );
}

/// The cryo-NVM quick-start from the README: search STT-RAM across
/// the 77-400 K ladder (ISSUE 9). The range form expands over every
/// study temperature inside the bounds.
#[test]
fn search_temps_range_walks_the_cryo_nvm_region() {
    let (ok, out, _) = run(&["search", "--tech", "stt-ram", "--temps", "77:400"]);
    assert!(ok);
    // 2 tentpoles x 4 die counts x 8 ladder temperatures x 23 benchmarks.
    assert!(
        out.contains("over 1472 rows"),
        "the full cryo-STT region searches: {out}"
    );
    assert!(out.contains("STT-RAM"), "frontier holds STT-RAM points: {out}");

    // A sub-range narrows the ladder: 77-130 K keeps 77 and 127 K only.
    let (ok, out, _) = run(&["search", "--tech", "stt-ram", "--temps", "77:130"]);
    assert!(ok);
    assert!(out.contains("over 368 rows"), "two ladder temperatures: {out}");

    // An inverted or out-of-span range is a typed error.
    let (ok, _, err) = run(&["search", "--temps", "300:100"]);
    assert!(!ok);
    assert!(err.contains("60 <= lo <= hi <= 400"), "stderr: {err}");

    // A range holding no ladder temperature names the ladder span.
    let (ok, _, err) = run(&["search", "--temps", "390:400"]);
    assert!(!ok);
    assert!(err.contains("no study temperature"), "stderr: {err}");
}

#[test]
fn search_rejects_bad_regions_objectives_and_flags() {
    // Unknown objective names are typed errors, not defaults.
    let (ok, _, err) = run(&["search", "--objective", "speed"]);
    assert!(!ok);
    assert!(err.contains("unknown objective 'speed'"), "stderr: {err}");

    // A region filter matching nothing is an empty-region error.
    let (ok, _, err) = run(&["search", "--tech", "edram", "--dies", "8"]);
    assert!(!ok);
    assert!(err.contains("contains no design points"), "stderr: {err}");

    // An infeasible-everywhere region is a clean error, not a panic
    // or an empty table.
    let (ok, _, err) = run(&["search", "--tech", "edram", "--temps", "350"]);
    assert!(!ok);
    assert!(err.contains("is feasible"), "stderr: {err}");

    // The strict option grammar applies: unknown flags, missing
    // values, duplicates, and stray positionals are all refused.
    let (ok, _, err) = run(&["search", "--objectiv", "power"]);
    assert!(!ok);
    assert!(err.contains("unknown option '--objectiv'"), "stderr: {err}");
    let (ok, _, err) = run(&["search", "--temps"]);
    assert!(!ok);
    assert!(err.contains("missing value for '--temps'"), "stderr: {err}");
    let (ok, _, err) = run(&["search", "--dies=2", "--dies", "4"]);
    assert!(!ok);
    assert!(err.contains("duplicate option '--dies'"), "stderr: {err}");
    let (ok, _, err) = run(&["search", "study"]);
    assert!(!ok);
    assert!(err.contains("unexpected argument 'study'"), "stderr: {err}");
}

#[test]
fn metrics_are_absent_by_default() {
    let (ok, _, err) = run(&["list"]);
    assert!(ok);
    assert!(err.is_empty(), "no telemetry without --metrics: {err}");
}

#[test]
fn metrics_text_reports_cache_pool_and_spans() {
    let (ok, out, err) = run(&["sweep", "--metrics"]);
    assert!(ok);
    assert!(out.contains("713 rows"), "command output still on stdout");
    for needle in ["cache.hits", "cache.misses", "pool.tasks", "# spans", "characterize"] {
        assert!(err.contains(needle), "metrics text misses {needle}: {err}");
    }
}

#[test]
fn metrics_json_is_parseable_with_required_keys() {
    let (ok, _, err) = run(&["sweep", "--metrics=json"]);
    assert!(ok);
    let parsed = coldtall::obs::json::parse(&err)
        .unwrap_or_else(|e| panic!("--metrics=json stderr is not valid JSON ({e}):\n{err}"));
    let counters = parsed.get("counters").expect("counters section");
    for key in ["cache.hits", "cache.misses", "cache.inserts", "pool.tasks", "sweep.rows"] {
        assert!(counters.get(key).is_some(), "counters missing {key}");
    }
    assert!(
        counters.get("cache.hits").unwrap().as_f64().unwrap() > 0.0,
        "a full sweep must hit the characterization cache"
    );
    let spans = parsed.get("spans").expect("spans section");
    for key in ["characterize", "evaluate", "sweep"] {
        assert!(spans.get(key).is_some(), "spans missing {key}");
    }
    assert!(parsed.get("gauges").is_some(), "gauges section present");
}

/// Regression (ISSUE 3): the old `flag()` scanner silently ignored a
/// trailing option with no value and skipped unknown options entirely,
/// so typos like `--benhc mcf` ran the default benchmark without a
/// word. Strict parsing reports each malformed form on stderr.
#[test]
fn malformed_options_are_rejected_not_ignored() {
    // Trailing option with no value.
    let (ok, _, err) = run(&["characterize", "--tech", "edram", "--temp"]);
    assert!(!ok);
    assert!(err.contains("missing value for '--temp'"), "stderr: {err}");

    // Option whose "value" is the next option.
    let (ok, _, err) = run(&["evaluate", "--bench", "--tech", "pcm"]);
    assert!(!ok);
    assert!(err.contains("missing value for '--bench'"), "stderr: {err}");

    // Misspelled option names must not fall through to defaults.
    let (ok, _, err) = run(&["evaluate", "--benhc", "mcf"]);
    assert!(!ok);
    assert!(err.contains("unknown option '--benhc'"), "stderr: {err}");

    // Options valid for one command are rejected on another.
    let (ok, _, err) = run(&["recommend", "--tech", "pcm"]);
    assert!(!ok);
    assert!(err.contains("unknown option '--tech'"), "stderr: {err}");

    // Stray positional arguments are errors, not noise.
    let (ok, _, err) = run(&["list", "extra"]);
    assert!(!ok);
    assert!(err.contains("unexpected argument 'extra'"), "stderr: {err}");

    // Repeating an option is ambiguous, so it is refused.
    let (ok, _, err) = run(&["characterize", "--temp", "77", "--temp", "300"]);
    assert!(!ok);
    assert!(err.contains("duplicate option '--temp'"), "stderr: {err}");
}

/// `--key=value` parses identically to `--key value`.
#[test]
fn equals_form_options_are_accepted() {
    let (ok, out, _) = run(&["characterize", "--tech=edram", "--temp=77"]);
    assert!(ok);
    assert!(out.contains("77K 3T-eDRAM"));

    let (ok2, out2, _) = run(&["evaluate", "--bench=mcf", "--tech=pcm", "--dies=8"]);
    assert!(ok2);
    assert!(out2.contains("8-die PCM"));
}

/// Regression (ISSUE 3): an invalid `COLDTALL_THREADS` used to be
/// silently replaced by auto-detection. The run must still succeed,
/// but a one-time warning now lands on stderr.
#[test]
fn invalid_threads_env_warns_once_and_falls_back() {
    for bad in ["abc", "0", "-2", "1.5"] {
        let (ok, out, err) = run_with_env(&["sweep"], &[("COLDTALL_THREADS", bad)]);
        assert!(ok, "sweep must survive COLDTALL_THREADS={bad}");
        assert!(out.contains("713 rows"), "results unaffected by bad env");
        assert!(
            err.contains("ignoring invalid COLDTALL_THREADS"),
            "COLDTALL_THREADS={bad} must warn on stderr, got: {err}"
        );
        assert_eq!(
            err.matches("ignoring invalid COLDTALL_THREADS").count(),
            1,
            "warning must fire exactly once per process"
        );
    }
}

/// A valid thread override stays silent (stderr is reserved for
/// diagnostics, and there is nothing to diagnose).
#[test]
fn valid_threads_env_is_silent() {
    let (ok, _, err) = run_with_env(&["sweep"], &[("COLDTALL_THREADS", "2")]);
    assert!(ok);
    assert!(err.is_empty(), "no warning for a valid override: {err}");
}

/// The acceptance contract of the observability layer: exported
/// counter values are bit-identical between a sequential run and a
/// 4-thread run of the same full-study sweep. (Gauges and span
/// timings are explicitly run-dependent and excluded.)
#[test]
fn metrics_counters_identical_across_thread_counts() {
    let (ok1, _, err1) = run_with_env(&["sweep", "--metrics=json"], &[("COLDTALL_THREADS", "1")]);
    let (ok4, _, err4) = run_with_env(&["sweep", "--metrics=json"], &[("COLDTALL_THREADS", "4")]);
    assert!(ok1 && ok4);
    let counters1 = coldtall::obs::json::parse(&err1)
        .expect("1-thread metrics parse")
        .get("counters")
        .cloned()
        .expect("counters section");
    let counters4 = coldtall::obs::json::parse(&err4)
        .expect("4-thread metrics parse")
        .get("counters")
        .cloned()
        .expect("counters section");
    assert_eq!(
        counters1, counters4,
        "counters must be deterministic under any thread count"
    );
}

/// Regression (ISSUE 8): `coldtall sweep | head -1` used to panic with
/// "failed printing to stdout: Broken pipe" because Rust ignores
/// `SIGPIPE` and `println!` turns `EPIPE` into a panic. The consumer
/// hanging up early is a satisfied consumer: the command must exit 0
/// with no panic, and skip the `--metrics` report (nobody is
/// listening to the pipeline anymore).
#[test]
fn sweep_into_closed_pipe_exits_cleanly() {
    use std::process::Stdio;
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_coldtall"))
        .args(["sweep", "--metrics"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    // Close the read end before the child produces output: every write
    // it attempts from then on fails with EPIPE.
    drop(child.stdout.take());
    let output = child.wait_with_output().expect("child exits");
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "a broken pipe must exit 0, got {:?}; stderr: {err}",
        output.status
    );
    assert!(!err.contains("panicked"), "no panic on EPIPE: {err}");
    assert!(
        !err.contains("cache."),
        "metrics are skipped once the consumer is gone: {err}"
    );
}
