//! Integration tests of the `coldtall` command-line tool.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_coldtall"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let (ok, out, _err) = run(&[]);
    assert!(!ok);
    assert!(out.contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let (ok, out, _) = run(&["help"]);
    assert!(ok);
    assert!(out.contains("characterize"));
}

#[test]
fn list_shows_suite_and_configs() {
    let (ok, out, _) = run(&["list"]);
    assert!(ok);
    assert!(out.contains("mcf"));
    assert!(out.contains("povray"));
    assert!(out.contains("77K 3T-eDRAM"));
}

#[test]
fn characterize_cryo_edram() {
    let (ok, out, _) = run(&["characterize", "--tech", "edram", "--temp", "77"]);
    assert!(ok);
    assert!(out.contains("77K 3T-eDRAM"));
    assert!(out.contains("read latency"));
}

#[test]
fn evaluate_stacked_pcm_on_mcf() {
    let (ok, out, _) = run(&[
        "evaluate", "--bench", "mcf", "--tech", "pcm", "--dies", "8",
    ]);
    assert!(ok);
    assert!(out.contains("8-die PCM"));
    assert!(out.contains("viable"));
}

#[test]
fn recommend_quiet_workload_goes_cryogenic() {
    let (ok, out, _) = run(&["recommend", "--bench", "povray"]);
    assert!(ok);
    assert!(out.contains("77K"), "povray recommendation: {out}");
}

#[test]
fn table2_prints_three_bands() {
    let (ok, out, _) = run(&["table2"]);
    assert!(ok);
    assert!(out.contains("<5e4"));
    assert!(out.contains(">8e6"));
}

#[test]
fn bad_inputs_are_reported() {
    let (ok, _, err) = run(&["evaluate", "--bench", "doom"]);
    assert!(!ok);
    assert!(err.contains("unknown benchmark"));

    let (ok, _, err) = run(&["characterize", "--tech", "flash"]);
    assert!(!ok);
    assert!(err.contains("unknown technology"));

    let (ok, _, err) = run(&["characterize", "--dies", "3", "--tech", "pcm"]);
    assert!(!ok);
    assert!(err.contains("--dies"));

    let (ok, _, err) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}
