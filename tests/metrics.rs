//! Metric-invariant tests of the observability layer.
//!
//! Each test observes a *private* `Registry`, so assertions cannot be
//! perturbed by other tests of this binary (or the pool's telemetry,
//! which feeds the process-global registry) running concurrently.
//! The invariants under test are the ones `DESIGN.md` § Observability
//! promises:
//!
//! * every characterization call is counted as exactly one cache hit
//!   or one cache miss,
//! * counter values are identical between sequential and parallel runs
//!   of the same sweep (the determinism contract extends from rows to
//!   telemetry),
//! * histogram quantile estimates are monotone,
//! * `Registry::reset` returns every metric to zero without breaking
//!   live handles.

use std::sync::{Mutex, PoisonError};

use coldtall::array::Objective;
use coldtall::core::{pool, Explorer, MemoryConfig};
use coldtall::obs::Registry;
use coldtall::tech::ProcessNode;

/// Tests that force a pool width share the process-global override.
static POOL_LOCK: Mutex<()> = Mutex::new(());

fn observed_explorer(registry: &Registry) -> Explorer {
    Explorer::with_registry(
        ProcessNode::ptm_22nm_hp(),
        Objective::EnergyDelayProduct,
        registry,
    )
}

fn small_config_set() -> Vec<MemoryConfig> {
    vec![
        MemoryConfig::sram_350k(),
        MemoryConfig::sram_77k(),
        MemoryConfig::edram_350k(),
        MemoryConfig::edram_77k(),
    ]
}

#[test]
fn hits_plus_misses_equals_characterization_calls() {
    let registry = Registry::new();
    let explorer = observed_explorer(&registry);
    let configs = small_config_set();
    let _ = explorer.sweep_configs(&configs);
    // A second sweep re-probes everything as hits; the identity must
    // keep holding.
    let _ = explorer.sweep_configs(&configs);

    let hits = registry.counter_value("cache.hits").expect("hits registered");
    let misses = registry.counter_value("cache.misses").expect("misses registered");
    let calls = registry
        .counter_value("explorer.characterize.calls")
        .expect("calls registered");
    assert_eq!(hits + misses, calls, "every probe is one hit or one miss");
    // Each of the 4 distinct configurations missed exactly once, ever.
    assert_eq!(misses, 4);
    assert_eq!(registry.counter_value("cache.inserts"), Some(4));
}

#[test]
fn counters_identical_between_sequential_and_parallel_sweeps() {
    let configs = small_config_set();

    let seq_registry = Registry::new();
    let seq_rows = observed_explorer(&seq_registry).sweep_configs_seq(&configs);

    // Force real workers for the parallel side, so the contract is
    // exercised across threads even on a 1-CPU host.
    let par_registry = Registry::new();
    let par_rows = {
        let _lock = POOL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        pool::set_max_threads(4);
        let rows = observed_explorer(&par_registry).par_sweep_configs(&configs);
        pool::set_max_threads(0);
        rows
    };

    assert_eq!(seq_rows, par_rows, "rows must not depend on the path");
    assert_eq!(
        seq_registry.counters(),
        par_registry.counters(),
        "every exported counter must be identical between sequential \
         and parallel runs"
    );
    let hits = seq_registry.counter_value("cache.hits").unwrap();
    assert_eq!(
        hits,
        configs.len() as u64,
        "the batched evaluation kernel probes once per configuration \
         plane (not once per row), and after the job-phase warmup every \
         plane probe is a hit"
    );
}

/// Per-backend dispatch counters: every characterization that misses
/// the cache (plus the constructor's eager baseline) lands on exactly
/// one backend's `backend.<name>.characterizations` counter, and the
/// tallies are as deterministic as every other counter.
#[test]
fn backend_counters_attribute_every_dispatch() {
    let registry = Registry::new();
    let explorer = observed_explorer(&registry);
    // The small set is all single-die volatile: everything routes to
    // CryoMEM, and Destiny's counter registers but never moves.
    let _ = explorer.sweep_configs(&small_config_set());
    let misses = registry.counter_value("cache.misses").unwrap();
    let cryomem = registry
        .counter_value("backend.cryomem.characterizations")
        .expect("cryomem counter registered");
    assert_eq!(
        cryomem,
        misses + 1,
        "one dispatch per miss, plus the constructor's eager baseline"
    );
    assert_eq!(
        registry.counter_value("backend.destiny.characterizations"),
        Some(0),
        "no eNVM or stacked point in this sweep"
    );

    // A stacked point moves Destiny's counter without touching CryoMEM's.
    let stacked = MemoryConfig::envm_3d(
        coldtall::cell::MemoryTechnology::Pcm,
        coldtall::cell::Tentpole::Optimistic,
        4,
    );
    let _ = explorer.characterize(&stacked);
    assert_eq!(
        registry.counter_value("backend.destiny.characterizations"),
        Some(1)
    );
    assert_eq!(
        registry.counter_value("backend.cryomem.characterizations"),
        Some(cryomem)
    );
}

/// The backend counters obey the same thread-count determinism contract
/// as the rest of the telemetry (they are part of
/// `Registry::counters`, so this also rides on
/// `counters_identical_between_sequential_and_parallel_sweeps`; the
/// explicit check documents the per-backend guarantee).
#[test]
fn backend_counters_identical_between_sequential_and_parallel_sweeps() {
    let configs = small_config_set();
    let seq_registry = Registry::new();
    let _ = observed_explorer(&seq_registry).sweep_configs_seq(&configs);
    let par_registry = Registry::new();
    {
        let _lock = POOL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        pool::set_max_threads(4);
        let _ = observed_explorer(&par_registry).par_sweep_configs(&configs);
        pool::set_max_threads(0);
    }
    for name in [
        "backend.cryomem.characterizations",
        "backend.destiny.characterizations",
    ] {
        assert_eq!(
            seq_registry.counter_value(name),
            par_registry.counter_value(name),
            "{name} must not depend on the pool width"
        );
    }
}

#[test]
fn characterization_span_counts_only_real_work() {
    let registry = Registry::new();
    let explorer = observed_explorer(&registry);
    let configs = small_config_set();
    let _ = explorer.sweep_configs(&configs);
    let span = registry.span("characterize");
    assert_eq!(
        span.count(),
        registry
            .counter_value("explorer.characterize.dispatches")
            .unwrap(),
        "one characterize span per real dispatch (memoized calls are \
         not timed; the batched paths time one sample per batch)"
    );
    assert!(
        span.count() <= registry.counter_value("cache.misses").unwrap(),
        "dispatches never exceed misses"
    );
    // The batched kernel takes one `evaluate` span sample per
    // configuration plane (`sweep.configs`), while `evaluate.calls`
    // still counts logical per-row evaluations (`sweep.rows`).
    assert_eq!(
        registry.span("evaluate").count(),
        registry.counter_value("sweep.configs").unwrap()
    );
    assert_eq!(
        registry.counter_value("explorer.evaluate.calls").unwrap(),
        registry.counter_value("sweep.rows").unwrap()
    );
    assert_eq!(registry.span("sweep").count(), 1);
}

#[test]
fn histogram_quantiles_are_monotone() {
    let registry = Registry::new();
    let explorer = observed_explorer(&registry);
    let _ = explorer.sweep_configs(&small_config_set());
    for name in ["characterize", "evaluate", "sweep"] {
        let span = registry.span(name);
        let (p50, p95, p99) = (span.quantile(0.50), span.quantile(0.95), span.quantile(0.99));
        assert!(
            p50 <= p95 && p95 <= p99,
            "span '{name}': p50={p50} p95={p95} p99={p99} not monotone"
        );
        assert!(span.quantile(1.0) >= span.max() / 2, "upper bound brackets max");
    }
}

#[test]
fn reset_zeroes_every_counter_gauge_and_span() {
    let registry = Registry::new();
    let explorer = observed_explorer(&registry);
    let _ = explorer.sweep_configs(&small_config_set());
    assert!(registry.counter_value("cache.hits").unwrap() > 0);

    registry.reset();
    for (name, value) in registry.counters() {
        assert_eq!(value, 0, "counter '{name}' survived reset");
    }
    for (name, value) in registry.gauges() {
        assert_eq!(value, 0, "gauge '{name}' survived reset");
    }
    for name in ["characterize", "evaluate", "sweep"] {
        assert_eq!(registry.span(name).count(), 0, "span '{name}' survived reset");
    }

    // Live handles keep working after a reset.
    let _ = explorer.evaluate(
        &MemoryConfig::sram_350k(),
        coldtall::workloads::benchmark("namd").unwrap(),
    );
    assert_eq!(registry.counter_value("cache.hits"), Some(1));
}
