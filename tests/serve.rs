//! Integration tests of `coldtall serve`: the daemon binary end to
//! end, over TCP and stdin, with the persistent run registry.
//!
//! The acceptance contract pinned here:
//!
//! * concurrent TCP clients receive responses *bit-identical* to what
//!   the library's own [`RequestHandler`] renders for the same request
//!   (server and test share the wire renderer, and the engine is
//!   deterministic across processes and thread counts);
//! * a registry written by a 4-thread daemon replays into a 1-thread
//!   daemon whose sweep answer is byte-identical, with a warm cache
//!   (nonzero hits) to show no re-solving happened;
//! * corrupt or truncated registry lines are counted and skipped,
//!   never fatal;
//! * stdin EOF drains in-flight work and exits 0 without dropping
//!   registry records (the file ends on a complete line).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use coldtall::core::{Explorer, RequestHandler};
use coldtall::obs::json::{self, Value};
use coldtall::serve::{parse_request, render_response};

/// A running `coldtall serve` subprocess with its ready-line fields.
struct Daemon {
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: BufReader<ChildStdout>,
    addr: Option<String>,
    replayed: u64,
    skipped: u64,
}

impl Daemon {
    fn start(args: &[&str], envs: &[(&str, &str)]) -> Self {
        let mut command = Command::new(env!("CARGO_BIN_EXE_coldtall"));
        command
            .arg("serve")
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        for (key, value) in envs {
            command.env(key, value);
        }
        let mut child = command.spawn().expect("daemon spawns");
        let stdin = child.stdin.take();
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut ready = String::new();
        stdout.read_line(&mut ready).expect("ready line");
        let ready = json::parse(ready.trim()).expect("ready line is JSON");
        assert_eq!(
            ready.get("event"),
            Some(&Value::String("ready".to_string())),
            "first stdout line announces readiness"
        );
        let addr = match ready.get("addr") {
            Some(Value::String(addr)) => Some(addr.clone()),
            _ => None,
        };
        let field = |name: &str| {
            ready
                .get(name)
                .and_then(Value::as_f64)
                .expect("ready-line count") as u64
        };
        Self {
            child,
            stdin,
            stdout,
            addr,
            replayed: field("replayed"),
            skipped: field("skipped"),
        }
    }

    /// Sends one request line over stdin and reads one response line.
    fn request(&mut self, line: &str) -> String {
        let stdin = self.stdin.as_mut().expect("stdin open");
        writeln!(stdin, "{line}").expect("request written");
        stdin.flush().expect("request flushed");
        let mut response = String::new();
        self.stdout.read_line(&mut response).expect("response line");
        response.trim_end().to_string()
    }

    /// Closes stdin (the graceful-shutdown trigger) and waits for a
    /// clean exit.
    fn shutdown(mut self) {
        drop(self.stdin.take());
        let status = self.child.wait().expect("daemon exits");
        assert!(status.success(), "drain must exit 0, got {status:?}");
    }
}

fn temp_registry(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("coldtall-serve-{tag}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// What the library itself renders for a request line — the expected
/// bytes for the daemon's response to the same line.
fn expected_response(handler: &RequestHandler, line: &str) -> String {
    let parsed = parse_request(line).expect("test request parses");
    assert!(parsed.deadline_ms.is_none(), "keep expected-path simple");
    let outcome = handler.handle(&parsed.request);
    render_response(parsed.request.kind(), parsed.id.as_deref(), &outcome)
}

#[test]
fn concurrent_tcp_clients_get_bit_identical_responses() {
    let requests: Vec<String> = [
        r#"{"cmd":"characterize","id":"a"}"#,
        r#"{"cmd":"characterize","tech":"edram","temp":77,"id":"b"}"#,
        r#"{"cmd":"characterize","tech":"pcm","dies":4,"id":"c"}"#,
        r#"{"cmd":"characterize","tech":"pcm","tentpole":"pess","dies":8,"id":"d"}"#,
        r#"{"cmd":"characterize","tech":"stt","dies":2,"id":"e"}"#,
        // The cryo-NVM region (ISSUE 9): Δ(T) STT-MRAM at 77 K.
        r#"{"cmd":"characterize","tech":"stt-ram","temp":77,"dies":4,"id":"e2"}"#,
        r#"{"cmd":"characterize","tech":"rram","dies":8,"id":"f"}"#,
        r#"{"cmd":"evaluate","tech":"edram","temp":77,"bench":"mcf","id":"g"}"#,
        r#"{"cmd":"evaluate","tech":"pcm","dies":8,"bench":"namd","id":"h"}"#,
        // A typed error must also round-trip identically.
        r#"{"cmd":"evaluate","bench":"doom","id":"i"}"#,
    ]
    .iter()
    .map(ToString::to_string)
    .collect();

    // The library's own answers, rendered through the shared renderer.
    let metrics = coldtall::obs::Registry::new();
    let handler = RequestHandler::new(
        Explorer::with_registry(
            coldtall::tech::ProcessNode::ptm_22nm_hp(),
            coldtall::array::Objective::EnergyDelayProduct,
            &metrics,
        ),
        &metrics,
        None,
    );
    let expected: Vec<String> = requests
        .iter()
        .map(|line| expected_response(&handler, line))
        .collect();

    let daemon = Daemon::start(&["--listen", "127.0.0.1:0"], &[]);
    let addr = daemon.addr.clone().expect("daemon listens");

    // One client thread per request, all in flight together.
    let results: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|line| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(&addr).expect("client connects");
                    writeln!(stream, "{line}").expect("request sent");
                    stream.flush().expect("request flushed");
                    let mut reader = BufReader::new(stream);
                    let mut response = String::new();
                    reader.read_line(&mut response).expect("response read");
                    response.trim_end().to_string()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    assert!(requests.len() >= 8, "the contract covers >= 8 concurrent clients");
    for ((line, got), want) in requests.iter().zip(&results).zip(&expected) {
        assert_eq!(got, want, "served bytes differ from library bytes for {line}");
    }
    daemon.shutdown();
}

#[test]
fn stdin_requests_drain_and_persist_the_registry() {
    let registry = temp_registry("drain");
    let mut daemon = Daemon::start(
        &["--registry", registry.to_str().unwrap()],
        &[("COLDTALL_THREADS", "2")],
    );
    assert_eq!(daemon.replayed, 0, "fresh registry has nothing to replay");

    let response = daemon.request(r#"{"cmd":"characterize","tech":"pcm","dies":4,"id":1}"#);
    let parsed = json::parse(&response).expect("response is JSON");
    assert_eq!(parsed.get("ok"), Some(&Value::Bool(true)), "{response}");

    // A cryogenic STT-MRAM point characterizes end-to-end through the
    // serve path and lands in the registry like any other point.
    let response =
        daemon.request(r#"{"cmd":"characterize","tech":"stt-ram","temp":77,"dies":4,"id":2}"#);
    let parsed = json::parse(&response).expect("cryo-STT response is JSON");
    assert_eq!(parsed.get("ok"), Some(&Value::Bool(true)), "{response}");

    let status = daemon.request(r#"{"cmd":"status"}"#);
    let parsed = json::parse(&status).expect("status is JSON");
    let served = parsed
        .get("result")
        .and_then(|r| r.get("requests_served"))
        .and_then(Value::as_f64)
        .expect("requests_served");
    assert!(served >= 2.0, "both requests counted: {status}");

    daemon.shutdown();

    // EOF-drain must leave a complete, parseable registry: every line
    // valid JSON, file ending on a newline (no truncated final record).
    let contents = std::fs::read_to_string(&registry).expect("registry written");
    assert!(contents.ends_with('\n'), "no truncated final record");
    let lines: Vec<&str> = contents.lines().collect();
    assert!(lines.len() >= 2, "both characterizations were recorded");
    for line in &lines {
        let record = json::parse(line).expect("registry line is JSON");
        assert_eq!(record.get("schema").and_then(Value::as_f64), Some(2.0));
        // Schema v2: every record carries the resolved backend.
        assert_eq!(
            record.get("backend"),
            Some(&Value::String("destiny".to_string())),
            "both points route to Destiny: {line}"
        );
    }
    // The cryo-STT point's key is in there, at its 77 K bit pattern.
    assert!(
        contents.contains("STT-RAM|optimistic|d4|t4053400000000000"),
        "cryo-STT key recorded: {contents}"
    );
    let _ = std::fs::remove_file(&registry);
}

#[test]
fn registry_replay_warms_a_fresh_daemon_bit_identically() {
    let registry = temp_registry("replay");
    let sweep_request = r#"{"cmd":"sweep","id":"s"}"#;

    // Pass 1: a 4-thread daemon computes the full study sweep cold.
    let mut hot = Daemon::start(
        &["--registry", registry.to_str().unwrap()],
        &[("COLDTALL_THREADS", "4")],
    );
    let hot_sweep = hot.request(sweep_request);
    hot.shutdown();
    assert!(
        json::parse(&hot_sweep).is_ok(),
        "sweep response parses: {}",
        &hot_sweep[..hot_sweep.len().min(200)]
    );

    // Pass 2: a 1-thread daemon replays the registry...
    let mut cold = Daemon::start(
        &["--registry", registry.to_str().unwrap()],
        &[("COLDTALL_THREADS", "1")],
    );
    assert!(
        cold.replayed >= 31,
        "the study's characterizations replay at startup, got {}",
        cold.replayed
    );
    assert_eq!(cold.skipped, 0, "a clean registry skips nothing");

    // ...answers the same sweep byte-identically...
    let cold_sweep = cold.request(sweep_request);
    assert_eq!(
        hot_sweep, cold_sweep,
        "4-thread-written / 1-thread-replayed sweeps must be bit-identical"
    );

    // ...and did so from the warm cache, not by re-solving.
    let status = cold.request(r#"{"cmd":"status"}"#);
    let parsed = json::parse(&status).expect("status is JSON");
    let hits = parsed
        .get("result")
        .and_then(|r| r.get("cache_hits"))
        .and_then(Value::as_f64)
        .expect("cache_hits in status");
    assert!(hits > 0.0, "replayed cache must serve the sweep: {status}");
    cold.shutdown();

    let _ = std::fs::remove_file(&registry);
}

#[test]
fn corrupt_registry_lines_are_counted_and_skipped() {
    let registry = temp_registry("corrupt");

    // Seed one good record through a real daemon.
    let mut seeder = Daemon::start(&["--registry", registry.to_str().unwrap()], &[]);
    let response = seeder.request(r#"{"cmd":"characterize","tech":"edram","temp":77}"#);
    assert!(response.contains("\"ok\":true"), "{response}");
    seeder.shutdown();

    // Vandalize it: garbage, a wrong-schema record, and a torn final
    // line with no trailing newline (a crash mid-append).
    let good = std::fs::read_to_string(&registry).expect("seeded registry");
    let first = good.lines().next().expect("one record");
    let torn = &first[..first.len() / 2];
    let vandalized = format!(
        "{good}not json\n{}\n{torn}",
        first.replacen("\"schema\":2", "\"schema\":99", 1)
    );
    std::fs::write(&registry, vandalized).expect("vandalized write");

    let daemon = Daemon::start(&["--registry", registry.to_str().unwrap()], &[]);
    assert!(daemon.replayed >= 1, "good records still replay");
    assert_eq!(
        daemon.skipped, 3,
        "garbage + wrong schema + torn line are counted, not fatal"
    );
    daemon.shutdown();
    let _ = std::fs::remove_file(&registry);
}

#[test]
fn serve_rejects_malformed_requests_without_dying() {
    let mut daemon = Daemon::start(&[], &[]);
    for (bad, needle) in [
        ("not json", "\"ok\":false"),
        (r#"{"cmd":"teleport"}"#, "unknown cmd"),
        (r#"{"cmd":"characterize","dies":3}"#, "\"ok\":false"),
        (r#"{"cmd":"characterize","temp":20}"#, "60-400 K"),
        (r#"{"cmd":"evaluate","bench":"doom"}"#, "unknown benchmark"),
    ] {
        let response = daemon.request(bad);
        assert!(
            response.contains(needle),
            "request {bad:?} should answer with {needle:?}, got {response}"
        );
    }
    // The daemon is still healthy after every rejection.
    let status = daemon.request(r#"{"cmd":"status"}"#);
    assert!(status.contains("\"ok\":true"), "{status}");
    daemon.shutdown();
}

#[test]
fn dashboard_render_writes_static_pages() {
    let registry = temp_registry("dash");
    let mut seeder = Daemon::start(&["--registry", registry.to_str().unwrap()], &[]);
    let response = seeder.request(r#"{"cmd":"sweep"}"#);
    assert!(response.contains("\"ok\":true"));
    seeder.shutdown();

    let mut dir = std::env::temp_dir();
    dir.push(format!("coldtall-serve-dash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let output = Command::new(env!("CARGO_BIN_EXE_coldtall"))
        .args([
            "serve",
            "--registry",
            registry.to_str().unwrap(),
            "--render",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("render runs");
    assert!(output.status.success(), "{:?}", output);
    for name in ["index.html", "pareto.html", "search.html", "latency.html"] {
        let page = std::fs::read_to_string(dir.join(name))
            .unwrap_or_else(|e| panic!("{name} written: {e}"));
        assert!(page.contains("</html>"), "{name} is complete HTML");
    }
    let pareto = std::fs::read_to_string(dir.join("pareto.html")).unwrap();
    assert!(pareto.contains("<svg"), "pareto page carries the scatter");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&registry);
}
