//! The `coldtall` command-line tool: characterize, evaluate, and
//! recommend LLC design points without writing code.
//!
//! ```sh
//! coldtall list
//! coldtall characterize --tech pcm --tentpole optimistic --dies 8
//! coldtall evaluate --bench namd --tech edram --temp 77
//! coldtall recommend --bench mcf --max-area 5
//! coldtall table2
//! coldtall sweep --metrics
//! coldtall serve --listen 127.0.0.1:0 --registry runs.jsonl
//! ```

// The CLI is the designated place for terminal output: artifact data
// goes to stdout, diagnostics and `--metrics` reports to stderr (so
// metrics never corrupt redirected artifacts).
#![allow(clippy::print_stderr)]

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use coldtall::array::Objective;
use coldtall::cell::Tentpole;
use coldtall::core::report::{sci, TextTable};
use coldtall::core::{
    selection, BackendRegistry, CacheConfig, Constraints, Explorer, MemoryConfig, RequestHandler,
};
use coldtall::par::PoolConfig;
use coldtall::serve::{render_dashboard, replay_file, PipeSafeWriter, ServeOptions, Server};
use coldtall::tech::ProcessNode;
use coldtall::units::Kelvin;
use coldtall::workloads::spec2017;

/// What `--metrics[=json]` asked for.
#[derive(Clone, Copy, PartialEq)]
enum MetricsMode {
    Off,
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut metrics = MetricsMode::Off;
    args.retain(|arg| match arg.as_str() {
        "--metrics" | "--metrics=text" => {
            metrics = MetricsMode::Text;
            false
        }
        "--metrics=json" => {
            metrics = MetricsMode::Json;
            false
        }
        _ => true,
    });
    let Some(command) = args.first() else {
        let mut usage = String::new();
        write_usage(&mut usage);
        // Usage on a bare invocation goes to stdout like `help`, but
        // the missing command is still a failure.
        let _ = flush_stdout(&usage);
        return ExitCode::FAILURE;
    };
    // Commands render into a buffer; the buffer is flushed through a
    // broken-pipe-absorbing writer at the end. A consumer that hangs up
    // early (`coldtall sweep | head`) is a satisfied consumer, not an
    // error: the flush latches instead of panicking and we exit 0.
    let mut out = String::new();
    let result = match command.as_str() {
        "list" => Options::parse(&args[1..], &[]).and_then(|_| cmd_list(&mut out)),
        "characterize" => {
            Options::parse(&args[1..], &["tech", "tentpole", "dies", "temp", "backend"])
                .and_then(|opts| cmd_characterize(&opts, &mut out))
        }
        "evaluate" => {
            Options::parse(&args[1..], &["tech", "tentpole", "dies", "temp", "bench", "backend"])
                .and_then(|opts| cmd_evaluate(&opts, &mut out))
        }
        "recommend" => Options::parse(&args[1..], &["bench", "max-area"])
            .and_then(|opts| cmd_recommend(&opts, &mut out)),
        "table2" => Options::parse(&args[1..], &[]).and_then(|_| cmd_table2(&mut out)),
        "backends" => Options::parse(&args[1..], &[]).and_then(|_| cmd_backends(&mut out)),
        "sweep" => Options::parse(&args[1..], &[]).and_then(|_| cmd_sweep(&mut out)),
        "search" => Options::parse(
            &args[1..],
            &[
                "tech",
                "dies",
                "temps",
                "objective",
                "max-latency",
                "max-area",
                "min-lifetime",
                "max-power",
            ],
        )
        .and_then(|opts| cmd_search(&opts, &mut out)),
        "serve" => Options::parse(
            &args[1..],
            &[
                "listen",
                "registry",
                "max-inflight",
                "deadline-ms",
                "threads",
                "cache-cap",
                "render",
            ],
        )
        .and_then(|opts| cmd_serve(&opts)),
        "help" | "--help" | "-h" => {
            write_usage(&mut out);
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => {
            let broken = match flush_stdout(&out) {
                Ok(broken) => broken,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Metrics go to stderr after the command's own output, so
            // redirected stdout stays a clean artifact and
            // `--metrics=json` stderr is a parseable JSON document.
            // When the consumer hung up we skip them: nobody is
            // listening to this pipeline anymore.
            if !broken {
                match metrics {
                    MetricsMode::Off => {}
                    MetricsMode::Text => eprint!("{}", coldtall::obs::global().render_text()),
                    MetricsMode::Json => eprint!("{}", coldtall::obs::global().render_json()),
                }
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `coldtall help` for usage");
            ExitCode::FAILURE
        }
    }
}

/// Writes the buffered output to stdout through a
/// [`PipeSafeWriter`]; returns whether the consumer hung up.
///
/// # Errors
///
/// Any non-`BrokenPipe` I/O error (a full disk on redirection).
fn flush_stdout(buffer: &str) -> io::Result<bool> {
    let stdout = io::stdout();
    let mut out = PipeSafeWriter::new(stdout.lock());
    out.write_all(buffer.as_bytes())?;
    out.flush()?;
    Ok(out.broken())
}

fn write_usage(out: &mut String) {
    let _ = writeln!(
        out,
        "coldtall — design-space exploration of cryogenic and 3D embedded cache memory\n\
         \n\
         USAGE:\n  coldtall <command> [options]\n\
         \n\
         COMMANDS:\n\
         \x20 list            benchmarks and configurations\n\
         \x20 characterize    array characteristics of one design point\n\
         \x20 evaluate        a design point under one benchmark's traffic\n\
         \x20 recommend       lowest-power viable choice for a benchmark\n\
         \x20 table2          the optimal-LLC summary table\n\
         \x20 sweep           the full study sweep, summarized per configuration\n\
         \x20 search          adaptive branch-and-bound Pareto search of the study space\n\
         \x20 backends        the characterization backends and their capabilities\n\
         \x20 serve           long-running daemon: JSON requests over TCP/stdin\n\
         \n\
         DESIGN-POINT OPTIONS:\n\
         \x20 --tech <sram|edram|pcm|stt|rram>   technology (default sram)\n\
         \x20 --tentpole <optimistic|pessimistic> eNVM tentpole (default optimistic)\n\
         \x20 --dies <1|2|4|8>                   stacked dies (default 1)\n\
         \x20 --temp <kelvin>                    operating temperature (default 350)\n\
         \n\
         OTHER OPTIONS:\n\
         \x20 --bench <name>                     benchmark (default namd)\n\
         \x20 --max-area <mm2>                   area constraint for recommend/search\n\
         \n\
         SEARCH OPTIONS:\n\
         \x20 --tech <name>                      restrict the region to one technology\n\
         \x20 --dies <1|2|4|8>                   restrict the region to one die count\n\
         \x20 --temps <study|kelvin|lo:hi>       expand over the study's 8 temperatures,\n\
         \x20                                    re-pin the region to one temperature, or\n\
         \x20                                    expand over the ladder inside lo:hi kelvin\n\
         \x20 --objective <power|latency|area>   also report the frontier point\n\
         \x20                                    minimizing this coordinate\n\
         \x20 --max-latency <x>                  relative-latency cap\n\
         \x20 --max-power <x>                    relative-power cap\n\
         \x20 --min-lifetime <years>             endurance floor\n\
         \x20 --backend <cryomem|destiny>        pin the characterization backend;\n\
         \x20                                    errors if it is not the one the\n\
         \x20                                    registry resolves for the point\n\
         \x20 --metrics[=json]                   after the command, report engine\n\
         \x20                                    telemetry (cache hit rates, pool\n\
         \x20                                    utilization, span timings) to stderr\n\
         \n\
         SERVE OPTIONS:\n\
         \x20 --listen <addr:port>               accept TCP clients (port 0 = ephemeral);\n\
         \x20                                    omit for a stdin-only daemon\n\
         \x20 --registry <file.jsonl>            replay this run registry at startup and\n\
         \x20                                    append every new characterization to it\n\
         \x20 --max-inflight <n>                 concurrent request cap (default 8)\n\
         \x20 --deadline-ms <ms>                 default per-request budget (default none)\n\
         \x20 --threads <n>                      worker pool size (default: COLDTALL_THREADS\n\
         \x20                                    or auto-detect)\n\
         \x20 --cache-cap <n>                    characterization-cache admission cap\n\
         \x20                                    (default: COLDTALL_CACHE_CAP or unbounded)\n\
         \x20 --render <dir>                     write the static HTML dashboard from the\n\
         \x20                                    registry and exit (no daemon)\n\
         \n\
         Options take `--key value` or `--key=value`. Unknown options,\n\
         missing values, and out-of-range inputs exit 1 with `error: ...`\n\
         on stderr; they are never silently defaulted."
    );
}

/// Parsed command-line options: `--key value` or `--key=value` pairs,
/// validated against the command's allowed set.
///
/// Unknown options, options with a missing value, duplicated options,
/// and stray positional arguments are all hard errors — a typo like
/// `--benhc` must never silently fall back to a default.
struct Options(HashMap<String, String>);

impl Options {
    fn parse(args: &[String], allowed: &[&str]) -> Result<Self, String> {
        let mut map = HashMap::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let Some(stripped) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument '{arg}'"));
            };
            let (name, inline) = match stripped.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (stripped, None),
            };
            if !allowed.contains(&name) {
                return Err(format!("unknown option '--{name}'"));
            }
            let value = match inline {
                Some(v) => v,
                // A following option is not a value: `--temp --bench x`
                // is a missing value, not a temperature of "--bench".
                None => match iter.next() {
                    Some(v) if !v.starts_with("--") => v.clone(),
                    _ => return Err(format!("missing value for '--{name}'")),
                },
            };
            if map.insert(name.to_string(), value).is_some() {
                return Err(format!("duplicate option '--{name}'"));
            }
        }
        Ok(Self(map))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0.get(name).map(String::as_str)
    }
}

fn parse_config(opts: &Options) -> Result<MemoryConfig, String> {
    let tech = MemoryConfig::parse_technology(opts.get("tech").unwrap_or("sram"))
        .map_err(|e| e.to_string())?;
    let tentpole = match opts.get("tentpole").unwrap_or("optimistic") {
        "optimistic" | "opt" => Tentpole::Optimistic,
        "pessimistic" | "pess" => Tentpole::Pessimistic,
        other => return Err(format!("unknown tentpole '{other}'")),
    };
    let dies: u8 = opts
        .get("dies")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --dies value".to_string())?;
    MemoryConfig::validate_dies(dies).map_err(|e| format!("--dies: {e}"))?;
    let temp: f64 = opts
        .get("temp")
        .unwrap_or("350")
        .parse()
        .map_err(|_| "bad --temp value".to_string())?;
    if !(60.0..=400.0).contains(&temp) {
        return Err("--temp must be between 60 and 400 kelvin".into());
    }
    let temp = Kelvin::try_new(temp).map_err(|e| e.to_string())?;
    let config = if tech.is_nonvolatile() {
        MemoryConfig::try_envm_3d(tech, tentpole, dies)
            .map_err(|e| e.to_string())?
            .at_temperature(temp)
    } else if dies == 1 {
        MemoryConfig::volatile_2d(tech, temp)
    } else {
        return Err("stacked volatile configs: use --tech sram --dies N at 350K only".into());
    };
    Ok(config)
}

fn benchmark_name(opts: &Options) -> &str {
    opts.get("bench").unwrap_or("namd")
}

/// Resolves the backend the registry picks for `config` and, when the
/// user pinned one with `--backend`, insists the pin matches. A pin
/// never reroutes characterization — it asserts the routing, so a
/// script that expects the Destiny path fails loudly if its point is
/// actually served by CryoMEM.
fn check_backend(opts: &Options, explorer: &Explorer, config: &MemoryConfig) -> Result<&'static str, String> {
    let resolved = explorer
        .backends()
        .resolve(config)
        .map_err(|e| e.to_string())?
        .name();
    if let Some(pinned) = opts.get("backend") {
        if explorer.backends().get(pinned).is_none() {
            return Err(format!("unknown backend '{pinned}'"));
        }
        if pinned != resolved {
            return Err(format!(
                "backend '{pinned}' does not serve {config}: the registry resolves it to '{resolved}'"
            ));
        }
    }
    Ok(resolved)
}

fn cmd_backends(out: &mut String) -> Result<(), String> {
    let registry = BackendRegistry::with_defaults();
    let mut table =
        TextTable::new(&["backend", "priority", "technologies", "temperature", "dies"]);
    for backend in registry.backends() {
        let caps = backend.capabilities();
        let technologies: Vec<&str> =
            caps.technologies().iter().map(|t| t.name()).collect();
        let dies: Vec<String> =
            caps.die_counts().iter().map(u8::to_string).collect();
        let priority = registry
            .priority(backend.name())
            .expect("registered backends have a priority");
        table.row_owned(vec![
            backend.name().to_string(),
            priority.to_string(),
            technologies.join(", "),
            format!(
                "{:.0}-{:.0} K",
                caps.min_temperature().get(),
                caps.max_temperature().get()
            ),
            dies.join("/"),
        ]);
    }
    let _ = write!(out, "{}", table.render());
    Ok(())
}

fn cmd_list(out: &mut String) -> Result<(), String> {
    let mut table = TextTable::new(&["benchmark", "suite", "reads_per_s", "writes_per_s", "band"]);
    for b in spec2017() {
        table.row_owned(vec![
            b.name.to_string(),
            b.suite.to_string(),
            sci(b.traffic.reads_per_sec),
            sci(b.traffic.writes_per_sec),
            b.traffic_band().to_string(),
        ]);
    }
    let _ = write!(out, "{}", table.render());
    let _ = writeln!(out, "\nconfigurations ({}):", MemoryConfig::study_set().len());
    for c in MemoryConfig::study_set() {
        let _ = writeln!(out, "  {}", c.label());
    }
    Ok(())
}

fn cmd_characterize(opts: &Options, out: &mut String) -> Result<(), String> {
    let config = parse_config(opts)?;
    let explorer = Explorer::with_defaults();
    let backend = check_backend(opts, &explorer, &config)?;
    let a = explorer
        .try_characterize(&config)
        .map_err(|e| e.to_string())?;
    let _ = writeln!(out, "{}:", config.label());
    let _ = writeln!(out, "  backend           : {backend}");
    let _ = writeln!(out, "  organization      : {} subarrays x {} dies", a.organization, a.dies);
    let _ = writeln!(out, "  read latency      : {}", a.read_latency);
    let _ = writeln!(out, "  write latency     : {}", a.write_latency);
    let _ = writeln!(out, "  read energy/bit   : {}", a.read_energy_per_bit());
    let _ = writeln!(out, "  write energy/bit  : {}", a.write_energy_per_bit());
    let _ = writeln!(out, "  leakage power     : {}", a.leakage_power);
    let _ = writeln!(out, "  refresh power     : {}", a.refresh_power);
    let _ = writeln!(out, "  footprint         : {:.3} mm^2", a.footprint.as_mm2());
    let _ = writeln!(out, "  array efficiency  : {:.2}", a.array_efficiency);
    Ok(())
}

fn cmd_evaluate(opts: &Options, out: &mut String) -> Result<(), String> {
    let config = parse_config(opts)?;
    let explorer = Explorer::with_defaults();
    check_backend(opts, &explorer, &config)?;
    // Infeasible design points are still printable results — only
    // invalid inputs (or a NaN-invariant violation) error out.
    let e = explorer
        .try_evaluate(&config, benchmark_name(opts))
        .map_err(|e| e.to_string())?;
    let _ = writeln!(out, "{} running {}:", e.config_label, e.benchmark);
    let _ = writeln!(out, "  device power        : {}", e.device_power);
    let _ = writeln!(out, "  wall power (cooled) : {}", e.wall_power);
    let _ = writeln!(out, "  relative power      : {}", sci(e.relative_power));
    let _ = writeln!(out, "  relative latency    : {}", sci(e.relative_latency));
    let _ = writeln!(out, "  bandwidth use       : {}", sci(e.bandwidth_utilization));
    let _ = writeln!(out, "  lifetime            : {} years", sci(e.lifetime_years));
    let _ = writeln!(out, "  verdict             : {}", e.feasibility);
    Ok(())
}

fn cmd_recommend(opts: &Options, out: &mut String) -> Result<(), String> {
    let mut constraints = Constraints::default();
    if let Some(area) = opts.get("max-area") {
        constraints.max_area_mm2 =
            Some(area.parse().map_err(|_| "bad --max-area value".to_string())?);
    }
    let explorer = Explorer::with_defaults();
    let name = benchmark_name(opts);
    let evals: Vec<_> = MemoryConfig::study_set()
        .iter()
        .map(|c| explorer.try_evaluate(c, name))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    match coldtall::core::recommend(&evals, &constraints) {
        Some(pick) => {
            let _ = writeln!(
                out,
                "{}: {} ({}x below the 350K SRAM reference, {:.2} mm^2)",
                name,
                pick.config_label,
                sci(1.0 / pick.relative_power),
                pick.footprint_mm2
            );
            Ok(())
        }
        None => Err("no configuration satisfies the constraints".into()),
    }
}

fn cmd_sweep(out: &mut String) -> Result<(), String> {
    let explorer = Explorer::with_defaults();
    let configs = MemoryConfig::study_set();
    let rows = explorer
        .try_sweep_configs(&configs)
        .map_err(|e| e.to_string())?;
    let benchmarks = spec2017().len();
    let mut table = TextTable::new(&[
        "configuration",
        "viable",
        "min_rel_power",
        "mean_rel_power",
        "mean_rel_latency",
    ]);
    for (i, config) in configs.iter().enumerate() {
        let per_bench = &rows[i * benchmarks..(i + 1) * benchmarks];
        let viable = per_bench.iter().filter(|row| !row.slowdown).count();
        let min_power = per_bench
            .iter()
            .map(|row| row.relative_power)
            .fold(f64::INFINITY, f64::min);
        #[allow(clippy::cast_precision_loss)]
        let mean_power = per_bench.iter().map(|row| row.relative_power).sum::<f64>()
            / benchmarks as f64;
        let finite_latencies: Vec<f64> = per_bench
            .iter()
            .map(|row| row.relative_latency)
            .filter(|l| l.is_finite())
            .collect();
        #[allow(clippy::cast_precision_loss)]
        let mean_latency = if finite_latencies.is_empty() {
            f64::INFINITY
        } else {
            finite_latencies.iter().sum::<f64>() / finite_latencies.len() as f64
        };
        table.row_owned(vec![
            config.label(),
            format!("{viable}/{benchmarks}"),
            sci(min_power),
            sci(mean_power),
            sci(mean_latency),
        ]);
    }
    let _ = write!(out, "{}", table.render());
    let _ = writeln!(
        out,
        "\n{} rows ({} configurations x {} benchmarks), {} characterizations memoized",
        rows.len(),
        configs.len(),
        benchmarks,
        explorer.cached_characterizations()
    );
    Ok(())
}

fn cmd_search(opts: &Options, out: &mut String) -> Result<(), String> {
    // The region: the study set, narrowed by --tech/--dies, optionally
    // expanded over (or re-pinned to) temperatures. Filters that match
    // nothing are a typed empty-region error, never an empty report.
    let mut configs = MemoryConfig::study_set();
    let mut region = vec!["study".to_string()];
    if let Some(name) = opts.get("tech") {
        let tech = MemoryConfig::parse_technology(name).map_err(|e| e.to_string())?;
        configs.retain(|c| c.technology() == tech);
        region.push(name.to_string());
    }
    if let Some(dies) = opts.get("dies") {
        let dies: u8 = dies.parse().map_err(|_| "bad --dies value".to_string())?;
        MemoryConfig::validate_dies(dies).map_err(|e| format!("--dies: {e}"))?;
        configs.retain(|c| c.dies() == dies);
        region.push(format!("{dies} dies"));
    }
    match opts.get("temps") {
        None => {}
        Some("study") => {
            configs = configs
                .iter()
                .flat_map(|c| {
                    coldtall::cryo::study_temperatures()
                        .iter()
                        .map(|&t| c.clone().at_temperature(t))
                })
                .collect();
            region.push("study temperatures".to_string());
        }
        // `lo:hi` expands over the study temperatures inside the
        // range — `--temps 77:400` walks the full cryo-to-hot ladder.
        Some(range) if range.contains(':') => {
            let (lo, hi) = range
                .split_once(':')
                .expect("checked for ':' above");
            let lo: f64 = lo.parse().map_err(|_| "bad --temps range".to_string())?;
            let hi: f64 = hi.parse().map_err(|_| "bad --temps range".to_string())?;
            if !(60.0..=400.0).contains(&lo) || !(60.0..=400.0).contains(&hi) || lo > hi {
                return Err(
                    "--temps lo:hi needs 60 <= lo <= hi <= 400 kelvin".into()
                );
            }
            let ladder: Vec<Kelvin> = coldtall::cryo::study_temperatures()
                .iter()
                .copied()
                .filter(|t| (lo..=hi).contains(&t.get()))
                .collect();
            if ladder.is_empty() {
                return Err(format!(
                    "--temps {range}: no study temperature falls in that range \
                     (the ladder spans 77-387 K)"
                ));
            }
            configs = configs
                .iter()
                .flat_map(|c| ladder.iter().map(|&t| c.clone().at_temperature(t)))
                .collect();
            region.push(format!("{range} K"));
        }
        Some(t) => {
            let kelvin: f64 = t.parse().map_err(|_| "bad --temps value".to_string())?;
            if !(60.0..=400.0).contains(&kelvin) {
                return Err(
                    "--temps must be 'study', a kelvin value, or a lo:hi range".into()
                );
            }
            let kelvin = Kelvin::try_new(kelvin).map_err(|e| e.to_string())?;
            configs = configs
                .iter()
                .map(|c| c.clone().at_temperature(kelvin))
                .collect();
            region.push(format!("{t} K"));
        }
    }
    let objective = match opts.get("objective") {
        None => None,
        Some("power") => Some(0),
        Some("latency") => Some(1),
        Some("area") => Some(2),
        Some(other) => {
            return Err(format!(
                "unknown objective '{other}' (expected power, latency, or area)"
            ))
        }
    };
    let mut constraints = Constraints::none();
    if let Some(v) = opts.get("max-latency") {
        constraints.max_relative_latency =
            v.parse().map_err(|_| "bad --max-latency value".to_string())?;
    }
    if let Some(v) = opts.get("max-area") {
        constraints.max_area_mm2 =
            Some(v.parse().map_err(|_| "bad --max-area value".to_string())?);
    }
    if let Some(v) = opts.get("min-lifetime") {
        constraints.min_lifetime_years =
            v.parse().map_err(|_| "bad --min-lifetime value".to_string())?;
    }
    if let Some(v) = opts.get("max-power") {
        constraints.max_relative_power =
            Some(v.parse().map_err(|_| "bad --max-power value".to_string())?);
    }

    let region = region.join(" x ");
    let explorer = Explorer::with_defaults();
    let outcome = explorer
        .search(&region, &configs, &constraints)
        .map_err(|e| e.to_string())?;
    if outcome.frontier.is_empty() {
        return Err(format!(
            "no design point in region '{region}' is feasible under the given constraints"
        ));
    }

    let mut table = TextTable::new(&[
        "configuration",
        "benchmark",
        "rel_power",
        "rel_latency",
        "area_mm2",
    ]);
    for row in &outcome.frontier {
        table.row_owned(vec![
            row.config_label.clone(),
            row.benchmark.to_string(),
            sci(row.relative_power),
            sci(row.relative_latency),
            format!("{:.2}", row.footprint_mm2),
        ]);
    }
    let _ = write!(out, "{}", table.render());
    let stats = outcome.stats;
    let _ = writeln!(
        out,
        "\n{} frontier points over {} rows: {} evaluated, {} skipped ({} infeasible, {} pruned)",
        outcome.frontier.len(),
        stats.rows_total,
        stats.points_evaluated,
        stats.points_skipped,
        stats.skipped_infeasible,
        stats.skipped_pruned
    );
    let _ = writeln!(
        out,
        "regions: {} expanded, {} refined, {} pruned; {} plane bounds computed",
        stats.regions_expanded, stats.regions_refined, stats.regions_pruned, stats.bounds_computed
    );
    if let Some(k) = objective {
        let coord = |row: &coldtall::core::LlcEvaluation| match k {
            0 => row.relative_power,
            1 => row.relative_latency,
            _ => row.footprint_mm2,
        };
        let best = outcome
            .frontier
            .iter()
            .min_by(|a, b| coord(a).total_cmp(&coord(b)))
            .expect("the frontier was checked non-empty");
        let _ = writeln!(
            out,
            "best by {}: {} on {} (rel_power {}, rel_latency {}, {:.2} mm^2)",
            ["power", "latency", "area"][k],
            best.config_label,
            best.benchmark,
            sci(best.relative_power),
            sci(best.relative_latency),
            best.footprint_mm2
        );
    }
    Ok(())
}

fn cmd_table2(out: &mut String) -> Result<(), String> {
    let explorer = Explorer::with_defaults();
    let rows = selection::table2(&explorer);
    let mut table = TextTable::new(&["band", "power", "power_alt", "performance", "area"]);
    for row in rows {
        table.row_owned(vec![
            row.band.label().to_string(),
            row.power.label,
            row.power.alternate.unwrap_or_else(|| "-".into()),
            row.performance.label,
            row.area.label,
        ]);
    }
    let _ = write!(out, "{}", table.render());
    Ok(())
}

/// `coldtall serve`: the long-running daemon (or, with `--render`, the
/// one-shot dashboard generator). Unlike the other commands this one
/// streams to stdout directly — responses must reach the client as they
/// complete, not at exit.
fn cmd_serve(opts: &Options) -> Result<(), String> {
    // Explicit configs, not environment latches: a long-running host
    // reconfigures per logical restart, so the once-per-process
    // `OnceLock` env path the one-shot commands use is wrong here.
    let (pool_env, pool_warnings) = PoolConfig::from_env();
    let pool = match opts.get("threads") {
        Some(raw) => PoolConfig {
            threads: Some(
                raw.parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "bad --threads value".to_string())?,
            ),
        },
        None => {
            for w in &pool_warnings {
                eprintln!("{w}");
            }
            pool_env
        }
    };
    pool.apply();

    let (mut cache_config, cache_warnings) = CacheConfig::from_env();
    match opts.get("cache-cap") {
        Some(raw) => {
            cache_config.capacity = Some(
                raw.parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "bad --cache-cap value".to_string())?,
            );
        }
        None => {
            for w in &cache_warnings {
                eprintln!("{w}");
            }
        }
    }

    let default_deadline = match opts.get("deadline-ms") {
        Some(raw) => Some(Duration::from_millis(
            raw.parse::<u64>()
                .map_err(|_| "bad --deadline-ms value".to_string())?,
        )),
        None => None,
    };
    let max_inflight = match opts.get("max-inflight") {
        Some(raw) => raw
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| "bad --max-inflight value".to_string())?,
        None => 8,
    };

    let metrics = coldtall::obs::global();
    let explorer = Explorer::try_with_backends_configured(
        ProcessNode::ptm_22nm_hp(),
        Objective::EnergyDelayProduct,
        BackendRegistry::with_defaults(),
        metrics,
        &cache_config,
    )
    .map_err(|e| e.to_string())?;
    let handler = RequestHandler::new(explorer, metrics, default_deadline);

    if let Some(dir) = opts.get("render") {
        if let Some(path) = opts.get("registry") {
            let stats = replay_file(Path::new(path), handler.explorer())
                .map_err(|e| format!("registry replay: {e}"))?;
            eprintln!(
                "replayed {} records ({} duplicates, {} skipped) from {path}",
                stats.replayed, stats.duplicates, stats.skipped
            );
        }
        let written = render_dashboard(Path::new(dir), &handler, metrics)
            .map_err(|e| format!("dashboard render: {e}"))?;
        eprintln!("wrote {} pages to {dir}", written.len());
        return Ok(());
    }

    let options = ServeOptions {
        listen: opts.get("listen").map(String::from),
        registry: opts.get("registry").map(PathBuf::from),
        max_inflight,
    };
    let server = Server::start(handler, &options).map_err(|e| e.to_string())?;
    let stdout = io::stdout();
    let mut out = PipeSafeWriter::new(stdout.lock());
    writeln!(out, "{}", server.ready_line()).map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    let stdin = io::stdin();
    server
        .serve_lines(stdin.lock(), &mut out)
        .map_err(|e| e.to_string())?;
    Ok(())
}
