//! The `coldtall` command-line tool: characterize, evaluate, and
//! recommend LLC design points without writing code.
//!
//! ```sh
//! coldtall list
//! coldtall characterize --tech pcm --tentpole optimistic --dies 8
//! coldtall evaluate --bench namd --tech edram --temp 77
//! coldtall recommend --bench mcf --max-area 5
//! coldtall table2
//! coldtall sweep --metrics
//! ```

// The CLI is the designated place for terminal output: artifact data
// goes to stdout, diagnostics and `--metrics` reports to stderr (so
// metrics never corrupt redirected artifacts).
#![allow(clippy::print_stderr)]

use std::collections::HashMap;
use std::process::ExitCode;

use coldtall::cell::Tentpole;
use coldtall::core::report::{sci, TextTable};
use coldtall::core::{selection, BackendRegistry, Constraints, Explorer, MemoryConfig};
use coldtall::units::Kelvin;
use coldtall::workloads::spec2017;

/// What `--metrics[=json]` asked for.
#[derive(Clone, Copy, PartialEq)]
enum MetricsMode {
    Off,
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut metrics = MetricsMode::Off;
    args.retain(|arg| match arg.as_str() {
        "--metrics" | "--metrics=text" => {
            metrics = MetricsMode::Text;
            false
        }
        "--metrics=json" => {
            metrics = MetricsMode::Json;
            false
        }
        _ => true,
    });
    let Some(command) = args.first() else {
        print_usage();
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "list" => Options::parse(&args[1..], &[]).and_then(|_| cmd_list()),
        "characterize" => {
            Options::parse(&args[1..], &["tech", "tentpole", "dies", "temp", "backend"])
                .and_then(|opts| cmd_characterize(&opts))
        }
        "evaluate" => {
            Options::parse(&args[1..], &["tech", "tentpole", "dies", "temp", "bench", "backend"])
                .and_then(|opts| cmd_evaluate(&opts))
        }
        "recommend" => Options::parse(&args[1..], &["bench", "max-area"])
            .and_then(|opts| cmd_recommend(&opts)),
        "table2" => Options::parse(&args[1..], &[]).and_then(|_| cmd_table2()),
        "backends" => Options::parse(&args[1..], &[]).and_then(|_| cmd_backends()),
        "sweep" => Options::parse(&args[1..], &[]).and_then(|_| cmd_sweep()),
        "search" => Options::parse(
            &args[1..],
            &[
                "tech",
                "dies",
                "temps",
                "objective",
                "max-latency",
                "max-area",
                "min-lifetime",
                "max-power",
            ],
        )
        .and_then(|opts| cmd_search(&opts)),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => {
            // Metrics go to stderr after the command's own output, so
            // redirected stdout stays a clean artifact and
            // `--metrics=json` stderr is a parseable JSON document.
            match metrics {
                MetricsMode::Off => {}
                MetricsMode::Text => eprint!("{}", coldtall::obs::global().render_text()),
                MetricsMode::Json => eprint!("{}", coldtall::obs::global().render_json()),
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `coldtall help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "coldtall — design-space exploration of cryogenic and 3D embedded cache memory\n\
         \n\
         USAGE:\n  coldtall <command> [options]\n\
         \n\
         COMMANDS:\n\
         \x20 list            benchmarks and configurations\n\
         \x20 characterize    array characteristics of one design point\n\
         \x20 evaluate        a design point under one benchmark's traffic\n\
         \x20 recommend       lowest-power viable choice for a benchmark\n\
         \x20 table2          the optimal-LLC summary table\n\
         \x20 sweep           the full study sweep, summarized per configuration\n\
         \x20 search          adaptive branch-and-bound Pareto search of the study space\n\
         \x20 backends        the characterization backends and their capabilities\n\
         \n\
         DESIGN-POINT OPTIONS:\n\
         \x20 --tech <sram|edram|pcm|stt|rram>   technology (default sram)\n\
         \x20 --tentpole <optimistic|pessimistic> eNVM tentpole (default optimistic)\n\
         \x20 --dies <1|2|4|8>                   stacked dies (default 1)\n\
         \x20 --temp <kelvin>                    operating temperature (default 350)\n\
         \n\
         OTHER OPTIONS:\n\
         \x20 --bench <name>                     benchmark (default namd)\n\
         \x20 --max-area <mm2>                   area constraint for recommend/search\n\
         \n\
         SEARCH OPTIONS:\n\
         \x20 --tech <name>                      restrict the region to one technology\n\
         \x20 --dies <1|2|4|8>                   restrict the region to one die count\n\
         \x20 --temps <study|kelvin>             expand over the study's 8 temperatures,\n\
         \x20                                    or re-pin the region to one temperature\n\
         \x20 --objective <power|latency|area>   also report the frontier point\n\
         \x20                                    minimizing this coordinate\n\
         \x20 --max-latency <x>                  relative-latency cap\n\
         \x20 --max-power <x>                    relative-power cap\n\
         \x20 --min-lifetime <years>             endurance floor\n\
         \x20 --backend <cryomem|destiny>        pin the characterization backend;\n\
         \x20                                    errors if it is not the one the\n\
         \x20                                    registry resolves for the point\n\
         \x20 --metrics[=json]                   after the command, report engine\n\
         \x20                                    telemetry (cache hit rates, pool\n\
         \x20                                    utilization, span timings) to stderr\n\
         \n\
         Options take `--key value` or `--key=value`. Unknown options,\n\
         missing values, and out-of-range inputs exit 1 with `error: ...`\n\
         on stderr; they are never silently defaulted."
    );
}

/// Parsed command-line options: `--key value` or `--key=value` pairs,
/// validated against the command's allowed set.
///
/// Unknown options, options with a missing value, duplicated options,
/// and stray positional arguments are all hard errors — a typo like
/// `--benhc` must never silently fall back to a default.
struct Options(HashMap<String, String>);

impl Options {
    fn parse(args: &[String], allowed: &[&str]) -> Result<Self, String> {
        let mut map = HashMap::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let Some(stripped) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument '{arg}'"));
            };
            let (name, inline) = match stripped.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (stripped, None),
            };
            if !allowed.contains(&name) {
                return Err(format!("unknown option '--{name}'"));
            }
            let value = match inline {
                Some(v) => v,
                // A following option is not a value: `--temp --bench x`
                // is a missing value, not a temperature of "--bench".
                None => match iter.next() {
                    Some(v) if !v.starts_with("--") => v.clone(),
                    _ => return Err(format!("missing value for '--{name}'")),
                },
            };
            if map.insert(name.to_string(), value).is_some() {
                return Err(format!("duplicate option '--{name}'"));
            }
        }
        Ok(Self(map))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0.get(name).map(String::as_str)
    }
}

fn parse_config(opts: &Options) -> Result<MemoryConfig, String> {
    let tech = MemoryConfig::parse_technology(opts.get("tech").unwrap_or("sram"))
        .map_err(|e| e.to_string())?;
    let tentpole = match opts.get("tentpole").unwrap_or("optimistic") {
        "optimistic" | "opt" => Tentpole::Optimistic,
        "pessimistic" | "pess" => Tentpole::Pessimistic,
        other => return Err(format!("unknown tentpole '{other}'")),
    };
    let dies: u8 = opts
        .get("dies")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --dies value".to_string())?;
    MemoryConfig::validate_dies(dies).map_err(|e| format!("--dies: {e}"))?;
    let temp: f64 = opts
        .get("temp")
        .unwrap_or("350")
        .parse()
        .map_err(|_| "bad --temp value".to_string())?;
    if !(60.0..=400.0).contains(&temp) {
        return Err("--temp must be between 60 and 400 kelvin".into());
    }
    let temp = Kelvin::try_new(temp).map_err(|e| e.to_string())?;
    let config = if tech.is_nonvolatile() {
        MemoryConfig::try_envm_3d(tech, tentpole, dies)
            .map_err(|e| e.to_string())?
            .at_temperature(temp)
    } else if dies == 1 {
        MemoryConfig::volatile_2d(tech, temp)
    } else {
        return Err("stacked volatile configs: use --tech sram --dies N at 350K only".into());
    };
    Ok(config)
}

fn benchmark_name(opts: &Options) -> &str {
    opts.get("bench").unwrap_or("namd")
}

/// Resolves the backend the registry picks for `config` and, when the
/// user pinned one with `--backend`, insists the pin matches. A pin
/// never reroutes characterization — it asserts the routing, so a
/// script that expects the Destiny path fails loudly if its point is
/// actually served by CryoMEM.
fn check_backend(opts: &Options, explorer: &Explorer, config: &MemoryConfig) -> Result<&'static str, String> {
    let resolved = explorer
        .backends()
        .resolve(config)
        .map_err(|e| e.to_string())?
        .name();
    if let Some(pinned) = opts.get("backend") {
        if explorer.backends().get(pinned).is_none() {
            return Err(format!("unknown backend '{pinned}'"));
        }
        if pinned != resolved {
            return Err(format!(
                "backend '{pinned}' does not serve {config}: the registry resolves it to '{resolved}'"
            ));
        }
    }
    Ok(resolved)
}

fn cmd_backends() -> Result<(), String> {
    let registry = BackendRegistry::with_defaults();
    let mut table = TextTable::new(&["backend", "technologies", "temperature", "dies"]);
    for backend in registry.backends() {
        let caps = backend.capabilities();
        let technologies: Vec<&str> =
            caps.technologies().iter().map(|t| t.name()).collect();
        let dies: Vec<String> =
            caps.die_counts().iter().map(u8::to_string).collect();
        table.row_owned(vec![
            backend.name().to_string(),
            technologies.join(", "),
            format!(
                "{:.0}-{:.0} K",
                caps.min_temperature().get(),
                caps.max_temperature().get()
            ),
            dies.join("/"),
        ]);
    }
    print!("{}", table.render());
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    let mut table = TextTable::new(&["benchmark", "suite", "reads_per_s", "writes_per_s", "band"]);
    for b in spec2017() {
        table.row_owned(vec![
            b.name.to_string(),
            b.suite.to_string(),
            sci(b.traffic.reads_per_sec),
            sci(b.traffic.writes_per_sec),
            b.traffic_band().to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("\nconfigurations ({}):", MemoryConfig::study_set().len());
    for c in MemoryConfig::study_set() {
        println!("  {}", c.label());
    }
    Ok(())
}

fn cmd_characterize(opts: &Options) -> Result<(), String> {
    let config = parse_config(opts)?;
    let explorer = Explorer::with_defaults();
    let backend = check_backend(opts, &explorer, &config)?;
    let a = explorer
        .try_characterize(&config)
        .map_err(|e| e.to_string())?;
    println!("{}:", config.label());
    println!("  backend           : {backend}");
    println!("  organization      : {} subarrays x {} dies", a.organization, a.dies);
    println!("  read latency      : {}", a.read_latency);
    println!("  write latency     : {}", a.write_latency);
    println!("  read energy/bit   : {}", a.read_energy_per_bit());
    println!("  write energy/bit  : {}", a.write_energy_per_bit());
    println!("  leakage power     : {}", a.leakage_power);
    println!("  refresh power     : {}", a.refresh_power);
    println!("  footprint         : {:.3} mm^2", a.footprint.as_mm2());
    println!("  array efficiency  : {:.2}", a.array_efficiency);
    Ok(())
}

fn cmd_evaluate(opts: &Options) -> Result<(), String> {
    let config = parse_config(opts)?;
    let explorer = Explorer::with_defaults();
    check_backend(opts, &explorer, &config)?;
    // Infeasible design points are still printable results — only
    // invalid inputs (or a NaN-invariant violation) error out.
    let e = explorer
        .try_evaluate(&config, benchmark_name(opts))
        .map_err(|e| e.to_string())?;
    println!("{} running {}:", e.config_label, e.benchmark);
    println!("  device power        : {}", e.device_power);
    println!("  wall power (cooled) : {}", e.wall_power);
    println!("  relative power      : {}", sci(e.relative_power));
    println!("  relative latency    : {}", sci(e.relative_latency));
    println!("  bandwidth use       : {}", sci(e.bandwidth_utilization));
    println!("  lifetime            : {} years", sci(e.lifetime_years));
    println!("  verdict             : {}", e.feasibility);
    Ok(())
}

fn cmd_recommend(opts: &Options) -> Result<(), String> {
    let mut constraints = Constraints::default();
    if let Some(area) = opts.get("max-area") {
        constraints.max_area_mm2 =
            Some(area.parse().map_err(|_| "bad --max-area value".to_string())?);
    }
    let explorer = Explorer::with_defaults();
    let name = benchmark_name(opts);
    let evals: Vec<_> = MemoryConfig::study_set()
        .iter()
        .map(|c| explorer.try_evaluate(c, name))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    match coldtall::core::recommend(&evals, &constraints) {
        Some(pick) => {
            println!(
                "{}: {} ({}x below the 350K SRAM reference, {:.2} mm^2)",
                name,
                pick.config_label,
                sci(1.0 / pick.relative_power),
                pick.footprint_mm2
            );
            Ok(())
        }
        None => Err("no configuration satisfies the constraints".into()),
    }
}

fn cmd_sweep() -> Result<(), String> {
    let explorer = Explorer::with_defaults();
    let configs = MemoryConfig::study_set();
    let rows = explorer
        .try_sweep_configs(&configs)
        .map_err(|e| e.to_string())?;
    let benchmarks = spec2017().len();
    let mut table = TextTable::new(&[
        "configuration",
        "viable",
        "min_rel_power",
        "mean_rel_power",
        "mean_rel_latency",
    ]);
    for (i, config) in configs.iter().enumerate() {
        let per_bench = &rows[i * benchmarks..(i + 1) * benchmarks];
        let viable = per_bench.iter().filter(|row| !row.slowdown).count();
        let min_power = per_bench
            .iter()
            .map(|row| row.relative_power)
            .fold(f64::INFINITY, f64::min);
        #[allow(clippy::cast_precision_loss)]
        let mean_power = per_bench.iter().map(|row| row.relative_power).sum::<f64>()
            / benchmarks as f64;
        let finite_latencies: Vec<f64> = per_bench
            .iter()
            .map(|row| row.relative_latency)
            .filter(|l| l.is_finite())
            .collect();
        #[allow(clippy::cast_precision_loss)]
        let mean_latency = if finite_latencies.is_empty() {
            f64::INFINITY
        } else {
            finite_latencies.iter().sum::<f64>() / finite_latencies.len() as f64
        };
        table.row_owned(vec![
            config.label(),
            format!("{viable}/{benchmarks}"),
            sci(min_power),
            sci(mean_power),
            sci(mean_latency),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\n{} rows ({} configurations x {} benchmarks), {} characterizations memoized",
        rows.len(),
        configs.len(),
        benchmarks,
        explorer.cached_characterizations()
    );
    Ok(())
}

fn cmd_search(opts: &Options) -> Result<(), String> {
    // The region: the study set, narrowed by --tech/--dies, optionally
    // expanded over (or re-pinned to) temperatures. Filters that match
    // nothing are a typed empty-region error, never an empty report.
    let mut configs = MemoryConfig::study_set();
    let mut region = vec!["study".to_string()];
    if let Some(name) = opts.get("tech") {
        let tech = MemoryConfig::parse_technology(name).map_err(|e| e.to_string())?;
        configs.retain(|c| c.technology() == tech);
        region.push(name.to_string());
    }
    if let Some(dies) = opts.get("dies") {
        let dies: u8 = dies.parse().map_err(|_| "bad --dies value".to_string())?;
        MemoryConfig::validate_dies(dies).map_err(|e| format!("--dies: {e}"))?;
        configs.retain(|c| c.dies() == dies);
        region.push(format!("{dies} dies"));
    }
    match opts.get("temps") {
        None => {}
        Some("study") => {
            configs = configs
                .iter()
                .flat_map(|c| {
                    coldtall::cryo::study_temperatures()
                        .iter()
                        .map(|&t| c.clone().at_temperature(t))
                })
                .collect();
            region.push("study temperatures".to_string());
        }
        Some(t) => {
            let kelvin: f64 = t.parse().map_err(|_| "bad --temps value".to_string())?;
            if !(60.0..=400.0).contains(&kelvin) {
                return Err("--temps must be 'study' or between 60 and 400 kelvin".into());
            }
            let kelvin = Kelvin::try_new(kelvin).map_err(|e| e.to_string())?;
            configs = configs
                .iter()
                .map(|c| c.clone().at_temperature(kelvin))
                .collect();
            region.push(format!("{t} K"));
        }
    }
    let objective = match opts.get("objective") {
        None => None,
        Some("power") => Some(0),
        Some("latency") => Some(1),
        Some("area") => Some(2),
        Some(other) => {
            return Err(format!(
                "unknown objective '{other}' (expected power, latency, or area)"
            ))
        }
    };
    let mut constraints = Constraints::none();
    if let Some(v) = opts.get("max-latency") {
        constraints.max_relative_latency =
            v.parse().map_err(|_| "bad --max-latency value".to_string())?;
    }
    if let Some(v) = opts.get("max-area") {
        constraints.max_area_mm2 =
            Some(v.parse().map_err(|_| "bad --max-area value".to_string())?);
    }
    if let Some(v) = opts.get("min-lifetime") {
        constraints.min_lifetime_years =
            v.parse().map_err(|_| "bad --min-lifetime value".to_string())?;
    }
    if let Some(v) = opts.get("max-power") {
        constraints.max_relative_power =
            Some(v.parse().map_err(|_| "bad --max-power value".to_string())?);
    }

    let region = region.join(" x ");
    let explorer = Explorer::with_defaults();
    let outcome = explorer
        .search(&region, &configs, &constraints)
        .map_err(|e| e.to_string())?;
    if outcome.frontier.is_empty() {
        return Err(format!(
            "no design point in region '{region}' is feasible under the given constraints"
        ));
    }

    let mut table = TextTable::new(&[
        "configuration",
        "benchmark",
        "rel_power",
        "rel_latency",
        "area_mm2",
    ]);
    for row in &outcome.frontier {
        table.row_owned(vec![
            row.config_label.clone(),
            row.benchmark.to_string(),
            sci(row.relative_power),
            sci(row.relative_latency),
            format!("{:.2}", row.footprint_mm2),
        ]);
    }
    print!("{}", table.render());
    let stats = outcome.stats;
    println!(
        "\n{} frontier points over {} rows: {} evaluated, {} skipped ({} infeasible, {} pruned)",
        outcome.frontier.len(),
        stats.rows_total,
        stats.points_evaluated,
        stats.points_skipped,
        stats.skipped_infeasible,
        stats.skipped_pruned
    );
    println!(
        "regions: {} expanded, {} refined, {} pruned; {} plane bounds computed",
        stats.regions_expanded, stats.regions_refined, stats.regions_pruned, stats.bounds_computed
    );
    if let Some(k) = objective {
        let coord = |row: &coldtall::core::LlcEvaluation| match k {
            0 => row.relative_power,
            1 => row.relative_latency,
            _ => row.footprint_mm2,
        };
        let best = outcome
            .frontier
            .iter()
            .min_by(|a, b| coord(a).total_cmp(&coord(b)))
            .expect("the frontier was checked non-empty");
        println!(
            "best by {}: {} on {} (rel_power {}, rel_latency {}, {:.2} mm^2)",
            ["power", "latency", "area"][k],
            best.config_label,
            best.benchmark,
            sci(best.relative_power),
            sci(best.relative_latency),
            best.footprint_mm2
        );
    }
    Ok(())
}

fn cmd_table2() -> Result<(), String> {
    let explorer = Explorer::with_defaults();
    let rows = selection::table2(&explorer);
    let mut table = TextTable::new(&["band", "power", "power_alt", "performance", "area"]);
    for row in rows {
        table.row_owned(vec![
            row.band.label().to_string(),
            row.power.label,
            row.power.alternate.unwrap_or_else(|| "-".into()),
            row.performance.label,
            row.area.label,
        ]);
    }
    print!("{}", table.render());
    Ok(())
}
