//! # coldtall
//!
//! A design-space exploration framework for cryogenic and 3D embedded
//! cache memory — a from-scratch Rust reproduction of *"Is the Future
//! Cold or Tall? Design Space Exploration of Cryogenic and 3D Embedded
//! Cache Memory"* (ISPASS 2023).
//!
//! The workspace rebuilds the paper's entire toolflow:
//!
//! * [`tech`](mod@tech) — 22 nm device/interconnect models valid from 77 K to
//!   400 K (the PTM/CryoMEM device layer),
//! * [`cell`] — memory-cell models and the published-cell survey with
//!   tentpole extrema (the NVMExplorer cell database),
//! * [`array`](mod@array) — a CACTI/NVSim/Destiny-style 2D/3D array
//!   characterization engine,
//! * [`cryo`] — cryocooler overheads and temperature sweeps (CryoMEM's
//!   system side),
//! * [`cachesim`] — a trace-driven multi-core cache hierarchy (the
//!   Sniper substitute),
//! * [`workloads`] — SPECrate 2017-like traffic profiles and synthetic
//!   streams,
//! * [`core`] — the cross-stack explorer, application model, and
//!   Table II selection engine (NVMExplorer itself),
//! * [`obs`] — the observability layer: the metrics registry behind
//!   `coldtall --metrics` (cache hit rates, pool utilization, span
//!   timings),
//! * `coldtall-bench` — binaries regenerating every figure and table.
//!
//! # Quickstart
//!
//! ```
//! use coldtall::core::{Explorer, MemoryConfig};
//! use coldtall::workloads::benchmark;
//!
//! let explorer = Explorer::with_defaults();
//! let eval = explorer.evaluate(&MemoryConfig::edram_77k(), benchmark("povray").unwrap());
//! assert!(eval.relative_power < 1e-2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use coldtall_array as array;
pub use coldtall_cachesim as cachesim;
pub use coldtall_cell as cell;
pub use coldtall_core as core;
pub use coldtall_cryo as cryo;
pub use coldtall_obs as obs;
pub use coldtall_par as par;
pub use coldtall_serve as serve;
pub use coldtall_tech as tech;
pub use coldtall_units as units;
pub use coldtall_workloads as workloads;
