//! Assembly of the full array characterization from component models.

use coldtall_units::{Joules, Seconds, SquareMeters, Watts};

use crate::components::{
    bitline, decoder, htree, leakage, refresh, sense, vertical, Ctx,
};
use crate::components::wordline;
use crate::organization::Organization;
use crate::spec::ArraySpec;

/// The array-level characteristics consumed by the design-space
/// exploration: the same quantities NVSim/Destiny/CryoMEM report.
///
/// All energies are per access of the configured line width (including
/// ECC transport); divide by [`ArraySpec::transfer_bits`] via
/// [`ArrayCharacterization::read_energy_per_bit`] for per-bit figures.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayCharacterization {
    /// Random-access read latency.
    pub read_latency: Seconds,
    /// Random-access write latency.
    pub write_latency: Seconds,
    /// Dynamic energy per read access.
    pub read_energy: Joules,
    /// Dynamic energy per write access.
    pub write_energy: Joules,
    /// Static (leakage) power of cells plus periphery.
    pub leakage_power: Watts,
    /// Average refresh power (zero for non-decaying technologies).
    pub refresh_power: Watts,
    /// Fraction of time lost to refresh, in `[0, 1]`.
    pub refresh_busy_fraction: f64,
    /// Storage-node retention, if the technology decays.
    pub retention: Option<Seconds>,
    /// 2D footprint (area of the largest die).
    pub footprint: SquareMeters,
    /// Total silicon area across all dies.
    pub total_silicon: SquareMeters,
    /// Array (storage) efficiency: cell area over total silicon.
    pub array_efficiency: f64,
    /// The internal organization the optimizer selected.
    pub organization: Organization,
    /// Number of stacked dies.
    pub dies: u8,
    /// Bits transferred per access, including ECC.
    pub transfer_bits: f64,
    /// Bank occupancy of one read (the subarray-local portion that
    /// blocks a bank; the H-tree pipelines).
    pub read_cycle_time: Seconds,
    /// Bank occupancy of one write.
    pub write_cycle_time: Seconds,
}

impl ArrayCharacterization {
    /// Evaluates `spec` under a fixed internal organization.
    #[must_use]
    pub fn evaluate(spec: &ArraySpec, org: Organization) -> Self {
        Self::from_ctx(&Ctx::new(spec, org))
    }

    /// Evaluates a pre-built context — the organization search's entry
    /// point, which shares one `DeviceCtx` (and, on the two-phase
    /// path, cached geometries) across candidates. Produces exactly
    /// the bytes of [`ArrayCharacterization::evaluate`] on an equal
    /// context.
    #[must_use]
    pub(crate) fn from_ctx(ctx: &Ctx<'_>) -> Self {
        let (spec, org) = (ctx.spec, ctx.org);

        let t_dec = decoder::delay(ctx);
        let t_wl = wordline::delay(ctx);
        let t_bl_read = bitline::read_delay(ctx);
        let t_bl_write = bitline::write_delay(ctx);
        let t_sense = sense::delay(ctx);
        let t_htree = htree::delay(ctx);
        let t_tsv = vertical::delay(ctx);
        let t_pulse = sense::write_pulse(ctx);

        let read_latency = t_dec + t_wl + t_bl_read + t_sense + t_htree + t_tsv;
        let write_latency = t_dec + t_wl + t_bl_write + t_pulse + t_htree + t_tsv;

        // Bank occupancy: the subarray-local work blocks a bank; decode
        // and H-tree transport pipeline across accesses.
        let read_cycle_time = t_wl + t_bl_read + t_sense;
        let write_cycle_time = t_wl + t_bl_write + t_pulse;

        let e_common = decoder::energy(ctx) + wordline::energy(ctx) + htree::energy(ctx)
            + vertical::energy(ctx);
        let read_energy = e_common + bitline::read_energy(ctx) + sense::read_energy(ctx);
        let write_energy =
            e_common + bitline::write_energy(ctx) + sense::write_energy(ctx);

        let leakage_power = leakage::total(ctx);
        let (refresh_power, refresh_busy_fraction, retention) = match refresh::profile(ctx) {
            Some(p) => (p.power, p.busy_fraction, Some(p.retention)),
            None => (Watts::ZERO, 0.0, None),
        };

        Self {
            read_latency,
            write_latency,
            read_energy,
            write_energy,
            leakage_power,
            refresh_power,
            refresh_busy_fraction,
            retention,
            footprint: SquareMeters::new(ctx.geom.footprint),
            total_silicon: SquareMeters::new(ctx.geom.total_silicon),
            array_efficiency: ctx.geom.array_efficiency(),
            organization: org,
            dies: spec.dies(),
            transfer_bits: spec.transfer_bits(),
            read_cycle_time,
            write_cycle_time,
        }
    }

    /// Peak sustainable read bandwidth in accesses per second: the bank
    /// concurrency over the per-bank read occupancy.
    #[must_use]
    pub fn read_bandwidth(&self) -> f64 {
        crate::calib::BANK_CONCURRENCY / self.read_cycle_time.get()
    }

    /// Peak sustainable write bandwidth in accesses per second.
    #[must_use]
    pub fn write_bandwidth(&self) -> f64 {
        crate::calib::BANK_CONCURRENCY / self.write_cycle_time.get()
    }

    /// Fraction of the array's bank capacity a traffic mix consumes;
    /// values at or above 1 mean the array cannot sustain the traffic.
    #[must_use]
    pub fn bandwidth_utilization(&self, reads_per_sec: f64, writes_per_sec: f64) -> f64 {
        reads_per_sec / self.read_bandwidth() + writes_per_sec / self.write_bandwidth()
    }

    /// Read energy per transferred bit.
    #[must_use]
    pub fn read_energy_per_bit(&self) -> Joules {
        self.read_energy / self.transfer_bits
    }

    /// Write energy per transferred bit.
    #[must_use]
    pub fn write_energy_per_bit(&self) -> Joules {
        self.write_energy / self.transfer_bits
    }

    /// Static power including refresh.
    #[must_use]
    pub fn standby_power(&self) -> Watts {
        self.leakage_power + self.refresh_power
    }

    /// Energy-delay product of a read access, the paper's array
    /// optimization target.
    #[must_use]
    pub fn read_edp(&self) -> f64 {
        self.read_energy.get() * self.read_latency.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
    use coldtall_tech::ProcessNode;
    use coldtall_units::Kelvin;

    fn node() -> ProcessNode {
        ProcessNode::ptm_22nm_hp()
    }

    fn eval(cell: CellModel, dies: u8) -> ArrayCharacterization {
        let n = node();
        let spec = ArraySpec::llc_16mib(cell, &n).with_dies(dies);
        ArrayCharacterization::evaluate(&spec, Organization::new(1024, 1024))
    }

    #[test]
    fn sram_2d_latency_and_energy_are_cacti_scale() {
        let a = eval(CellModel::sram(&node()), 1);
        let ns = a.read_latency.as_nanos();
        assert!(ns > 1.0 && ns < 10.0, "SRAM 2D read latency = {ns} ns");
        let nj = a.read_energy.get() * 1e9;
        assert!(nj > 0.8 && nj < 5.0, "SRAM 2D read energy = {nj} nJ");
    }

    #[test]
    fn writes_cost_at_least_as_much_as_reads_for_sram() {
        let a = eval(CellModel::sram(&node()), 1);
        assert!(a.write_energy >= a.read_energy * 0.9);
        assert!(a.write_latency > Seconds::ZERO);
    }

    #[test]
    fn envm_writes_are_much_slower_than_reads() {
        let pcm = CellModel::tentpole(MemoryTechnology::Pcm, Tentpole::Pessimistic, &node());
        let a = eval(pcm, 1);
        assert!(a.write_latency.get() > 10.0 * a.read_latency.get());
    }

    #[test]
    fn per_bit_energy_consistency() {
        let a = eval(CellModel::sram(&node()), 1);
        let per_bit = a.read_energy_per_bit();
        assert!((per_bit.get() * a.transfer_bits - a.read_energy.get()).abs() < 1e-18);
    }

    #[test]
    fn stacking_preserves_capacity_and_shrinks_footprint() {
        let a1 = eval(CellModel::sram(&node()), 1);
        let a8 = eval(CellModel::sram(&node()), 8);
        assert!(a8.footprint.get() < a1.footprint.get() * 0.35);
        assert_eq!(a8.dies, 8);
    }

    #[test]
    fn cryo_sram_latency_drops_by_more_than_half() {
        let n = node();
        let spec = ArraySpec::llc_16mib(CellModel::sram(&n), &n);
        let warm = ArrayCharacterization::evaluate(
            &spec.clone().at_temperature(Kelvin::REFERENCE),
            Organization::new(1024, 1024),
        );
        let cold = ArrayCharacterization::evaluate(
            &spec.at_temperature_cryo(Kelvin::LN2),
            Organization::new(1024, 1024),
        );
        let ratio = cold.read_latency / warm.read_latency;
        assert!(ratio < 0.5, "cryo latency ratio = {ratio}");
    }
}
