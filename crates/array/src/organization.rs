//! Internal array organization: subarray dimensions and tiling.

use core::fmt;

use coldtall_units::Capacity;

/// The internal organization of a memory bank: the subarray dimensions
/// from which everything else (subarray count, per-die tiling) derives.
///
/// # Examples
///
/// ```
/// use coldtall_array::Organization;
/// use coldtall_units::Capacity;
///
/// let org = Organization::new(512, 1024);
/// let subarrays = org.subarray_count(Capacity::from_mebibytes(16), 1.125);
/// assert_eq!(subarrays, 288); // 16 MiB * 1.125 ECC over 512x1024 subarrays
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Organization {
    rows: u32,
    cols: u32,
}

impl Organization {
    /// Candidate subarray row counts explored by the optimizer.
    pub const ROW_CANDIDATES: [u32; 5] = [128, 256, 512, 1024, 2048];
    /// Candidate subarray column counts explored by the optimizer.
    pub const COL_CANDIDATES: [u32; 5] = [256, 512, 1024, 2048, 4096];

    /// Creates an organization with the given subarray dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or not a power of two (decoders
    /// require power-of-two geometry).
    #[must_use]
    pub fn new(rows: u32, cols: u32) -> Self {
        assert!(
            rows.is_power_of_two() && cols.is_power_of_two(),
            "subarray dimensions must be powers of two, got {rows}x{cols}"
        );
        Self { rows, cols }
    }

    /// Rows per subarray.
    #[must_use]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Columns (bitlines) per subarray.
    #[must_use]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Bits stored in one subarray.
    #[must_use]
    pub fn bits_per_subarray(&self) -> u64 {
        u64::from(self.rows) * u64::from(self.cols)
    }

    /// Number of subarrays needed for `capacity` scaled by the storage
    /// overhead factor (e.g. 1.125 for ECC).
    ///
    /// # Panics
    ///
    /// Panics if `overhead` is not at least 1.
    #[must_use]
    pub fn subarray_count(&self, capacity: Capacity, overhead: f64) -> u64 {
        assert!(overhead >= 1.0, "storage overhead must be >= 1");
        let bits = (capacity.bits_f64() * overhead).ceil() as u64;
        bits.div_ceil(self.bits_per_subarray())
    }

    /// Subarrays placed on each die when tiled over `dies` dies.
    #[must_use]
    pub fn subarrays_per_die(&self, capacity: Capacity, overhead: f64, dies: u8) -> u64 {
        self.subarray_count(capacity, overhead)
            .div_ceil(u64::from(dies.max(1)))
    }

    /// Every candidate organization, row-major.
    pub fn candidates() -> impl Iterator<Item = Self> {
        Self::ROW_CANDIDATES.into_iter().flat_map(|rows| {
            Self::COL_CANDIDATES
                .into_iter()
                .map(move |cols| Self::new(rows, cols))
        })
    }
}

impl fmt::Display for Organization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subarray_count_covers_capacity() {
        let org = Organization::new(512, 512);
        let cap = Capacity::from_mebibytes(16);
        let n = org.subarray_count(cap, 1.0);
        assert!(n * org.bits_per_subarray() >= cap.bits());
        assert_eq!(n, 512);
    }

    #[test]
    fn ecc_overhead_adds_subarrays() {
        let org = Organization::new(512, 512);
        let cap = Capacity::from_mebibytes(16);
        assert!(org.subarray_count(cap, 1.125) > org.subarray_count(cap, 1.0));
    }

    #[test]
    fn per_die_tiling() {
        let org = Organization::new(512, 512);
        let cap = Capacity::from_mebibytes(16);
        assert_eq!(org.subarrays_per_die(cap, 1.0, 8), 64);
        assert_eq!(org.subarrays_per_die(cap, 1.0, 1), 512);
    }

    #[test]
    fn candidates_are_all_unique_powers_of_two() {
        let all: Vec<_> = Organization::candidates().collect();
        assert_eq!(
            all.len(),
            Organization::ROW_CANDIDATES.len() * Organization::COL_CANDIDATES.len()
        );
        for org in &all {
            assert!(org.rows().is_power_of_two());
            assert!(org.cols().is_power_of_two());
        }
    }

    #[test]
    fn display() {
        assert_eq!(Organization::new(256, 1024).to_string(), "256x1024");
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn rejects_non_power_of_two() {
        let _ = Organization::new(300, 512);
    }
}
