//! Error-correction schemes and their storage overheads.

use core::fmt;

/// The error-correction scheme protecting the array.
///
/// NVMExplorer's inputs include application fault-tolerance demands;
/// stronger codes cost proportionally more storage, transport, and
/// (through the larger arrays) energy. eNVMs with marginal retention or
/// endurance are typically deployed with stronger-than-SECDED codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EccScheme {
    /// No check bits.
    None,
    /// Single-error-correct, double-error-detect: one check byte per
    /// eight data bytes (the study default).
    #[default]
    Secded,
    /// A BCH-class multi-bit-correcting code: two check bytes per eight
    /// data bytes.
    Bch,
}

impl EccScheme {
    /// All schemes, weakest first.
    pub const ALL: [Self; 3] = [Self::None, Self::Secded, Self::Bch];

    /// Storage (and transport) overhead factor.
    #[must_use]
    pub fn storage_overhead(self) -> f64 {
        match self {
            Self::None => 1.0,
            Self::Secded => 1.125,
            Self::Bch => 1.25,
        }
    }

    /// Correctable random bit errors per protected word.
    #[must_use]
    pub fn correctable_bits(self) -> u32 {
        match self {
            Self::None => 0,
            Self::Secded => 1,
            Self::Bch => 3,
        }
    }
}

impl fmt::Display for EccScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::None => "no-ECC",
            Self::Secded => "SECDED",
            Self::Bch => "BCH",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_are_ordered() {
        let mut prev = 0.0;
        for scheme in EccScheme::ALL {
            assert!(scheme.storage_overhead() > prev);
            prev = scheme.storage_overhead();
        }
        assert_eq!(EccScheme::None.storage_overhead(), 1.0);
        assert_eq!(EccScheme::Secded.storage_overhead(), 1.125);
    }

    #[test]
    fn correction_strength_is_ordered() {
        assert!(EccScheme::Bch.correctable_bits() > EccScheme::Secded.correctable_bits());
        assert_eq!(EccScheme::None.correctable_bits(), 0);
    }

    #[test]
    fn default_is_the_study_scheme() {
        assert_eq!(EccScheme::default(), EccScheme::Secded);
    }
}
