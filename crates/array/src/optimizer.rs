//! Internal-organization optimizer.

use core::fmt;

use crate::characterize::ArrayCharacterization;
use crate::organization::Organization;
use crate::spec::ArraySpec;

/// The objective the organization search minimizes.
///
/// The paper's arrays are optimized for energy-delay product; the other
/// objectives support the `Optimal LLC` selection of Table II and
/// ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Minimize read energy times read latency (the paper's default).
    #[default]
    EnergyDelayProduct,
    /// Minimize read latency.
    ReadLatency,
    /// Minimize read energy.
    ReadEnergy,
    /// Minimize the 2D footprint.
    Area,
    /// Minimize standby (leakage + refresh) power.
    StandbyPower,
}

impl Objective {
    /// The scalar score this objective assigns (lower is better).
    #[must_use]
    pub fn score(self, array: &ArrayCharacterization) -> f64 {
        match self {
            Self::EnergyDelayProduct => array.read_edp(),
            Self::ReadLatency => array.read_latency.get(),
            Self::ReadEnergy => array.read_energy.get(),
            Self::Area => array.footprint.get(),
            Self::StandbyPower => array.standby_power().get(),
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::EnergyDelayProduct => "energy-delay product",
            Self::ReadLatency => "read latency",
            Self::ReadEnergy => "read energy",
            Self::Area => "area",
            Self::StandbyPower => "standby power",
        })
    }
}

/// Searches every candidate organization and returns the characterization
/// minimizing `objective`.
///
/// Organizations whose subarray would exceed the total capacity (more
/// subarray bits than the array stores) are skipped; at least one
/// candidate always remains for the capacities in this study.
///
/// The candidate evaluations fan out over the shared worker pool
/// (`coldtall-par`), so a single top-level characterization scales
/// with core count; when the caller is itself a pool worker (an outer
/// sweep is already parallel) the search runs inline. The reduction
/// always runs over results in candidate order, so the chosen
/// organization does not depend on scheduling.
///
/// # Panics
///
/// Panics if no candidate organization fits the spec (capacity smaller
/// than the smallest subarray).
#[must_use]
pub fn optimize(spec: &ArraySpec, objective: Objective) -> ArrayCharacterization {
    let total_bits = spec.capacity().bits_f64() * spec.storage_overhead();
    let feasible: Vec<Organization> = Organization::candidates()
        .filter(|org| {
            // A subarray must not dwarf the per-die share of the array.
            let per_die = total_bits / f64::from(spec.dies());
            org.bits_per_subarray() as f64 <= per_die
        })
        .collect();
    coldtall_par::parallel_map_slice(&feasible, |&org| {
        ArrayCharacterization::evaluate(spec, org)
    })
    .into_iter()
    .min_by(|a, b| {
        objective
            .score(a)
            .partial_cmp(&objective.score(b))
            .expect("objective scores are finite")
    })
    .expect("no feasible organization for the given capacity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
    use coldtall_tech::ProcessNode;

    fn spec() -> ArraySpec {
        let node = ProcessNode::ptm_22nm_hp();
        ArraySpec::llc_16mib(CellModel::sram(&node), &node)
    }

    #[test]
    fn edp_choice_is_no_worse_than_any_candidate() {
        let s = spec();
        let best = optimize(&s, Objective::EnergyDelayProduct);
        for org in Organization::candidates() {
            let other = ArrayCharacterization::evaluate(&s, org);
            assert!(best.read_edp() <= other.read_edp() + 1e-30);
        }
    }

    #[test]
    fn objectives_pick_their_own_optimum() {
        let s = spec();
        let fastest = optimize(&s, Objective::ReadLatency);
        let leanest = optimize(&s, Objective::ReadEnergy);
        assert!(fastest.read_latency <= leanest.read_latency);
        assert!(leanest.read_energy <= fastest.read_energy);
    }

    #[test]
    fn area_objective_minimizes_footprint() {
        let node = ProcessNode::ptm_22nm_hp();
        let pcm = CellModel::tentpole(MemoryTechnology::Pcm, Tentpole::Optimistic, &node);
        let s = ArraySpec::llc_16mib(pcm, &node);
        let smallest = optimize(&s, Objective::Area);
        let fastest = optimize(&s, Objective::ReadLatency);
        assert!(smallest.footprint.get() <= fastest.footprint.get());
    }

    #[test]
    fn optimizer_respects_die_count() {
        let s = spec().with_dies(8);
        let a = optimize(&s, Objective::EnergyDelayProduct);
        assert_eq!(a.dies, 8);
    }
}
