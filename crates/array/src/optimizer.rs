//! Internal-organization optimizer.

use core::fmt;

use coldtall_units::{Joules, Seconds, Watts};

use crate::characterize::ArrayCharacterization;
use crate::components::{
    bitline, decoder, htree, leakage, refresh, sense, vertical, wordline, Ctx, DeviceCtx,
    Geometry,
};
use crate::organization::Organization;
use crate::spec::ArraySpec;

/// The objective the organization search minimizes.
///
/// The paper's arrays are optimized for energy-delay product; the other
/// objectives support the `Optimal LLC` selection of Table II and
/// ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Minimize read energy times read latency (the paper's default).
    #[default]
    EnergyDelayProduct,
    /// Minimize read latency.
    ReadLatency,
    /// Minimize read energy.
    ReadEnergy,
    /// Minimize the 2D footprint.
    Area,
    /// Minimize standby (leakage + refresh) power.
    StandbyPower,
}

impl Objective {
    /// The scalar score this objective assigns (lower is better).
    #[must_use]
    pub fn score(self, array: &ArrayCharacterization) -> f64 {
        match self {
            Self::EnergyDelayProduct => array.read_edp(),
            Self::ReadLatency => array.read_latency.get(),
            Self::ReadEnergy => array.read_energy.get(),
            Self::Area => array.footprint.get(),
            Self::StandbyPower => array.standby_power().get(),
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::EnergyDelayProduct => "energy-delay product",
            Self::ReadLatency => "read latency",
            Self::ReadEnergy => "read energy",
            Self::Area => "area",
            Self::StandbyPower => "standby power",
        })
    }
}

/// The feasible candidate organizations of `spec`, each paired with
/// its derived (temperature-invariant) geometry, in canonical candidate
/// order.
///
/// Organizations whose subarray would exceed the per-die share of the
/// array (more subarray bits than one die stores) are skipped; at
/// least one candidate always remains for the capacities in this
/// study. This is phase 1 of the two-phase kernel — the list depends
/// on capacity, cell, node, and stacking, never on the operating
/// point, so [`crate::OrgGeometry`] caches it across a temperature
/// sweep.
pub(crate) fn feasible_candidates(spec: &ArraySpec) -> Vec<(Organization, Geometry)> {
    let total_bits = spec.capacity().bits_f64() * spec.storage_overhead();
    Organization::candidates()
        .filter(|org| {
            // A subarray must not dwarf the per-die share of the array.
            let per_die = total_bits / f64::from(spec.dies());
            org.bits_per_subarray() as f64 <= per_die
        })
        .map(|org| (org, Geometry::derive(spec, org)))
        .collect()
}

/// Read latency assembled term-for-term as
/// [`ArrayCharacterization::from_ctx`] assembles it, computing only the
/// read-path components. Bit-identical to the `read_latency` field of
/// the full characterization for an equal context.
fn read_latency(ctx: &Ctx<'_>) -> Seconds {
    decoder::delay(ctx)
        + wordline::delay(ctx)
        + bitline::read_delay(ctx)
        + sense::delay(ctx)
        + htree::delay(ctx)
        + vertical::delay(ctx)
}

/// Read energy assembled term-for-term as
/// [`ArrayCharacterization::from_ctx`] assembles it (the shared-term
/// sum there associates identically). Bit-identical to the
/// `read_energy` field of the full characterization.
fn read_energy(ctx: &Ctx<'_>) -> Joules {
    decoder::energy(ctx)
        + wordline::energy(ctx)
        + htree::energy(ctx)
        + vertical::energy(ctx)
        + bitline::read_energy(ctx)
        + sense::read_energy(ctx)
}

/// Standby power assembled as
/// [`ArrayCharacterization::standby_power`] assembles it. Bit-identical
/// to `leakage_power + refresh_power` of the full characterization.
fn standby_power(ctx: &Ctx<'_>) -> Watts {
    let refresh = refresh::profile(ctx).map_or(Watts::ZERO, |p| p.power);
    leakage::total(ctx) + refresh
}

/// A monotone lower bound on [`Objective::score`] for the candidate in
/// `ctx`, so `lower_bound(ctx, o) <= o.score(&from_ctx(ctx))` always
/// holds (see `DESIGN.md` § Two-phase characterization kernel for the
/// soundness argument). The bound is in fact *exact*: it is the
/// objective's own score, evaluated from only the component models the
/// objective reads — the read path for EDP/latency/energy, geometry
/// for area, leakage and refresh for standby power. Each expression
/// mirrors [`ArrayCharacterization::from_ctx`]'s term order exactly,
/// so the bound equals the eventual score to the last bit; what makes
/// it cheap is everything it does *not* run (the write-path, leakage,
/// and refresh models for the read objectives — roughly a third of a
/// full characterization, including the temperature-dependent
/// subthreshold and retention physics).
fn lower_bound(ctx: &Ctx<'_>, objective: Objective) -> f64 {
    match objective {
        // Operand order matches `ArrayCharacterization::read_edp`.
        Objective::EnergyDelayProduct => read_energy(ctx).get() * read_latency(ctx).get(),
        Objective::ReadLatency => read_latency(ctx).get(),
        Objective::ReadEnergy => read_energy(ctx).get(),
        Objective::Area => ctx.geom.footprint,
        Objective::StandbyPower => standby_power(ctx).get(),
    }
}

/// [`Objective::score`]'s lower bound for one candidate, built from a
/// fresh context. Exposed so the prune's soundness invariant
/// (`score_lower_bound <= score`) is testable from outside the crate
/// (the bound is exact, so equality is what tests observe).
#[must_use]
pub fn score_lower_bound(spec: &ArraySpec, org: Organization, objective: Objective) -> f64 {
    lower_bound(&Ctx::new(spec, org), objective)
}

/// Componentwise floors over a feasible candidate list at one operating
/// point: for each physical quantity the application model consumes,
/// the minimum over *every* candidate organization.
///
/// Whatever objective the organization search later minimizes, the
/// chosen organization is one of the candidates, and each of its
/// characterized fields is produced by the very component expression
/// minimized here (the helpers above are bit-identical to the term
/// order [`crate::ArrayCharacterization`] is built from). The floors
/// are
/// therefore sound lower bounds on the chosen array's fields for any
/// [`Objective`] — the generalization of [`score_lower_bound`] from one
/// candidate's score to a whole candidate region's field vector, which
/// is what the design-space search in `coldtall-core` prunes with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentFloors {
    /// Minimum read latency over the candidates, in seconds.
    pub read_latency_s: f64,
    /// Minimum read energy per access over the candidates, in joules.
    pub read_energy_j: f64,
    /// Minimum standby (leakage + refresh) power over the candidates,
    /// in watts.
    pub standby_power_w: f64,
    /// Minimum 2D footprint over the candidates, in square meters.
    pub footprint_m2: f64,
    /// Minimum refresh busy fraction over the candidates (`0.0` for
    /// refresh-free cells).
    pub refresh_busy_fraction: f64,
}

/// Computes [`ComponentFloors`] over `candidates` at `spec`'s operating
/// point, sharing one device context across the scan exactly as
/// [`search`] does.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub(crate) fn component_floors(
    spec: &ArraySpec,
    candidates: &[(Organization, Geometry)],
) -> ComponentFloors {
    assert!(
        !candidates.is_empty(),
        "no feasible organization for the given capacity"
    );
    let devices = DeviceCtx::new(spec);
    let mut floors = ComponentFloors {
        read_latency_s: f64::INFINITY,
        read_energy_j: f64::INFINITY,
        standby_power_w: f64::INFINITY,
        footprint_m2: f64::INFINITY,
        refresh_busy_fraction: f64::INFINITY,
    };
    for &(org, geom) in candidates {
        let ctx = Ctx::with_parts(spec, org, geom, &devices);
        floors.read_latency_s = floors.read_latency_s.min(read_latency(&ctx).get());
        floors.read_energy_j = floors.read_energy_j.min(read_energy(&ctx).get());
        floors.standby_power_w = floors.standby_power_w.min(standby_power(&ctx).get());
        floors.footprint_m2 = floors.footprint_m2.min(ctx.geom.footprint);
        let busy = refresh::profile(&ctx).map_or(0.0, |p| p.busy_fraction);
        floors.refresh_busy_fraction = floors.refresh_busy_fraction.min(busy);
    }
    floors
}

/// Scans `candidates` in order and returns the characterization
/// minimizing `objective`, pruning candidates whose lower bound already
/// exceeds the best score seen.
///
/// The prune never changes the argmin: a candidate is skipped only when
/// its (sound) lower bound is *strictly* above the incumbent score, and
/// the incumbent is replaced only on a *strictly* lower score — exactly
/// the first-of-equal-minima semantics of `Iterator::min_by` over the
/// same order, so ties still resolve to the earliest candidate. With
/// the exact bound only the running minima of the scan (typically 2–4
/// of the 25 candidates) pay a full characterization; every other
/// candidate stops after the objective's own component terms.
///
/// # Panics
///
/// Panics if `candidates` is empty (capacity smaller than the smallest
/// subarray) or an objective score is NaN (the models never produce
/// one for a valid spec).
pub(crate) fn search(
    spec: &ArraySpec,
    candidates: &[(Organization, Geometry)],
    objective: Objective,
) -> ArrayCharacterization {
    let devices = DeviceCtx::new(spec);
    let mut best: Option<(f64, ArrayCharacterization)> = None;
    for &(org, geom) in candidates {
        let ctx = Ctx::with_parts(spec, org, geom, &devices);
        if let Some((incumbent, _)) = &best {
            if lower_bound(&ctx, objective) > *incumbent {
                continue;
            }
        }
        let array = ArrayCharacterization::from_ctx(&ctx);
        let score = objective.score(&array);
        assert!(!score.is_nan(), "objective scores are finite");
        if best.as_ref().is_none_or(|(incumbent, _)| score < *incumbent) {
            best = Some((score, array));
        }
    }
    best.expect("no feasible organization for the given capacity")
        .1
}

/// Searches every candidate organization and returns the characterization
/// minimizing `objective`.
///
/// Runs the two-phase kernel inline: feasible candidates and their
/// geometries are derived once, then the pruned sequential scan
/// evaluates them. Sweeps that revisit one geometry at many
/// temperatures should hold a [`crate::OrgGeometry`] instead, which
/// caches phase 1.
///
/// # Panics
///
/// Panics if no candidate organization fits the spec (capacity smaller
/// than the smallest subarray).
#[must_use]
pub fn optimize(spec: &ArraySpec, objective: Objective) -> ArrayCharacterization {
    search(spec, &feasible_candidates(spec), objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
    use coldtall_tech::ProcessNode;

    fn spec() -> ArraySpec {
        let node = ProcessNode::ptm_22nm_hp();
        ArraySpec::llc_16mib(CellModel::sram(&node), &node)
    }

    #[test]
    fn edp_choice_is_no_worse_than_any_candidate() {
        let s = spec();
        let best = optimize(&s, Objective::EnergyDelayProduct);
        for org in Organization::candidates() {
            let other = ArrayCharacterization::evaluate(&s, org);
            assert!(best.read_edp() <= other.read_edp() + 1e-30);
        }
    }

    #[test]
    fn objectives_pick_their_own_optimum() {
        let s = spec();
        let fastest = optimize(&s, Objective::ReadLatency);
        let leanest = optimize(&s, Objective::ReadEnergy);
        assert!(fastest.read_latency <= leanest.read_latency);
        assert!(leanest.read_energy <= fastest.read_energy);
    }

    #[test]
    fn area_objective_minimizes_footprint() {
        let node = ProcessNode::ptm_22nm_hp();
        let pcm = CellModel::tentpole(MemoryTechnology::Pcm, Tentpole::Optimistic, &node);
        let s = ArraySpec::llc_16mib(pcm, &node);
        let smallest = optimize(&s, Objective::Area);
        let fastest = optimize(&s, Objective::ReadLatency);
        assert!(smallest.footprint.get() <= fastest.footprint.get());
    }

    #[test]
    fn optimizer_respects_die_count() {
        let s = spec().with_dies(8);
        let a = optimize(&s, Objective::EnergyDelayProduct);
        assert_eq!(a.dies, 8);
    }
}
