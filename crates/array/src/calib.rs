//! Calibration constants of the array engine.
//!
//! Every empirical knob of the CACTI/NVSim/Destiny-style models lives
//! here, with the anchor it was calibrated against. The integration test
//! suite (`tests/` at the workspace root) asserts the paper's relative
//! anchors in tolerant bands, so a retuned constant that breaks a
//! reported shape fails loudly.

/// Depth (in feature sizes) of the row-decoder / wordline-driver strip
/// alongside each subarray.
pub const DECODER_STRIP_DEPTH_F: f64 = 60.0;

/// Depth (in feature sizes) of a voltage-mode sense-amplifier strip.
pub const SENSE_STRIP_DEPTH_F_VOLTAGE: f64 = 120.0;

/// Depth (in feature sizes) of a current-mode sense-amplifier strip
/// (eNVM reads need reference generation and larger sense amps).
pub const SENSE_STRIP_DEPTH_F_CURRENT: f64 = 250.0;

/// Control/timing overhead as a fraction of subarray area.
pub const CONTROL_AREA_OVERHEAD: f64 = 0.12;

/// H-tree routing area as a fraction of per-die array content.
pub const HTREE_AREA_FRACTION: f64 = 0.08;

/// Base-die global periphery (IO ring, bank control) for volatile
/// technologies, square millimeters at 16 MiB; scales with sqrt(capacity).
pub const GLOBAL_FLOOR_VOLATILE_MM2: f64 = 0.40;

/// Base-die global periphery for eNVMs, square millimeters at 16 MiB.
/// Larger than the volatile floor: write charge pumps and verify logic.
pub const GLOBAL_FLOOR_NVM_MM2: f64 = 0.50;

/// Extra area factor applied to peripheral strips for dual-port arrays.
pub const DUAL_PORT_AREA_FACTOR: f64 = 1.10;

/// Extra energy factor for dual-port arrays (heavier bit/wordlines).
pub const DUAL_PORT_ENERGY_FACTOR: f64 = 1.08;

/// H-tree request + response path length as a multiple of the die-edge
/// length `sqrt(footprint)`.
pub const HTREE_PATH_FACTOR: f64 = 2.0;

/// Conservatism factor on repeated-wire H-tree delay covering bank-level
/// routing, arbitration, and setup margins; calibrated against CACTI-class
/// absolute latencies (~150 ps/mm effective at 300 K).
pub const HTREE_DELAY_MARGIN: f64 = 3.0;

/// Sensing margin factor on bitline development time (process variation
/// guard-banding, as in CACTI).
pub const BITLINE_MARGIN: f64 = 2.0;

/// Fraction of a cell's nominal drive current available when discharging
/// a bitline through the stacked access path.
pub const CELL_DRIVE_FACTOR: f64 = 0.4;

/// Write-driver width in multiples of the minimum transistor width.
pub const WRITE_DRIVER_WIDTH_MULT: f64 = 8.0;

/// Wordline-driver width in multiples of the minimum transistor width.
pub const WL_DRIVER_WIDTH_MULT: f64 = 10.0;

/// Fan-of-four delay multiplier per decoder stage (3 inverting stages).
pub const DECODER_STAGE_FO4: f64 = 2.5;

/// Effective FO4 calibration factor on the raw `R_eq C_gate` product.
pub const FO4_FACTOR: f64 = 2.0;

/// Sense-amplifier firing energy per bit, joules.
pub const SENSE_ENERGY_PER_BIT: f64 = 2.0e-15;

/// Broadcast/background switched capacitance per access, expressed as
/// energy per square meter of the accessed die's footprint at nominal
/// 0.8 V. Captures address broadcast, clock/control distribution, and
/// partially-switched H-tree branches; calibrated so a 16 MiB 2D SRAM
/// read costs ~2 nJ per 576-bit access, with ~75% saved at 8 dies.
pub const BROADCAST_ENERGY_PER_M2: f64 = 72.0e-12 * 1e6;

/// Address + command bits carried by the H-tree alongside the data line.
pub const ADDRESS_BITS: f64 = 40.0;

/// Effective leaking transistor width per square meter of peripheral
/// silicon (meters of width per square meter), medium-Vth periphery.
pub const PERIPH_WIDTH_DENSITY_PER_M2: f64 = 30e-3 / 1e-6;

/// Threshold boost of peripheral devices relative to logic (volts).
pub const PERIPH_VTH_BOOST: f64 = 0.10;

/// Static-bias multiplier on peripheral leakage for current-sense arrays
/// (reference generators and current-mode sense amplifiers keep a bias
/// network alive). The bias scales with the square of the cell read
/// energy relative to [`CURRENT_SENSE_REFERENCE_PJ`] — heavier read
/// currents need beefier reference networks — clamped to
/// [`CURRENT_SENSE_LEAK_MAX`]. Calibrated against the paper's Fig. 7
/// observation that eNVM LLCs sit 2-10x below SRAM total power at low
/// traffic rather than orders of magnitude below.
pub const CURRENT_SENSE_LEAK_FACTOR: f64 = 2.0;

/// Reference cell read energy (picojoules) at which the current-sense
/// bias multiplier equals [`CURRENT_SENSE_LEAK_FACTOR`].
pub const CURRENT_SENSE_REFERENCE_PJ: f64 = 1.4;

/// Upper clamp on the current-sense bias multiplier.
pub const CURRENT_SENSE_LEAK_MAX: f64 = 12.0;

/// TSV electrical capacitance, farads (face-to-back micro-bump TSV).
pub const TSV_CAP_F2B: f64 = 20.0e-15;

/// Bond-point capacitance for face-to-face stacking, farads.
pub const TSV_CAP_F2F: f64 = 5.0e-15;

/// Inter-layer via capacitance for monolithic stacking, farads.
pub const TSV_CAP_MONOLITHIC: f64 = 0.5e-15;

/// TSV pitch for face-to-back stacking, meters.
pub const TSV_PITCH_F2B: f64 = 5.0e-6;

/// Bond pitch for face-to-face stacking, meters.
pub const TSV_PITCH_F2F: f64 = 3.0e-6;

/// Via pitch for monolithic stacking, meters.
pub const TSV_PITCH_MONOLITHIC: f64 = 0.2e-6;

/// Vertical-bus signal count beyond the data line (address, command,
/// redundancy), added to the data width when sizing the TSV field.
pub const TSV_OVERHEAD_SIGNALS: f64 = 128.0;

/// Per-die TSV field growth factor per additional die (keep-out and
/// redundancy).
pub const TSV_GROWTH_PER_DIE: f64 = 0.02;

/// Effective driver resistance charging one TSV, ohms.
pub const TSV_DRIVE_OHMS: f64 = 1.0e3;

/// Performance derating of devices on upper monolithic layers.
pub const MONOLITHIC_DEVICE_DERATE: f64 = 1.05;

/// Number of independently-schedulable banks the LLC exposes for
/// concurrent accesses (matching the 16-way banked organization of the
/// Table I cache). Bounds the sustainable access bandwidth.
pub const BANK_CONCURRENCY: f64 = 16.0;

/// Margin factor on the storage-node restore energy of a row refresh
/// (driver and timing overheads beyond the ideal `C_storage V^2` per
/// cell).
pub const REFRESH_ENERGY_FACTOR: f64 = 0.5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // guards against miscalibration edits
    fn constants_are_sane() {
        assert!(SENSE_STRIP_DEPTH_F_CURRENT > SENSE_STRIP_DEPTH_F_VOLTAGE);
        assert!(GLOBAL_FLOOR_NVM_MM2 > GLOBAL_FLOOR_VOLATILE_MM2);
        assert!(TSV_CAP_MONOLITHIC < TSV_CAP_F2F && TSV_CAP_F2F < TSV_CAP_F2B);
        assert!(TSV_PITCH_MONOLITHIC < TSV_PITCH_F2F && TSV_PITCH_F2F < TSV_PITCH_F2B);
        assert!(BITLINE_MARGIN >= 1.0);
        assert!(CURRENT_SENSE_LEAK_FACTOR >= 1.0);
        assert!((0.0..1.0).contains(&HTREE_AREA_FRACTION));
    }
}
