//! Array specification: what to characterize.

use core::fmt;

use coldtall_cell::CellModel;
use coldtall_tech::{OperatingPoint, ProcessNode};
use coldtall_units::{Capacity, Kelvin};

use crate::characterize::ArrayCharacterization;
use crate::ecc::EccScheme;
use crate::optimizer::{optimize, Objective};
use crate::stacking::Stacking;

/// A rejected array specification: the builder was asked for a
/// physically meaningless configuration.
///
/// Each variant's [`fmt::Display`] message matches the panic message of
/// the corresponding infallible builder, so migrating a call site from
/// `with_x` to `try_with_x` never changes what the user reads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpecError {
    /// The requested die count has no stacking style that supports it.
    UnsupportedDieCount {
        /// The rejected die count.
        dies: u8,
    },
    /// The stacking style cannot stack that many dies (e.g.
    /// face-to-face beyond two).
    StackingMismatch {
        /// The requested stacking style.
        stacking: Stacking,
        /// The rejected die count.
        dies: u8,
    },
    /// The capacity cannot hold even one access line.
    CapacityBelowLine {
        /// The rejected capacity, in bits.
        capacity_bits: u64,
        /// The line width the capacity must at least hold.
        line_bits: u32,
    },
    /// A zero-width access line.
    ZeroLineWidth,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnsupportedDieCount { dies } => write!(f, "unsupported die count {dies}"),
            Self::StackingMismatch { stacking, dies } => {
                write!(f, "{stacking} does not support {dies} dies")
            }
            Self::CapacityBelowLine {
                capacity_bits,
                line_bits,
            } => write!(
                f,
                "capacity must hold at least one line ({capacity_bits} b < {line_bits} b)"
            ),
            Self::ZeroLineWidth => write!(f, "line width must be positive"),
        }
    }
}

impl std::error::Error for SpecError {}

/// A complete description of a memory array to characterize: the cell,
/// macro-level parameters (capacity, line width, ports, ECC), the 3D
/// configuration, and the electrical operating point.
///
/// `ArraySpec` is a builder: start from [`ArraySpec::new`] or the
/// paper-default [`ArraySpec::llc_16mib`] and chain configuration calls.
///
/// # Examples
///
/// ```
/// use coldtall_array::{ArraySpec, Objective, Stacking};
/// use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
/// use coldtall_tech::ProcessNode;
///
/// let node = ProcessNode::ptm_22nm_hp();
/// let cell = CellModel::tentpole(MemoryTechnology::Pcm, Tentpole::Optimistic, &node);
/// let spec = ArraySpec::llc_16mib(cell, &node).with_dies(8);
/// let array = spec.characterize(Objective::EnergyDelayProduct);
/// assert_eq!(array.dies, 8);
/// ```
#[derive(Debug, Clone)]
pub struct ArraySpec {
    cell: CellModel,
    node: ProcessNode,
    op: OperatingPoint,
    capacity: Capacity,
    line_bits: u32,
    ecc: EccScheme,
    dual_port: bool,
    dies: u8,
    stacking: Stacking,
}

impl ArraySpec {
    /// Creates a specification with study defaults: 16 MiB, 512-bit line,
    /// ECC, dual-port, single die, 350 K nominal operation.
    #[must_use]
    pub fn new(cell: CellModel, node: &ProcessNode, capacity: Capacity) -> Self {
        Self {
            cell,
            node: node.clone(),
            op: OperatingPoint::nominal(node, Kelvin::REFERENCE),
            capacity,
            line_bits: 512,
            ecc: EccScheme::Secded,
            dual_port: true,
            dies: 1,
            stacking: Stacking::Planar,
        }
    }

    /// The paper's LLC configuration: a 16 MiB, 16-way, dual-port,
    /// ECC-protected cache array at 22 nm.
    #[must_use]
    pub fn llc_16mib(cell: CellModel, node: &ProcessNode) -> Self {
        Self::new(cell, node, Capacity::from_mebibytes(16))
    }

    /// Sets the die count, selecting the default stacking style for it
    /// (planar for 1 die, face-to-back otherwise), rejecting die counts
    /// no style supports.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::UnsupportedDieCount`] if `dies` is zero or
    /// above the default style's limit.
    pub fn try_with_dies(mut self, dies: u8) -> Result<Self, SpecError> {
        let stacking = Stacking::default_for_dies(dies);
        if !stacking.supports_dies(dies) {
            return Err(SpecError::UnsupportedDieCount { dies });
        }
        self.dies = dies;
        self.stacking = stacking;
        Ok(self)
    }

    /// Sets the die count, selecting the default stacking style for it
    /// (planar for 1 die, face-to-back otherwise).
    ///
    /// Precondition: a stacking style supporting `dies` exists (1-8).
    /// Use [`ArraySpec::try_with_dies`] for untrusted inputs.
    ///
    /// # Panics
    ///
    /// Panics if `dies` is zero or above the style's limit.
    #[must_use]
    pub fn with_dies(self, dies: u8) -> Self {
        self.try_with_dies(dies).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Sets an explicit stacking style and die count, rejecting
    /// unsupported combinations.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::StackingMismatch`] if the style does not
    /// support the die count (e.g. face-to-face beyond two dies).
    pub fn try_with_stacking(mut self, stacking: Stacking, dies: u8) -> Result<Self, SpecError> {
        if !stacking.supports_dies(dies) {
            return Err(SpecError::StackingMismatch { stacking, dies });
        }
        self.stacking = stacking;
        self.dies = dies;
        Ok(self)
    }

    /// Sets an explicit stacking style and die count.
    ///
    /// Precondition: `stacking.supports_dies(dies)`. Use
    /// [`ArraySpec::try_with_stacking`] for untrusted inputs.
    ///
    /// # Panics
    ///
    /// Panics if the style does not support the die count (e.g.
    /// face-to-face beyond two dies).
    #[must_use]
    pub fn with_stacking(self, stacking: Stacking, dies: u8) -> Self {
        self.try_with_stacking(stacking, dies)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Sets the operating point (temperature and voltages).
    #[must_use]
    pub fn with_operating_point(mut self, op: OperatingPoint) -> Self {
        self.op = op;
        self
    }

    /// Convenience: nominal operation at temperature `t`.
    #[must_use]
    pub fn at_temperature(mut self, t: Kelvin) -> Self {
        self.op = OperatingPoint::nominal(&self.node, t);
        self
    }

    /// Convenience: cryo-policy operation at temperature `t`.
    #[must_use]
    pub fn at_temperature_cryo(mut self, t: Kelvin) -> Self {
        self.op = OperatingPoint::cryo_optimized(&self.node, t);
        self
    }

    /// Replaces the usable capacity (e.g. for hybrid-partition
    /// studies), rejecting capacities below one access line.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::CapacityBelowLine`] if the capacity cannot
    /// hold one line.
    pub fn try_with_capacity(mut self, capacity: Capacity) -> Result<Self, SpecError> {
        if capacity.bits() < u64::from(self.line_bits) {
            return Err(SpecError::CapacityBelowLine {
                capacity_bits: capacity.bits(),
                line_bits: self.line_bits,
            });
        }
        self.capacity = capacity;
        Ok(self)
    }

    /// Replaces the usable capacity (e.g. for hybrid-partition studies).
    ///
    /// Precondition: the capacity holds at least one line. Use
    /// [`ArraySpec::try_with_capacity`] for untrusted inputs.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is below one line.
    #[must_use]
    pub fn with_capacity(self, capacity: Capacity) -> Self {
        self.try_with_capacity(capacity)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Sets the access-line width in data bits, rejecting zero.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::ZeroLineWidth`] if `bits` is zero.
    pub fn try_with_line_bits(mut self, bits: u32) -> Result<Self, SpecError> {
        if bits == 0 {
            return Err(SpecError::ZeroLineWidth);
        }
        self.line_bits = bits;
        Ok(self)
    }

    /// Sets the access-line width in data bits.
    ///
    /// Precondition: `bits > 0`. Use [`ArraySpec::try_with_line_bits`]
    /// for untrusted inputs.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    #[must_use]
    pub fn with_line_bits(self, bits: u32) -> Self {
        self.try_with_line_bits(bits)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Enables or disables SECDED ECC storage and transport overhead.
    #[must_use]
    pub fn with_ecc(mut self, ecc: bool) -> Self {
        self.ecc = if ecc { EccScheme::Secded } else { EccScheme::None };
        self
    }

    /// Selects an explicit error-correction scheme.
    #[must_use]
    pub fn with_ecc_scheme(mut self, scheme: EccScheme) -> Self {
        self.ecc = scheme;
        self
    }

    /// Enables or disables the dual-port overheads.
    #[must_use]
    pub fn with_dual_port(mut self, dual_port: bool) -> Self {
        self.dual_port = dual_port;
        self
    }

    /// The cell model under characterization.
    #[must_use]
    pub fn cell(&self) -> &CellModel {
        &self.cell
    }

    /// The process node.
    #[must_use]
    pub fn node(&self) -> &ProcessNode {
        &self.node
    }

    /// The operating point.
    #[must_use]
    pub fn op(&self) -> &OperatingPoint {
        &self.op
    }

    /// Usable (data) capacity.
    #[must_use]
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Data bits per access.
    #[must_use]
    pub fn line_bits(&self) -> u32 {
        self.line_bits
    }

    /// Whether any ECC is enabled.
    #[must_use]
    pub fn ecc(&self) -> bool {
        self.ecc != EccScheme::None
    }

    /// The error-correction scheme.
    #[must_use]
    pub fn ecc_scheme(&self) -> EccScheme {
        self.ecc
    }

    /// Whether the array is dual-ported.
    #[must_use]
    pub fn dual_port(&self) -> bool {
        self.dual_port
    }

    /// Die count.
    #[must_use]
    pub fn dies(&self) -> u8 {
        self.dies
    }

    /// Stacking style.
    #[must_use]
    pub fn stacking(&self) -> Stacking {
        self.stacking
    }

    /// Storage overhead factor of the ECC scheme (9/8 for the study's
    /// SECDED default).
    #[must_use]
    pub fn storage_overhead(&self) -> f64 {
        self.ecc.storage_overhead()
    }

    /// Bits moved per access including ECC check bits.
    #[must_use]
    pub fn transfer_bits(&self) -> f64 {
        f64::from(self.line_bits) * self.storage_overhead()
    }

    /// Characterizes this array, searching internal organizations for the
    /// one minimizing `objective`.
    #[must_use]
    pub fn characterize(&self, objective: Objective) -> ArrayCharacterization {
        optimize(self, objective)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldtall_cell::CellModel;

    fn spec() -> ArraySpec {
        let node = ProcessNode::ptm_22nm_hp();
        ArraySpec::llc_16mib(CellModel::sram(&node), &node)
    }

    #[test]
    fn defaults_match_paper_config() {
        let s = spec();
        assert_eq!(s.capacity(), Capacity::from_mebibytes(16));
        assert_eq!(s.line_bits(), 512);
        assert!(s.ecc());
        assert!(s.dual_port());
        assert_eq!(s.dies(), 1);
        assert_eq!(s.stacking(), Stacking::Planar);
        assert_eq!(s.op().temperature(), Kelvin::REFERENCE);
    }

    #[test]
    fn ecc_adds_one_eighth() {
        let s = spec();
        assert!((s.storage_overhead() - 1.125).abs() < 1e-12);
        assert!((s.transfer_bits() - 576.0).abs() < 1e-12);
        let no_ecc = spec().with_ecc(false);
        assert!((no_ecc.transfer_bits() - 512.0).abs() < 1e-12);
    }

    #[test]
    fn with_dies_picks_default_stacking() {
        let s = spec().with_dies(4);
        assert_eq!(s.stacking(), Stacking::FaceToBack);
        let s1 = spec().with_dies(1);
        assert_eq!(s1.stacking(), Stacking::Planar);
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn face_to_face_rejects_four_dies() {
        let _ = spec().with_stacking(Stacking::FaceToFace, 4);
    }

    #[test]
    fn try_builders_return_typed_errors_instead_of_panicking() {
        assert_eq!(
            spec().try_with_dies(0).unwrap_err(),
            SpecError::UnsupportedDieCount { dies: 0 }
        );
        assert_eq!(
            spec().try_with_dies(9).unwrap_err(),
            SpecError::UnsupportedDieCount { dies: 9 }
        );
        assert_eq!(
            spec().try_with_stacking(Stacking::FaceToFace, 4).unwrap_err(),
            SpecError::StackingMismatch {
                stacking: Stacking::FaceToFace,
                dies: 4
            }
        );
        assert_eq!(
            spec().try_with_line_bits(0).unwrap_err(),
            SpecError::ZeroLineWidth
        );
        let err = spec()
            .try_with_capacity(Capacity::from_bits(8))
            .unwrap_err();
        assert!(err.to_string().contains("at least one line"));
        // The happy path still chains like the infallible builder.
        let s = spec()
            .try_with_dies(4)
            .and_then(|s| s.try_with_line_bits(256))
            .unwrap();
        assert_eq!((s.dies(), s.line_bits()), (4, 256));
    }

    #[test]
    fn temperature_helpers() {
        let s = spec().at_temperature_cryo(Kelvin::LN2);
        assert!(s.op().vth_override().is_some());
        let s = spec().at_temperature(Kelvin::LN2);
        assert!(s.op().vth_override().is_none());
    }
}
