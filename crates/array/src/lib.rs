//! 2D/3D memory-array characterization engine.
//!
//! This crate reimplements the roles of NVSim, CACTI, and Destiny in the
//! paper's toolflow: given a memory-cell model, a capacity, a die count,
//! and an operating point, it derives the array-level characteristics the
//! design-space exploration consumes — read/write latency, read/write
//! energy per access, leakage power, refresh behaviour, and silicon area.
//!
//! The engine models the classic CACTI decomposition: subarrays of
//! `rows x cols` cells with row decoders, wordline drivers, bitlines,
//! and sense amplifiers; subarrays tiled across one or more dies; an
//! H-tree distribution network whose length follows the die footprint;
//! and, for 3D configurations, through-silicon vias (TSVs) or
//! finer-grained bonding depending on the stacking style. An organization
//! optimizer searches the subarray-dimension space for the configuration
//! minimizing a chosen objective (energy-delay product by default, as in
//! the paper).
//!
//! # Examples
//!
//! ```
//! use coldtall_array::{ArraySpec, Objective};
//! use coldtall_cell::CellModel;
//! use coldtall_tech::ProcessNode;
//!
//! let node = ProcessNode::ptm_22nm_hp();
//! let spec = ArraySpec::llc_16mib(CellModel::sram(&node), &node);
//! let result = spec.characterize(Objective::EnergyDelayProduct);
//! assert!(result.read_latency.get() > 0.0);
//! assert!(result.footprint.as_mm2() > 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Library code must surface impossible configurations through the
// `try_` builders (or a documented panic in a thin wrapper), never an
// anonymous `unwrap`; tests are exempt since a test failure IS the
// report.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod calib;
mod characterize;
mod ecc;
mod components;
mod optimizer;
mod org_geometry;
mod organization;
mod spec;
mod stacking;

pub use characterize::ArrayCharacterization;
pub use components::Geometry;
pub use ecc::EccScheme;
pub use optimizer::{optimize, score_lower_bound, ComponentFloors, Objective};
pub use org_geometry::OrgGeometry;
pub use organization::Organization;
pub use spec::{ArraySpec, SpecError};
pub use stacking::Stacking;
