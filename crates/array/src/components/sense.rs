//! Sense-amplifier and cell-intrinsic access model.

use coldtall_units::{Joules, Seconds};

use super::Ctx;
use crate::calib;

/// Sensing delay: the cell's intrinsic sense time scaled by the device
/// speed at the operating point (sense amplifiers are device-limited).
pub fn delay(ctx: &Ctx<'_>) -> Seconds {
    ctx.spec.cell().read_intrinsic()
        * ctx.device_speed_factor()
        * ctx.spec.stacking().device_derate()
}

/// Sensing + cell-intrinsic read energy for one access.
pub fn read_energy(ctx: &Ctx<'_>) -> Joules {
    let bits = ctx.spec.transfer_bits();
    let vdd_ratio = ctx.op().vdd().get() / ctx.node().vdd_nominal().get();
    let sa = bits * calib::SENSE_ENERGY_PER_BIT * vdd_ratio * vdd_ratio;
    Joules::new(sa) + ctx.spec.cell().read_energy_cell() * bits
}

/// Cell write-pulse delay (eNVM programming pulses or SRAM/eDRAM cell
/// flip time). Write pulses of resistive cells are thermally/physically
/// set and do not scale with device speed.
pub fn write_pulse(ctx: &Ctx<'_>) -> Seconds {
    let cell = ctx.spec.cell();
    if cell.is_nonvolatile() {
        cell.write_pulse()
    } else {
        cell.write_pulse() * ctx.device_speed_factor()
    }
}

/// Cell-intrinsic write energy for one access. MTJ cells pay the
/// Δ(T)-driven switching-current factor of the operating temperature
/// (exactly 1.0 at the 350 K reference); all other cells are
/// temperature-flat here.
pub fn write_energy(ctx: &Ctx<'_>) -> Joules {
    let cell = ctx.spec.cell();
    cell.write_energy_cell()
        * ctx.spec.transfer_bits()
        * cell.write_energy_factor(ctx.op().temperature())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organization::Organization;
    use crate::spec::ArraySpec;
    use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
    use coldtall_tech::ProcessNode;
    use coldtall_units::Kelvin;

    #[test]
    fn envm_write_pulse_is_temperature_insensitive() {
        let node = ProcessNode::ptm_22nm_hp();
        let pcm = CellModel::tentpole(MemoryTechnology::Pcm, Tentpole::Pessimistic, &node);
        let warm = ArraySpec::llc_16mib(pcm.clone(), &node).at_temperature(Kelvin::REFERENCE);
        let cold = ArraySpec::llc_16mib(pcm, &node).at_temperature_cryo(Kelvin::LN2);
        let org = Organization::new(512, 1024);
        assert_eq!(
            write_pulse(&Ctx::new(&warm, org)),
            write_pulse(&Ctx::new(&cold, org))
        );
    }

    #[test]
    fn sram_write_pulse_speeds_up_at_cryo() {
        let node = ProcessNode::ptm_22nm_hp();
        let warm = ArraySpec::llc_16mib(CellModel::sram(&node), &node)
            .at_temperature(Kelvin::REFERENCE);
        let cold = ArraySpec::llc_16mib(CellModel::sram(&node), &node)
            .at_temperature_cryo(Kelvin::LN2);
        let org = Organization::new(512, 1024);
        assert!(write_pulse(&Ctx::new(&cold, org)) < write_pulse(&Ctx::new(&warm, org)));
    }

    #[test]
    fn envm_read_energy_dominated_by_cell_component() {
        let node = ProcessNode::ptm_22nm_hp();
        let pcm = CellModel::tentpole(MemoryTechnology::Pcm, Tentpole::Optimistic, &node);
        let spec = ArraySpec::llc_16mib(pcm, &node);
        let ctx = Ctx::new(&spec, Organization::new(512, 1024));
        let e = read_energy(&ctx);
        // 576 bits * >=1.4 pJ/bit cell energy.
        assert!(e.get() > 0.5e-9, "eNVM read energy = {e}");
    }
}
