//! Vertical interconnect (TSV / bond / via) model for stacked arrays.

use coldtall_units::{Joules, Seconds};

use super::Ctx;
use crate::calib;

/// Average number of vertical crossings an access traverses.
fn average_hops(ctx: &Ctx<'_>) -> f64 {
    f64::from(ctx.spec.dies().saturating_sub(1)) / 2.0
}

/// Vertical-bus delay for an average access.
pub fn delay(ctx: &Ctx<'_>) -> Seconds {
    let cap = ctx.spec.stacking().via_cap_f();
    Seconds::new(0.69 * calib::TSV_DRIVE_OHMS * cap * average_hops(ctx))
}

/// Vertical-bus switching energy for an average access.
pub fn energy(ctx: &Ctx<'_>) -> Joules {
    let cap = ctx.spec.stacking().via_cap_f();
    let vdd = ctx.op().vdd().get();
    let signals = ctx.spec.transfer_bits() + calib::ADDRESS_BITS;
    Joules::new(signals * cap * vdd * vdd * average_hops(ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organization::Organization;
    use crate::spec::ArraySpec;
    use crate::stacking::Stacking;
    use coldtall_cell::CellModel;
    use coldtall_tech::ProcessNode;

    fn spec_dies(dies: u8) -> ArraySpec {
        let node = ProcessNode::ptm_22nm_hp();
        ArraySpec::llc_16mib(CellModel::sram(&node), &node).with_dies(dies)
    }

    #[test]
    fn planar_arrays_pay_nothing() {
        let ctx_spec = spec_dies(1);
        let ctx = Ctx::new(&ctx_spec, Organization::new(512, 1024));
        assert_eq!(delay(&ctx).get(), 0.0);
        assert_eq!(energy(&ctx).get(), 0.0);
    }

    #[test]
    fn more_dies_cost_more_hops() {
        let s2 = spec_dies(2);
        let s8 = spec_dies(8);
        let org = Organization::new(512, 1024);
        assert!(energy(&Ctx::new(&s8, org)).get() > energy(&Ctx::new(&s2, org)).get());
        assert!(delay(&Ctx::new(&s8, org)).get() > delay(&Ctx::new(&s2, org)).get());
    }

    #[test]
    fn monolithic_vias_are_cheapest() {
        let node = ProcessNode::ptm_22nm_hp();
        let f2b = ArraySpec::llc_16mib(CellModel::sram(&node), &node)
            .with_stacking(Stacking::FaceToBack, 4);
        let mono = ArraySpec::llc_16mib(CellModel::sram(&node), &node)
            .with_stacking(Stacking::Monolithic, 4);
        let org = Organization::new(512, 1024);
        assert!(energy(&Ctx::new(&mono, org)).get() < energy(&Ctx::new(&f2b, org)).get());
    }

    #[test]
    fn tsv_delay_is_small_but_nonzero() {
        let s8 = spec_dies(8);
        let ctx = Ctx::new(&s8, Organization::new(512, 1024));
        let ps = delay(&ctx).get() * 1e12;
        assert!(ps > 1.0 && ps < 200.0, "TSV delay = {ps} ps");
    }
}
