//! Refresh model for decaying (eDRAM) technologies.

use coldtall_units::{Seconds, Watts};

use super::{bitline, decoder, wordline, Ctx};
use crate::calib;

/// Independent refresh engines per die. Refresh is serialized through
/// each die's shared decode/H-tree resources, which is what makes
/// room-temperature 3T-eDRAM unusable in the paper (94% IPC loss).
const REFRESH_ENGINES_PER_DIE: f64 = 1.0;

/// The refresh behaviour of an array at its operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshProfile {
    /// Cell retention time.
    pub retention: Seconds,
    /// Average power spent refreshing.
    pub power: Watts,
    /// Fraction of time the array is unavailable due to refresh, in
    /// `[0, 1]`; a value of 1 means refresh cannot keep up at all.
    pub busy_fraction: f64,
}

/// Computes the refresh profile, or `None` for non-decaying technologies.
pub fn profile(ctx: &Ctx<'_>) -> Option<RefreshProfile> {
    let cell = ctx.spec.cell();
    if !cell.needs_refresh() {
        return None;
    }
    let retention = cell
        .retention(ctx.node(), ctx.op())
        .expect("refresh-dependent cells always model a storage node");

    let rows_total = ctx.geom.subarrays_total as f64 * f64::from(ctx.org.rows());
    let rows_per_engine =
        rows_total / (f64::from(ctx.spec.dies()) * REFRESH_ENGINES_PER_DIE);

    // One row refresh is a local read-and-restore: decode, wordline, and
    // bitline write-back (no H-tree trip).
    let t_row = decoder::delay(ctx) + wordline::delay(ctx) + bitline::write_delay(ctx);
    let busy_fraction = (rows_per_engine * t_row.get() / retention.get()).min(1.0);

    // Row refresh energy: a gain-cell refresh restores every storage
    // node in the row (C_storage V^2 each) and fires the wordline; it
    // does not pay full bitline swings, H-tree trips, or sensing at the
    // external access margin.
    let storage = cell
        .storage()
        .expect("refresh-dependent cells always model a storage node");
    let vdd = ctx.op().vdd().get();
    let cols = f64::from(ctx.org.cols());
    let row_energy = (cols * storage.capacitance.get() * vdd * vdd
        + wordline::energy(ctx).get())
        * calib::REFRESH_ENERGY_FACTOR;
    let power = Watts::new(rows_total * row_energy / retention.get());

    Some(RefreshProfile {
        retention,
        power,
        busy_fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organization::Organization;
    use crate::spec::ArraySpec;
    use coldtall_cell::CellModel;
    use coldtall_tech::ProcessNode;
    use coldtall_units::Kelvin;

    fn edram_at(t: f64, cryo: bool) -> RefreshProfile {
        let node = ProcessNode::ptm_22nm_hp();
        let spec = ArraySpec::llc_16mib(CellModel::edram_3t(&node), &node);
        let spec = if cryo {
            spec.at_temperature_cryo(Kelvin::new(t))
        } else {
            spec.at_temperature(Kelvin::new(t))
        };
        profile(&Ctx::new(&spec, Organization::new(1024, 1024))).unwrap()
    }

    #[test]
    fn sram_never_refreshes() {
        let node = ProcessNode::ptm_22nm_hp();
        let spec = ArraySpec::llc_16mib(CellModel::sram(&node), &node);
        assert!(profile(&Ctx::new(&spec, Organization::new(512, 512))).is_none());
    }

    #[test]
    fn edram_at_300k_is_refresh_crippled() {
        // The paper: 3T-eDRAM LLCs cannot run ordinary workloads at 300 K
        // (94% IPC reduction from refresh).
        let p = edram_at(300.0, false);
        assert!(p.busy_fraction > 0.9, "busy = {}", p.busy_fraction);
    }

    #[test]
    fn edram_at_350k_is_infeasible() {
        let p = edram_at(350.0, false);
        assert!((p.busy_fraction - 1.0).abs() < 1e-9);
        assert!(p.power.get() > 0.01, "refresh power = {}", p.power);
    }

    #[test]
    fn edram_at_77k_is_refresh_free() {
        let p = edram_at(77.0, true);
        assert!(p.busy_fraction < 1e-3, "busy = {}", p.busy_fraction);
        assert!(p.power.get() < 1e-3, "refresh power = {}", p.power);
        assert!(p.retention.get() > 1.0);
    }

    #[test]
    fn retention_monotone_with_temperature() {
        let cold = edram_at(200.0, false);
        let warm = edram_at(300.0, false);
        let hot = edram_at(387.0, false);
        assert!(cold.retention > warm.retention);
        assert!(warm.retention > hot.retention);
    }
}
