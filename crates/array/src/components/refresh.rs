//! Refresh model for decaying (eDRAM) technologies and the scrub model
//! for marginal-retention non-volatile cells.

use coldtall_units::{Seconds, Watts};

use super::{bitline, decoder, sense, wordline, Ctx};
use crate::calib;

/// Independent refresh engines per die. Refresh is serialized through
/// each die's shared decode/H-tree resources, which is what makes
/// room-temperature 3T-eDRAM unusable in the paper (94% IPC loss).
const REFRESH_ENGINES_PER_DIE: f64 = 1.0;

/// Retention floor (seconds, ~10 years) below which a non-volatile
/// cell's thermally-activated back-hopping must be countered by
/// periodic scrubbing. Survey-default MTJs (Δ_ref = 60 at 350 K) sit
/// many decades above this across the legal 60-400 K span, so the
/// scrub path only engages for stability-adjusted cells
/// (`CellModel::with_thermal_stability`).
const NVM_SCRUB_RETENTION_FLOOR_S: f64 = 3.0e8;

/// The refresh behaviour of an array at its operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshProfile {
    /// Cell retention time.
    pub retention: Seconds,
    /// Average power spent refreshing.
    pub power: Watts,
    /// Fraction of time the array is unavailable due to refresh, in
    /// `[0, 1]`; a value of 1 means refresh cannot keep up at all.
    pub busy_fraction: f64,
}

/// Computes the refresh (eDRAM) or scrub (marginal-retention NVM)
/// profile, or `None` for technologies that hold data indefinitely.
pub fn profile(ctx: &Ctx<'_>) -> Option<RefreshProfile> {
    let cell = ctx.spec.cell();
    if cell.needs_refresh() {
        return Some(decay_profile(ctx));
    }
    if cell.is_nonvolatile() {
        let retention = cell.retention(ctx.node(), ctx.op())?;
        if retention.get() < NVM_SCRUB_RETENTION_FLOOR_S {
            return Some(scrub_profile(ctx, retention));
        }
    }
    None
}

/// The eDRAM refresh profile: the storage node decays and every row
/// must be read-and-restored within its retention window.
fn decay_profile(ctx: &Ctx<'_>) -> RefreshProfile {
    let cell = ctx.spec.cell();
    let retention = cell
        .retention(ctx.node(), ctx.op())
        .expect("refresh-dependent cells always model a storage node");

    let (rows_total, rows_per_engine) = row_budget(ctx);

    // One row refresh is a local read-and-restore: decode, wordline, and
    // bitline write-back (no H-tree trip).
    let t_row = decoder::delay(ctx) + wordline::delay(ctx) + bitline::write_delay(ctx);
    let busy_fraction = (rows_per_engine * t_row.get() / retention.get()).min(1.0);

    // Row refresh energy: a gain-cell refresh restores every storage
    // node in the row (C_storage V^2 each) and fires the wordline; it
    // does not pay full bitline swings, H-tree trips, or sensing at the
    // external access margin.
    let storage = cell
        .storage()
        .expect("refresh-dependent cells always model a storage node");
    let vdd = ctx.op().vdd().get();
    let cols = f64::from(ctx.org.cols());
    let row_energy = (cols * storage.capacitance.get() * vdd * vdd
        + wordline::energy(ctx).get())
        * calib::REFRESH_ENERGY_FACTOR;
    let power = Watts::new(rows_total * row_energy / retention.get());

    RefreshProfile {
        retention,
        power,
        busy_fraction,
    }
}

/// The NVM scrub profile: a cell whose Δ(T) retention dips below the
/// floor must have every row rewritten once per retention window. A
/// scrub row pass pays decode, wordline, bitline drive, and the full
/// programming pulse — eNVM writes are not a cheap restore.
fn scrub_profile(ctx: &Ctx<'_>, retention: Seconds) -> RefreshProfile {
    let cell = ctx.spec.cell();
    let (rows_total, rows_per_engine) = row_budget(ctx);

    let t_row = decoder::delay(ctx)
        + wordline::delay(ctx)
        + bitline::write_delay(ctx)
        + sense::write_pulse(ctx);
    let busy_fraction = (rows_per_engine * t_row.get() / retention.get()).min(1.0);

    let cols = f64::from(ctx.org.cols());
    let row_energy = cols
        * cell.write_energy_cell().get()
        * cell.write_energy_factor(ctx.op().temperature())
        + wordline::energy(ctx).get();
    let power = Watts::new(rows_total * row_energy / retention.get());

    RefreshProfile {
        retention,
        power,
        busy_fraction,
    }
}

/// Total rows in the array and rows served by each per-die engine.
fn row_budget(ctx: &Ctx<'_>) -> (f64, f64) {
    let rows_total = ctx.geom.subarrays_total as f64 * f64::from(ctx.org.rows());
    let rows_per_engine = rows_total / (f64::from(ctx.spec.dies()) * REFRESH_ENGINES_PER_DIE);
    (rows_total, rows_per_engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organization::Organization;
    use crate::spec::ArraySpec;
    use coldtall_cell::CellModel;
    use coldtall_tech::ProcessNode;
    use coldtall_units::Kelvin;

    fn edram_at(t: f64, cryo: bool) -> RefreshProfile {
        let node = ProcessNode::ptm_22nm_hp();
        let spec = ArraySpec::llc_16mib(CellModel::edram_3t(&node), &node);
        let spec = if cryo {
            spec.at_temperature_cryo(Kelvin::new(t))
        } else {
            spec.at_temperature(Kelvin::new(t))
        };
        profile(&Ctx::new(&spec, Organization::new(1024, 1024))).unwrap()
    }

    #[test]
    fn sram_never_refreshes() {
        let node = ProcessNode::ptm_22nm_hp();
        let spec = ArraySpec::llc_16mib(CellModel::sram(&node), &node);
        assert!(profile(&Ctx::new(&spec, Organization::new(512, 512))).is_none());
    }

    #[test]
    fn edram_at_300k_is_refresh_crippled() {
        // The paper: 3T-eDRAM LLCs cannot run ordinary workloads at 300 K
        // (94% IPC reduction from refresh).
        let p = edram_at(300.0, false);
        assert!(p.busy_fraction > 0.9, "busy = {}", p.busy_fraction);
    }

    #[test]
    fn edram_at_350k_is_infeasible() {
        let p = edram_at(350.0, false);
        assert!((p.busy_fraction - 1.0).abs() < 1e-9);
        assert!(p.power.get() > 0.01, "refresh power = {}", p.power);
    }

    #[test]
    fn edram_at_77k_is_refresh_free() {
        let p = edram_at(77.0, true);
        assert!(p.busy_fraction < 1e-3, "busy = {}", p.busy_fraction);
        assert!(p.power.get() < 1e-3, "refresh power = {}", p.power);
        assert!(p.retention.get() > 1.0);
    }

    #[test]
    fn default_stt_never_scrubs_but_adjusted_stability_does() {
        use coldtall_cell::{MemoryTechnology, Tentpole};
        let node = ProcessNode::ptm_22nm_hp();
        let org = Organization::new(512, 1024);

        // Survey-default MTJ: retention is decades above the scrub
        // floor everywhere in the legal span — no profile.
        let stt = CellModel::tentpole(MemoryTechnology::SttRam, Tentpole::Optimistic, &node);
        for t in [77.0, 350.0, 400.0] {
            let spec = ArraySpec::llc_16mib(stt.clone(), &node).at_temperature(Kelvin::new(t));
            assert!(profile(&Ctx::new(&spec, org)).is_none(), "{t} K");
        }

        // A stability-adjusted junction (Δ_ref = 30 → hours of
        // retention at 350 K) must scrub, and scrubbing eases toward
        // cryo as Δ(T) grows.
        let adjusted = stt.with_thermal_stability(30.0);
        let profile_at = |t: f64| {
            let spec =
                ArraySpec::llc_16mib(adjusted.clone(), &node).at_temperature(Kelvin::new(t));
            profile(&Ctx::new(&spec, org)).unwrap()
        };
        let warm = profile_at(350.0);
        assert!(warm.power.get() > 0.0);
        assert!(warm.busy_fraction > 0.0 && warm.busy_fraction < 1.0);
        let cool = profile_at(300.0);
        assert!(cool.retention > warm.retention);
        assert!(cool.power < warm.power);
        // By 250 K the Δ(T) boost lifts retention back over the floor.
        let spec =
            ArraySpec::llc_16mib(adjusted.clone(), &node).at_temperature(Kelvin::new(250.0));
        assert!(profile(&Ctx::new(&spec, org)).is_none());
    }

    #[test]
    fn retention_monotone_with_temperature() {
        let cold = edram_at(200.0, false);
        let warm = edram_at(300.0, false);
        let hot = edram_at(387.0, false);
        assert!(cold.retention > warm.retention);
        assert!(warm.retention > hot.retention);
    }
}
