//! Wordline model: a distributed RC line loaded by access gates.

use coldtall_tech::WireKind;
use coldtall_units::{Farads, Joules, Meters, Seconds};

use super::Ctx;
use crate::calib;

/// Total gate load hanging on one wordline.
fn gate_load(ctx: &Ctx<'_>) -> Farads {
    let node = ctx.node();
    ctx.nmos.gate_cap(node.min_width()) * f64::from(ctx.org.cols())
}

/// Wordline length across the subarray.
fn length(ctx: &Ctx<'_>) -> Meters {
    Meters::new(f64::from(ctx.org.cols()) * ctx.geom.cell_width)
}

/// Wordline rise delay: driver resistance into the distributed line.
pub fn delay(ctx: &Ctx<'_>) -> Seconds {
    let node = ctx.node();
    let wire = node.wire(WireKind::Local);
    let driver_width = node.min_width() * calib::WL_DRIVER_WIDTH_MULT;
    let r_drive = ctx.nmos.equivalent_resistance(ctx.op(), driver_width);
    wire.distributed_delay(length(ctx), ctx.temperature(), r_drive, gate_load(ctx))
        * ctx.spec.stacking().device_derate()
}

/// Wordline switching energy per activation.
pub fn energy(ctx: &Ctx<'_>) -> Joules {
    let node = ctx.node();
    let wire = node.wire(WireKind::Local);
    let c_total = wire.capacitance(length(ctx)) + gate_load(ctx);
    let vdd = ctx.op().vdd().get();
    Joules::new(c_total.get() * vdd * vdd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organization::Organization;
    use crate::spec::ArraySpec;
    use coldtall_cell::CellModel;
    use coldtall_tech::ProcessNode;
    use coldtall_units::Kelvin;

    #[test]
    fn wider_subarrays_have_slower_wordlines() {
        let node = ProcessNode::ptm_22nm_hp();
        let spec = ArraySpec::llc_16mib(CellModel::sram(&node), &node);
        let narrow = Ctx::new(&spec, Organization::new(512, 256));
        let wide = Ctx::new(&spec, Organization::new(512, 4096));
        assert!(delay(&wide) > delay(&narrow));
        assert!(energy(&wide) > energy(&narrow));
    }

    #[test]
    fn cryo_wordline_is_faster() {
        let node = ProcessNode::ptm_22nm_hp();
        let warm = ArraySpec::llc_16mib(CellModel::sram(&node), &node)
            .at_temperature(Kelvin::REFERENCE);
        let cold = ArraySpec::llc_16mib(CellModel::sram(&node), &node)
            .at_temperature_cryo(Kelvin::LN2);
        let org = Organization::new(512, 1024);
        let d_warm = delay(&Ctx::new(&warm, org));
        let d_cold = delay(&Ctx::new(&cold, org));
        assert!(d_cold.get() < d_warm.get() * 0.6);
    }
}
