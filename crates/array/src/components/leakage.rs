//! Static (leakage) power of the array: cells plus periphery.

use coldtall_cell::ReadMechanism;
use coldtall_tech::Mosfet;
use coldtall_units::{Volts, Watts};

use super::Ctx;
use crate::calib;

/// Leakage power of the storage cells.
pub fn cell_leakage(ctx: &Ctx<'_>) -> Watts {
    let bits = ctx.spec.capacity().bits_f64() * ctx.spec.storage_overhead();
    ctx.spec.cell().leakage_power(ctx.node(), ctx.op()) * bits
}

/// Leakage power of the peripheral circuitry: decoders, drivers, sense
/// amplifiers, H-tree repeaters, and the global floor, modelled as an
/// effective leaking transistor-width density over the peripheral
/// silicon. Current-sense arrays carry an additional static-bias factor
/// (reference generation and current-mode sense amplifiers).
pub fn periphery_leakage(ctx: &Ctx<'_>) -> Watts {
    let node = ctx.node();
    let op = ctx.op();
    let device = Mosfet::nmos(node).with_vth_boost(Volts::new(calib::PERIPH_VTH_BOOST));
    let width_um = ctx.geom.periph_area * calib::PERIPH_WIDTH_DENSITY_PER_M2 * 1e6;
    let current = device.leakage_current_per_um(op) * width_um;
    let bias_factor = match ctx.spec.cell().read_mechanism() {
        ReadMechanism::CurrentSense => {
            let re_pj = ctx.spec.cell().read_energy_cell().as_picos();
            let scaled = calib::CURRENT_SENSE_LEAK_FACTOR
                * (re_pj / calib::CURRENT_SENSE_REFERENCE_PJ).powi(2);
            scaled.clamp(calib::CURRENT_SENSE_LEAK_FACTOR, calib::CURRENT_SENSE_LEAK_MAX)
        }
        ReadMechanism::VoltageSense { .. } => 1.0,
    };
    current * op.vdd() * bias_factor
}

/// Total static power.
pub fn total(ctx: &Ctx<'_>) -> Watts {
    cell_leakage(ctx) + periphery_leakage(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organization::Organization;
    use crate::spec::ArraySpec;
    use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
    use coldtall_tech::ProcessNode;
    use coldtall_units::Kelvin;

    fn ctx_build(cell: CellModel) -> (ArraySpec, Organization) {
        let node = ProcessNode::ptm_22nm_hp();
        (ArraySpec::llc_16mib(cell, &node), Organization::new(512, 1024))
    }

    #[test]
    fn sram_16mib_leaks_about_half_a_watt_at_350k() {
        let node = ProcessNode::ptm_22nm_hp();
        let (spec, org) = ctx_build(CellModel::sram(&node));
        let p = total(&Ctx::new(&spec, org)).get();
        assert!(p > 0.25 && p < 1.0, "SRAM leakage = {p} W");
    }

    #[test]
    fn envm_leaks_only_in_periphery() {
        let node = ProcessNode::ptm_22nm_hp();
        let pcm = CellModel::tentpole(MemoryTechnology::Pcm, Tentpole::Optimistic, &node);
        let (spec, org) = ctx_build(pcm);
        let ctx = Ctx::new(&spec, org);
        assert_eq!(cell_leakage(&ctx).get(), 0.0);
        assert!(periphery_leakage(&ctx).get() > 0.0);
    }

    #[test]
    fn envm_total_leak_is_fraction_of_sram_not_orders_below() {
        // Fig. 7 anchor: eNVM LLC power floors sit 2-10x below SRAM, not
        // a thousand-fold below, because periphery still leaks.
        let node = ProcessNode::ptm_22nm_hp();
        let (sram_spec, org) = ctx_build(CellModel::sram(&node));
        let sram = total(&Ctx::new(&sram_spec, org)).get();
        for tp in Tentpole::BOTH {
            let pcm = CellModel::tentpole(MemoryTechnology::Pcm, tp, &node);
            let (spec, _) = ctx_build(pcm);
            let envm = total(&Ctx::new(&spec, org)).get();
            let ratio = sram / envm;
            assert!(ratio > 2.0 && ratio < 80.0, "{tp}: SRAM/eNVM leak = {ratio}");
        }
    }

    #[test]
    fn cryo_kills_periphery_leakage_too() {
        let node = ProcessNode::ptm_22nm_hp();
        let warm = ArraySpec::llc_16mib(CellModel::sram(&node), &node)
            .at_temperature(Kelvin::REFERENCE);
        let cold = ArraySpec::llc_16mib(CellModel::sram(&node), &node)
            .at_temperature_cryo(Kelvin::LN2);
        let org = Organization::new(512, 1024);
        let ratio = total(&Ctx::new(&cold, org)) / total(&Ctx::new(&warm, org));
        assert!(ratio < 1e-4, "cryo leak ratio = {ratio:e}");
    }
}
