//! Per-component electrical models of the array.
//!
//! Each submodule models one stage of the access path (decode, wordline,
//! bitline, sensing, H-tree distribution, vertical interconnect) or one
//! background behaviour (leakage, refresh). All of them consume the
//! shared evaluation context [`Ctx`].

pub mod bitline;
pub mod decoder;
pub mod geometry;
pub mod htree;
pub mod leakage;
pub mod refresh;
pub mod sense;
pub mod vertical;
pub mod wordline;

use coldtall_tech::{Mosfet, OperatingPoint, ProcessNode};
use coldtall_units::{Kelvin, Seconds};

use crate::calib;
use crate::organization::Organization;
use crate::spec::ArraySpec;

pub use geometry::Geometry;

/// Organization-independent half of the evaluation context: the node's
/// standard devices and the timing constants derived at the spec's
/// operating point.
///
/// An organization search evaluates every candidate of one spec, so
/// these values are built once per search and shared across candidates
/// via [`Ctx::with_parts`] instead of being recomputed 25 times.
#[derive(Debug, Clone)]
pub struct DeviceCtx {
    /// Plain NMOS device of the node.
    pub nmos: Mosfet,
    /// Plain PMOS device of the node.
    pub pmos: Mosfet,
    /// Fan-of-four inverter delay at the operating point.
    pub fo4: Seconds,
    /// Intrinsic device RC product used for repeater insertion.
    pub device_rc: Seconds,
}

impl DeviceCtx {
    /// Builds the device context for `spec`'s node, operating point,
    /// and stacking style.
    #[must_use]
    pub fn new(spec: &ArraySpec) -> Self {
        let node = spec.node();
        let op = spec.op();
        let nmos = Mosfet::nmos(node);
        let pmos = Mosfet::pmos(node);
        let w_min = node.min_width();
        let r_eq = nmos.equivalent_resistance(op, w_min);
        let c_load = nmos.gate_cap(w_min) * 4.0 + nmos.junction_cap(w_min);
        let fo4 = Seconds::new(calib::FO4_FACTOR * r_eq.get() * c_load.get())
            * spec.stacking().device_derate();
        let device_rc = Seconds::new(r_eq.get() * nmos.gate_cap(w_min).get());
        Self {
            nmos,
            pmos,
            fo4,
            device_rc,
        }
    }
}

/// Shared evaluation context: the spec, the candidate organization, the
/// derived geometry, and pre-built device models.
#[derive(Debug)]
pub struct Ctx<'a> {
    /// The array under characterization.
    pub spec: &'a ArraySpec,
    /// The candidate internal organization.
    pub org: Organization,
    /// Derived physical geometry.
    pub geom: Geometry,
    /// Plain NMOS device of the node.
    pub nmos: Mosfet,
    /// Plain PMOS device of the node.
    pub pmos: Mosfet,
    /// Fan-of-four inverter delay at the operating point.
    pub fo4: Seconds,
    /// Intrinsic device RC product used for repeater insertion.
    pub device_rc: Seconds,
}

impl<'a> Ctx<'a> {
    /// Builds the context for one candidate organization.
    pub fn new(spec: &'a ArraySpec, org: Organization) -> Self {
        Self::with_parts(spec, org, Geometry::derive(spec, org), &DeviceCtx::new(spec))
    }

    /// Builds the context from pre-derived parts: a (possibly cached)
    /// geometry and a device context shared across the candidates of
    /// one search.
    ///
    /// `geom` must equal `Geometry::derive(spec, org)`. Geometry reads
    /// only the node, cell, organization, and stacking style — never
    /// the operating point — so a geometry derived from the same spec
    /// at *any* temperature qualifies; this is what lets the two-phase
    /// kernel reuse one geometry solve across a temperature sweep.
    pub fn with_parts(
        spec: &'a ArraySpec,
        org: Organization,
        geom: Geometry,
        devices: &DeviceCtx,
    ) -> Self {
        Self {
            spec,
            org,
            geom,
            nmos: devices.nmos.clone(),
            pmos: devices.pmos.clone(),
            fo4: devices.fo4,
            device_rc: devices.device_rc,
        }
    }

    /// Shorthand for the node.
    pub fn node(&self) -> &ProcessNode {
        self.spec.node()
    }

    /// Shorthand for the operating point.
    pub fn op(&self) -> &OperatingPoint {
        self.spec.op()
    }

    /// Shorthand for the operating temperature.
    pub fn temperature(&self) -> Kelvin {
        self.spec.op().temperature()
    }

    /// Device-speed factor relative to nominal 300 K operation: the ratio
    /// of equivalent resistances. Below 1 means faster devices.
    pub fn device_speed_factor(&self) -> f64 {
        let node = self.spec.node();
        let nominal = coldtall_tech::OperatingPoint::nominal(node, Kelvin::ROOM);
        let w = node.min_width();
        self.nmos.equivalent_resistance(self.spec.op(), w)
            / self.nmos.equivalent_resistance(&nominal, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldtall_cell::CellModel;

    #[test]
    fn context_builds_with_reasonable_fo4() {
        let node = ProcessNode::ptm_22nm_hp();
        let spec = ArraySpec::llc_16mib(CellModel::sram(&node), &node);
        let ctx = Ctx::new(&spec, Organization::new(512, 512));
        let fo4_ps = ctx.fo4.get() * 1e12;
        assert!(fo4_ps > 2.0 && fo4_ps < 30.0, "FO4 = {fo4_ps} ps");
        assert!(ctx.device_rc.get() > 0.0);
    }

    #[test]
    fn cryo_devices_are_faster() {
        let node = ProcessNode::ptm_22nm_hp();
        let spec = ArraySpec::llc_16mib(CellModel::sram(&node), &node)
            .at_temperature_cryo(Kelvin::LN2);
        let ctx = Ctx::new(&spec, Organization::new(512, 512));
        assert!(ctx.device_speed_factor() < 0.7);
        let hot = ArraySpec::llc_16mib(CellModel::sram(&node), &node)
            .at_temperature(Kelvin::new(387.0));
        let ctx_hot = Ctx::new(&hot, Organization::new(512, 512));
        assert!(ctx_hot.device_speed_factor() > 1.0);
    }
}
