//! H-tree distribution network: request/response routing across a die.

use coldtall_tech::WireKind;
use coldtall_units::{Joules, Meters, Seconds};

use super::Ctx;
use crate::calib;

/// Routed path length: request plus response across the die.
pub fn path_length(ctx: &Ctx<'_>) -> Meters {
    Meters::new(calib::HTREE_PATH_FACTOR * ctx.geom.footprint.sqrt())
}

/// H-tree delay: optimally repeated global wiring over the path, with a
/// conservatism margin covering bank-level routing and arbitration.
pub fn delay(ctx: &Ctx<'_>) -> Seconds {
    let wire = ctx.node().wire(WireKind::Global);
    let per_m = wire.repeated_delay_per_m(ctx.temperature(), ctx.device_rc);
    per_m
        * path_length(ctx).get()
        * calib::HTREE_DELAY_MARGIN
        * ctx.spec.stacking().device_derate()
}

/// H-tree energy: the data line plus address/command wires over the path,
/// plus the broadcast/background term proportional to the die footprint
/// (clock and control distribution, partially-switched branches).
pub fn energy(ctx: &Ctx<'_>) -> Joules {
    let wire = ctx.node().wire(WireKind::Global);
    let vdd = ctx.op().vdd();
    let wires = ctx.spec.transfer_bits() + calib::ADDRESS_BITS;
    let path = wire.repeated_energy_per_m(vdd) * (path_length(ctx).get() * wires);
    let vdd_ratio = vdd.get() / 0.8;
    // The broadcast term spans only the live array content of the
    // accessed die; the global floor (pumps, IO) and TSV fields are
    // clock-gated when idle.
    let broadcast = Joules::new(
        calib::BROADCAST_ENERGY_PER_M2 * ctx.geom.per_die_content * vdd_ratio * vdd_ratio,
    );
    path + broadcast
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organization::Organization;
    use crate::spec::ArraySpec;
    use coldtall_cell::CellModel;
    use coldtall_tech::ProcessNode;
    use coldtall_units::Kelvin;

    fn ctx_dies(dies: u8) -> (ArraySpec, Organization) {
        let node = ProcessNode::ptm_22nm_hp();
        (
            ArraySpec::llc_16mib(CellModel::sram(&node), &node).with_dies(dies),
            Organization::new(512, 1024),
        )
    }

    #[test]
    fn stacking_shortens_the_htree() {
        let (s1, org) = ctx_dies(1);
        let (s8, _) = ctx_dies(8);
        let l1 = path_length(&Ctx::new(&s1, org));
        let l8 = path_length(&Ctx::new(&s8, org));
        assert!(l8.get() < l1.get() * 0.6);
    }

    #[test]
    fn htree_energy_drops_with_stacking() {
        let (s1, org) = ctx_dies(1);
        let (s8, _) = ctx_dies(8);
        let e1 = energy(&Ctx::new(&s1, org));
        let e8 = energy(&Ctx::new(&s8, org));
        assert!(e8.get() < e1.get() * 0.5);
    }

    #[test]
    fn cryo_htree_is_much_faster() {
        let node = ProcessNode::ptm_22nm_hp();
        let org = Organization::new(512, 1024);
        let warm = ArraySpec::llc_16mib(CellModel::sram(&node), &node)
            .at_temperature(Kelvin::REFERENCE);
        let cold = ArraySpec::llc_16mib(CellModel::sram(&node), &node)
            .at_temperature_cryo(Kelvin::LN2);
        let d_warm = delay(&Ctx::new(&warm, org));
        let d_cold = delay(&Ctx::new(&cold, org));
        let ratio = d_cold / d_warm;
        assert!(ratio < 0.5, "cryo H-tree ratio = {ratio}");
    }

    #[test]
    fn sram_2d_htree_energy_is_nanojoule_scale() {
        let (s1, org) = ctx_dies(1);
        let e = energy(&Ctx::new(&s1, org));
        assert!(e.get() > 0.5e-9 && e.get() < 5e-9, "htree energy = {e}");
    }
}
