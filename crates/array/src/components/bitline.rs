//! Bitline model: capacitance, development time, and swing energy.

use coldtall_cell::ReadMechanism;
use coldtall_tech::{Polarity, WireKind};
use coldtall_units::{Farads, Joules, Seconds};

use super::Ctx;
use crate::calib;

/// Capacitance of one bitline: junction load of every cell plus the wire.
pub fn capacitance(ctx: &Ctx<'_>) -> Farads {
    let node = ctx.node();
    let rows = f64::from(ctx.org.rows());
    let junction_per_cell = ctx.nmos.junction_cap(node.min_width()) * 0.5;
    let wire = node.wire(WireKind::Local);
    let wire_cap = wire.capacitance_per_m() * (rows * ctx.geom.cell_height);
    junction_per_cell * rows + wire_cap
}

/// Resistance of one bitline wire at the operating temperature.
fn resistance(ctx: &Ctx<'_>) -> f64 {
    let node = ctx.node();
    let wire = node.wire(WireKind::Local);
    let len = coldtall_units::Meters::new(f64::from(ctx.org.rows()) * ctx.geom.cell_height);
    wire.resistance(len, ctx.temperature()).get()
}

/// The cell's read drive current onto the bitline (voltage-sense cells).
fn cell_read_current(ctx: &Ctx<'_>) -> f64 {
    let node = ctx.node();
    let device = match ctx.spec.cell().technology() {
        coldtall_cell::MemoryTechnology::Edram3T => &ctx.pmos,
        _ => &ctx.nmos,
    };
    debug_assert!(matches!(
        device.polarity(),
        Polarity::Nmos | Polarity::Pmos
    ));
    device.on_current_per_um(ctx.op()).get() * (node.min_width().get() * 1e6)
        * calib::CELL_DRIVE_FACTOR
}

/// Bitline time on a read: swing development for voltage sensing, or the
/// wire RC flight time for current sensing (the sensing itself lives in
/// the cell's intrinsic read time).
pub fn read_delay(ctx: &Ctx<'_>) -> Seconds {
    let c_bl = capacitance(ctx).get();
    match ctx.spec.cell().read_mechanism() {
        ReadMechanism::VoltageSense { swing } => {
            let i = cell_read_current(ctx);
            Seconds::new(calib::BITLINE_MARGIN * c_bl * swing.get() / i)
        }
        ReadMechanism::CurrentSense => Seconds::new(0.38 * resistance(ctx) * c_bl),
    }
}

/// Bitline time on a write: full-swing drive by the write driver.
pub fn write_delay(ctx: &Ctx<'_>) -> Seconds {
    let node = ctx.node();
    let driver_width = node.min_width() * calib::WRITE_DRIVER_WIDTH_MULT;
    let r_drive = ctx.nmos.equivalent_resistance(ctx.op(), driver_width).get();
    let c_bl = capacitance(ctx).get();
    Seconds::new(0.69 * (r_drive + resistance(ctx)) * c_bl)
}

/// Bitline energy on a read: every column in the activated row swings by
/// the sense margin (voltage sensing); current-sense arrays only charge
/// the selected columns' lines to the read voltage (folded into the
/// cell's read energy, so just the wire here).
pub fn read_energy(ctx: &Ctx<'_>) -> Joules {
    let c_bl = capacitance(ctx).get();
    let vdd = ctx.op().vdd().get();
    let cols = f64::from(ctx.org.cols());
    let e = match ctx.spec.cell().read_mechanism() {
        ReadMechanism::VoltageSense { swing } => cols * c_bl * vdd * swing.get(),
        ReadMechanism::CurrentSense => ctx.spec.transfer_bits() * c_bl * vdd * vdd * 0.25,
    };
    Joules::new(e * port_energy_factor(ctx))
}

/// Bitline energy on a write: written columns swing fully; for
/// voltage-sense cells the rest of the activated row still swings by the
/// sense margin.
pub fn write_energy(ctx: &Ctx<'_>) -> Joules {
    let c_bl = capacitance(ctx).get();
    let vdd = ctx.op().vdd().get();
    let bits = ctx.spec.transfer_bits();
    let cols = f64::from(ctx.org.cols());
    let e = match ctx.spec.cell().read_mechanism() {
        ReadMechanism::VoltageSense { swing } => {
            bits * c_bl * vdd * vdd + (cols - bits).max(0.0) * c_bl * vdd * swing.get()
        }
        ReadMechanism::CurrentSense => bits * c_bl * vdd * vdd,
    };
    Joules::new(e * port_energy_factor(ctx))
}

fn port_energy_factor(ctx: &Ctx<'_>) -> f64 {
    if ctx.spec.dual_port() {
        calib::DUAL_PORT_ENERGY_FACTOR
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organization::Organization;
    use crate::spec::ArraySpec;
    use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
    use coldtall_tech::ProcessNode;

    fn ctx_for(cell: CellModel) -> (ArraySpec, Organization) {
        let node = ProcessNode::ptm_22nm_hp();
        (ArraySpec::llc_16mib(cell, &node), Organization::new(512, 1024))
    }

    #[test]
    fn taller_subarrays_have_heavier_bitlines() {
        let node = ProcessNode::ptm_22nm_hp();
        let spec = ArraySpec::llc_16mib(CellModel::sram(&node), &node);
        let short = Ctx::new(&spec, Organization::new(128, 512));
        let tall = Ctx::new(&spec, Organization::new(2048, 512));
        assert!(capacitance(&tall).get() > capacitance(&short).get() * 10.0);
        assert!(read_delay(&tall) > read_delay(&short));
    }

    #[test]
    fn sram_read_develops_in_fraction_of_ns_to_ns() {
        let node = ProcessNode::ptm_22nm_hp();
        let (spec, org) = ctx_for(CellModel::sram(&node));
        let ctx = Ctx::new(&spec, org);
        let ns = read_delay(&ctx).as_nanos();
        assert!(ns > 0.05 && ns < 3.0, "bitline develop = {ns} ns");
    }

    #[test]
    fn envm_bitline_flight_is_fast() {
        let node = ProcessNode::ptm_22nm_hp();
        let pcm = CellModel::tentpole(MemoryTechnology::Pcm, Tentpole::Optimistic, &node);
        let (spec, org) = ctx_for(pcm);
        let ctx = Ctx::new(&spec, org);
        assert!(read_delay(&ctx).as_nanos() < 0.2);
    }

    #[test]
    fn write_energy_exceeds_read_energy_for_sram() {
        let node = ProcessNode::ptm_22nm_hp();
        let (spec, org) = ctx_for(CellModel::sram(&node));
        let ctx = Ctx::new(&spec, org);
        assert!(write_energy(&ctx) > read_energy(&ctx));
    }
}
