//! Row-decoder model: a chain of logarithmic decode stages.

use coldtall_units::{Joules, Seconds};

use super::Ctx;
use crate::calib;

/// Decode depth in stages: one gating level per address bit of the
/// subarray plus bank-select levels for the tiling grid.
fn decode_levels(ctx: &Ctx<'_>) -> f64 {
    let row_bits = f64::from(ctx.org.rows()).log2();
    let grid_bits = (ctx.geom.subarrays_per_die as f64).log2().max(0.0) / 2.0;
    row_bits + grid_bits
}

/// Decoder critical-path delay.
pub fn delay(ctx: &Ctx<'_>) -> Seconds {
    ctx.fo4 * (calib::DECODER_STAGE_FO4 * decode_levels(ctx))
}

/// Decoder switching energy per access.
pub fn energy(ctx: &Ctx<'_>) -> Joules {
    let node = ctx.node();
    let stage_cap = ctx.nmos.gate_cap(node.min_width()).get() * 10.0;
    let vdd = ctx.op().vdd().get();
    Joules::new(decode_levels(ctx) * stage_cap * vdd * vdd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organization::Organization;
    use crate::spec::ArraySpec;
    use coldtall_cell::CellModel;
    use coldtall_tech::ProcessNode;

    #[test]
    fn more_rows_decode_slower() {
        let node = ProcessNode::ptm_22nm_hp();
        let spec = ArraySpec::llc_16mib(CellModel::sram(&node), &node);
        let small = Ctx::new(&spec, Organization::new(128, 512));
        let large = Ctx::new(&spec, Organization::new(2048, 512));
        assert!(delay(&large) > delay(&small));
        assert!(energy(&large) > energy(&small));
    }

    #[test]
    fn decoder_delay_is_subnanosecond() {
        let node = ProcessNode::ptm_22nm_hp();
        let spec = ArraySpec::llc_16mib(CellModel::sram(&node), &node);
        let ctx = Ctx::new(&spec, Organization::new(1024, 1024));
        let ns = delay(&ctx).as_nanos();
        assert!(ns > 0.05 && ns < 1.0, "decoder delay = {ns} ns");
    }
}
