//! Physical geometry derivation: cell dimensions, subarray tiles, die
//! footprint, and silicon totals.

use coldtall_cell::ReadMechanism;

use crate::calib;
use crate::organization::Organization;
use crate::spec::ArraySpec;

/// Derived physical geometry of one candidate organization, in SI units
/// (meters and square meters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometry {
    /// Width of one cell.
    pub cell_width: f64,
    /// Height of one cell.
    pub cell_height: f64,
    /// Area of one subarray's cell block.
    pub cell_block_area: f64,
    /// Area of one subarray's peripheral strips (decoder + sense).
    pub strips_area: f64,
    /// Total area of one subarray including control overhead.
    pub subarray_area: f64,
    /// Total number of subarrays across all dies.
    pub subarrays_total: u64,
    /// Subarrays tiled onto each die.
    pub subarrays_per_die: u64,
    /// Array content area per die (subarrays + H-tree routing).
    pub per_die_content: f64,
    /// Base-die global-periphery floor.
    pub floor_area: f64,
    /// Vertical-interconnect field area per die (zero for 2D).
    pub tsv_area: f64,
    /// 2D footprint: the area of the largest (base) die.
    pub footprint: f64,
    /// Total silicon across all dies.
    pub total_silicon: f64,
    /// Total non-cell (peripheral) silicon across all dies.
    pub periph_area: f64,
}

impl Geometry {
    /// Derives the geometry for `spec` under organization `org`.
    pub fn derive(spec: &ArraySpec, org: Organization) -> Self {
        let node = spec.node();
        let f = node.feature().get();
        let cell = spec.cell();
        let side_f = cell.area_f2().sqrt();
        let cell_width = side_f * f;
        let cell_height = side_f * f;
        let cell_area = cell.area_m2(node);

        let rows = f64::from(org.rows());
        let cols = f64::from(org.cols());
        let cell_block_area = rows * cols * cell_area;

        let sense_depth = match cell.read_mechanism() {
            ReadMechanism::VoltageSense { .. } => calib::SENSE_STRIP_DEPTH_F_VOLTAGE,
            ReadMechanism::CurrentSense => calib::SENSE_STRIP_DEPTH_F_CURRENT,
        };
        let decoder_strip = rows * cell_height * calib::DECODER_STRIP_DEPTH_F * f;
        let sense_strip = cols * cell_width * sense_depth * f;
        let port_factor = if spec.dual_port() {
            calib::DUAL_PORT_AREA_FACTOR
        } else {
            1.0
        };
        let strips_area = (decoder_strip + sense_strip) * port_factor;
        let subarray_area =
            (cell_block_area + strips_area) * (1.0 + calib::CONTROL_AREA_OVERHEAD);

        let overhead = spec.storage_overhead();
        let subarrays_total = org.subarray_count(spec.capacity(), overhead);
        let dies = spec.dies();
        let subarrays_per_die = org.subarrays_per_die(spec.capacity(), overhead, dies);

        let tiles_area = subarray_area * subarrays_per_die as f64;
        let per_die_content = tiles_area * (1.0 + calib::HTREE_AREA_FRACTION);

        let floor_mm2_base = if cell.is_nonvolatile() {
            calib::GLOBAL_FLOOR_NVM_MM2
        } else {
            calib::GLOBAL_FLOOR_VOLATILE_MM2
        };
        let capacity_scale =
            (spec.capacity().bits_f64() / (16.0 * 1024.0 * 1024.0 * 8.0)).sqrt();
        let floor_area = floor_mm2_base * 1e-6 * capacity_scale;

        let tsv_area = if dies > 1 {
            let signals = spec.transfer_bits() + calib::TSV_OVERHEAD_SIGNALS;
            let pitch = spec.stacking().via_pitch_m();
            signals * pitch * pitch * (1.0 + calib::TSV_GROWTH_PER_DIE * f64::from(dies))
        } else {
            0.0
        };

        let footprint = per_die_content + floor_area + tsv_area;
        let total_silicon =
            per_die_content * f64::from(dies) + floor_area + tsv_area * f64::from(dies);
        let total_cell_area = subarrays_total as f64 * cell_block_area;
        let periph_area = (total_silicon - total_cell_area).max(0.0);

        Self {
            cell_width,
            cell_height,
            cell_block_area,
            strips_area,
            subarray_area,
            subarrays_total,
            subarrays_per_die,
            per_die_content,
            floor_area,
            tsv_area,
            footprint,
            total_silicon,
            periph_area,
        }
    }

    /// Array (storage) efficiency: cell area over total silicon.
    pub fn array_efficiency(&self) -> f64 {
        let cells = self.subarrays_total as f64 * self.cell_block_area;
        cells / self.total_silicon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
    use coldtall_tech::ProcessNode;

    fn geom(cell: CellModel, dies: u8) -> Geometry {
        let node = ProcessNode::ptm_22nm_hp();
        let spec = ArraySpec::llc_16mib(cell, &node).with_dies(dies);
        Geometry::derive(&spec, Organization::new(512, 1024))
    }

    #[test]
    fn sram_16mib_footprint_is_order_10mm2() {
        let node = ProcessNode::ptm_22nm_hp();
        let g = geom(CellModel::sram(&node), 1);
        let mm2 = g.footprint * 1e6;
        assert!(mm2 > 8.0 && mm2 < 25.0, "SRAM footprint = {mm2} mm^2");
        assert!(g.array_efficiency() > 0.5 && g.array_efficiency() < 0.95);
    }

    #[test]
    fn stacking_shrinks_footprint_but_not_total_silicon() {
        let node = ProcessNode::ptm_22nm_hp();
        let g1 = geom(CellModel::sram(&node), 1);
        let g8 = geom(CellModel::sram(&node), 8);
        assert!(g8.footprint < g1.footprint * 0.3);
        assert!(g8.total_silicon > g1.footprint * 0.9);
    }

    #[test]
    fn dense_cells_are_periphery_dominated() {
        let node = ProcessNode::ptm_22nm_hp();
        let pcm = CellModel::tentpole(MemoryTechnology::Pcm, Tentpole::Optimistic, &node);
        let g = geom(pcm, 1);
        assert!(
            g.array_efficiency() < 0.5,
            "PCM efficiency = {}",
            g.array_efficiency()
        );
    }

    #[test]
    fn tsv_field_only_for_3d() {
        let node = ProcessNode::ptm_22nm_hp();
        assert_eq!(geom(CellModel::sram(&node), 1).tsv_area, 0.0);
        assert!(geom(CellModel::sram(&node), 2).tsv_area > 0.0);
    }

    #[test]
    fn nvm_floor_exceeds_volatile_floor() {
        let node = ProcessNode::ptm_22nm_hp();
        let sram = geom(CellModel::sram(&node), 1);
        let pcm = geom(
            CellModel::tentpole(MemoryTechnology::Pcm, Tentpole::Optimistic, &node),
            1,
        );
        assert!(pcm.floor_area > sram.floor_area);
    }
}
