//! 3D integration styles and their vertical-interconnect parameters.

use core::fmt;

use crate::calib;

/// The 3D-integration strategy of an array.
///
/// The paper's background (Section II-C) describes three methods with
/// distinct trade-offs:
///
/// * **face-to-face** bonding offers dense bond points but is limited to
///   two layers,
/// * **face-to-back** TSV stacking scales to many dies at coarser pitch,
/// * **monolithic** integration offers the densest vias but restricts
///   what can be fabricated on upper layers (upper-layer devices are
///   derated here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Stacking {
    /// Conventional single-die (2D) integration.
    #[default]
    Planar,
    /// Two dies bonded face-to-face.
    FaceToFace,
    /// TSV-based face-to-back stacking (the study's 3D default).
    FaceToBack,
    /// Monolithic 3D integration.
    Monolithic,
}

impl Stacking {
    /// Maximum number of dies this style can stack.
    #[must_use]
    pub fn max_dies(self) -> u8 {
        match self {
            Self::Planar => 1,
            Self::FaceToFace => 2,
            Self::FaceToBack | Self::Monolithic => 8,
        }
    }

    /// Returns `true` if `dies` is a legal die count for this style.
    #[must_use]
    pub fn supports_dies(self, dies: u8) -> bool {
        dies >= 1 && dies <= self.max_dies() && (dies == 1 || self != Self::Planar)
    }

    /// Capacitance of one vertical crossing (TSV, bond point, or via).
    #[must_use]
    pub fn via_cap_f(self) -> f64 {
        match self {
            Self::Planar => 0.0,
            Self::FaceToFace => calib::TSV_CAP_F2F,
            Self::FaceToBack => calib::TSV_CAP_F2B,
            Self::Monolithic => calib::TSV_CAP_MONOLITHIC,
        }
    }

    /// Pitch of the vertical interconnect field.
    #[must_use]
    pub fn via_pitch_m(self) -> f64 {
        match self {
            Self::Planar => 0.0,
            Self::FaceToFace => calib::TSV_PITCH_F2F,
            Self::FaceToBack => calib::TSV_PITCH_F2B,
            Self::Monolithic => calib::TSV_PITCH_MONOLITHIC,
        }
    }

    /// Multiplicative derating on device delay for logic realized on
    /// upper layers (monolithic integration only).
    #[must_use]
    pub fn device_derate(self) -> f64 {
        match self {
            Self::Monolithic => calib::MONOLITHIC_DEVICE_DERATE,
            _ => 1.0,
        }
    }

    /// The stacking style the study uses for a given die count: planar
    /// for one die, face-to-back otherwise.
    #[must_use]
    pub fn default_for_dies(dies: u8) -> Self {
        if dies <= 1 {
            Self::Planar
        } else {
            Self::FaceToBack
        }
    }
}

impl fmt::Display for Stacking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Planar => "2D",
            Self::FaceToFace => "3D face-to-face",
            Self::FaceToBack => "3D face-to-back",
            Self::Monolithic => "3D monolithic",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn die_count_limits() {
        assert!(Stacking::Planar.supports_dies(1));
        assert!(!Stacking::Planar.supports_dies(2));
        assert!(Stacking::FaceToFace.supports_dies(2));
        assert!(!Stacking::FaceToFace.supports_dies(4));
        assert!(Stacking::FaceToBack.supports_dies(8));
        assert!(Stacking::Monolithic.supports_dies(8));
        assert!(!Stacking::FaceToBack.supports_dies(0));
    }

    #[test]
    fn via_parameters_ordered_by_density() {
        assert!(Stacking::Monolithic.via_pitch_m() < Stacking::FaceToFace.via_pitch_m());
        assert!(Stacking::FaceToFace.via_pitch_m() < Stacking::FaceToBack.via_pitch_m());
        assert!(Stacking::Monolithic.via_cap_f() < Stacking::FaceToBack.via_cap_f());
    }

    #[test]
    fn default_style_selection() {
        assert_eq!(Stacking::default_for_dies(1), Stacking::Planar);
        assert_eq!(Stacking::default_for_dies(4), Stacking::FaceToBack);
        assert_eq!(Stacking::default(), Stacking::Planar);
    }

    #[test]
    fn only_monolithic_derates_devices() {
        assert_eq!(Stacking::FaceToBack.device_derate(), 1.0);
        assert!(Stacking::Monolithic.device_derate() > 1.0);
    }
}
