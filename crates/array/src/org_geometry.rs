//! Phase 1 of the two-phase characterization kernel: the
//! temperature-invariant organization geometry.
//!
//! Array geometry — the feasible subarray partitionings, wordline and
//! bitline lengths, H-tree extent, TSV counts — depends on the cell,
//! the node, the capacity, and the stacking style, but *never* on the
//! operating point; only device parameters (Matula wire resistivity,
//! subthreshold leakage, mobility) move with temperature. A dense
//! temperature sweep therefore re-derives the same geometries at every
//! point for nothing. [`OrgGeometry::solve`] hoists that derivation out
//! once, and [`OrgGeometry::apply_temperature`] runs only the cheap
//! temperature-dependent pass per point — the same amortization
//! NVSim/Destiny use to make full design-space enumeration tractable.
//!
//! The split is exact, not approximate: `apply_temperature` produces
//! the bytes of [`crate::optimize`] on the equivalent spec (the golden
//! suite and the cross-crate batch tests pin this).

use coldtall_units::Kelvin;

use crate::characterize::ArrayCharacterization;
use crate::components::Geometry;
use crate::optimizer::{self, ComponentFloors, Objective};
use crate::organization::Organization;
use crate::spec::ArraySpec;

/// The solved, temperature-invariant geometry of one array
/// specification: every feasible candidate organization paired with its
/// derived physical geometry, plus the base spec they were derived
/// from.
///
/// Solve once per (cell technology, spec geometry, organization
/// space); then characterize at any number of operating temperatures
/// via [`OrgGeometry::apply_temperature`].
///
/// # Examples
///
/// ```
/// use coldtall_array::{ArraySpec, Objective, OrgGeometry};
/// use coldtall_cell::CellModel;
/// use coldtall_tech::ProcessNode;
/// use coldtall_units::Kelvin;
///
/// let node = ProcessNode::ptm_22nm_hp();
/// let spec = ArraySpec::llc_16mib(CellModel::sram(&node), &node);
/// let geometry = OrgGeometry::solve(&spec);
/// let cold = geometry.apply_temperature(Kelvin::LN2, Objective::EnergyDelayProduct);
/// let direct = spec
///     .clone()
///     .at_temperature_cryo(Kelvin::LN2)
///     .characterize(Objective::EnergyDelayProduct);
/// assert_eq!(cold, direct);
/// ```
#[derive(Debug, Clone)]
pub struct OrgGeometry {
    spec: ArraySpec,
    candidates: Vec<(Organization, Geometry)>,
}

impl OrgGeometry {
    /// Derives the feasible candidate organizations of `spec` and their
    /// geometries (phase 1).
    ///
    /// The stored spec keeps `spec`'s operating point, but nothing in
    /// the solved geometry depends on it: two specs differing only in
    /// operating point solve to bit-identical candidate lists, which is
    /// what makes one `OrgGeometry` shareable across a temperature
    /// sweep.
    #[must_use]
    pub fn solve(spec: &ArraySpec) -> Self {
        Self {
            spec: spec.clone(),
            candidates: optimizer::feasible_candidates(spec),
        }
    }

    /// The specification the geometry was solved for.
    #[must_use]
    pub fn spec(&self) -> &ArraySpec {
        &self.spec
    }

    /// The feasible `(organization, geometry)` candidates, in canonical
    /// candidate order.
    #[must_use]
    pub fn candidates(&self) -> &[(Organization, Geometry)] {
        &self.candidates
    }

    /// Number of feasible candidates.
    #[must_use]
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Runs the organization search at the stored spec's own operating
    /// point (phase 2 without a temperature change).
    ///
    /// # Panics
    ///
    /// Panics if the spec admits no feasible organization.
    #[must_use]
    pub fn characterize(&self, objective: Objective) -> ArrayCharacterization {
        optimizer::search(&self.spec, &self.candidates, objective)
    }

    /// Phase 2: re-evaluates only the temperature-dependent terms at
    /// operating temperature `t` under the cryogenic voltage-scaling
    /// policy ([`ArraySpec::at_temperature_cryo`], the policy every
    /// sweep in the study applies) and returns the optimal
    /// characterization.
    ///
    /// Bit-identical to characterizing
    /// `spec.at_temperature_cryo(t)` from scratch, because the
    /// candidate list and geometries are operating-point-invariant.
    ///
    /// # Panics
    ///
    /// Panics if the spec admits no feasible organization.
    #[must_use]
    pub fn apply_temperature(&self, t: Kelvin, objective: Objective) -> ArrayCharacterization {
        let spec = self.spec.clone().at_temperature_cryo(t);
        optimizer::search(&spec, &self.candidates, objective)
    }

    /// Componentwise floors over the candidate list at operating
    /// temperature `t` (same voltage-scaling policy as
    /// [`OrgGeometry::apply_temperature`]): lower bounds on the fields
    /// of whatever characterization [`OrgGeometry::apply_temperature`]
    /// returns at `t`, for *any* objective, because the chosen
    /// organization is one of the minimized-over candidates.
    ///
    /// # Panics
    ///
    /// Panics if the spec admits no feasible organization.
    #[must_use]
    pub fn floors_at_temperature(&self, t: Kelvin) -> ComponentFloors {
        let spec = self.spec.clone().at_temperature_cryo(t);
        optimizer::component_floors(&spec, &self.candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
    use coldtall_tech::ProcessNode;

    fn sram_spec() -> ArraySpec {
        let node = ProcessNode::ptm_22nm_hp();
        ArraySpec::llc_16mib(CellModel::sram(&node), &node)
    }

    #[test]
    fn solve_is_operating_point_invariant() {
        let base = sram_spec();
        let cold = OrgGeometry::solve(&base.clone().at_temperature_cryo(Kelvin::LN2));
        let warm = OrgGeometry::solve(&base);
        assert_eq!(warm.candidate_count(), cold.candidate_count());
        for (a, b) in warm.candidates().iter().zip(cold.candidates()) {
            assert_eq!(a, b, "geometry must not depend on the operating point");
        }
    }

    #[test]
    fn characterize_matches_optimize_bit_for_bit() {
        for objective in [
            Objective::EnergyDelayProduct,
            Objective::ReadLatency,
            Objective::Area,
        ] {
            let spec = sram_spec();
            assert_eq!(
                OrgGeometry::solve(&spec).characterize(objective),
                crate::optimize(&spec, objective),
            );
        }
    }

    #[test]
    fn apply_temperature_matches_the_from_scratch_path() {
        let node = ProcessNode::ptm_22nm_hp();
        for cell in [
            CellModel::sram(&node),
            CellModel::tentpole(MemoryTechnology::Edram3T, Tentpole::Optimistic, &node),
        ] {
            let spec = ArraySpec::llc_16mib(cell, &node);
            let geometry = OrgGeometry::solve(&spec);
            for t in [77.0, 177.0, 300.0, 387.0] {
                let t = Kelvin::new(t);
                assert_eq!(
                    geometry.apply_temperature(t, Objective::EnergyDelayProduct),
                    spec.clone()
                        .at_temperature_cryo(t)
                        .characterize(Objective::EnergyDelayProduct),
                    "two-phase result diverged at {t}"
                );
            }
        }
    }

    #[test]
    fn floors_bound_every_objectives_characterization() {
        let node = ProcessNode::ptm_22nm_hp();
        for cell in [
            CellModel::sram(&node),
            CellModel::tentpole(MemoryTechnology::Edram3T, Tentpole::Optimistic, &node),
        ] {
            let spec = ArraySpec::llc_16mib(cell, &node);
            let geometry = OrgGeometry::solve(&spec);
            for t in [77.0, 227.0, 350.0] {
                let t = Kelvin::new(t);
                let floors = geometry.floors_at_temperature(t);
                for objective in [
                    Objective::EnergyDelayProduct,
                    Objective::ReadLatency,
                    Objective::ReadEnergy,
                    Objective::Area,
                    Objective::StandbyPower,
                ] {
                    let array = geometry.apply_temperature(t, objective);
                    assert!(floors.read_latency_s <= array.read_latency.get());
                    assert!(floors.read_energy_j <= array.read_energy.get());
                    assert!(floors.standby_power_w <= array.standby_power().get());
                    assert!(floors.footprint_m2 <= array.footprint.get());
                    assert!(floors.refresh_busy_fraction <= array.refresh_busy_fraction);
                }
            }
        }
    }

    #[test]
    fn small_stacked_specs_prune_infeasible_subarrays() {
        use coldtall_units::Capacity;
        let solo = OrgGeometry::solve(&sram_spec());
        // A 1 MiB share per die cannot host the largest subarray
        // candidates, so the feasibility filter must bite.
        let small = OrgGeometry::solve(
            &sram_spec()
                .with_capacity(Capacity::from_mebibytes(1))
                .with_dies(8),
        );
        assert!(small.candidate_count() < solo.candidate_count());
        assert!(small.candidate_count() > 0);
    }
}
