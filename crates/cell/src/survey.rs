//! Survey database of published eNVM cell demonstrations.
//!
//! NVMExplorer aggregates cell-level characteristics published at ISSCC,
//! IEDM, and the VLSI symposia between 2016 and 2020. That database is
//! not redistributable, so this module ships **synthetic stand-in
//! entries** spanning the same per-technology ranges reported in the
//! literature; the downstream tentpole methodology only consumes the
//! per-field extrema, which these ranges reproduce (see `DESIGN.md`
//! section 3).

use crate::technology::MemoryTechnology;

/// Publication venue of a surveyed cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Venue {
    /// International Solid-State Circuits Conference.
    Isscc,
    /// International Electron Devices Meeting.
    Iedm,
    /// Symposium on VLSI Technology and Circuits.
    Vlsi,
}

/// One published cell demonstration: the cell-level characteristics the
/// array model consumes.
///
/// This is a passive record type; all fields are public.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurveyEntry {
    /// Synthetic identifier, e.g. `"PCM-ISSCC17-A"`.
    pub id: &'static str,
    /// Publication year.
    pub year: u16,
    /// Publication venue.
    pub venue: Venue,
    /// Cell technology.
    pub technology: MemoryTechnology,
    /// Cell footprint in squared feature sizes (F^2).
    pub cell_area_f2: f64,
    /// Cell-level sensing latency for a read, nanoseconds.
    pub read_sense_ns: f64,
    /// Cell-level read energy, picojoules per bit.
    pub read_energy_pj: f64,
    /// Cell write (SET/RESET/switching) pulse latency, nanoseconds.
    pub write_latency_ns: f64,
    /// Cell write energy, picojoules per bit.
    pub write_energy_pj: f64,
    /// Write endurance in program cycles.
    pub endurance_writes: f64,
    /// Data retention at operating temperature, years.
    pub retention_years: f64,
    /// Bits stored per cell (multi-level cells).
    pub mlc_bits: u8,
}

macro_rules! entry {
    ($id:literal, $year:literal, $venue:ident, $tech:ident,
     area: $area:literal, sense: $sense:literal, re: $re:literal,
     wlat: $wlat:literal, we: $we:literal, end: $end:literal,
     ret: $ret:literal, mlc: $mlc:literal) => {
        SurveyEntry {
            id: $id,
            year: $year,
            venue: Venue::$venue,
            technology: MemoryTechnology::$tech,
            cell_area_f2: $area,
            read_sense_ns: $sense,
            read_energy_pj: $re,
            write_latency_ns: $wlat,
            write_energy_pj: $we,
            endurance_writes: $end,
            retention_years: $ret,
            mlc_bits: $mlc,
        }
    };
}

/// Phase-change memory demonstrations.
const PCM: &[SurveyEntry] = &[
    entry!("PCM-ISSCC16-A", 2016, Isscc, Pcm, area: 16.0, sense: 1.5, re: 3.2, wlat: 150.0, we: 60.0, end: 1.0e6, ret: 10.0, mlc: 1),
    entry!("PCM-IEDM16-B", 2016, Iedm, Pcm, area: 12.0, sense: 1.1, re: 2.7, wlat: 120.0, we: 45.0, end: 3.0e6, ret: 10.0, mlc: 1),
    entry!("PCM-VLSI17-A", 2017, Vlsi, Pcm, area: 9.0, sense: 0.9, re: 2.4, wlat: 90.0, we: 38.0, end: 1.0e7, ret: 10.0, mlc: 2),
    entry!("PCM-ISSCC17-B", 2017, Isscc, Pcm, area: 8.0, sense: 0.8, re: 2.2, wlat: 70.0, we: 30.0, end: 2.0e7, ret: 10.0, mlc: 1),
    entry!("PCM-IEDM17-C", 2017, Iedm, Pcm, area: 7.0, sense: 0.7, re: 2.0, wlat: 55.0, we: 24.0, end: 5.0e7, ret: 8.0, mlc: 2),
    entry!("PCM-ISSCC18-A", 2018, Isscc, Pcm, area: 6.0, sense: 0.6, re: 1.9, wlat: 45.0, we: 19.0, end: 1.0e8, ret: 10.0, mlc: 1),
    entry!("PCM-VLSI18-B", 2018, Vlsi, Pcm, area: 6.0, sense: 0.5, re: 1.8, wlat: 35.0, we: 15.0, end: 2.0e8, ret: 10.0, mlc: 2),
    entry!("PCM-IEDM18-D", 2018, Iedm, Pcm, area: 5.0, sense: 0.45, re: 1.7, wlat: 28.0, we: 12.0, end: 3.0e8, ret: 10.0, mlc: 1),
    entry!("PCM-ISSCC19-A", 2019, Isscc, Pcm, area: 5.0, sense: 0.4, re: 1.6, wlat: 22.0, we: 9.0, end: 5.0e8, ret: 10.0, mlc: 1),
    entry!("PCM-VLSI19-C", 2019, Vlsi, Pcm, area: 4.5, sense: 0.33, re: 1.5, wlat: 16.0, we: 7.0, end: 8.0e8, ret: 10.0, mlc: 2),
    entry!("PCM-IEDM19-B", 2019, Iedm, Pcm, area: 4.0, sense: 0.3, re: 1.45, wlat: 13.0, we: 6.0, end: 1.0e9, ret: 10.0, mlc: 1),
    entry!("PCM-ISSCC20-A", 2020, Isscc, Pcm, area: 4.0, sense: 0.15, re: 1.4, wlat: 10.0, we: 5.0, end: 1.0e9, ret: 10.0, mlc: 2),
];

/// Spin-transfer-torque MRAM demonstrations.
const STT: &[SurveyEntry] = &[
    entry!("STT-ISSCC16-A", 2016, Isscc, SttRam, area: 40.0, sense: 2.0, re: 4.0, wlat: 20.0, we: 15.0, end: 1.0e10, ret: 10.0, mlc: 1),
    entry!("STT-IEDM16-B", 2016, Iedm, SttRam, area: 34.0, sense: 1.7, re: 3.7, wlat: 16.0, we: 13.0, end: 5.0e10, ret: 10.0, mlc: 1),
    entry!("STT-VLSI17-A", 2017, Vlsi, SttRam, area: 30.0, sense: 1.4, re: 3.4, wlat: 12.0, we: 11.0, end: 1.0e11, ret: 10.0, mlc: 1),
    entry!("STT-ISSCC17-C", 2017, Isscc, SttRam, area: 27.0, sense: 1.2, re: 3.1, wlat: 10.0, we: 9.5, end: 5.0e11, ret: 10.0, mlc: 1),
    entry!("STT-IEDM17-A", 2017, Iedm, SttRam, area: 24.0, sense: 1.0, re: 2.9, wlat: 8.0, we: 8.0, end: 1.0e12, ret: 10.0, mlc: 1),
    entry!("STT-VLSI18-B", 2018, Vlsi, SttRam, area: 21.0, sense: 0.85, re: 2.7, wlat: 6.0, we: 7.0, end: 5.0e12, ret: 10.0, mlc: 1),
    entry!("STT-ISSCC18-D", 2018, Isscc, SttRam, area: 18.0, sense: 0.7, re: 2.5, wlat: 4.5, we: 6.2, end: 1.0e13, ret: 10.0, mlc: 1),
    entry!("STT-IEDM18-C", 2018, Iedm, SttRam, area: 16.0, sense: 0.6, re: 2.3, wlat: 3.2, we: 5.5, end: 5.0e13, ret: 10.0, mlc: 1),
    entry!("STT-ISSCC19-B", 2019, Isscc, SttRam, area: 14.0, sense: 0.5, re: 2.2, wlat: 2.2, we: 4.8, end: 1.0e14, ret: 10.0, mlc: 1),
    entry!("STT-VLSI19-A", 2019, Vlsi, SttRam, area: 12.0, sense: 0.45, re: 2.0, wlat: 1.5, we: 4.2, end: 3.0e14, ret: 10.0, mlc: 1),
    entry!("STT-IEDM19-D", 2019, Iedm, SttRam, area: 11.0, sense: 0.4, re: 1.9, wlat: 0.6, we: 3.8, end: 6.0e14, ret: 10.0, mlc: 1),
    entry!("STT-ISSCC20-B", 2020, Isscc, SttRam, area: 10.0, sense: 0.25, re: 1.8, wlat: 0.3, we: 3.5, end: 1.0e15, ret: 10.0, mlc: 1),
];

/// Resistive RAM demonstrations.
const RRAM: &[SurveyEntry] = &[
    entry!("RRAM-ISSCC16-B", 2016, Isscc, Rram, area: 30.0, sense: 3.0, re: 5.0, wlat: 100.0, we: 40.0, end: 1.0e6, ret: 10.0, mlc: 1),
    entry!("RRAM-IEDM16-A", 2016, Iedm, Rram, area: 26.0, sense: 2.5, re: 4.6, wlat: 80.0, we: 33.0, end: 5.0e6, ret: 10.0, mlc: 1),
    entry!("RRAM-VLSI17-C", 2017, Vlsi, Rram, area: 22.0, sense: 2.1, re: 4.2, wlat: 62.0, we: 27.0, end: 1.0e7, ret: 10.0, mlc: 2),
    entry!("RRAM-ISSCC17-A", 2017, Isscc, Rram, area: 18.0, sense: 1.8, re: 3.9, wlat: 48.0, we: 22.0, end: 1.0e8, ret: 10.0, mlc: 1),
    entry!("RRAM-IEDM17-D", 2017, Iedm, Rram, area: 15.0, sense: 1.5, re: 3.6, wlat: 37.0, we: 18.0, end: 5.0e8, ret: 10.0, mlc: 2),
    entry!("RRAM-VLSI18-A", 2018, Vlsi, Rram, area: 12.0, sense: 1.25, re: 3.3, wlat: 28.0, we: 15.0, end: 1.0e9, ret: 10.0, mlc: 1),
    entry!("RRAM-ISSCC18-C", 2018, Isscc, Rram, area: 10.0, sense: 1.0, re: 3.0, wlat: 21.0, we: 12.0, end: 5.0e9, ret: 10.0, mlc: 2),
    entry!("RRAM-IEDM18-B", 2018, Iedm, Rram, area: 8.0, sense: 0.85, re: 2.8, wlat: 16.0, we: 10.0, end: 1.0e10, ret: 10.0, mlc: 1),
    entry!("RRAM-ISSCC19-D", 2019, Isscc, Rram, area: 7.0, sense: 0.7, re: 2.6, wlat: 12.0, we: 8.0, end: 3.0e10, ret: 10.0, mlc: 1),
    entry!("RRAM-VLSI19-B", 2019, Vlsi, Rram, area: 6.0, sense: 0.6, re: 2.4, wlat: 9.0, we: 6.8, end: 6.0e10, ret: 10.0, mlc: 2),
    entry!("RRAM-IEDM19-A", 2019, Iedm, Rram, area: 5.0, sense: 0.5, re: 2.2, wlat: 7.0, we: 5.8, end: 8.0e10, ret: 10.0, mlc: 1),
    entry!("RRAM-ISSCC20-C", 2020, Isscc, Rram, area: 4.0, sense: 0.4, re: 2.0, wlat: 5.0, we: 5.0, end: 1.0e11, ret: 10.0, mlc: 2),
];

/// Spin-orbit-torque MRAM demonstrations (extension technology; faster
/// writes than STT at the cost of read latency and cell area, per the
/// paper's background discussion).
const SOT: &[SurveyEntry] = &[
    entry!("SOT-IEDM17-A", 2017, Iedm, SotRam, area: 60.0, sense: 2.5, re: 4.5, wlat: 2.0, we: 5.0, end: 1.0e12, ret: 10.0, mlc: 1),
    entry!("SOT-VLSI18-A", 2018, Vlsi, SotRam, area: 48.0, sense: 2.0, re: 3.9, wlat: 1.5, we: 3.8, end: 5.0e12, ret: 10.0, mlc: 1),
    entry!("SOT-ISSCC19-A", 2019, Isscc, SotRam, area: 36.0, sense: 1.5, re: 3.3, wlat: 1.0, we: 2.6, end: 1.0e13, ret: 10.0, mlc: 1),
    entry!("SOT-IEDM19-B", 2019, Iedm, SotRam, area: 28.0, sense: 1.1, re: 2.9, wlat: 0.7, we: 1.9, end: 1.0e14, ret: 10.0, mlc: 1),
    entry!("SOT-VLSI20-A", 2020, Vlsi, SotRam, area: 20.0, sense: 0.8, re: 2.5, wlat: 0.45, we: 1.3, end: 5.0e14, ret: 10.0, mlc: 1),
    entry!("SOT-ISSCC20-B", 2020, Isscc, SotRam, area: 15.0, sense: 0.5, re: 2.2, wlat: 0.15, we: 1.0, end: 1.0e15, ret: 10.0, mlc: 1),
];

/// Returns the surveyed cell demonstrations for a technology, or an empty
/// slice for technologies that are modelled analytically rather than from
/// the survey (SRAM and the eDRAMs).
///
/// # Examples
///
/// ```
/// use coldtall_cell::{survey_entries, MemoryTechnology};
///
/// let pcm = survey_entries(MemoryTechnology::Pcm);
/// assert!(pcm.len() >= 10);
/// assert!(survey_entries(MemoryTechnology::Sram).is_empty());
/// ```
#[must_use]
pub fn survey_entries(technology: MemoryTechnology) -> &'static [SurveyEntry] {
    match technology {
        MemoryTechnology::Pcm => PCM,
        MemoryTechnology::SttRam => STT,
        MemoryTechnology::Rram => RRAM,
        MemoryTechnology::SotRam => SOT,
        MemoryTechnology::Sram | MemoryTechnology::Edram3T | MemoryTechnology::Edram1T1C => &[],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_nvm() -> impl Iterator<Item = &'static SurveyEntry> {
        MemoryTechnology::ENVM_SET
            .into_iter()
            .chain([MemoryTechnology::SotRam])
            .flat_map(survey_entries)
    }

    #[test]
    fn entries_are_internally_consistent() {
        for e in all_nvm() {
            assert!(e.cell_area_f2 > 0.0, "{}: bad area", e.id);
            assert!(e.read_sense_ns > 0.0, "{}: bad sense", e.id);
            assert!(e.write_latency_ns > 0.0, "{}: bad write latency", e.id);
            // SOT-RAM trades read cost for cheap writes; every other eNVM
            // has the classic expensive-write asymmetry.
            if e.technology != MemoryTechnology::SotRam {
                assert!(
                    e.write_energy_pj > e.read_energy_pj,
                    "{}: eNVM writes cost more than reads",
                    e.id
                );
            }
            assert!(e.endurance_writes >= 1.0e6, "{}: bad endurance", e.id);
            assert!((2016..=2020).contains(&e.year), "{}: year out of survey window", e.id);
            assert!(e.mlc_bits >= 1, "{}: bad MLC bits", e.id);
        }
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<_> = all_nvm().map(|e| e.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate survey ids");
    }

    #[test]
    fn technology_tags_match_their_table() {
        for t in [
            MemoryTechnology::Pcm,
            MemoryTechnology::SttRam,
            MemoryTechnology::Rram,
            MemoryTechnology::SotRam,
        ] {
            for e in survey_entries(t) {
                assert_eq!(e.technology, t, "{} mis-tagged", e.id);
            }
        }
    }

    #[test]
    fn stt_has_highest_endurance_floor() {
        let min_end = |t| {
            survey_entries(t)
                .iter()
                .map(|e| e.endurance_writes)
                .fold(f64::INFINITY, f64::min)
        };
        assert!(min_end(MemoryTechnology::SttRam) >= 1.0e10);
        assert!(min_end(MemoryTechnology::Pcm) < 1.0e8);
        assert!(min_end(MemoryTechnology::Rram) < 1.0e8);
    }

    #[test]
    fn pcm_is_densest_and_stt_writes_fastest() {
        let min_area = |t: MemoryTechnology| {
            survey_entries(t)
                .iter()
                .map(|e| e.cell_area_f2)
                .fold(f64::INFINITY, f64::min)
        };
        assert!(min_area(MemoryTechnology::Pcm) <= min_area(MemoryTechnology::SttRam));
        let min_wlat = |t: MemoryTechnology| {
            survey_entries(t)
                .iter()
                .map(|e| e.write_latency_ns)
                .fold(f64::INFINITY, f64::min)
        };
        assert!(min_wlat(MemoryTechnology::SttRam) < min_wlat(MemoryTechnology::Pcm));
        assert!(min_wlat(MemoryTechnology::SttRam) < min_wlat(MemoryTechnology::Rram));
        // SOT improves on STT's write speed, as the paper's background notes.
        assert!(min_wlat(MemoryTechnology::SotRam) < min_wlat(MemoryTechnology::SttRam));
    }
}
