//! The memory-technology taxonomy of the study.

use core::fmt;

/// A storage-cell technology evaluated by the design-space exploration.
///
/// The paper's main study covers [`Sram`](MemoryTechnology::Sram),
/// [`Edram3T`](MemoryTechnology::Edram3T), [`Pcm`](MemoryTechnology::Pcm),
/// [`SttRam`](MemoryTechnology::SttRam), and
/// [`Rram`](MemoryTechnology::Rram). 1T1C eDRAM is modelled but excluded
/// from the headline comparison (as in the paper), and SOT-RAM is an
/// extension mentioned in the paper's background section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemoryTechnology {
    /// Six-transistor static RAM.
    Sram,
    /// Three-transistor (PMOS-only) gain-cell embedded DRAM.
    Edram3T,
    /// One-transistor one-capacitor embedded DRAM.
    Edram1T1C,
    /// Phase-change memory.
    Pcm,
    /// Spin-transfer-torque magnetic RAM.
    SttRam,
    /// Resistive RAM (metal-oxide ReRAM).
    Rram,
    /// Spin-orbit-torque magnetic RAM (extension technology).
    SotRam,
}

impl MemoryTechnology {
    /// All technologies in the study's headline comparison, in the order
    /// the paper discusses them.
    pub const STUDY_SET: [Self; 5] = [
        Self::Sram,
        Self::Edram3T,
        Self::Pcm,
        Self::SttRam,
        Self::Rram,
    ];

    /// The embedded non-volatile technologies of the main study.
    pub const ENVM_SET: [Self; 3] = [Self::Pcm, Self::SttRam, Self::Rram];

    /// Returns `true` for non-volatile technologies (data survives power
    /// removal; no cell leakage, periphery may be power-gated).
    #[must_use]
    pub fn is_nonvolatile(self) -> bool {
        matches!(self, Self::Pcm | Self::SttRam | Self::Rram | Self::SotRam)
    }

    /// Returns `true` for technologies whose storage decays and needs
    /// periodic refresh.
    #[must_use]
    pub fn needs_refresh(self) -> bool {
        matches!(self, Self::Edram3T | Self::Edram1T1C)
    }

    /// Returns `true` if writes physically wear the cell out, making
    /// endurance a first-order design constraint.
    #[must_use]
    pub fn has_endurance_concern(self) -> bool {
        matches!(self, Self::Pcm | Self::Rram)
    }

    /// Short display name as used in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Sram => "SRAM",
            Self::Edram3T => "3T-eDRAM",
            Self::Edram1T1C => "1T1C-eDRAM",
            Self::Pcm => "PCM",
            Self::SttRam => "STT-RAM",
            Self::Rram => "RRAM",
            Self::SotRam => "SOT-RAM",
        }
    }
}

impl fmt::Display for MemoryTechnology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volatility_classification() {
        assert!(!MemoryTechnology::Sram.is_nonvolatile());
        assert!(!MemoryTechnology::Edram3T.is_nonvolatile());
        assert!(MemoryTechnology::Pcm.is_nonvolatile());
        assert!(MemoryTechnology::SttRam.is_nonvolatile());
        assert!(MemoryTechnology::Rram.is_nonvolatile());
        assert!(MemoryTechnology::SotRam.is_nonvolatile());
    }

    #[test]
    fn refresh_classification() {
        assert!(MemoryTechnology::Edram3T.needs_refresh());
        assert!(MemoryTechnology::Edram1T1C.needs_refresh());
        assert!(!MemoryTechnology::Sram.needs_refresh());
        assert!(!MemoryTechnology::Pcm.needs_refresh());
    }

    #[test]
    fn endurance_classification_matches_paper() {
        // The paper lists endurance as a limitation "particularly for PCM
        // and RRAM solutions"; STT-RAM has SRAM-like endurance.
        assert!(MemoryTechnology::Pcm.has_endurance_concern());
        assert!(MemoryTechnology::Rram.has_endurance_concern());
        assert!(!MemoryTechnology::SttRam.has_endurance_concern());
        assert!(!MemoryTechnology::Sram.has_endurance_concern());
    }

    #[test]
    fn study_set_contents() {
        assert_eq!(MemoryTechnology::STUDY_SET.len(), 5);
        assert_eq!(MemoryTechnology::ENVM_SET.len(), 3);
        for t in MemoryTechnology::ENVM_SET {
            assert!(t.is_nonvolatile());
            assert!(MemoryTechnology::STUDY_SET.contains(&t));
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(MemoryTechnology::Edram3T.to_string(), "3T-eDRAM");
        assert_eq!(MemoryTechnology::SttRam.to_string(), "STT-RAM");
    }
}
