//! Memory-cell models and the published-cell survey database.
//!
//! This crate plays the role of NVMExplorer's cell-technology database:
//! it describes every storage-cell technology evaluated by the paper
//! (6T SRAM, 3T gain-cell eDRAM, 1T1C eDRAM, PCM, STT-RAM, RRAM, and
//! SOT-RAM as an extension) at the level the array-characterization
//! engine consumes — footprint, leakage paths, sensing and write
//! characteristics, storage-node retention, and endurance.
//!
//! For the eNVM technologies, the crate ships a survey of published cell
//! demonstrations (synthetic stand-ins for the ISSCC/IEDM/VLSI 2016-2020
//! entries the original NVMExplorer database aggregates; see `DESIGN.md`
//! section 3) and implements the paper's **tentpole** methodology: for
//! each technology the extrema of the surveyed cell properties form an
//! optimistic and a pessimistic bounding cell.
//!
//! # Examples
//!
//! ```
//! use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
//! use coldtall_tech::ProcessNode;
//!
//! let node = ProcessNode::ptm_22nm_hp();
//! let sram = CellModel::sram(&node);
//! let pcm = CellModel::tentpole(MemoryTechnology::Pcm, Tentpole::Optimistic, &node);
//! assert!(pcm.area_f2() < sram.area_f2());
//! assert!(pcm.is_nonvolatile());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod model;
mod survey;
mod technology;
mod tentpole;

pub use model::{CellModel, MtjThermal, ReadMechanism, StorageNode};
pub use survey::{survey_entries, SurveyEntry, Venue};
pub use technology::MemoryTechnology;
pub use tentpole::Tentpole;
