//! The cell model consumed by the array-characterization engine.

use coldtall_tech::{Mosfet, OperatingPoint, ProcessNode};
use coldtall_units::{Amps, Farads, Joules, Kelvin, Seconds, Volts, Watts};

use crate::survey::SurveyEntry;
use crate::technology::MemoryTechnology;
use crate::tentpole::Tentpole;

/// How a cell's state is read out onto the bitline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReadMechanism {
    /// The cell develops a small differential voltage on precharged
    /// bitlines (SRAM, gain-cell eDRAM).
    VoltageSense {
        /// Bitline swing that must develop before the sense amplifier
        /// fires.
        swing: Volts,
    },
    /// A read current through the resistive storage element is compared
    /// against a reference (PCM, STT-RAM, RRAM, SOT-RAM).
    CurrentSense,
}

/// A decaying storage node (eDRAM cells).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageNode {
    /// Storage capacitance.
    pub capacitance: Farads,
    /// Voltage margin that may decay before data is lost.
    pub margin: Volts,
}

/// Suppression factor of gate tunneling into an eDRAM storage node
/// relative to a standard logic gate (thicker-oxide boosted devices).
/// Calibrated so 77 K retention improves by more than the paper's
/// 10,000x anchor over 300 K.
const STORAGE_GATE_SUPPRESSION: f64 = 0.003;

/// Threshold boost applied to memory-cell transistors relative to logic
/// devices (high-Vth cell implant), calibrated to a ~0.5 W 16 MiB SRAM
/// cell-leakage budget at 350 K.
const CELL_VTH_BOOST: f64 = 0.19;

/// Default MTJ thermal-stability factor Δ at the reference temperature
/// (350 K): the ten-year-retention design point of the surveyed STT-RAM
/// demonstrations (Garzón et al.).
const MTJ_DELTA_REF: f64 = 60.0;

/// Néel-Brown attempt time τ0 of the MTJ free layer, the prefactor of
/// the thermally-activated retention law `t_ret = τ0 · exp(Δ(T))`.
const MTJ_ATTEMPT_TIME_S: f64 = 1.0e-9;

/// Slope of the MTJ switching-energy increase toward cryogenic
/// temperatures: the write-energy factor is
/// `1 + c · (T_ref/T − 1)`, exactly `1.0` at the 350 K reference.
/// Garzón et al. measure higher critical switching currents as Δ(T)
/// grows toward 77 K; `c` is calibrated so writes cost ~1.9x at 77 K.
const MTJ_WRITE_ENERGY_TEMP_COEFF: f64 = 0.25;

/// Temperature-dependent behavior of an STT-MRAM magnetic tunnel
/// junction, following Garzón et al. ("Adjusting Thermal Stability in
/// Double-Barrier MTJ for Energy Improvement in Cryogenic STT-MRAMs"):
/// the thermal-stability factor scales as `Δ(T) = Δ_ref · T_ref / T`
/// with `T_ref = 350 K`, dragging retention, write energy, and the
/// thermally-activated write-error rate with it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MtjThermal {
    /// Thermal-stability factor Δ(T) = E_barrier / (k_B · T).
    pub delta: f64,
    /// Néel-Brown retention time `τ0 · exp(Δ(T))`. Saturates to
    /// infinity when Δ(T) exceeds the representable exponent range —
    /// still ordered and still comparable against scrub thresholds.
    pub retention: Seconds,
    /// Multiplier on the cell write energy relative to the 350 K
    /// reference: exactly `1.0` at 350 K (bit-for-bit), above `1.0`
    /// toward cryo where the higher Δ(T) raises the switching current.
    pub write_energy_factor: f64,
    /// Thermally-activated write-error rate `exp(−Δ(T))`: the
    /// probability a written bit back-hops during the verify window.
    /// Shrinks toward cryo as the barrier grows.
    pub write_error_rate: f64,
}

/// A storage-cell model: everything the array engine needs to know about
/// one bit of a given technology.
///
/// Construct with [`CellModel::sram`], [`CellModel::edram_3t`],
/// [`CellModel::edram_1t1c`], [`CellModel::from_survey`], or
/// [`CellModel::tentpole`].
///
/// # Examples
///
/// ```
/// use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
/// use coldtall_tech::{OperatingPoint, ProcessNode};
/// use coldtall_units::Kelvin;
///
/// let node = ProcessNode::ptm_22nm_hp();
/// let sram = CellModel::sram(&node);
/// let op = OperatingPoint::nominal(&node, Kelvin::REFERENCE);
/// assert!(sram.leakage_power(&node, &op).get() > 0.0);
///
/// let stt = CellModel::tentpole(MemoryTechnology::SttRam, Tentpole::Optimistic, &node);
/// assert_eq!(stt.leakage_power(&node, &op).get(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CellModel {
    technology: MemoryTechnology,
    tentpole: Option<Tentpole>,
    area_f2: f64,
    // Total transistor widths (meters) participating in each leakage path.
    nmos_sub_width: f64,
    pmos_sub_width: f64,
    nmos_gate_width: f64,
    pmos_gate_width: f64,
    /// Width of the suppressed storage-node tunneling path (already
    /// scaled by [`STORAGE_GATE_SUPPRESSION`]).
    storage_gate_width: f64,
    vth_boost: Volts,
    read_mechanism: ReadMechanism,
    read_intrinsic: Seconds,
    read_energy_cell: Joules,
    write_pulse: Seconds,
    write_energy_cell: Joules,
    storage: Option<StorageNode>,
    endurance_writes: f64,
    nonvolatile: bool,
    mlc_bits: u8,
    /// MTJ thermal-stability factor at `Kelvin::REFERENCE`, for cells
    /// whose retention and write costs follow the Δ(T) law (STT-RAM).
    /// `None` for every other technology.
    mtj_delta_ref: Option<f64>,
}

impl CellModel {
    /// The six-transistor SRAM cell (146 F^2, high-Vth cell devices).
    #[must_use]
    pub fn sram(node: &ProcessNode) -> Self {
        let w_min = node.min_width().get();
        Self {
            technology: MemoryTechnology::Sram,
            tentpole: None,
            area_f2: 146.0,
            // Two NMOS-dominated subthreshold paths per cell.
            nmos_sub_width: 2.0 * w_min,
            pmos_sub_width: 0.0,
            // Four NMOS and two PMOS gates tunnel.
            nmos_gate_width: 4.0 * w_min,
            pmos_gate_width: 2.0 * w_min,
            storage_gate_width: 0.0,
            vth_boost: Volts::new(CELL_VTH_BOOST),
            read_mechanism: ReadMechanism::VoltageSense {
                swing: Volts::new(0.1),
            },
            read_intrinsic: Seconds::from_picos(100.0),
            read_energy_cell: Joules::ZERO,
            write_pulse: Seconds::from_picos(150.0),
            write_energy_cell: Joules::ZERO,
            storage: None,
            endurance_writes: 1.0e16,
            nonvolatile: false,
            mlc_bits: 1,
            mtj_delta_ref: None,
        }
    }

    /// The PMOS-only three-transistor gain-cell eDRAM (70 F^2), twice as
    /// dense as SRAM and far lower-leakage, but requiring refresh.
    #[must_use]
    pub fn edram_3t(node: &ProcessNode) -> Self {
        let w_min = node.min_width().get();
        Self {
            technology: MemoryTechnology::Edram3T,
            tentpole: None,
            area_f2: 70.0,
            nmos_sub_width: 0.0,
            // One PMOS write-transistor subthreshold path.
            pmos_sub_width: w_min,
            nmos_gate_width: 0.0,
            // Two standard PMOS gates; the storage-node path is
            // tunneling-suppressed.
            pmos_gate_width: 2.0 * w_min,
            storage_gate_width: STORAGE_GATE_SUPPRESSION * w_min,
            vth_boost: Volts::new(CELL_VTH_BOOST),
            read_mechanism: ReadMechanism::VoltageSense {
                swing: Volts::new(0.1),
            },
            read_intrinsic: Seconds::from_picos(120.0),
            read_energy_cell: Joules::ZERO,
            write_pulse: Seconds::from_picos(200.0),
            write_energy_cell: Joules::ZERO,
            storage: Some(StorageNode {
                capacitance: Farads::new(0.4e-15),
                margin: Volts::new(0.2),
            }),
            endurance_writes: 1.0e16,
            nonvolatile: false,
            mlc_bits: 1,
            mtj_delta_ref: None,
        }
    }

    /// The one-transistor one-capacitor eDRAM (30 F^2, deep-trench
    /// capacitor). Modelled for completeness; the paper excludes it from
    /// the headline study because it is slower and more dynamic-energy
    /// hungry than SRAM and 3T-eDRAM.
    #[must_use]
    pub fn edram_1t1c(node: &ProcessNode) -> Self {
        let w_min = node.min_width().get();
        Self {
            technology: MemoryTechnology::Edram1T1C,
            tentpole: None,
            area_f2: 30.0,
            nmos_sub_width: w_min,
            pmos_sub_width: 0.0,
            nmos_gate_width: w_min,
            pmos_gate_width: 0.0,
            storage_gate_width: 0.0,
            vth_boost: Volts::new(CELL_VTH_BOOST),
            read_mechanism: ReadMechanism::VoltageSense {
                swing: Volts::new(0.06),
            },
            read_intrinsic: Seconds::from_picos(500.0),
            // Destructive read: the row must be written back.
            read_energy_cell: Joules::from_femtos(15.0),
            write_pulse: Seconds::from_picos(600.0),
            write_energy_cell: Joules::from_femtos(10.0),
            storage: Some(StorageNode {
                capacitance: Farads::new(10.0e-15),
                margin: Volts::new(0.15),
            }),
            endurance_writes: 1.0e16,
            nonvolatile: false,
            mlc_bits: 1,
            mtj_delta_ref: None,
        }
    }

    /// Builds a cell model from one surveyed eNVM demonstration.
    ///
    /// # Panics
    ///
    /// Panics if the entry belongs to a technology without a resistive
    /// storage element (SRAM/eDRAM entries never appear in the survey).
    #[must_use]
    pub fn from_survey(entry: &SurveyEntry, _node: &ProcessNode) -> Self {
        assert!(
            entry.technology.is_nonvolatile(),
            "survey entries must be eNVM technologies"
        );
        Self {
            technology: entry.technology,
            tentpole: None,
            area_f2: entry.cell_area_f2,
            // NVSim-style assumption: eNVM cells do not leak; the access
            // device sits in series with a high-resistance element.
            nmos_sub_width: 0.0,
            pmos_sub_width: 0.0,
            nmos_gate_width: 0.0,
            pmos_gate_width: 0.0,
            storage_gate_width: 0.0,
            vth_boost: Volts::ZERO,
            read_mechanism: ReadMechanism::CurrentSense,
            read_intrinsic: Seconds::from_nanos(entry.read_sense_ns),
            read_energy_cell: Joules::from_picos(entry.read_energy_pj),
            write_pulse: Seconds::from_nanos(entry.write_latency_ns),
            write_energy_cell: Joules::from_picos(entry.write_energy_pj),
            storage: None,
            endurance_writes: entry.endurance_writes,
            nonvolatile: true,
            mlc_bits: entry.mlc_bits,
            mtj_delta_ref: (entry.technology == MemoryTechnology::SttRam)
                .then_some(MTJ_DELTA_REF),
        }
    }

    /// Builds the requested technology's cell model: the analytical model
    /// for SRAM/eDRAM, or the tentpole bounding cell for eNVMs.
    #[must_use]
    pub fn tentpole(
        technology: MemoryTechnology,
        tentpole: Tentpole,
        node: &ProcessNode,
    ) -> Self {
        match technology {
            MemoryTechnology::Sram => Self::sram(node),
            MemoryTechnology::Edram3T => Self::edram_3t(node),
            MemoryTechnology::Edram1T1C => Self::edram_1t1c(node),
            _ => {
                let entry = tentpole
                    .bounding_entry(technology)
                    .expect("eNVM technologies always have survey entries");
                let mut cell = Self::from_survey(&entry, node);
                cell.tentpole = Some(tentpole);
                cell
            }
        }
    }

    /// The cell's technology.
    #[must_use]
    pub fn technology(&self) -> MemoryTechnology {
        self.technology
    }

    /// The tentpole this cell was derived from, if any.
    #[must_use]
    pub fn tentpole_kind(&self) -> Option<Tentpole> {
        self.tentpole
    }

    /// Cell footprint in squared feature sizes.
    #[must_use]
    pub fn area_f2(&self) -> f64 {
        self.area_f2
    }

    /// Cell footprint in square meters on the given node.
    #[must_use]
    pub fn area_m2(&self, node: &ProcessNode) -> f64 {
        self.area_f2 * node.feature_area_m2()
    }

    /// How the cell is read.
    #[must_use]
    pub fn read_mechanism(&self) -> ReadMechanism {
        self.read_mechanism
    }

    /// Cell-intrinsic sensing latency (excludes array wires and decode).
    #[must_use]
    pub fn read_intrinsic(&self) -> Seconds {
        self.read_intrinsic
    }

    /// Cell-intrinsic read energy per bit (eNVM sensing currents;
    /// negligible for SRAM, where the bitlines dominate).
    #[must_use]
    pub fn read_energy_cell(&self) -> Joules {
        self.read_energy_cell
    }

    /// Cell write-pulse latency.
    #[must_use]
    pub fn write_pulse(&self) -> Seconds {
        self.write_pulse
    }

    /// Cell-intrinsic write energy per bit.
    #[must_use]
    pub fn write_energy_cell(&self) -> Joules {
        self.write_energy_cell
    }

    /// The decaying storage node, for refresh-dependent technologies.
    #[must_use]
    pub fn storage(&self) -> Option<StorageNode> {
        self.storage
    }

    /// Write endurance in program cycles.
    #[must_use]
    pub fn endurance_writes(&self) -> f64 {
        self.endurance_writes
    }

    /// `true` if the cell retains data without power.
    #[must_use]
    pub fn is_nonvolatile(&self) -> bool {
        self.nonvolatile
    }

    /// Bits per cell.
    #[must_use]
    pub fn mlc_bits(&self) -> u8 {
        self.mlc_bits
    }

    /// `true` if the technology requires periodic refresh.
    #[must_use]
    pub fn needs_refresh(&self) -> bool {
        self.technology.needs_refresh()
    }

    /// Overrides the MTJ thermal-stability factor at the 350 K
    /// reference (the Δ_ref of `Δ(T) = Δ_ref · T_ref / T`). Lowering it
    /// models a stability-adjusted junction in the spirit of Garzón et
    /// al.'s double-barrier MTJ — cheaper writes, shorter retention.
    ///
    /// # Panics
    ///
    /// Panics unless the cell is non-volatile (Δ only applies to
    /// MTJ-style storage) or `delta_ref` is not strictly positive.
    #[must_use]
    pub fn with_thermal_stability(mut self, delta_ref: f64) -> Self {
        assert!(
            self.nonvolatile,
            "thermal stability applies to non-volatile MTJ cells"
        );
        assert!(delta_ref > 0.0, "thermal stability must be positive");
        self.mtj_delta_ref = Some(delta_ref);
        self
    }

    /// The MTJ thermal-stability factor `Δ(T) = Δ_ref · T_ref / T`
    /// (Garzón et al.), or `None` for cells without an MTJ storage
    /// element.
    #[must_use]
    pub fn thermal_stability(&self, t: Kelvin) -> Option<f64> {
        let delta_ref = self.mtj_delta_ref?;
        Some(delta_ref * (Kelvin::REFERENCE.get() / t.get()))
    }

    /// The full Δ(T)-derived MTJ operating corner at temperature `t`,
    /// or `None` for cells without an MTJ storage element.
    #[must_use]
    pub fn mtj_thermal(&self, t: Kelvin) -> Option<MtjThermal> {
        let delta = self.thermal_stability(t)?;
        Some(MtjThermal {
            delta,
            retention: Seconds::new(MTJ_ATTEMPT_TIME_S * delta.exp()),
            write_energy_factor: self.write_energy_factor(t),
            write_error_rate: (-delta).exp(),
        })
    }

    /// Multiplier on [`CellModel::write_energy_cell`] at temperature
    /// `t`: `1 + c · (T_ref/T − 1)` for MTJ cells — exactly `1.0` at
    /// the 350 K reference, bit-for-bit — and `1.0` for every other
    /// technology.
    #[must_use]
    pub fn write_energy_factor(&self, t: Kelvin) -> f64 {
        match self.mtj_delta_ref {
            Some(_) => {
                1.0 + MTJ_WRITE_ENERGY_TEMP_COEFF * (Kelvin::REFERENCE.get() / t.get() - 1.0)
            }
            None => 1.0,
        }
    }

    /// Total leakage current of one cell at the given operating point.
    #[must_use]
    pub fn leakage_current(&self, node: &ProcessNode, op: &OperatingPoint) -> Amps {
        let to_um = 1e6;
        let nmos = Mosfet::nmos(node).with_vth_boost(self.vth_boost);
        let pmos = Mosfet::pmos(node).with_vth_boost(self.vth_boost);
        let nmos_plain = Mosfet::nmos(node);
        let pmos_plain = Mosfet::pmos(node);
        let sub = nmos.subthreshold_current_per_um(op) * (self.nmos_sub_width * to_um)
            + pmos.subthreshold_current_per_um(op) * (self.pmos_sub_width * to_um);
        let gate = nmos_plain.gate_leakage_per_um(op) * (self.nmos_gate_width * to_um)
            + pmos_plain.gate_leakage_per_um(op)
                * ((self.pmos_gate_width + self.storage_gate_width) * to_um);
        sub + gate
    }

    /// Leakage power of one cell at the given operating point.
    #[must_use]
    pub fn leakage_power(&self, node: &ProcessNode, op: &OperatingPoint) -> Watts {
        self.leakage_current(node, op) * op.vdd()
    }

    /// Retention time of the cell at the given operating point, or
    /// `None` for technologies that neither decay nor back-hop.
    ///
    /// For eDRAM storage nodes this is the time for the storage-node
    /// leakage to consume the margin charge, `t = C dV / I_leak`; for
    /// MTJ cells it is the Néel-Brown law `τ0 · exp(Δ(T))`.
    #[must_use]
    pub fn retention(&self, node: &ProcessNode, op: &OperatingPoint) -> Option<Seconds> {
        if self.mtj_delta_ref.is_some() {
            return self.mtj_thermal(op.temperature()).map(|m| m.retention);
        }
        let storage = self.storage?;
        let to_um = 1e6;
        let (sub_width, boosted, plain) = match self.technology {
            MemoryTechnology::Edram3T => (
                self.pmos_sub_width,
                Mosfet::pmos(node).with_vth_boost(self.vth_boost),
                Mosfet::pmos(node),
            ),
            _ => (
                self.nmos_sub_width,
                Mosfet::nmos(node).with_vth_boost(self.vth_boost),
                Mosfet::nmos(node),
            ),
        };
        let i_leak = boosted.subthreshold_current_per_um(op) * (sub_width * to_um)
            + plain.gate_leakage_per_um(op) * (self.storage_gate_width.max(1e-12) * to_um);
        let q = storage.capacitance * storage.margin;
        Some(Seconds::new(q.get() / i_leak.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldtall_units::Kelvin;

    fn node() -> ProcessNode {
        ProcessNode::ptm_22nm_hp()
    }

    fn op(t: f64) -> OperatingPoint {
        OperatingPoint::nominal(&node(), Kelvin::new(t))
    }

    fn cryo() -> OperatingPoint {
        OperatingPoint::cryo_optimized(&node(), Kelvin::LN2)
    }

    #[test]
    fn sram_16mib_cell_leakage_is_about_half_a_watt_at_350k() {
        let n = node();
        let sram = CellModel::sram(&n);
        let cells = 16.0 * 1024.0 * 1024.0 * 8.0;
        let p = sram.leakage_power(&n, &op(350.0)).get() * cells;
        assert!(p > 0.2 && p < 1.0, "16 MiB SRAM cell leakage = {p} W");
    }

    #[test]
    fn sram_leakage_collapses_by_1e6_at_cryo() {
        let n = node();
        let sram = CellModel::sram(&n);
        let ratio =
            sram.leakage_power(&n, &cryo()).get() / sram.leakage_power(&n, &op(350.0)).get();
        assert!(ratio > 1e-7 && ratio < 1e-5, "ratio = {ratio:e}");
    }

    #[test]
    fn edram_leakage_advantage_grows_from_10x_to_about_100x() {
        let n = node();
        let sram = CellModel::sram(&n);
        let edram = CellModel::edram_3t(&n);
        let ratio_at = |o: &OperatingPoint| {
            sram.leakage_power(&n, o).get() / edram.leakage_power(&n, o).get()
        };
        let at_cryo = ratio_at(&cryo());
        let at_350 = ratio_at(&op(350.0));
        let at_387 = ratio_at(&op(387.0));
        assert!(at_cryo > 5.0 && at_cryo < 25.0, "77 K ratio = {at_cryo}");
        assert!(at_350 > 40.0 && at_350 < 160.0, "350 K ratio = {at_350}");
        assert!(at_387 > 25.0 && at_387 < 160.0, "387 K ratio = {at_387}");
        assert!(at_350 > 3.0 * at_cryo, "advantage must grow with temperature");
    }

    #[test]
    fn edram_cell_is_about_twice_as_dense_as_sram() {
        let n = node();
        let ratio = CellModel::sram(&n).area_f2() / CellModel::edram_3t(&n).area_f2();
        assert!(ratio > 1.8 && ratio < 2.4, "density ratio = {ratio}");
    }

    #[test]
    fn edram_retention_at_350k_is_microseconds_and_seconds_at_77k() {
        let n = node();
        let edram = CellModel::edram_3t(&n);
        let t350 = edram.retention(&n, &op(350.0)).unwrap();
        let t300 = edram.retention(&n, &op(300.0)).unwrap();
        let t77 = edram.retention(&n, &cryo()).unwrap();
        assert!(t350.get() < 1e-5, "350 K retention = {t350}");
        assert!(t300.get() > 1e-5 && t300.get() < 1e-3, "300 K retention = {t300}");
        // The paper's anchor: cryogenic retention is prolonged more than
        // 10,000x, effectively eliminating refresh.
        assert!(t77 / t300 > 1.0e4, "retention gain = {}", t77 / t300);
        assert!(t77.get() > 0.1);
    }

    #[test]
    fn envm_cells_do_not_leak_or_decay() {
        let n = node();
        for tech in MemoryTechnology::ENVM_SET {
            for tp in Tentpole::BOTH {
                let cell = CellModel::tentpole(tech, tp, &n);
                assert_eq!(cell.leakage_power(&n, &op(350.0)).get(), 0.0);
                if tech == MemoryTechnology::SttRam {
                    // The MTJ models Δ(T) retention explicitly; the
                    // survey default is astronomically long, never a
                    // decay concern in the legal temperature span.
                    let ret = cell.retention(&n, &op(350.0)).unwrap();
                    assert!(ret.get() > 1e10, "STT retention = {ret}");
                } else {
                    assert!(cell.retention(&n, &op(350.0)).is_none());
                }
                assert!(cell.is_nonvolatile());
                assert_eq!(cell.tentpole_kind(), Some(tp));
            }
        }
    }

    #[test]
    fn mtj_delta_retention_and_write_energy_are_monotone_in_temperature() {
        let n = node();
        for tp in Tentpole::BOTH {
            let cell = CellModel::tentpole(MemoryTechnology::SttRam, tp, &n);
            let corners: Vec<MtjThermal> = [77.0, 127.0, 227.0, 300.0, 350.0, 400.0]
                .iter()
                .map(|&t| cell.mtj_thermal(Kelvin::new(t)).unwrap())
                .collect();
            for pair in corners.windows(2) {
                let (cold, warm) = (&pair[0], &pair[1]);
                assert!(cold.delta > warm.delta);
                assert!(cold.retention > warm.retention);
                assert!(cold.write_energy_factor > warm.write_energy_factor);
                assert!(cold.write_error_rate < warm.write_error_rate);
            }
        }
    }

    #[test]
    fn mtj_write_energy_factor_is_exactly_one_at_reference() {
        let n = node();
        let cell = CellModel::tentpole(MemoryTechnology::SttRam, Tentpole::Optimistic, &n);
        assert_eq!(cell.write_energy_factor(Kelvin::REFERENCE), 1.0);
        assert!(cell.write_energy_factor(Kelvin::LN2) > 1.5);
        assert!(cell.write_energy_factor(Kelvin::new(400.0)) < 1.0);
        // Non-MTJ cells are temperature-flat.
        let pcm = CellModel::tentpole(MemoryTechnology::Pcm, Tentpole::Optimistic, &n);
        assert_eq!(pcm.write_energy_factor(Kelvin::LN2), 1.0);
        assert!(pcm.mtj_thermal(Kelvin::LN2).is_none());
        assert!(CellModel::sram(&n).thermal_stability(Kelvin::LN2).is_none());
    }

    #[test]
    fn adjusted_thermal_stability_shortens_retention() {
        let n = node();
        let cell = CellModel::tentpole(MemoryTechnology::SttRam, Tentpole::Optimistic, &n)
            .with_thermal_stability(30.0);
        let m = cell.mtj_thermal(Kelvin::REFERENCE).unwrap();
        assert!((m.delta - 30.0).abs() < 1e-12);
        // τ0 · e^30 ≈ 1.1e4 s (~3 hours): short enough that the array
        // layer must scrub, which is exactly what the knob is for.
        assert!(m.retention.get() > 1.0e3 && m.retention.get() < 1.0e5);
        let op77 = op(77.0);
        assert_eq!(
            cell.retention(&n, &op77).unwrap(),
            cell.mtj_thermal(Kelvin::LN2).unwrap().retention
        );
    }

    #[test]
    fn envm_write_costs_exceed_read_costs() {
        let n = node();
        for tech in MemoryTechnology::ENVM_SET {
            for tp in Tentpole::BOTH {
                let cell = CellModel::tentpole(tech, tp, &n);
                assert!(cell.write_energy_cell() > cell.read_energy_cell());
                assert!(cell.write_pulse() >= cell.read_intrinsic());
            }
        }
    }

    #[test]
    fn tentpole_dispatch_for_analytical_technologies() {
        let n = node();
        let s = CellModel::tentpole(MemoryTechnology::Sram, Tentpole::Pessimistic, &n);
        assert_eq!(s, CellModel::sram(&n));
        assert_eq!(s.tentpole_kind(), None);
    }

    #[test]
    fn area_in_m2_uses_feature_size() {
        let n = node();
        let sram = CellModel::sram(&n);
        let expected = 146.0 * 22e-9 * 22e-9;
        assert!((sram.area_m2(&n) - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn edram_1t1c_is_slow_but_dense() {
        let n = node();
        let c = CellModel::edram_1t1c(&n);
        assert!(c.area_f2() < CellModel::edram_3t(&n).area_f2());
        assert!(c.read_intrinsic() > CellModel::sram(&n).read_intrinsic());
        assert!(c.storage().is_some());
    }
}
