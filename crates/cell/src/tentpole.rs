//! The tentpole methodology: per-technology optimistic and pessimistic
//! bounding cells derived from the survey extrema.

use core::fmt;

use crate::survey::{survey_entries, SurveyEntry};
use crate::technology::MemoryTechnology;

/// Which end of the surveyed characteristic range to take.
///
/// NVMExplorer's tentpole approach represents each technology by the two
/// field-wise extrema of its published demonstrations: a hypothetical
/// *optimistic* cell combining every best-reported characteristic, and a
/// *pessimistic* cell combining every worst-reported one. Real designs
/// fall between the tentpoles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tentpole {
    /// Field-wise best-case characteristics.
    Optimistic,
    /// Field-wise worst-case characteristics.
    Pessimistic,
}

impl Tentpole {
    /// Both tentpoles, in the order the paper plots them.
    pub const BOTH: [Self; 2] = [Self::Optimistic, Self::Pessimistic];

    /// Builds the field-wise extremal survey entry for `technology`.
    ///
    /// Returns `None` for technologies without survey entries (SRAM and
    /// the eDRAMs, which are modelled analytically).
    #[must_use]
    pub fn bounding_entry(self, technology: MemoryTechnology) -> Option<SurveyEntry> {
        let entries = survey_entries(technology);
        let first = entries.first()?;
        let fold = |f: fn(&SurveyEntry) -> f64, best: fn(f64, f64) -> f64| {
            entries.iter().map(f).fold(f(first), best)
        };
        type Fold = fn(f64, f64) -> f64;
        let (lo, hi): (Fold, Fold) = (f64::min, f64::max);
        let (best, worst) = match self {
            Self::Optimistic => (lo, hi),
            Self::Pessimistic => (hi, lo),
        };
        Some(SurveyEntry {
            id: match self {
                Self::Optimistic => "tentpole-optimistic",
                Self::Pessimistic => "tentpole-pessimistic",
            },
            year: entries.iter().map(|e| e.year).max().unwrap_or(first.year),
            venue: first.venue,
            technology,
            cell_area_f2: fold(|e| e.cell_area_f2, best),
            read_sense_ns: fold(|e| e.read_sense_ns, best),
            read_energy_pj: fold(|e| e.read_energy_pj, best),
            write_latency_ns: fold(|e| e.write_latency_ns, best),
            write_energy_pj: fold(|e| e.write_energy_pj, best),
            endurance_writes: fold(|e| e.endurance_writes, worst),
            retention_years: fold(|e| e.retention_years, worst),
            mlc_bits: match self {
                Self::Optimistic => entries.iter().map(|e| e.mlc_bits).max().unwrap_or(1),
                Self::Pessimistic => entries.iter().map(|e| e.mlc_bits).min().unwrap_or(1),
            },
        })
    }
}

impl fmt::Display for Tentpole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Optimistic => "optimistic",
            Self::Pessimistic => "pessimistic",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimistic_dominates_pessimistic() {
        for t in MemoryTechnology::ENVM_SET {
            let opt = Tentpole::Optimistic.bounding_entry(t).unwrap();
            let pess = Tentpole::Pessimistic.bounding_entry(t).unwrap();
            assert!(opt.cell_area_f2 < pess.cell_area_f2);
            assert!(opt.read_sense_ns < pess.read_sense_ns);
            assert!(opt.read_energy_pj < pess.read_energy_pj);
            assert!(opt.write_latency_ns < pess.write_latency_ns);
            assert!(opt.write_energy_pj < pess.write_energy_pj);
            assert!(opt.endurance_writes > pess.endurance_writes);
        }
    }

    #[test]
    fn tentpoles_bound_every_survey_entry() {
        for t in MemoryTechnology::ENVM_SET {
            let opt = Tentpole::Optimistic.bounding_entry(t).unwrap();
            let pess = Tentpole::Pessimistic.bounding_entry(t).unwrap();
            for e in survey_entries(t) {
                assert!(e.cell_area_f2 >= opt.cell_area_f2 && e.cell_area_f2 <= pess.cell_area_f2);
                assert!(
                    e.write_latency_ns >= opt.write_latency_ns
                        && e.write_latency_ns <= pess.write_latency_ns
                );
                assert!(
                    e.endurance_writes <= opt.endurance_writes
                        && e.endurance_writes >= pess.endurance_writes
                );
            }
        }
    }

    #[test]
    fn analytical_technologies_have_no_tentpole_entry() {
        assert!(Tentpole::Optimistic
            .bounding_entry(MemoryTechnology::Sram)
            .is_none());
        assert!(Tentpole::Pessimistic
            .bounding_entry(MemoryTechnology::Edram3T)
            .is_none());
    }

    #[test]
    fn display() {
        assert_eq!(Tentpole::Optimistic.to_string(), "optimistic");
        assert_eq!(Tentpole::Pessimistic.to_string(), "pessimistic");
    }
}
