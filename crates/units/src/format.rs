//! Engineering-notation formatting shared by all quantity types.

/// SI prefixes from yocto (1e-24) to yotta (1e24), in ascending order.
const PREFIXES: [(&str, f64); 17] = [
    ("y", 1e-24),
    ("z", 1e-21),
    ("a", 1e-18),
    ("f", 1e-15),
    ("p", 1e-12),
    ("n", 1e-9),
    ("u", 1e-6),
    ("m", 1e-3),
    ("", 1.0),
    ("k", 1e3),
    ("M", 1e6),
    ("G", 1e9),
    ("T", 1e12),
    ("P", 1e15),
    ("E", 1e18),
    ("Z", 1e21),
    ("Y", 1e24),
];

/// Scales `value` into the engineering range `[1, 1000)` and returns the
/// scaled value together with the matching SI prefix.
///
/// Zero, infinities, and NaN are returned unscaled with an empty prefix.
///
/// # Examples
///
/// ```
/// use coldtall_units::engineering;
///
/// assert_eq!(engineering(1.5e-9), (1.5, "n"));
/// assert_eq!(engineering(-2.0e6), (-2.0, "M"));
/// assert_eq!(engineering(0.0), (0.0, ""));
/// ```
#[must_use]
pub fn engineering(value: f64) -> (f64, &'static str) {
    if value == 0.0 || !value.is_finite() {
        return (value, "");
    }
    let magnitude = value.abs();
    for &(prefix, scale) in PREFIXES.iter().rev() {
        if magnitude >= scale {
            return (value / scale, prefix);
        }
    }
    // Below yocto: report in yocto anyway.
    (value / 1e-24, "y")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_nearest_lower_prefix() {
        assert_eq!(engineering(999.0), (999.0, ""));
        assert_eq!(engineering(1000.0), (1.0, "k"));
        assert_eq!(engineering(0.12), (120.0, "m"));
    }

    #[test]
    fn handles_negative_values() {
        let (v, p) = engineering(-3.3e-6);
        assert!((v - -3.3).abs() < 1e-12);
        assert_eq!(p, "u");
    }

    #[test]
    fn handles_extremes() {
        assert_eq!(engineering(2.0e27).1, "Y");
        assert_eq!(engineering(1.0e-27).1, "y");
        assert_eq!(engineering(f64::INFINITY), (f64::INFINITY, ""));
    }
}
