//! Cross-quantity arithmetic between electrical quantities.
//!
//! Only physically meaningful products and ratios are defined; anything
//! else remains a compile error, which is the point of the newtypes.

use core::ops::{Div, Mul};

use crate::{Amps, Coulombs, Farads, Hertz, Joules, Ohms, Seconds, Volts, Watts};

impl Div<Seconds> for Joules {
    type Output = Watts;
    /// Power is energy per unit time.
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.get() / rhs.get())
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// Energy is power integrated over time.
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.get() * rhs.get())
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Mul<Farads> for Ohms {
    type Output = Seconds;
    /// An RC product is a time constant.
    fn mul(self, rhs: Farads) -> Seconds {
        Seconds::new(self.get() * rhs.get())
    }
}

impl Mul<Ohms> for Farads {
    type Output = Seconds;
    fn mul(self, rhs: Ohms) -> Seconds {
        rhs * self
    }
}

impl Mul<Amps> for Volts {
    type Output = Watts;
    /// Electrical power is voltage times current.
    fn mul(self, rhs: Amps) -> Watts {
        Watts::new(self.get() * rhs.get())
    }
}

impl Mul<Volts> for Amps {
    type Output = Watts;
    fn mul(self, rhs: Volts) -> Watts {
        rhs * self
    }
}

impl Div<Ohms> for Volts {
    type Output = Amps;
    /// Ohm's law: current is voltage over resistance.
    fn div(self, rhs: Ohms) -> Amps {
        Amps::new(self.get() / rhs.get())
    }
}

impl Div<Amps> for Volts {
    type Output = Ohms;
    /// Ohm's law: resistance is voltage over current.
    fn div(self, rhs: Amps) -> Ohms {
        Ohms::new(self.get() / rhs.get())
    }
}

impl Mul<Seconds> for Amps {
    type Output = Coulombs;
    /// Charge is current integrated over time.
    fn mul(self, rhs: Seconds) -> Coulombs {
        Coulombs::new(self.get() * rhs.get())
    }
}

impl Mul<Volts> for Coulombs {
    type Output = Joules;
    /// Energy is charge times potential.
    fn mul(self, rhs: Volts) -> Joules {
        Joules::new(self.get() * rhs.get())
    }
}

impl Mul<Volts> for Farads {
    type Output = Coulombs;
    /// Charge stored on a capacitor: Q = C V.
    fn mul(self, rhs: Volts) -> Coulombs {
        Coulombs::new(self.get() * rhs.get())
    }
}

impl Div<Seconds> for f64 {
    type Output = Hertz;
    /// A dimensionless count per time is a rate.
    fn div(self, rhs: Seconds) -> Hertz {
        Hertz::new(self / rhs.get())
    }
}

/// Energy required to swing a capacitance `c` across a voltage `v`
/// (the CMOS switching energy `C * V^2`).
///
/// # Examples
///
/// ```
/// use coldtall_units::{switching_energy, Farads, Volts};
/// let e = switching_energy(Farads::new(1e-15), Volts::new(1.0));
/// assert!((e.get() - 1e-15).abs() < 1e-30);
/// ```
#[must_use]
pub fn switching_energy(c: Farads, v: Volts) -> Joules {
    Joules::new(c.get() * v.get() * v.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_energy_time_triangle() {
        let e = Joules::new(6.0);
        let t = Seconds::new(2.0);
        let p = e / t;
        assert_eq!(p.get(), 3.0);
        assert_eq!((p * t).get(), 6.0);
        assert_eq!((t * p).get(), 6.0);
    }

    #[test]
    fn rc_time_constant() {
        let tau = Ohms::new(1e3) * Farads::new(1e-12);
        assert!((tau.as_nanos() - 1.0).abs() < 1e-12);
        assert_eq!(Farads::new(1e-12) * Ohms::new(1e3), tau);
    }

    #[test]
    fn ohms_law() {
        let i = Volts::new(1.0) / Ohms::new(500.0);
        assert_eq!(i.get(), 0.002);
        let r = Volts::new(1.0) / Amps::new(0.002);
        assert!((r.get() - 500.0).abs() < 1e-9);
        assert_eq!((Volts::new(2.0) * Amps::new(3.0)).get(), 6.0);
        assert_eq!((Amps::new(3.0) * Volts::new(2.0)).get(), 6.0);
    }

    #[test]
    fn charge_relations() {
        let q = Amps::new(2.0) * Seconds::new(3.0);
        assert_eq!(q.get(), 6.0);
        assert_eq!((q * Volts::new(0.5)).get(), 3.0);
        assert_eq!((Farads::new(2.0) * Volts::new(0.5)).get(), 1.0);
    }

    #[test]
    fn rate_from_count() {
        let rate = 100.0 / Seconds::new(2.0);
        assert_eq!(rate.get(), 50.0);
    }

    #[test]
    fn switching_energy_is_cv2() {
        let e = switching_energy(Farads::new(2e-15), Volts::new(0.8));
        assert!((e.get() - 2e-15 * 0.64).abs() < 1e-30);
    }
}
