//! Memory capacity expressed in bits.

use core::fmt;
use core::ops::{Add, Div, Mul, Sub};

/// A memory capacity, stored internally as a bit count.
///
/// # Examples
///
/// ```
/// use coldtall_units::Capacity;
///
/// let llc = Capacity::from_mebibytes(16);
/// assert_eq!(llc.bits(), 16 * 1024 * 1024 * 8);
/// assert_eq!(llc.bytes(), 16 * 1024 * 1024);
/// assert_eq!(format!("{llc}"), "16 MiB");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Capacity {
    bits: u64,
}

impl Capacity {
    /// A capacity of zero bits.
    pub const ZERO: Self = Self { bits: 0 };

    /// Creates a capacity from a bit count.
    #[must_use]
    pub fn from_bits(bits: u64) -> Self {
        Self { bits }
    }

    /// Creates a capacity from a byte count.
    #[must_use]
    pub fn from_bytes(bytes: u64) -> Self {
        Self { bits: bytes * 8 }
    }

    /// Creates a capacity from kibibytes.
    #[must_use]
    pub fn from_kibibytes(kib: u64) -> Self {
        Self::from_bytes(kib * 1024)
    }

    /// Creates a capacity from mebibytes.
    #[must_use]
    pub fn from_mebibytes(mib: u64) -> Self {
        Self::from_kibibytes(mib * 1024)
    }

    /// Returns the capacity in bits.
    #[must_use]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Returns the capacity in whole bytes (truncating any partial byte).
    #[must_use]
    pub fn bytes(self) -> u64 {
        self.bits / 8
    }

    /// Returns the capacity in bits as a floating-point number, for use in
    /// analytical models.
    #[must_use]
    pub fn bits_f64(self) -> f64 {
        self.bits as f64
    }

    /// Returns true if the bit count is a power of two.
    #[must_use]
    pub fn is_power_of_two(self) -> bool {
        self.bits.is_power_of_two()
    }
}

impl Add for Capacity {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            bits: self.bits + rhs.bits,
        }
    }
}

impl Sub for Capacity {
    type Output = Self;
    /// # Panics
    ///
    /// Panics in debug builds on underflow, like integer subtraction.
    fn sub(self, rhs: Self) -> Self {
        Self {
            bits: self.bits - rhs.bits,
        }
    }
}

impl Mul<u64> for Capacity {
    type Output = Self;
    fn mul(self, rhs: u64) -> Self {
        Self {
            bits: self.bits * rhs,
        }
    }
}

impl Div<u64> for Capacity {
    type Output = Self;
    fn div(self, rhs: u64) -> Self {
        Self {
            bits: self.bits / rhs,
        }
    }
}

impl Div for Capacity {
    type Output = u64;
    /// Dividing two capacities yields a dimensionless count.
    fn div(self, rhs: Self) -> u64 {
        self.bits / rhs.bits
    }
}

impl fmt::Display for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bytes = self.bits as f64 / 8.0;
        const UNITS: [(&str, f64); 4] = [
            ("GiB", 1024.0 * 1024.0 * 1024.0),
            ("MiB", 1024.0 * 1024.0),
            ("KiB", 1024.0),
            ("B", 1.0),
        ];
        for (unit, scale) in UNITS {
            if bytes >= scale {
                let v = bytes / scale;
                if (v - v.round()).abs() < 1e-9 {
                    return write!(f, "{} {unit}", v.round());
                }
                return write!(f, "{v:.2} {unit}");
            }
        }
        write!(f, "{} b", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Capacity::from_kibibytes(32).bytes(), 32768);
        assert_eq!(Capacity::from_mebibytes(1).bits(), 8 * 1024 * 1024);
    }

    #[test]
    fn arithmetic() {
        let a = Capacity::from_bytes(64);
        let b = Capacity::from_bytes(16);
        assert_eq!((a + b).bytes(), 80);
        assert_eq!((a - b).bytes(), 48);
        assert_eq!((a * 2).bytes(), 128);
        assert_eq!((a / 2).bytes(), 32);
        assert_eq!(a / b, 4);
    }

    #[test]
    fn power_of_two_detection() {
        assert!(Capacity::from_mebibytes(16).is_power_of_two());
        assert!(!Capacity::from_bytes(48).is_power_of_two());
    }

    #[test]
    fn display_variants() {
        assert_eq!(format!("{}", Capacity::from_mebibytes(16)), "16 MiB");
        assert_eq!(format!("{}", Capacity::from_kibibytes(512)), "512 KiB");
        assert_eq!(format!("{}", Capacity::from_bytes(3)), "3 B");
        assert_eq!(format!("{}", Capacity::from_bits(4)), "4 b");
        assert_eq!(format!("{}", Capacity::from_bytes(1536)), "1.50 KiB");
    }
}
