//! Absolute temperature.

use core::fmt;

/// A rejected temperature: the value was not finite and strictly
/// positive.
///
/// Carries the offending value so callers can report exactly what the
/// user supplied (`NaN`, `-12`, `inf`, ...).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidTemperature {
    /// The rejected kelvin value.
    pub kelvin: f64,
}

impl fmt::Display for InvalidTemperature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "temperature must be finite and positive, got {}",
            self.kelvin
        )
    }
}

impl std::error::Error for InvalidTemperature {}

/// An absolute temperature in kelvin.
///
/// Temperatures are the central design knob of the cryogenic study; the
/// type guarantees the value is strictly positive and finite so device
/// models never divide by zero thermal voltage.
///
/// # Examples
///
/// ```
/// use coldtall_units::Kelvin;
///
/// let cryo = Kelvin::new(77.0);
/// let room = Kelvin::new(300.0);
/// assert!(cryo < room);
/// assert!((cryo.thermal_voltage() - 0.006636).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Kelvin(f64);

impl Kelvin {
    /// Liquid-nitrogen operating point used throughout the paper.
    pub const LN2: Self = Self(77.0);
    /// Conventional room temperature.
    pub const ROOM: Self = Self(300.0);
    /// The paper's reference operating point for the baseline SRAM.
    pub const REFERENCE: Self = Self(350.0);
    /// Approximate CPU thermal-design-point temperature (hot corner).
    pub const TDP: Self = Self(387.0);

    /// Boltzmann constant over elementary charge, in volts per kelvin.
    const KB_OVER_Q: f64 = 8.617_333e-5;

    /// Creates a temperature, rejecting values that are not finite and
    /// strictly positive (zero, negatives, `NaN`, infinities).
    ///
    /// This is the validated entry point for untrusted inputs (CLI
    /// flags, service requests); [`Kelvin::new`] is the panicking
    /// convenience for values known valid by construction.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidTemperature`] when `kelvin` is not a finite,
    /// strictly positive number.
    pub fn try_new(kelvin: f64) -> Result<Self, InvalidTemperature> {
        if kelvin.is_finite() && kelvin > 0.0 {
            Ok(Self(kelvin))
        } else {
            Err(InvalidTemperature { kelvin })
        }
    }

    /// Creates a temperature.
    ///
    /// Precondition: `kelvin` is finite and strictly positive. Use
    /// [`Kelvin::try_new`] when the value comes from untrusted input.
    ///
    /// # Panics
    ///
    /// Panics if `kelvin` is not a finite, strictly positive number.
    #[must_use]
    pub fn new(kelvin: f64) -> Self {
        Self::try_new(kelvin).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Returns the temperature in kelvin.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Returns the thermal voltage `kT/q` in volts.
    #[must_use]
    pub fn thermal_voltage(self) -> f64 {
        Self::KB_OVER_Q * self.0
    }

    /// Returns `true` for temperatures in the CMOS-compatible cryogenic
    /// regime (below roughly 150 K) where the cryo voltage-scaling policy
    /// applies.
    #[must_use]
    pub fn is_cryogenic(self) -> bool {
        self.0 < 150.0
    }
}

impl fmt::Display for Kelvin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} K", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_at_room() {
        assert!((Kelvin::ROOM.thermal_voltage() - 0.025852).abs() < 1e-5);
    }

    #[test]
    fn cryogenic_classification() {
        assert!(Kelvin::LN2.is_cryogenic());
        assert!(!Kelvin::ROOM.is_cryogenic());
        assert!(!Kelvin::REFERENCE.is_cryogenic());
    }

    #[test]
    fn ordering() {
        assert!(Kelvin::LN2 < Kelvin::ROOM);
        assert!(Kelvin::REFERENCE < Kelvin::TDP);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Kelvin::LN2), "77 K");
    }

    #[test]
    #[should_panic(expected = "must be finite and positive")]
    fn zero_rejected() {
        let _ = Kelvin::new(0.0);
    }

    #[test]
    #[should_panic(expected = "must be finite and positive")]
    fn nan_rejected() {
        let _ = Kelvin::new(f64::NAN);
    }

    #[test]
    fn try_new_accepts_and_rejects_without_panicking() {
        assert_eq!(Kelvin::try_new(77.0), Ok(Kelvin::LN2));
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Kelvin::try_new(bad).unwrap_err();
            assert!(err.to_string().contains("finite and positive"));
        }
        // The error carries the offending value verbatim.
        assert_eq!(Kelvin::try_new(-3.0).unwrap_err().kelvin, -3.0);
    }
}
