//! Absolute temperature.

use core::fmt;

/// An absolute temperature in kelvin.
///
/// Temperatures are the central design knob of the cryogenic study; the
/// type guarantees the value is strictly positive and finite so device
/// models never divide by zero thermal voltage.
///
/// # Examples
///
/// ```
/// use coldtall_units::Kelvin;
///
/// let cryo = Kelvin::new(77.0);
/// let room = Kelvin::new(300.0);
/// assert!(cryo < room);
/// assert!((cryo.thermal_voltage() - 0.006636).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Kelvin(f64);

impl Kelvin {
    /// Liquid-nitrogen operating point used throughout the paper.
    pub const LN2: Self = Self(77.0);
    /// Conventional room temperature.
    pub const ROOM: Self = Self(300.0);
    /// The paper's reference operating point for the baseline SRAM.
    pub const REFERENCE: Self = Self(350.0);
    /// Approximate CPU thermal-design-point temperature (hot corner).
    pub const TDP: Self = Self(387.0);

    /// Boltzmann constant over elementary charge, in volts per kelvin.
    const KB_OVER_Q: f64 = 8.617_333e-5;

    /// Creates a temperature.
    ///
    /// # Panics
    ///
    /// Panics if `kelvin` is not a finite, strictly positive number.
    #[must_use]
    pub fn new(kelvin: f64) -> Self {
        assert!(
            kelvin.is_finite() && kelvin > 0.0,
            "temperature must be finite and positive, got {kelvin}"
        );
        Self(kelvin)
    }

    /// Returns the temperature in kelvin.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Returns the thermal voltage `kT/q` in volts.
    #[must_use]
    pub fn thermal_voltage(self) -> f64 {
        Self::KB_OVER_Q * self.0
    }

    /// Returns `true` for temperatures in the CMOS-compatible cryogenic
    /// regime (below roughly 150 K) where the cryo voltage-scaling policy
    /// applies.
    #[must_use]
    pub fn is_cryogenic(self) -> bool {
        self.0 < 150.0
    }
}

impl fmt::Display for Kelvin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} K", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_at_room() {
        assert!((Kelvin::ROOM.thermal_voltage() - 0.025852).abs() < 1e-5);
    }

    #[test]
    fn cryogenic_classification() {
        assert!(Kelvin::LN2.is_cryogenic());
        assert!(!Kelvin::ROOM.is_cryogenic());
        assert!(!Kelvin::REFERENCE.is_cryogenic());
    }

    #[test]
    fn ordering() {
        assert!(Kelvin::LN2 < Kelvin::ROOM);
        assert!(Kelvin::REFERENCE < Kelvin::TDP);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Kelvin::LN2), "77 K");
    }

    #[test]
    #[should_panic(expected = "must be finite and positive")]
    fn zero_rejected() {
        let _ = Kelvin::new(0.0);
    }

    #[test]
    #[should_panic(expected = "must be finite and positive")]
    fn nan_rejected() {
        let _ = Kelvin::new(f64::NAN);
    }
}
