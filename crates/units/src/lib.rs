//! Typed physical quantities for the `coldtall` workspace.
//!
//! Every model in the workspace (device physics, array characterization,
//! cache simulation, design-space exploration) passes quantities through
//! this crate's newtypes rather than bare `f64`s, so that a latency can
//! never be silently added to an energy and the engineering-notation
//! formatting is uniform in every report.
//!
//! # Examples
//!
//! ```
//! use coldtall_units::{Joules, Seconds, Watts};
//!
//! let energy = Joules::new(2.0e-12);
//! let time = Seconds::new(1.0e-9);
//! let power: Watts = energy / time;
//! assert!((power.get() - 2.0e-3).abs() < 1e-15);
//! assert_eq!(format!("{power}"), "2.000 mW");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Library code must surface invalid values through `try_` APIs (or a
// documented panic in a thin `new` wrapper), never an anonymous
// `unwrap`; tests are exempt since a test failure IS the report.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

#[macro_use]
mod quantity;
mod capacity;
mod electrical;
mod format;
mod temperature;

pub use capacity::Capacity;
pub use electrical::switching_energy;
pub use format::engineering;
pub use temperature::{InvalidTemperature, Kelvin};

quantity!(
    /// A duration or latency in seconds.
    Seconds,
    "s"
);
quantity!(
    /// A frequency in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// An energy in joules.
    Joules,
    "J"
);
quantity!(
    /// A power in watts.
    Watts,
    "W"
);
quantity!(
    /// An electric potential in volts.
    Volts,
    "V"
);
quantity!(
    /// An electric current in amperes.
    Amps,
    "A"
);
quantity!(
    /// An electrical resistance in ohms.
    Ohms,
    "Ohm"
);
quantity!(
    /// A capacitance in farads.
    Farads,
    "F"
);
quantity!(
    /// An electric charge in coulombs.
    Coulombs,
    "C"
);
quantity!(
    /// A length in meters.
    Meters,
    "m"
);
quantity!(
    /// An area in square meters.
    SquareMeters,
    "m^2"
);

impl Seconds {
    /// Constructs a duration from nanoseconds.
    ///
    /// ```
    /// use coldtall_units::Seconds;
    /// assert_eq!(Seconds::from_nanos(2.0), Seconds::new(2.0e-9));
    /// ```
    #[must_use]
    pub fn from_nanos(ns: f64) -> Self {
        Self::new(ns * 1e-9)
    }

    /// Returns the duration expressed in nanoseconds.
    #[must_use]
    pub fn as_nanos(self) -> f64 {
        self.get() * 1e9
    }

    /// Constructs a duration from picoseconds.
    #[must_use]
    pub fn from_picos(ps: f64) -> Self {
        Self::new(ps * 1e-12)
    }
}

impl Joules {
    /// Constructs an energy from picojoules.
    ///
    /// ```
    /// use coldtall_units::Joules;
    /// assert_eq!(Joules::from_picos(3.0), Joules::new(3.0e-12));
    /// ```
    #[must_use]
    pub fn from_picos(pj: f64) -> Self {
        Self::new(pj * 1e-12)
    }

    /// Returns the energy expressed in picojoules.
    #[must_use]
    pub fn as_picos(self) -> f64 {
        self.get() * 1e12
    }

    /// Constructs an energy from femtojoules.
    #[must_use]
    pub fn from_femtos(fj: f64) -> Self {
        Self::new(fj * 1e-15)
    }
}

impl Watts {
    /// Constructs a power from milliwatts.
    #[must_use]
    pub fn from_millis(mw: f64) -> Self {
        Self::new(mw * 1e-3)
    }

    /// Returns the power expressed in milliwatts.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.get() * 1e3
    }
}

impl Hertz {
    /// Constructs a frequency from gigahertz.
    #[must_use]
    pub fn from_gigas(ghz: f64) -> Self {
        Self::new(ghz * 1e9)
    }

    /// Returns the period of one cycle at this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[must_use]
    pub fn period(self) -> Seconds {
        assert!(self.get() > 0.0, "period of a zero frequency is undefined");
        Seconds::new(1.0 / self.get())
    }
}

impl Meters {
    /// Constructs a length from micrometers.
    #[must_use]
    pub fn from_micros(um: f64) -> Self {
        Self::new(um * 1e-6)
    }

    /// Constructs a length from nanometers.
    #[must_use]
    pub fn from_nanos(nm: f64) -> Self {
        Self::new(nm * 1e-9)
    }

    /// Constructs a length from millimeters.
    #[must_use]
    pub fn from_millis(mm: f64) -> Self {
        Self::new(mm * 1e-3)
    }
}

impl SquareMeters {
    /// Constructs an area from square millimeters.
    #[must_use]
    pub fn from_mm2(mm2: f64) -> Self {
        Self::new(mm2 * 1e-6)
    }

    /// Returns the area expressed in square millimeters.
    #[must_use]
    pub fn as_mm2(self) -> f64 {
        self.get() * 1e6
    }

    /// Constructs an area from square micrometers.
    #[must_use]
    pub fn from_um2(um2: f64) -> Self {
        Self::new(um2 * 1e-12)
    }

    /// Returns the area expressed in square micrometers.
    #[must_use]
    pub fn as_um2(self) -> f64 {
        self.get() * 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_nanos_roundtrip() {
        let s = Seconds::from_nanos(12.5);
        assert!((s.as_nanos() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn joules_picos_roundtrip() {
        let e = Joules::from_picos(0.75);
        assert!((e.as_picos() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hertz_period() {
        let f = Hertz::from_gigas(5.0);
        assert!((f.period().as_nanos() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "period of a zero frequency")]
    fn hertz_zero_period_panics() {
        let _ = Hertz::new(0.0).period();
    }

    #[test]
    fn area_conversions() {
        let a = SquareMeters::from_mm2(2.0);
        assert!((a.as_um2() - 2.0e6).abs() < 1e-3);
    }

    #[test]
    fn display_uses_engineering_notation() {
        assert_eq!(format!("{}", Seconds::from_nanos(1.5)), "1.500 ns");
        assert_eq!(format!("{}", Watts::new(2.5e3)), "2.500 kW");
        assert_eq!(format!("{}", Joules::new(0.0)), "0.000 J");
    }
}
