//! The `quantity!` macro: generates an `f64`-backed physical-quantity
//! newtype with arithmetic, ordering, and engineering-notation display.

/// Defines a physical-quantity newtype over `f64`.
///
/// The generated type supports construction via [`new`](#method.new),
/// extraction via `get`, addition and subtraction with itself, scaling by
/// `f64`, division by itself (yielding a dimensionless `f64` ratio), and
/// engineering-notation `Display` using the given unit symbol.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Unit symbol used by the `Display` implementation.
            pub const UNIT: &'static str = $unit;

            /// Creates a quantity from a raw value in base SI units.
            ///
            /// # Panics
            ///
            /// Panics if `value` is NaN: quantities must always be
            /// comparable.
            #[must_use]
            pub fn new(value: f64) -> Self {
                assert!(!value.is_nan(), concat!(stringify!($name), " cannot be NaN"));
                Self(value)
            }

            /// Returns the raw value in base SI units.
            #[must_use]
            pub fn get(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (not infinite).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                let (scaled, prefix) = $crate::format::engineering(self.0);
                write!(f, "{scaled:.3} {prefix}{}", $unit)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    quantity!(
        /// Test-only quantity.
        Things,
        "thing"
    );

    #[test]
    fn arithmetic() {
        let a = Things::new(2.0);
        let b = Things::new(3.0);
        assert_eq!((a + b).get(), 5.0);
        assert_eq!((b - a).get(), 1.0);
        assert_eq!((a * 2.0).get(), 4.0);
        assert_eq!((2.0 * a).get(), 4.0);
        assert_eq!((b / 2.0).get(), 1.5);
        assert_eq!(b / a, 1.5);
    }

    #[test]
    fn ordering_and_extrema() {
        let a = Things::new(2.0);
        let b = Things::new(3.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Things = (1..=4).map(|i| Things::new(f64::from(i))).sum();
        assert_eq!(total.get(), 10.0);
    }

    #[test]
    #[should_panic(expected = "cannot be NaN")]
    fn nan_rejected() {
        let _ = Things::new(f64::NAN);
    }
}
