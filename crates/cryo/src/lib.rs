//! Cryogenic-operation models: cooling overheads, temperature sweeps,
//! and thermal feasibility.
//!
//! This crate is the CryoMEM-equivalent layer of the reproduction. The
//! temperature-dependent device physics already lives in
//! [`coldtall_tech`] and flows through the array engine; what remains —
//! and what this crate provides — is the *system* side of cryogenic
//! operation:
//!
//! * the cost of refrigeration ([`CoolingSystem`]), following the
//!   cryocooler survey data the paper uses (9.65x at 100 kW scale up to
//!   39.6x at 10 W scale),
//! * the study's canonical temperature sweep (77 K to 387 K in ~50 K
//!   steps),
//! * convenience characterization of an array across temperatures with
//!   the cryogenic voltage-scaling policy applied
//!   ([`characterize_at`]),
//! * a liquid-nitrogen bath thermal-budget check mirroring the paper's
//!   discussion section.
//!
//! # Examples
//!
//! ```
//! use coldtall_cryo::{characterize_at, CoolingSystem};
//! use coldtall_array::{ArraySpec, Objective};
//! use coldtall_cell::CellModel;
//! use coldtall_tech::ProcessNode;
//! use coldtall_units::{Kelvin, Watts};
//!
//! let node = ProcessNode::ptm_22nm_hp();
//! let spec = ArraySpec::llc_16mib(CellModel::sram(&node), &node);
//! let cold = characterize_at(&spec, Kelvin::LN2, Objective::EnergyDelayProduct);
//! let warm = characterize_at(&spec, Kelvin::REFERENCE, Objective::EnergyDelayProduct);
//! assert!(cold.read_latency < warm.read_latency);
//!
//! // A watt of 77 K device power costs 10.65 W at the wall.
//! let wall = CoolingSystem::Server100kW.wall_power(Watts::new(1.0), Kelvin::LN2);
//! assert!((wall.get() - 10.65).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cooling;
mod regime;
mod sweep;
mod thermal;

pub use cooling::{overhead_for_capacity, CoolingSystem};
pub use regime::OperatingRegime;
pub use sweep::{study_temperatures, TemperatureSweep};
pub use thermal::LnBath;

use coldtall_array::{ArrayCharacterization, ArraySpec, Objective};
use coldtall_units::Kelvin;

/// Characterizes `spec` at temperature `t`, applying the cryogenic
/// voltage-scaling policy when `t` is in the cryogenic regime.
///
/// This is the entry point the paper's Fig. 1 and Fig. 3 sweeps use: the
/// same array, re-evaluated across operating temperatures.
#[must_use]
pub fn characterize_at(
    spec: &ArraySpec,
    t: Kelvin,
    objective: Objective,
) -> ArrayCharacterization {
    spec.clone().at_temperature_cryo(t).characterize(objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldtall_cell::CellModel;
    use coldtall_tech::ProcessNode;

    #[test]
    fn characterize_at_applies_cryo_policy_only_when_cold() {
        let node = ProcessNode::ptm_22nm_hp();
        let spec = ArraySpec::llc_16mib(CellModel::sram(&node), &node);
        let cold = characterize_at(&spec, Kelvin::LN2, Objective::EnergyDelayProduct);
        let warm = characterize_at(&spec, Kelvin::REFERENCE, Objective::EnergyDelayProduct);
        // Cryo dynamic energy is mildly lower (scaled Vdd), latency much lower.
        assert!(cold.read_energy < warm.read_energy);
        assert!(cold.read_energy.get() > warm.read_energy.get() * 0.8);
        assert!(cold.read_latency.get() < warm.read_latency.get() * 0.35);
        assert!(cold.leakage_power.get() < warm.leakage_power.get() * 1e-4);
    }
}
