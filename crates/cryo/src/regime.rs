//! Operating-temperature regimes and model validity.

use coldtall_units::Kelvin;

/// The operating regime a temperature falls into, following the paper's
/// background taxonomy (Section II-A).
///
/// The study's CMOS models are valid in the
/// [`Cmos77K`](OperatingRegime::Cmos77K) and
/// [`Conventional`](OperatingRegime::Conventional) regimes. Below ~60 K
/// carrier freeze-out invalidates the bulk-CMOS device cards, and near
/// 4 K computing moves to superconducting logic families (RSFQ, AQFP)
/// that this toolchain does not model.
///
/// # Examples
///
/// ```
/// use coldtall_cryo::OperatingRegime;
/// use coldtall_units::Kelvin;
///
/// assert_eq!(OperatingRegime::of(Kelvin::LN2), OperatingRegime::Cmos77K);
/// assert!(OperatingRegime::of(Kelvin::LN2).models_are_valid());
/// assert!(!OperatingRegime::of(Kelvin::new(4.0)).models_are_valid());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatingRegime {
    /// Liquid-helium territory (< 10 K): superconducting logic only.
    Superconducting,
    /// 10-60 K: bulk CMOS suffers carrier freeze-out; models invalid.
    FreezeOut,
    /// 60-150 K: the liquid-nitrogen CMOS regime the study targets.
    Cmos77K,
    /// 150-400 K: conventional operation.
    Conventional,
    /// Above 400 K: beyond the thermal envelope of the device cards.
    OverTemperature,
}

impl OperatingRegime {
    /// Classifies a temperature.
    #[must_use]
    pub fn of(t: Kelvin) -> Self {
        match t.get() {
            t if t < 10.0 => Self::Superconducting,
            t if t < 60.0 => Self::FreezeOut,
            t if t < 150.0 => Self::Cmos77K,
            t if t <= 400.0 => Self::Conventional,
            _ => Self::OverTemperature,
        }
    }

    /// Whether the workspace's CMOS device and wire models hold in this
    /// regime.
    #[must_use]
    pub fn models_are_valid(self) -> bool {
        matches!(self, Self::Cmos77K | Self::Conventional)
    }

    /// The coolant conventionally used to reach this regime, if any.
    #[must_use]
    pub fn coolant(self) -> Option<&'static str> {
        match self {
            Self::Superconducting => Some("liquid helium"),
            Self::FreezeOut => Some("cryocooler"),
            Self::Cmos77K => Some("liquid nitrogen"),
            Self::Conventional | Self::OverTemperature => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_boundaries() {
        assert_eq!(OperatingRegime::of(Kelvin::new(4.0)), OperatingRegime::Superconducting);
        assert_eq!(OperatingRegime::of(Kelvin::new(30.0)), OperatingRegime::FreezeOut);
        assert_eq!(OperatingRegime::of(Kelvin::new(77.0)), OperatingRegime::Cmos77K);
        assert_eq!(OperatingRegime::of(Kelvin::new(149.9)), OperatingRegime::Cmos77K);
        assert_eq!(OperatingRegime::of(Kelvin::new(300.0)), OperatingRegime::Conventional);
        assert_eq!(OperatingRegime::of(Kelvin::new(401.0)), OperatingRegime::OverTemperature);
    }

    #[test]
    fn validity_matches_the_study_range() {
        for t in [77.0, 127.0, 300.0, 350.0, 387.0] {
            assert!(OperatingRegime::of(Kelvin::new(t)).models_are_valid());
        }
        for t in [4.0, 40.0, 450.0] {
            assert!(!OperatingRegime::of(Kelvin::new(t)).models_are_valid());
        }
    }

    #[test]
    fn coolants() {
        assert_eq!(OperatingRegime::Cmos77K.coolant(), Some("liquid nitrogen"));
        assert_eq!(OperatingRegime::Conventional.coolant(), None);
    }
}
