//! The study's canonical temperature sweep.

use std::sync::OnceLock;

use coldtall_units::Kelvin;

/// The temperature points the paper sweeps: 77 K (LN2) up to 387 K (CPU
/// thermal design point) at roughly 50 K intervals, plus the 350 K
/// reference.
///
/// The grid is a process-wide constant, so callers get a shared
/// `'static` slice rather than a fresh allocation per call (the sweep
/// drivers and bench loops hit this on every row).
#[must_use]
pub fn study_temperatures() -> &'static [Kelvin] {
    static POINTS: OnceLock<[Kelvin; 8]> = OnceLock::new();
    POINTS.get_or_init(|| {
        [77.0, 127.0, 177.0, 227.0, 277.0, 327.0, 350.0, 387.0].map(Kelvin::new)
    })
}

/// An inclusive temperature range iterated at a fixed step, for custom
/// sweeps (e.g. the future-work "optimal intermediate temperature"
/// studies).
///
/// # Examples
///
/// ```
/// use coldtall_cryo::TemperatureSweep;
/// use coldtall_units::Kelvin;
///
/// let points: Vec<_> = TemperatureSweep::new(Kelvin::LN2, Kelvin::ROOM, 100.0).collect();
/// assert_eq!(points.len(), 3); // 77, 177, 277
/// ```
#[derive(Debug, Clone)]
pub struct TemperatureSweep {
    next: f64,
    end: f64,
    step: f64,
}

impl TemperatureSweep {
    /// Creates a sweep from `start` to `end` (inclusive) stepping by
    /// `step_kelvin`.
    ///
    /// # Panics
    ///
    /// Panics if `step_kelvin` is not strictly positive or `end` is below
    /// `start`.
    #[must_use]
    pub fn new(start: Kelvin, end: Kelvin, step_kelvin: f64) -> Self {
        assert!(step_kelvin > 0.0, "sweep step must be positive");
        assert!(end >= start, "sweep end must not precede start");
        Self {
            next: start.get(),
            end: end.get(),
            step: step_kelvin,
        }
    }
}

impl Iterator for TemperatureSweep {
    type Item = Kelvin;

    fn next(&mut self) -> Option<Kelvin> {
        if self.next > self.end + 1e-9 {
            return None;
        }
        let t = Kelvin::new(self.next);
        self.next += self.step;
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_sweep_brackets_the_paper_range() {
        let pts = study_temperatures();
        assert_eq!(pts.first().copied(), Some(Kelvin::LN2));
        assert_eq!(pts.last().copied(), Some(Kelvin::TDP));
        assert!(pts.contains(&Kelvin::REFERENCE));
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn custom_sweep_is_inclusive() {
        let pts: Vec<_> = TemperatureSweep::new(Kelvin::new(100.0), Kelvin::new(300.0), 50.0)
            .map(Kelvin::get)
            .collect();
        assert_eq!(pts, vec![100.0, 150.0, 200.0, 250.0, 300.0]);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_rejected() {
        let _ = TemperatureSweep::new(Kelvin::LN2, Kelvin::ROOM, 0.0);
    }
}
