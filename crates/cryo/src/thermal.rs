//! Liquid-nitrogen bath thermal budget.

use coldtall_units::Watts;

/// The conventional LN2 bath-cooling method's thermal envelope, as cited
/// in the paper's discussion: 157 W of cooling capacity (2.41x the 65 W
/// of a 300 K air cooler) with roughly 20 K of temperature variation
/// across the die.
///
/// # Examples
///
/// ```
/// use coldtall_cryo::LnBath;
/// use coldtall_units::Watts;
///
/// let bath = LnBath::default();
/// assert!(bath.can_dissipate(Watts::new(100.0)));
/// assert!(!bath.can_dissipate(Watts::new(200.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LnBath {
    capacity: Watts,
    air_cooling_reference: Watts,
    temperature_variation_k: f64,
}

impl LnBath {
    /// The paper's cited LN2 bath: 157 W capacity, 20 K variation,
    /// compared against a 65 W air cooler.
    #[must_use]
    pub fn new() -> Self {
        Self {
            capacity: Watts::new(157.0),
            air_cooling_reference: Watts::new(65.0),
            temperature_variation_k: 20.0,
        }
    }

    /// The bath's heat-removal capacity.
    #[must_use]
    pub fn capacity(&self) -> Watts {
        self.capacity
    }

    /// Cooling-capacity advantage over conventional air cooling.
    #[must_use]
    pub fn advantage_over_air(&self) -> f64 {
        self.capacity / self.air_cooling_reference
    }

    /// Die temperature variation under the bath, kelvin.
    #[must_use]
    pub fn temperature_variation_k(&self) -> f64 {
        self.temperature_variation_k
    }

    /// Whether the bath can remove `heat` watts: the thermal feasibility
    /// check for cooling the whole processor to 77 K.
    #[must_use]
    pub fn can_dissipate(&self, heat: Watts) -> bool {
        heat <= self.capacity
    }
}

impl Default for LnBath {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_cited_figures() {
        let bath = LnBath::new();
        assert_eq!(bath.capacity().get(), 157.0);
        assert!((bath.advantage_over_air() - 2.415).abs() < 0.01);
        assert_eq!(bath.temperature_variation_k(), 20.0);
    }

    #[test]
    fn dissipation_check_is_inclusive() {
        let bath = LnBath::new();
        assert!(bath.can_dissipate(Watts::new(157.0)));
        assert!(!bath.can_dissipate(Watts::new(157.1)));
    }
}
