//! Cryocooler cost model.

use core::fmt;

use coldtall_units::{Kelvin, Watts};

/// A 77 K refrigeration system, classified by total cooling capacity.
///
/// The paper (Section III-C, following the cryocooler survey literature
/// and "Case Studies in Superconducting Magnets" Fig. 4.5) models the
/// *cooling overhead* — joules of input energy per joule of heat removed
/// at 77 K — as a function of system scale: large plants amortize far
/// better than desktop-scale coolers.
///
/// | capacity | overhead |
/// |---|---|
/// | 100 kW | 9.65x |
/// | 1 kW | 14.3x |
/// | 100 W | 21.8x |
/// | 10 W | 39.6x |
///
/// # Examples
///
/// ```
/// use coldtall_cryo::CoolingSystem;
/// use coldtall_units::{Kelvin, Watts};
///
/// let device = Watts::new(2.0);
/// let wall = CoolingSystem::Desktop100W.wall_power(device, Kelvin::LN2);
/// assert!((wall.get() - 2.0 * 22.8).abs() < 1e-9);
///
/// // No overhead outside the cryogenic regime.
/// let warm = CoolingSystem::Desktop100W.wall_power(device, Kelvin::REFERENCE);
/// assert_eq!(warm, device);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoolingSystem {
    /// 100 kW-class server plant (the prior work's default): 9.65x.
    #[default]
    Server100kW,
    /// 1 kW-class rack cooler: 14.3x.
    Rack1kW,
    /// 100 W-class desktop cooler: 21.8x.
    Desktop100W,
    /// 10 W-class embedded cooler: 39.6x.
    Embedded10W,
}

impl CoolingSystem {
    /// All capacity tiers, largest first, as swept in the paper.
    pub const ALL: [Self; 4] = [
        Self::Server100kW,
        Self::Rack1kW,
        Self::Desktop100W,
        Self::Embedded10W,
    ];

    /// Input energy required per joule of heat removed at 77 K.
    #[must_use]
    pub fn overhead_factor(self) -> f64 {
        match self {
            Self::Server100kW => 9.65,
            Self::Rack1kW => 14.3,
            Self::Desktop100W => 21.8,
            Self::Embedded10W => 39.6,
        }
    }

    /// Total cooling capacity of this tier.
    #[must_use]
    pub fn capacity(self) -> Watts {
        match self {
            Self::Server100kW => Watts::new(100e3),
            Self::Rack1kW => Watts::new(1e3),
            Self::Desktop100W => Watts::new(100.0),
            Self::Embedded10W => Watts::new(10.0),
        }
    }

    /// Refrigeration overhead at an arbitrary sub-ambient temperature:
    /// the 77 K survey factor scaled by the Carnot work ratio
    /// `(T_amb - T)/T`, so holding 77 K costs exactly the surveyed
    /// factor, milder set-points cost proportionally less, and ambient
    /// or hotter operation costs nothing.
    #[must_use]
    pub fn overhead_at(self, t: Kelvin) -> f64 {
        const T_AMBIENT: f64 = 300.0;
        let t = t.get();
        if t >= T_AMBIENT {
            return 0.0;
        }
        let carnot = (T_AMBIENT - t) / t;
        let carnot_77 = (T_AMBIENT - 77.0) / 77.0;
        self.overhead_factor() * carnot / carnot_77
    }

    /// The wall-power multiplier at temperature `t`:
    /// `1 + overhead_at(t)`, so `wall = device * wall_factor(t)`.
    ///
    /// Exposed separately from [`CoolingSystem::wall_power`] so batched
    /// evaluation can hoist the factor out of a per-row loop — the
    /// factor depends only on the cooling tier and temperature, both
    /// constant across a configuration's benchmark plane. The scalar
    /// path multiplies by exactly this factor, which is what keeps the
    /// two paths bit-identical.
    #[must_use]
    pub fn wall_factor(self, t: Kelvin) -> f64 {
        1.0 + self.overhead_at(t)
    }

    /// Wall power of running `device_power` at temperature `t`: the
    /// device power plus the refrigeration input required to hold the
    /// set-point (zero at or above ambient).
    ///
    /// # Panics
    ///
    /// Panics if `device_power` is negative.
    #[must_use]
    pub fn wall_power(self, device_power: Watts, t: Kelvin) -> Watts {
        assert!(device_power.get() >= 0.0, "device power must be non-negative");
        device_power * self.wall_factor(t)
    }
}

/// Continuous cooling-overhead model: interpolates the cryocooler
/// survey's (capacity, overhead) points log-log, clamped at both ends.
///
/// This supports studies between the four discrete tiers — e.g. "how big
/// must the plant be before a given workload's cryogenic LLC pays off?".
///
/// # Examples
///
/// ```
/// use coldtall_cryo::{overhead_for_capacity, CoolingSystem};
/// use coldtall_units::Watts;
///
/// // Reproduces the tier anchors exactly...
/// let at_100w = overhead_for_capacity(Watts::new(100.0));
/// assert!((at_100w - 21.8).abs() < 1e-9);
/// // ...and interpolates between them.
/// let mid = overhead_for_capacity(Watts::new(300.0));
/// assert!(mid < 21.8 && mid > 14.3);
/// ```
///
/// # Panics
///
/// Panics if `capacity` is not strictly positive.
#[must_use]
pub fn overhead_for_capacity(capacity: Watts) -> f64 {
    assert!(capacity.get() > 0.0, "cooling capacity must be positive");
    // Survey anchors, ascending capacity.
    const POINTS: [(f64, f64); 4] = [(10.0, 39.6), (100.0, 21.8), (1.0e3, 14.3), (1.0e5, 9.65)];
    let c = capacity.get();
    if c <= POINTS[0].0 {
        return POINTS[0].1;
    }
    if c >= POINTS[3].0 {
        return POINTS[3].1;
    }
    for pair in POINTS.windows(2) {
        let (c0, f0) = pair[0];
        let (c1, f1) = pair[1];
        if c <= c1 {
            let t = (c.ln() - c0.ln()) / (c1.ln() - c0.ln());
            return (f0.ln() + t * (f1.ln() - f0.ln())).exp();
        }
    }
    unreachable!("capacity bracketed above")
}

impl fmt::Display for CoolingSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (name, x) = match self {
            Self::Server100kW => ("100 kW plant", 9.65),
            Self::Rack1kW => ("1 kW rack", 14.3),
            Self::Desktop100W => ("100 W desktop", 21.8),
            Self::Embedded10W => ("10 W embedded", 39.6),
        };
        write!(f, "{name} ({x}x)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_match_the_survey() {
        assert_eq!(CoolingSystem::Server100kW.overhead_factor(), 9.65);
        assert_eq!(CoolingSystem::Rack1kW.overhead_factor(), 14.3);
        assert_eq!(CoolingSystem::Desktop100W.overhead_factor(), 21.8);
        assert_eq!(CoolingSystem::Embedded10W.overhead_factor(), 39.6);
    }

    #[test]
    fn smaller_systems_cost_more_per_joule() {
        let mut prev = 0.0;
        for sys in CoolingSystem::ALL {
            assert!(sys.overhead_factor() > prev);
            prev = sys.overhead_factor();
        }
    }

    #[test]
    fn wall_power_at_77k_includes_one_plus_factor() {
        let p = CoolingSystem::Server100kW.wall_power(Watts::new(1.0), Kelvin::LN2);
        assert!((p.get() - 10.65).abs() < 1e-12);
    }

    #[test]
    fn wall_factor_is_the_exact_wall_power_multiplier() {
        for sys in CoolingSystem::ALL {
            for t in [77.0, 150.0, 300.0, 350.0] {
                let t = Kelvin::new(t);
                let factor = sys.wall_factor(t);
                assert_eq!(factor, 1.0 + sys.overhead_at(t));
                // Bit-identical, not merely close: the batched kernel
                // multiplies by the hoisted factor.
                let device = Watts::new(2.5);
                assert_eq!(sys.wall_power(device, t), device * factor);
            }
        }
        assert_eq!(CoolingSystem::Server100kW.wall_factor(Kelvin::ROOM), 1.0);
    }

    #[test]
    fn no_overhead_at_or_above_ambient() {
        for t in [300.0, 350.0, 387.0] {
            let p = CoolingSystem::Embedded10W.wall_power(Watts::new(3.0), Kelvin::new(t));
            assert_eq!(p.get(), 3.0);
        }
    }

    #[test]
    fn carnot_scaling_between_77k_and_ambient() {
        let sys = CoolingSystem::Server100kW;
        assert!((sys.overhead_at(Kelvin::LN2) - 9.65).abs() < 1e-12);
        assert_eq!(sys.overhead_at(Kelvin::ROOM), 0.0);
        // Milder set-points cost monotonically less.
        let mut prev = f64::INFINITY;
        for t in [77.0, 127.0, 177.0, 227.0, 277.0, 299.0] {
            let o = sys.overhead_at(Kelvin::new(t));
            assert!(o < prev, "overhead must fall with temperature at {t} K");
            prev = o;
        }
        // Holding 150 K costs roughly a third of holding 77 K.
        let mid = sys.overhead_at(Kelvin::new(150.0));
        assert!(mid > 2.0 && mid < 5.0, "150 K overhead = {mid}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_rejected() {
        let _ = CoolingSystem::Server100kW.wall_power(Watts::new(-1.0), Kelvin::LN2);
    }

    #[test]
    fn display() {
        assert_eq!(
            CoolingSystem::Server100kW.to_string(),
            "100 kW plant (9.65x)"
        );
    }

    #[test]
    fn continuous_model_hits_every_tier_anchor() {
        for sys in CoolingSystem::ALL {
            let f = overhead_for_capacity(sys.capacity());
            assert!(
                (f - sys.overhead_factor()).abs() < 1e-9,
                "{sys}: interpolated {f}"
            );
        }
    }

    #[test]
    fn continuous_model_is_monotone_decreasing_in_capacity() {
        let mut prev = f64::INFINITY;
        let mut c = 5.0;
        while c < 1e6 {
            let f = overhead_for_capacity(Watts::new(c));
            assert!(f <= prev + 1e-12, "overhead must not rise at {c} W");
            prev = f;
            c *= 1.5;
        }
    }

    #[test]
    fn continuous_model_clamps_at_the_survey_edges() {
        assert_eq!(overhead_for_capacity(Watts::new(1.0)), 39.6);
        assert_eq!(overhead_for_capacity(Watts::new(1.0e7)), 9.65);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_capacity_rejected() {
        let _ = overhead_for_capacity(Watts::new(0.0));
    }
}
