//! The named metrics registry and its exporters.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

use crate::{Counter, Gauge, Histogram};

/// Span-duration quantiles reported by the exporters.
const QUANTILES: [(&str, f64); 3] = [("p50_ns", 0.50), ("p95_ns", 0.95), ("p99_ns", 0.99)];

/// A named collection of counters, gauges, and span histograms.
///
/// Lookup is get-or-create and returns a cheap [`Arc`] handle; call
/// sites resolve their handles once (at construction or in a
/// `OnceLock`) and record through them lock-free afterwards — the
/// registry's own lock is touched only on first registration and on
/// export. Names are sorted (`BTreeMap`), so exports are stable.
///
/// Instrumented library code takes `&Registry` rather than assuming
/// [`global`], so tests running under the parallel libtest harness can
/// observe a private registry without cross-test interference.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    spans: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn get_or_create<M: Default>(map: &RwLock<BTreeMap<String, Arc<M>>>, name: &str) -> Arc<M> {
    if let Some(found) = map
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .get(name)
    {
        return Arc::clone(found);
    }
    Arc::clone(
        map.write()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(name.to_string())
            .or_default(),
    )
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first use. The same
    /// name always resolves to the same counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    /// The gauge named `name`, created at zero on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    /// The span-duration histogram named `name`, created empty on first
    /// use.
    #[must_use]
    pub fn span(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.spans, name)
    }

    /// The current value of a counter, if it has been registered.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .map(|c| c.get())
    }

    /// A sorted snapshot of every counter: `(name, value)`.
    #[must_use]
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect()
    }

    /// A sorted snapshot of every gauge: `(name, value)`.
    #[must_use]
    pub fn gauges(&self) -> Vec<(String, u64)> {
        self.gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect()
    }

    /// Ratios derived from counter pairs at export time, sorted by
    /// name: a `<prefix>.hit_ratio` of `hits / (hits + misses)` for
    /// every registered `<prefix>.hits` / `<prefix>.misses` pair.
    ///
    /// A pair that has never been probed (`hits + misses == 0`) is
    /// omitted rather than exported as a bogus `0.0` — the ratio of an
    /// untouched cache is undefined, not zero.
    #[must_use]
    pub fn derived(&self) -> Vec<(String, f64)> {
        let counters = self.counters();
        counters
            .iter()
            .filter_map(|(name, hits)| {
                let prefix = name.strip_suffix(".hits")?;
                let (_, misses) = counters
                    .iter()
                    .find(|(other, _)| other == &format!("{prefix}.misses"))?;
                let total = hits + misses;
                (total > 0).then(|| {
                    #[allow(clippy::cast_precision_loss)] // counters are far below 2^52
                    let ratio = *hits as f64 / total as f64;
                    (format!("{prefix}.hit_ratio"), ratio)
                })
            })
            .collect()
    }

    /// Zeroes every registered counter, gauge, and span histogram (the
    /// metrics stay registered; their handles stay valid).
    pub fn reset(&self) {
        for counter in self
            .counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            counter.reset();
        }
        for gauge in self
            .gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            gauge.reset();
        }
        for span in self
            .spans
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            span.reset();
        }
    }

    /// Renders an aligned human-readable report: counters, gauges, then
    /// span timings with count/mean/quantiles.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let counters = self.counters();
        let gauges = self.gauges();
        let width = counters
            .iter()
            .chain(&gauges)
            .map(|(name, _)| name.len())
            .max()
            .unwrap_or(0);
        out.push_str("# counters\n");
        for (name, value) in &counters {
            let _ = writeln!(out, "{name:width$}  {value}");
        }
        let derived = self.derived();
        if !derived.is_empty() {
            out.push_str("# derived\n");
            for (name, value) in &derived {
                let _ = writeln!(out, "{name:width$}  {value:.6}");
            }
        }
        out.push_str("# gauges\n");
        for (name, value) in &gauges {
            let _ = writeln!(out, "{name:width$}  {value}");
        }
        out.push_str("# spans\n");
        for (name, hist) in self.spans.read().unwrap_or_else(PoisonError::into_inner).iter() {
            let _ = write!(
                out,
                "{name}  count={} mean={:.0}ns min={}ns max={}ns",
                hist.count(),
                hist.mean(),
                hist.min(),
                hist.max()
            );
            for (label, q) in QUANTILES {
                let _ = write!(out, " {}={}", label.trim_end_matches("_ns"), hist.quantile(q));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the registry as one JSON object with `counters`,
    /// `derived`, `gauges`, and `spans` sections (names are
    /// JSON-escaped; the output parses with [`crate::json`]).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        render_scalar_section(&mut out, &self.counters());
        out.push_str("},\n  \"derived\": {");
        let derived = self.derived();
        for (i, (name, value)) in derived.iter().enumerate() {
            let comma = if i + 1 == derived.len() { "" } else { "," };
            let _ = write!(out, "\n    \"{}\": {value:.6}{comma}", escape(name));
        }
        if !derived.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        render_scalar_section(&mut out, &self.gauges());
        out.push_str("},\n  \"spans\": {");
        let spans = self.spans.read().unwrap_or_else(PoisonError::into_inner);
        for (i, (name, hist)) in spans.iter().enumerate() {
            let comma = if i + 1 == spans.len() { "" } else { "," };
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"mean_ns\": {:.1}, \"min_ns\": {}, \"max_ns\": {}",
                escape(name),
                hist.count(),
                hist.sum(),
                hist.mean(),
                hist.min(),
                hist.max()
            );
            for (label, q) in QUANTILES {
                let _ = write!(out, ", \"{label}\": {}", hist.quantile(q));
            }
            let _ = write!(out, "}}{comma}");
        }
        if !spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn render_scalar_section(out: &mut String, entries: &[(String, u64)]) {
    for (i, (name, value)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = write!(out, "\n    \"{}\": {value}{comma}", escape(name));
    }
    if !entries.is_empty() {
        out.push_str("\n  ");
    }
}

/// Escapes a metric name for embedding in a JSON string literal.
fn escape(name: &str) -> String {
    name.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// The process-wide registry: what the `coldtall --metrics` flag and
/// the bench harness export. Library constructors default to it;
/// tests needing isolation pass their own [`Registry`].
#[must_use]
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};

    #[test]
    fn same_name_resolves_to_the_same_metric() {
        let registry = Registry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(registry.counter_value("x"), Some(1));
        assert_eq!(registry.counter_value("missing"), None);
    }

    #[test]
    fn namespaces_are_independent() {
        let registry = Registry::new();
        registry.counter("dup").add(3);
        registry.gauge("dup").set(9);
        assert_eq!(registry.counter_value("dup"), Some(3));
        assert_eq!(registry.gauges(), vec![("dup".to_string(), 9)]);
    }

    #[test]
    fn reset_zeroes_everything_but_keeps_handles_valid() {
        let registry = Registry::new();
        let c = registry.counter("c");
        c.add(5);
        registry.gauge("g").set(2);
        registry.span("s").record(100);
        registry.reset();
        assert_eq!(registry.counter_value("c"), Some(0));
        assert_eq!(registry.gauges()[0].1, 0);
        assert_eq!(registry.span("s").count(), 0);
        c.inc();
        assert_eq!(registry.counter_value("c"), Some(1));
    }

    #[test]
    fn text_export_lists_all_sections() {
        let registry = Registry::new();
        registry.counter("cache.hits").add(12);
        registry.gauge("pool.threads").set(4);
        registry.span("evaluate").record(1500);
        let text = registry.render_text();
        assert!(text.contains("# counters"));
        assert!(text.contains("cache.hits"));
        assert!(text.contains("12"));
        assert!(text.contains("# spans"));
        assert!(text.contains("evaluate"));
    }

    #[test]
    fn json_export_parses_and_preserves_values() {
        let registry = Registry::new();
        registry.counter("cache.hits").add(7);
        registry.counter("cache.misses").add(2);
        registry.gauge("pool.inline").set(1);
        registry.span("sweep").record(5000);
        let parsed = json::parse(&registry.render_json()).expect("export is valid JSON");
        let Value::Object(root) = parsed else {
            panic!("root must be an object")
        };
        let Value::Object(counters) = &root["counters"] else {
            panic!("counters section")
        };
        assert_eq!(counters["cache.hits"], Value::Number(7.0));
        let Value::Object(spans) = &root["spans"] else {
            panic!("spans section")
        };
        let Value::Object(sweep) = &spans["sweep"] else {
            panic!("sweep span")
        };
        assert_eq!(sweep["count"], Value::Number(1.0));
        assert!(matches!(sweep["p99_ns"], Value::Number(v) if v >= 5000.0));
    }

    #[test]
    fn derived_hit_ratios_pair_hits_with_misses() {
        let registry = Registry::new();
        registry.counter("cache.hits").add(9);
        registry.counter("cache.misses").add(3);
        // A second pair that has never been probed must be omitted...
        let _ = registry.counter("geometry.hits");
        let _ = registry.counter("geometry.misses");
        // ...and a hits counter with no matching misses pairs nothing.
        registry.counter("orphan.hits").add(5);
        assert_eq!(
            registry.derived(),
            vec![("cache.hit_ratio".to_string(), 0.75)]
        );

        let parsed = json::parse(&registry.render_json()).expect("export is valid JSON");
        let Value::Object(root) = parsed else {
            panic!("root must be an object")
        };
        let Value::Object(derived) = &root["derived"] else {
            panic!("derived section")
        };
        assert_eq!(derived["cache.hit_ratio"], Value::Number(0.75));
        assert!(!derived.contains_key("geometry.hit_ratio"));
        assert!(registry.render_text().contains("# derived"));

        registry.counter("geometry.misses").inc();
        assert_eq!(
            registry.derived(),
            vec![
                ("cache.hit_ratio".to_string(), 0.75),
                ("geometry.hit_ratio".to_string(), 0.0),
            ]
        );
    }

    #[test]
    fn empty_registry_exports_are_valid() {
        let registry = Registry::new();
        assert!(json::parse(&registry.render_json()).is_ok());
        assert!(registry.render_text().contains("# counters"));
    }

    #[test]
    fn metric_names_are_json_escaped() {
        let registry = Registry::new();
        registry.counter("weird\"name\\").inc();
        assert!(json::parse(&registry.render_json()).is_ok());
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a: *const Registry = global();
        let b: *const Registry = global();
        assert_eq!(a, b);
    }
}
