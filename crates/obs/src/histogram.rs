//! A lock-free log₂-bucketed histogram for span durations.
//!
//! Values (nanoseconds, in practice) land in the bucket indexed by
//! their bit length: bucket 0 holds exactly 0, bucket `b ≥ 1` holds
//! `[2^(b-1), 2^b - 1]`. Sixty-five buckets therefore cover the whole
//! `u64` range with a fixed ~2x relative error — plenty for latency
//! telemetry, where the interesting signal is orders of magnitude —
//! and every operation is a relaxed atomic add, so recording from the
//! worker pool's hot path never takes a lock.
//!
//! Invariants the test suite leans on:
//!
//! * *conservation* — the sum of bucket counts always equals the number
//!   of recorded samples,
//! * *lossless merge* — merging two histograms produces exactly the
//!   histogram of the concatenated sample streams,
//! * *monotone quantiles* — `quantile(p)` is non-decreasing in `p`, so
//!   p50 ≤ p95 ≤ p99 by construction.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per possible bit length.
const BUCKETS: usize = 65;

/// A concurrent log₂-scale histogram (see the module docs for the
/// bucket layout and invariants).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket a value lands in: its bit length (0 for 0).
    fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The largest value a bucket can hold.
    fn bucket_upper_bound(index: usize) -> u64 {
        match index {
            0 => 0,
            64 => u64::MAX,
            b => (1u64 << b) - 1,
        }
    }

    /// The smallest value a bucket can hold.
    fn bucket_lower_bound(index: usize) -> u64 {
        match index {
            0 => 0,
            b => 1u64 << (b - 1),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping beyond `u64::MAX`).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// Largest recorded sample, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples, or 0.0 when empty.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) with within-bucket
    /// linear interpolation: the rank `ceil(q * count)` sample's bucket
    /// is located by a cumulative walk, then the estimate interpolates
    /// across the bucket's `[lower, upper]` value range by the rank's
    /// position among the bucket's samples (assumed uniformly spread).
    /// Without interpolation every quantile inside one coarse log₂
    /// bucket collapses to the same upper bound — e.g. p95 = p99 =
    /// 131071 ns for any sub-sweep span — which is the saturation this
    /// repairs. Non-decreasing in `q` (within a bucket the position is
    /// non-decreasing; across buckets each upper bound is below the
    /// next bucket's lower bound); always inside the rank's bucket
    /// bounds; returns 0 when empty.
    #[must_use]
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            cumulative += n;
            if cumulative >= rank {
                // 1-based position of the rank within this bucket's
                // `n` samples, in `1..=n`.
                let position = n - (cumulative - rank);
                let lower = Self::bucket_lower_bound(index);
                let upper = Self::bucket_upper_bound(index);
                let width = (upper - lower) as f64;
                let fraction = position as f64 / n as f64;
                // `saturating_add` + the clamp absorb f64 rounding in
                // the widest buckets (width > 2^53).
                return lower
                    .saturating_add((width * fraction) as u64)
                    .min(upper);
            }
        }
        self.max()
    }

    /// A snapshot of all bucket counts (index = bit length of the
    /// values the bucket holds).
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Folds another histogram's samples into this one, exactly as if
    /// every sample of `other` had been recorded here.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Empties the histogram. Not atomic with respect to concurrent
    /// `record` calls; callers quiesce recording first (the registry
    /// only resets between test runs).
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_by_bit_length() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(2), 3);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn records_conserve_count_and_extremes() {
        let h = Histogram::new();
        for v in [0, 1, 5, 1000, 12, 7, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1028);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert!((h.mean() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (p50, p95, p99) = (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
        // A log2 bucket upper bound is at most 2x above the true value.
        assert!((500..=1023).contains(&p50), "p50={p50}");
        assert!(h.quantile(1.0) >= 1000);
    }

    /// Regression (ISSUE 6): coarse log₂ buckets used to collapse every
    /// quantile inside one bucket to the same upper bound (p95 = p99 =
    /// 131071 in the bench export). Interpolation makes them
    /// distinguishable — and exact for uniformly spread samples.
    #[test]
    fn interpolation_distinguishes_quantiles_within_one_bucket() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // Uniform 1..=1000: interpolation recovers the true p50.
        assert_eq!(h.quantile(0.50), 500);
        assert!(
            h.quantile(0.95) < h.quantile(0.99),
            "p95={} p99={}",
            h.quantile(0.95),
            h.quantile(0.99)
        );
    }

    /// Property: over a deterministic pseudo-random sample set, the
    /// interpolated quantile is non-decreasing in `q` and always lies
    /// inside its rank's bucket bounds.
    #[test]
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    fn interpolated_quantiles_are_monotone_and_bucket_bounded() {
        // Inline LCG: keeps the test deterministic with no dependencies.
        let mut state = 0x2545_f491_4f6c_dd1d_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state >> 33
        };
        let h = Histogram::new();
        for _ in 0..4096 {
            h.record(next() % 1_000_000);
        }
        let counts = h.bucket_counts();
        let mut previous = 0u64;
        for i in 0..=1000u32 {
            let q = f64::from(i) / 1000.0;
            let estimate = h.quantile(q);
            assert!(
                estimate >= previous,
                "quantile must be monotone: q={q}, {estimate} < {previous}"
            );
            previous = estimate;
            // Recompute the rank's bucket independently and check the
            // estimate is bounded by that bucket's value range.
            let rank = ((q * h.count() as f64).ceil() as u64).max(1);
            let mut cumulative = 0u64;
            let bucket = counts
                .iter()
                .position(|&n| {
                    cumulative += n;
                    cumulative >= rank
                })
                .expect("rank is within the recorded samples");
            assert!(
                (Histogram::bucket_lower_bound(bucket)..=Histogram::bucket_upper_bound(bucket))
                    .contains(&estimate),
                "q={q}: estimate {estimate} escapes bucket {bucket}"
            );
        }
    }

    #[test]
    fn merge_equals_concatenation() {
        let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [3u64, 9, 200, 0] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 9, 4096] {
            b.record(v);
            both.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.bucket_counts(), both.bucket_counts());
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
    }

    #[test]
    fn reset_returns_to_the_empty_state() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 0);
        assert_eq!(h.min(), 0);
        // And a fresh record after reset still tracks extremes.
        h.record(9);
        assert_eq!(h.min(), 9);
        assert_eq!(h.max(), 9);
    }
}
