//! A minimal JSON parser for validating metric exports.
//!
//! The offline workspace has no `serde_json`; the CLI tests and the
//! bench harness still need to prove that `--metrics=json` output and
//! `BENCH_sweep.json` are well-formed and carry the expected keys.
//! This is a straightforward recursive-descent parser over the JSON
//! grammar — strict enough to reject malformed documents, small enough
//! to audit in one sitting. It is a *reader* only; rendering lives
//! with the data (the registry, the bench `JsonObject`).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, like JavaScript).
    Number(f64),
    /// A string literal.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys are sorted for stable iteration.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member access shorthand: `value.get("counters")` on an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error,
/// with its byte offset.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing garbage at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            map.insert(key, self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogates are rejected rather than paired:
                            // metric names never need astral characters.
                            out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-2.5e3").unwrap(), Value::Number(-2500.0));
        assert_eq!(parse("\"hi\\n\"").unwrap(), Value::String("hi\n".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, 2, {"b": false}], "c": {"d": null}}"#;
        let value = parse(doc).unwrap();
        assert_eq!(
            value.get("a").and_then(|a| match a {
                Value::Array(items) => items.first().and_then(Value::as_f64),
                _ => None,
            }),
            Some(1.0)
        );
        assert_eq!(value.get("c").unwrap().get("d"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated", "{\"a\":}"] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_round_trip() {
        assert_eq!(
            parse("\"\\u0041\\u00e9\"").unwrap(),
            Value::String("Aé".into())
        );
        assert!(parse("\"\\ud800\"").is_err(), "lone surrogate rejected");
    }

    #[test]
    fn whitespace_is_tolerated_everywhere() {
        let value = parse(" \n\t{ \"k\" :\r [ ] } ").unwrap();
        assert_eq!(value.get("k"), Some(&Value::Array(vec![])));
    }
}
