//! RAII span timers.

use std::sync::Arc;
use std::time::Instant;

use crate::Histogram;

/// Times a scope and records the elapsed nanoseconds into a histogram
/// when dropped.
///
/// The guard is deliberately minimal: entering is one `Instant::now()`,
/// dropping is one more plus a lock-free histogram record, so spans can
/// wrap every characterization and evaluation of a sweep without
/// perturbing what they measure.
///
/// # Examples
///
/// ```
/// let registry = coldtall_obs::Registry::new();
/// let hist = registry.span("work");
/// {
///     let _span = coldtall_obs::Span::enter(hist.clone());
/// } // recorded here
/// assert_eq!(hist.count(), 1);
/// ```
#[derive(Debug)]
pub struct Span {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl Span {
    /// Starts timing; the elapsed time is recorded into `histogram`
    /// when the returned guard drops.
    #[must_use]
    pub fn enter(histogram: Arc<Histogram>) -> Self {
        Self {
            histogram,
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed so far (the drop records this same clock).
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.elapsed_ns();
        self.histogram.record(elapsed);
    }
}

/// Runs `f`, recording its duration into `histogram`.
pub fn timed<T>(histogram: Arc<Histogram>, f: impl FnOnce() -> T) -> T {
    let _span = Span::enter(histogram);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_exactly_one_sample() {
        let hist = Arc::new(Histogram::new());
        {
            let span = Span::enter(hist.clone());
            std::thread::sleep(std::time::Duration::from_millis(1));
            assert!(span.elapsed_ns() > 0);
        }
        assert_eq!(hist.count(), 1);
        assert!(hist.max() >= 1_000_000, "slept >= 1ms");
    }

    #[test]
    fn timed_passes_the_result_through() {
        let hist = Arc::new(Histogram::new());
        let out = timed(hist.clone(), || 6 * 7);
        assert_eq!(out, 42);
        assert_eq!(hist.count(), 1);
    }
}
