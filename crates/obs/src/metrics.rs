//! Scalar metrics: monotonic counters and point-in-time gauges.
//!
//! Both are a single `AtomicU64` with relaxed ordering — the registry
//! never needs cross-metric ordering guarantees, only that each
//! individual add lands exactly once (which `fetch_add` gives at any
//! ordering). The semantic split matters more than the representation:
//! counters hold *logical-work* counts that must come out bit-identical
//! under any thread count, gauges hold values that may legitimately
//! depend on scheduling (see `DESIGN.md` § Observability).

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic event counter.
///
/// Increment-only between [`Counter::reset`] calls. Library code must
/// only count events whose totals are scheduling-independent (cache
/// probes, work items, rows produced), so that exported counter values
/// are deterministic and can be byte-compared across runs with
/// different thread counts.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Returns the counter to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time or run-dependent value.
///
/// Gauges are the designated home for anything whose value depends on
/// scheduling — worker-pool spin-ups, inline fallbacks, the thread
/// count actually used — keeping the counter namespace deterministic.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `n`.
    pub fn set(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Adds `n` (gauges may accumulate run-dependent tallies).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Returns the gauge to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_sets_adds_and_resets() {
        let g = Gauge::new();
        g.set(7);
        assert_eq!(g.get(), 7);
        g.add(3);
        assert_eq!(g.get(), 10);
        g.set(2);
        assert_eq!(g.get(), 2);
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn counter_is_exact_under_contention() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
