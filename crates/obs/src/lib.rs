//! Std-only observability layer for the coldtall sweep engine.
//!
//! PR 1 made the explorer parallel; this crate makes it legible. It
//! provides the telemetry primitives NVMExplorer-class DSE frameworks
//! lean on to know which evaluations were memoized versus recomputed
//! and where sweep wall-clock goes, with zero external dependencies
//! (the build environment is offline):
//!
//! * [`Counter`] — a monotonic, relaxed-atomic event count. Counters
//!   record *logical work* (cache probes, pool items, sweep rows), so
//!   their values are deterministic under any thread count and can be
//!   asserted bit-identical in tests.
//! * [`Gauge`] — a point-in-time or run-dependent value (threads used,
//!   inline fallbacks, pool spin-ups). Anything whose value legitimately
//!   depends on scheduling belongs here, never in a counter.
//! * [`Histogram`] — a log₂-bucketed distribution with conserved total
//!   count, lossless merge, and monotone p50/p95/p99 estimates; used
//!   for span durations in nanoseconds.
//! * [`Span`] — an RAII timer that records its elapsed time into a
//!   histogram on drop.
//! * [`Registry`] — a named collection of the above with [`Registry::render_text`]
//!   and [`Registry::render_json`] exporters and a test-friendly
//!   [`Registry::reset`]. A process-wide instance is available via
//!   [`global`]; library code that must stay testable under the
//!   parallel libtest harness accepts a `&Registry` instead.
//! * [`json`] — a minimal JSON parser so exports can be validated
//!   without external crates.
//!
//! The hot-path cost discipline: recording is a handful of relaxed
//! atomic adds (no locks, no allocation, no formatting); all rendering
//! cost is paid only when an export is requested.
//!
//! # Examples
//!
//! ```
//! use coldtall_obs::Registry;
//!
//! let registry = Registry::new();
//! let hits = registry.counter("cache.hits");
//! hits.inc();
//! hits.add(2);
//! assert_eq!(hits.get(), 3);
//!
//! let span_hist = registry.span("characterize");
//! {
//!     let _timer = coldtall_obs::Span::enter(span_hist.clone());
//!     // ... timed work ...
//! }
//! assert_eq!(span_hist.count(), 1);
//! assert!(registry.render_text().contains("cache.hits"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod histogram;
pub mod json;
mod metrics;
mod registry;
mod span;

pub use histogram::Histogram;
pub use metrics::{Counter, Gauge};
pub use registry::{global, Registry};
pub use span::{timed, Span};
