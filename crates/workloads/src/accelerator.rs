//! Accelerator-class workload profiles.
//!
//! The paper's summary argues cryogenic operation "might be better-suited
//! to more specialized computing systems and settings where memory
//! traffic is well-understood, relatively lower overall traffic, and
//! perhaps when ambient operating temperatures are advantageously cool
//! (e.g., embedded operation in outer space)". This module supplies the
//! traffic profiles to run that follow-on study: accelerator memories
//! with well-characterized, mostly modest LLC/scratchpad traffic.

use coldtall_cachesim::LlcTraffic;

use crate::generator::GeneratorParams;
use crate::profile::{Benchmark, Suite};

fn accel(
    name: &'static str,
    reads: f64,
    writes: f64,
    ws_bytes: u64,
    hot_probability: f64,
    ipc: f64,
) -> Benchmark {
    let write_fraction = (writes / (reads + writes)).clamp(0.0, 0.95);
    Benchmark {
        name,
        suite: Suite::Accelerator,
        traffic: LlcTraffic::new(reads, writes),
        generator: GeneratorParams {
            working_set_bytes: ws_bytes,
            hot_fraction: (256.0 * 1024.0 / ws_bytes as f64).min(0.05),
            hot_probability,
            write_fraction,
            // Accelerators stream with long, regular runs.
            sequential_run: 64,
            instructions_per_access: 2.0,
            shared_fraction: 0.0,
        },
        ipc,
    }
}

/// The accelerator study set: four specialized-traffic scenarios, from
/// an ultra-quiet space-borne sensor pipeline to a streaming graph
/// engine.
#[must_use]
pub fn accelerator_profiles() -> Vec<Benchmark> {
    const MIB: u64 = 1024 * 1024;
    vec![
        // A duty-cycled sensor-fusion pipeline on a satellite: tiny,
        // perfectly periodic traffic.
        accel("sensor-fusion-space", 2.0e3, 5.0e2, MIB, 0.999, 0.8),
        // Edge DNN inference with weights resident in the cache: bursts
        // of reads at a low duty cycle.
        accel("dnn-inference-edge", 4.0e4, 4.0e3, 8 * MIB, 0.99, 1.5),
        // Always-on video analytics: steady moderate streaming.
        accel("video-analytics", 2.0e6, 6.0e5, 32 * MIB, 0.9, 1.2),
        // A graph-analytics engine: irregular, high-rate pointer chasing.
        accel("graph-engine", 6.0e7, 1.5e7, 256 * MIB, 0.4, 0.5),
    ]
}

/// Looks an accelerator profile up by name.
#[must_use]
pub fn accelerator_profile(name: &str) -> Option<Benchmark> {
    accelerator_profiles().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::TrafficBand;

    #[test]
    fn four_profiles_spanning_the_bands() {
        let set = accelerator_profiles();
        assert_eq!(set.len(), 4);
        assert_eq!(set[0].traffic_band(), TrafficBand::Low);
        assert_eq!(set.last().unwrap().traffic_band(), TrafficBand::High);
        for b in &set {
            assert_eq!(b.suite, Suite::Accelerator);
            b.generator.validate();
        }
    }

    #[test]
    fn space_profile_is_quietest() {
        let set = accelerator_profiles();
        let space = accelerator_profile("sensor-fusion-space").unwrap();
        for b in &set {
            assert!(b.traffic.reads_per_sec >= space.traffic.reads_per_sec);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(accelerator_profile("dnn-inference-edge").is_some());
        assert!(accelerator_profile("bitcoin-miner").is_none());
    }
}
