//! Benchmark profile records.

use core::fmt;

use coldtall_cachesim::LlcTraffic;

use crate::generator::GeneratorParams;

/// Which half of the SPECrate 2017 suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECrate 2017 Integer.
    IntRate,
    /// SPECrate 2017 Floating Point.
    FpRate,
    /// Specialized accelerator traffic (the paper's future-work study).
    Accelerator,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::IntRate => "SPECrate2017_int",
            Self::FpRate => "SPECrate2017_fp",
            Self::Accelerator => "accelerator",
        })
    }
}

/// One benchmark: its calibrated LLC traffic under continuous operation
/// on the Table I CPU, plus the synthetic-stream parameters that
/// reproduce its traffic class through the cache simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// Short benchmark name (e.g. `"namd"`).
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// Calibrated LLC traffic (reads/s, writes/s).
    pub traffic: LlcTraffic,
    /// Synthetic-stream generator parameters.
    pub generator: GeneratorParams,
    /// Approximate per-core instructions-per-cycle, used to convert
    /// simulated access counts into continuous-operation rates.
    pub ipc: f64,
}

impl Benchmark {
    /// Reads-per-second band label used by Table II: `<5e4`,
    /// `5e4..=8e6`, or `>8e6`.
    #[must_use]
    pub fn traffic_band(&self) -> TrafficBand {
        TrafficBand::of(self.traffic.reads_per_sec)
    }

    /// Returns a copy with traffic scaled by `factor`, for sensitivity
    /// sweeps around a profile's calibrated point.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be finite and positive"
        );
        let mut scaled = self.clone();
        scaled.traffic = LlcTraffic::new(
            self.traffic.reads_per_sec * factor,
            self.traffic.writes_per_sec * factor,
        );
        scaled
    }
}

/// The three read-traffic bands of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficBand {
    /// Fewer than 5e4 LLC reads per second.
    Low,
    /// Between 5e4 and 8e6 LLC reads per second.
    Mid,
    /// More than 8e6 LLC reads per second.
    High,
}

impl TrafficBand {
    /// All bands in ascending traffic order.
    pub const ALL: [Self; 3] = [Self::Low, Self::Mid, Self::High];

    /// Classifies a read rate.
    #[must_use]
    pub fn of(reads_per_sec: f64) -> Self {
        if reads_per_sec < 5e4 {
            Self::Low
        } else if reads_per_sec <= 8e6 {
            Self::Mid
        } else {
            Self::High
        }
    }

    /// Human-readable band boundaries as printed in Table II.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Low => "<5e4",
            Self::Mid => "5e4..8e6",
            Self::High => ">8e6",
        }
    }
}

impl fmt::Display for TrafficBand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_classification() {
        assert_eq!(TrafficBand::of(1e3), TrafficBand::Low);
        assert_eq!(TrafficBand::of(4.9e4), TrafficBand::Low);
        assert_eq!(TrafficBand::of(5e4), TrafficBand::Mid);
        assert_eq!(TrafficBand::of(8e6), TrafficBand::Mid);
        assert_eq!(TrafficBand::of(8.1e6), TrafficBand::High);
    }

    #[test]
    fn scaled_multiplies_both_rates() {
        let b = crate::suite::benchmark("namd").unwrap();
        let s = b.scaled(2.0);
        assert!((s.traffic.reads_per_sec - 2.0 * b.traffic.reads_per_sec).abs() < 1e-6);
        assert!((s.traffic.writes_per_sec - 2.0 * b.traffic.writes_per_sec).abs() < 1e-6);
        assert_eq!(s.name, b.name);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn scaled_rejects_zero() {
        let _ = crate::suite::benchmark("namd").unwrap().scaled(0.0);
    }

    #[test]
    fn labels() {
        assert_eq!(TrafficBand::Low.to_string(), "<5e4");
        assert_eq!(Suite::FpRate.to_string(), "SPECrate2017_fp");
    }
}
