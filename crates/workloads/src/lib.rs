//! SPEC CPU2017-like workloads: calibrated LLC traffic profiles and
//! synthetic address-stream generators.
//!
//! The paper drives its design-space exploration with the LLC read/write
//! accesses-per-second of the full SPECrate CPU2017 suite, measured with
//! Sniper on the Table I CPU. SPEC binaries and reference inputs are
//! licensed artifacts we cannot ship, so this crate substitutes two
//! coupled models (see `DESIGN.md` section 3):
//!
//! 1. a **calibrated traffic table** ([`spec2017`]): per-benchmark LLC
//!    read/write rates landing in the bands the paper reports (povray
//!    below 1e4 reads/s at the quiet end; mcf above 1e8 with the lowest
//!    write share; lbm write-heavy; namd as the Fig. 1 reference), and
//! 2. a **synthetic address-stream generator** ([`AccessGenerator`])
//!    per benchmark, whose working-set and locality parameters
//!    reproduce the same traffic class when simulated through
//!    [`coldtall_cachesim`] ([`simulate_traffic`]).
//!
//! # Examples
//!
//! ```
//! use coldtall_workloads::{benchmark, spec2017};
//!
//! let suite = spec2017();
//! assert_eq!(suite.len(), 23);
//! let povray = benchmark("povray").unwrap();
//! assert!(povray.traffic.reads_per_sec < 1e4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod accelerator;
mod generator;
mod profile;
mod simulate;
mod suite;
mod windows;

pub use accelerator::{accelerator_profile, accelerator_profiles};
pub use generator::{AccessGenerator, GeneratorParams};
pub use profile::{Benchmark, Suite, TrafficBand};
pub use simulate::simulate_traffic;
pub use suite::{benchmark, spec2017};
pub use windows::windowed_traffic;
