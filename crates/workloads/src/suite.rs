//! The SPECrate CPU2017 profile table.
//!
//! Traffic values are calibrated stand-ins for the paper's Sniper
//! measurements (see `DESIGN.md` section 3). The anchors the paper
//! states are respected: `povray` is the quietest workload (below 1e4
//! LLC reads/s), `mcf` the most read-intensive (above 1e8/s) with the
//! lowest write share of the high-traffic group, `lbm` is write-heavy,
//! and `namd` — the Fig. 1/Fig. 4 reference — sits in the
//! several-million-reads band where cryogenic SRAM wins roughly 3x
//! including cooling while cryogenic eDRAM does not pay off.

use std::sync::OnceLock;

use coldtall_cachesim::LlcTraffic;

use crate::generator::GeneratorParams;
use crate::profile::{Benchmark, Suite};

#[allow(clippy::too_many_arguments)]
fn bench(
    name: &'static str,
    suite: Suite,
    reads: f64,
    writes: f64,
    ws_bytes: u64,
    hot_probability: f64,
    ipc: f64,
) -> Benchmark {
    let write_fraction = (writes / (reads + writes)).clamp(0.0, 0.95);
    // The hot set is what stays resident in the private caches: cap it
    // at 256 KiB in absolute terms so the streaming giants do not carry
    // a multi-megabyte "hot" region that thrashes the hierarchy.
    let hot_fraction = (256.0 * 1024.0 / ws_bytes as f64).min(0.05);
    Benchmark {
        name,
        suite,
        traffic: LlcTraffic::new(reads, writes),
        generator: GeneratorParams {
            working_set_bytes: ws_bytes,
            hot_fraction,
            hot_probability,
            write_fraction,
            sequential_run: 16,
            instructions_per_access: 4.0,
            shared_fraction: 0.0,
        },
        ipc,
    }
}

fn build_suite() -> Vec<Benchmark> {
    use Suite::{FpRate, IntRate};
    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * 1024;
    vec![
        // Low-traffic band (< 5e4 LLC reads/s).
        bench("povray", FpRate, 3.0e3, 8.0e2, 256 * KIB, 0.995, 2.2),
        bench("leela", IntRate, 2.0e4, 7.0e3, 512 * KIB, 0.99, 1.6),
        bench("exchange2", IntRate, 3.5e4, 9.0e3, MIB, 0.99, 2.4),
        // Mid-traffic band (5e4 ..= 8e6).
        bench("deepsjeng", IntRate, 8.0e4, 3.0e4, 2 * MIB, 0.98, 1.8),
        bench("perlbench", IntRate, 1.5e5, 6.0e4, 4 * MIB, 0.97, 1.9),
        bench("nab", FpRate, 3.0e5, 9.0e4, 4 * MIB, 0.96, 2.0),
        bench("imagick", FpRate, 6.0e5, 1.5e5, 8 * MIB, 0.95, 2.3),
        bench("x264", IntRate, 1.2e6, 5.0e5, 8 * MIB, 0.93, 2.1),
        bench("xalancbmk", IntRate, 2.2e6, 6.0e5, 12 * MIB, 0.90, 1.5),
        bench("blender", FpRate, 3.5e6, 1.2e6, 16 * MIB, 0.88, 1.7),
        bench("parest", FpRate, 5.0e6, 1.5e6, 24 * MIB, 0.85, 1.4),
        bench("namd", FpRate, 6.0e6, 2.0e6, 32 * MIB, 0.85, 2.0),
        bench("cam4", FpRate, 7.0e6, 2.5e6, 32 * MIB, 0.83, 1.3),
        // High-traffic band (> 8e6).
        bench("wrf", FpRate, 9.0e6, 3.0e6, 48 * MIB, 0.80, 1.2),
        bench("gcc", IntRate, 1.8e7, 7.0e6, 64 * MIB, 0.75, 1.1),
        bench("xz", IntRate, 2.5e7, 1.1e7, 64 * MIB, 0.72, 0.9),
        bench("roms", FpRate, 3.0e7, 1.2e7, 96 * MIB, 0.70, 1.0),
        bench("cactuBSSN", FpRate, 4.0e7, 1.6e7, 128 * MIB, 0.65, 0.9),
        bench("omnetpp", IntRate, 5.0e7, 2.0e7, 128 * MIB, 0.60, 0.7),
        bench("bwaves", FpRate, 8.0e7, 3.0e7, 192 * MIB, 0.55, 0.8),
        bench("fotonik3d", FpRate, 1.5e8, 6.0e7, 256 * MIB, 0.45, 0.6),
        // lbm: the write-heavy stencil (near-parity write share).
        bench("lbm", FpRate, 3.0e8, 2.0e8, 256 * MIB, 0.35, 0.6),
        // mcf: the most read-intensive workload, with the lowest write
        // share of the high-traffic group (Fig. 7's exception).
        bench("mcf", IntRate, 4.0e8, 2.0e6, 512 * MIB, 0.10, 0.4),
    ]
}

/// The full SPECrate CPU2017 profile suite (23 benchmarks).
#[must_use]
pub fn spec2017() -> &'static [Benchmark] {
    static SUITE: OnceLock<Vec<Benchmark>> = OnceLock::new();
    SUITE.get_or_init(build_suite)
}

/// Looks a benchmark up by name.
///
/// # Examples
///
/// ```
/// use coldtall_workloads::benchmark;
/// assert!(benchmark("mcf").is_some());
/// assert!(benchmark("doom").is_none());
/// ```
#[must_use]
pub fn benchmark(name: &str) -> Option<&'static Benchmark> {
    spec2017().iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::TrafficBand;

    #[test]
    fn suite_has_23_unique_benchmarks() {
        let suite = spec2017();
        assert_eq!(suite.len(), 23);
        let mut names: Vec<_> = suite.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 23);
    }

    #[test]
    fn paper_traffic_anchors() {
        let povray = benchmark("povray").unwrap();
        assert!(povray.traffic.reads_per_sec < 1e4, "povray is the quietest");
        let mcf = benchmark("mcf").unwrap();
        assert!(mcf.traffic.reads_per_sec > 1e8, "mcf is the busiest");
        // Every benchmark sits between them.
        for b in spec2017() {
            assert!(b.traffic.reads_per_sec >= povray.traffic.reads_per_sec);
            assert!(b.traffic.reads_per_sec <= mcf.traffic.reads_per_sec);
        }
    }

    #[test]
    fn mcf_has_lowest_write_share_of_high_band() {
        let mcf = benchmark("mcf").unwrap();
        for b in spec2017() {
            if b.name != "mcf" && b.traffic_band() == TrafficBand::High {
                assert!(
                    b.traffic.write_fraction() > mcf.traffic.write_fraction(),
                    "{} should write more than mcf",
                    b.name
                );
            }
        }
    }

    #[test]
    fn lbm_is_the_write_heaviest() {
        let lbm = benchmark("lbm").unwrap();
        for b in spec2017() {
            if b.name != "lbm" {
                assert!(b.traffic.writes_per_sec <= lbm.traffic.writes_per_sec);
            }
        }
    }

    #[test]
    fn all_bands_are_populated() {
        for band in TrafficBand::ALL {
            assert!(
                spec2017().iter().any(|b| b.traffic_band() == band),
                "band {band} is empty"
            );
        }
    }

    #[test]
    fn generator_params_are_valid_and_track_traffic() {
        for b in spec2017() {
            b.generator.validate();
            // Quiet benchmarks stay cache-resident; busy ones stream.
            if b.traffic.reads_per_sec < 1e4 {
                assert!(b.generator.hot_probability > 0.99);
            }
            if b.traffic.reads_per_sec > 1e8 {
                assert!(b.generator.working_set_bytes > 64 * 1024 * 1024);
            }
        }
    }

    #[test]
    fn working_sets_grow_with_traffic() {
        let suite = spec2017();
        for pair in suite.windows(2) {
            assert!(
                pair[0].traffic.reads_per_sec <= pair[1].traffic.reads_per_sec,
                "suite table must be sorted by read traffic"
            );
            assert!(pair[0].generator.working_set_bytes <= pair[1].generator.working_set_bytes);
        }
    }
}
