//! Windowed traffic extraction: time-varying LLC traffic from a
//! simulated run.
//!
//! Steady-state rates hide phase behaviour; this module slices a
//! benchmark's simulated execution into equal windows and reports the
//! LLC traffic of each, producing the phased input the dynamic
//! temperature scheduler consumes.

use coldtall_cachesim::{CpuConfig, Hierarchy, LlcTraffic};
use coldtall_units::Seconds;

use crate::generator::AccessGenerator;
use crate::profile::Benchmark;

/// Simulates `benchmark` and reports per-window LLC traffic.
///
/// The run is split into `windows` equal slices of
/// `accesses_per_core_per_window` accesses each (after a warm-up of one
/// window); each slice's LLC counts are extrapolated to rates using the
/// benchmark's IPC, exactly as [`crate::simulate_traffic`] does for the
/// whole run.
///
/// # Panics
///
/// Panics if `windows` or `accesses_per_core_per_window` is zero.
#[must_use]
pub fn windowed_traffic(
    benchmark: &Benchmark,
    config: CpuConfig,
    windows: usize,
    accesses_per_core_per_window: u64,
    seed: u64,
) -> Vec<LlcTraffic> {
    assert!(windows > 0, "need at least one window");
    assert!(
        accesses_per_core_per_window > 0,
        "windows must contain accesses"
    );
    let mut hierarchy = Hierarchy::new(config);
    let mut generators: Vec<_> = (0..config.cores)
        .map(|core| AccessGenerator::new(benchmark.generator, core, seed))
        .collect();

    let instructions_per_core =
        accesses_per_core_per_window as f64 * benchmark.generator.instructions_per_access;
    let window_time =
        Seconds::new(instructions_per_core / benchmark.ipc / config.frequency.get());

    let mut run_window = |hierarchy: &mut Hierarchy| {
        for _ in 0..accesses_per_core_per_window {
            for generator in &mut generators {
                hierarchy.access(generator.next().expect("generators are infinite"));
            }
        }
    };

    // Warm-up window, not reported.
    run_window(&mut hierarchy);

    let mut out = Vec::with_capacity(windows);
    for _ in 0..windows {
        hierarchy.reset_stats();
        run_window(&mut hierarchy);
        out.push(LlcTraffic::from_simulation(&hierarchy, window_time));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::benchmark;

    #[test]
    fn produces_the_requested_window_count() {
        let config = CpuConfig::skylake_desktop();
        let windows = windowed_traffic(benchmark("x264").unwrap(), config, 4, 2_000, 1);
        assert_eq!(windows.len(), 4);
        for w in &windows {
            assert!(w.reads_per_sec.is_finite());
        }
    }

    #[test]
    fn steady_benchmarks_have_stable_windows() {
        let config = CpuConfig::skylake_desktop();
        let windows = windowed_traffic(benchmark("gcc").unwrap(), config, 4, 4_000, 2);
        let rates: Vec<f64> = windows.iter().map(|w| w.reads_per_sec).collect();
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        for r in &rates {
            assert!(
                (r - mean).abs() / mean < 0.5,
                "window rate {r} strays from mean {mean}"
            );
        }
    }

    #[test]
    fn quiet_benchmarks_stay_quiet_per_window() {
        let config = CpuConfig::skylake_desktop();
        let quiet = windowed_traffic(benchmark("povray").unwrap(), config, 2, 4_000, 3);
        let busy = windowed_traffic(benchmark("mcf").unwrap(), config, 2, 4_000, 3);
        assert!(quiet[0].reads_per_sec < busy[0].reads_per_sec / 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn zero_windows_rejected() {
        let config = CpuConfig::skylake_desktop();
        let _ = windowed_traffic(benchmark("gcc").unwrap(), config, 0, 100, 0);
    }
}
