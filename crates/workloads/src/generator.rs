//! Synthetic address-stream generation.

use coldtall_cachesim::MemoryAccess;
use coldtall_rng::SmallRng;

/// Parameters of a synthetic memory-reference stream.
///
/// The generator models the two first-order locality behaviours that
/// determine LLC traffic: a *hot set* that mostly hits in the private
/// caches, and streaming sweeps over the full working set that miss
/// beyond any cache smaller than it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorParams {
    /// Total working-set size in bytes.
    pub working_set_bytes: u64,
    /// Fraction of the working set forming the hot set.
    pub hot_fraction: f64,
    /// Probability that an access targets the hot set.
    pub hot_probability: f64,
    /// Fraction of data accesses that are stores.
    pub write_fraction: f64,
    /// Average sequential run length, in cache lines, of cold-region
    /// streaming.
    pub sequential_run: u32,
    /// Instructions executed per data access (controls the access rate
    /// when converting to wall-clock time).
    pub instructions_per_access: f64,
    /// Fraction of accesses that target a region shared by all cores
    /// (zero for SPECrate copies, which share nothing; used by
    /// coherence studies).
    pub shared_fraction: f64,
}

impl GeneratorParams {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range probabilities or a zero working set.
    pub fn validate(&self) {
        assert!(self.working_set_bytes >= 64, "working set below one line");
        assert!(
            (0.0..=1.0).contains(&self.hot_fraction),
            "hot fraction out of range"
        );
        assert!(
            (0.0..=1.0).contains(&self.hot_probability),
            "hot probability out of range"
        );
        assert!(
            (0.0..=1.0).contains(&self.write_fraction),
            "write fraction out of range"
        );
        assert!(self.sequential_run >= 1, "run length must be at least 1");
        assert!(
            self.instructions_per_access >= 1.0,
            "at least one instruction per access"
        );
        assert!(
            (0.0..=1.0).contains(&self.shared_fraction),
            "shared fraction out of range"
        );
    }
}

const LINE_BYTES: u64 = 64;

/// An infinite synthetic reference stream for one core.
///
/// # Examples
///
/// ```
/// use coldtall_workloads::{AccessGenerator, GeneratorParams};
///
/// let params = GeneratorParams {
///     working_set_bytes: 1 << 20,
///     hot_fraction: 0.1,
///     hot_probability: 0.9,
///     write_fraction: 0.3,
///     sequential_run: 8,
///     instructions_per_access: 4.0,
///     shared_fraction: 0.0,
/// };
/// let mut generator = AccessGenerator::new(params, 0, 42);
/// let first = generator.next().unwrap();
/// assert_eq!(first.core, 0);
/// ```
#[derive(Debug, Clone)]
pub struct AccessGenerator {
    params: GeneratorParams,
    core: u8,
    rng: SmallRng,
    cursor_line: u64,
    run_remaining: u32,
    base: u64,
}

impl AccessGenerator {
    /// Creates a stream for `core`, deterministically seeded.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (see
    /// [`GeneratorParams::validate`]).
    #[must_use]
    pub fn new(params: GeneratorParams, core: u8, seed: u64) -> Self {
        params.validate();
        // SPECrate runs one copy per core: give each core a disjoint
        // address-space slice so copies do not share data.
        let base = u64::from(core) << 40;
        Self {
            params,
            core,
            rng: SmallRng::seed_from_u64(seed ^ (u64::from(core) << 32)),
            cursor_line: 0,
            run_remaining: 0,
            base,
        }
    }

    fn lines(&self) -> u64 {
        (self.params.working_set_bytes / LINE_BYTES).max(1)
    }

    fn hot_lines(&self) -> u64 {
        ((self.lines() as f64 * self.params.hot_fraction) as u64).max(1)
    }

    fn next_line(&mut self) -> u64 {
        if self.rng.gen_f64() < self.params.hot_probability {
            // Hot-set access: uniform within the hot region.
            self.rng.gen_range(0..self.hot_lines())
        } else {
            // Cold streaming: sequential runs over the full working set.
            if self.run_remaining == 0 {
                self.cursor_line = self.rng.gen_range(0..self.lines());
                self.run_remaining = self.params.sequential_run;
            }
            self.run_remaining -= 1;
            let line = self.cursor_line;
            self.cursor_line = (self.cursor_line + 1) % self.lines();
            line
        }
    }
}

impl Iterator for AccessGenerator {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        // Shared-region accesses use a core-independent slice so all
        // cores contend on the same lines.
        const SHARED_BASE: u64 = 0xFF << 40;
        let address = if self.params.shared_fraction > 0.0
            && self.rng.gen_f64() < self.params.shared_fraction
        {
            SHARED_BASE + (self.next_line() % 4096) * LINE_BYTES
        } else {
            self.base + self.next_line() * LINE_BYTES
        };
        let access = if self.rng.gen_f64() < self.params.write_fraction {
            MemoryAccess::data_write(self.core, address)
        } else {
            MemoryAccess::data_read(self.core, address)
        };
        Some(access)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(ws: u64) -> GeneratorParams {
        GeneratorParams {
            working_set_bytes: ws,
            hot_fraction: 0.1,
            hot_probability: 0.8,
            write_fraction: 0.25,
            sequential_run: 8,
            instructions_per_access: 4.0,
            shared_fraction: 0.0,
        }
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let a: Vec<_> = AccessGenerator::new(params(1 << 20), 0, 7).take(100).collect();
        let b: Vec<_> = AccessGenerator::new(params(1 << 20), 0, 7).take(100).collect();
        let c: Vec<_> = AccessGenerator::new(params(1 << 20), 0, 8).take(100).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn addresses_stay_within_working_set_slice() {
        let ws = 1 << 20;
        for access in AccessGenerator::new(params(ws), 3, 1).take(10_000) {
            let offset = access.address - (3u64 << 40);
            assert!(offset < ws, "address escaped the working set");
            assert_eq!(access.address % 64, 0, "addresses are line-aligned");
        }
    }

    #[test]
    fn write_fraction_is_respected() {
        let writes = AccessGenerator::new(params(1 << 20), 0, 3)
            .take(20_000)
            .filter(|a| a.kind.is_write())
            .count();
        let frac = writes as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "write fraction = {frac}");
    }

    #[test]
    fn cores_use_disjoint_slices() {
        let a = AccessGenerator::new(params(1 << 20), 0, 1).next().unwrap();
        let b = AccessGenerator::new(params(1 << 20), 1, 1).next().unwrap();
        assert_ne!(a.address >> 40, b.address >> 40);
    }

    #[test]
    #[should_panic(expected = "hot probability out of range")]
    fn invalid_probability_rejected() {
        let mut p = params(1 << 20);
        p.hot_probability = 1.5;
        let _ = AccessGenerator::new(p, 0, 0);
    }
}
