//! Driving the cache simulator with synthetic benchmark streams.

use coldtall_cachesim::{CpuConfig, Hierarchy, LlcTraffic};
use coldtall_units::Seconds;

use crate::generator::AccessGenerator;
use crate::profile::Benchmark;

/// Simulates `benchmark` as a SPECrate run — one synthetic copy per
/// core — through the cache hierarchy and extrapolates LLC traffic to
/// continuous operation.
///
/// `accesses_per_core` trades accuracy for runtime; a few hundred
/// thousand accesses per core reaches steady state for the working sets
/// in the suite. The conversion to wall-clock time follows the paper's
/// methodology: each core retires `instructions_per_access` instructions
/// per data access at the benchmark's IPC and the configured clock.
///
/// # Panics
///
/// Panics if `accesses_per_core` is zero.
#[must_use]
pub fn simulate_traffic(
    benchmark: &Benchmark,
    config: CpuConfig,
    accesses_per_core: u64,
    seed: u64,
) -> LlcTraffic {
    assert!(accesses_per_core > 0, "need at least one access per core");
    let mut hierarchy = Hierarchy::new(config);
    let mut generators: Vec<_> = (0..config.cores)
        .map(|core| AccessGenerator::new(benchmark.generator, core, seed))
        .collect();

    // Deterministic coverage warm-up: sweep each core's working set once
    // (capped for the streaming giants, which miss regardless) so that
    // cache-resident workloads reach their steady quiet state instead of
    // reporting compulsory-miss transients.
    const WARMUP_SWEEP_LINE_CAP: u64 = 131_072; // 8 MiB of lines
    let ws_lines = (benchmark.generator.working_set_bytes / 64).max(1);
    let sweep_lines = ws_lines.min(WARMUP_SWEEP_LINE_CAP);
    for core in 0..config.cores {
        let base = u64::from(core) << 40;
        for line in 0..sweep_lines {
            hierarchy.access(coldtall_cachesim::MemoryAccess::data_read(
                core,
                base + line * 64,
            ));
        }
    }

    // Random warm-up continues locality convergence, then measurement.
    let warmup = accesses_per_core / 2;
    for step in 0..(warmup + accesses_per_core) {
        if step == warmup {
            hierarchy.reset_stats();
        }
        for generator in &mut generators {
            let access = generator.next().expect("generators are infinite");
            hierarchy.access(access);
        }
    }
    let instructions_per_core =
        accesses_per_core as f64 * benchmark.generator.instructions_per_access;
    let cycles = instructions_per_core / benchmark.ipc;
    let execution_time = Seconds::new(cycles / config.frequency.get());
    LlcTraffic::from_simulation(&hierarchy, execution_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::benchmark;

    #[test]
    fn quiet_and_busy_benchmarks_order_correctly() {
        let config = CpuConfig::skylake_desktop();
        let quiet = simulate_traffic(benchmark("povray").unwrap(), config, 40_000, 1);
        let busy = simulate_traffic(benchmark("mcf").unwrap(), config, 40_000, 1);
        assert!(
            busy.reads_per_sec > 20.0 * quiet.reads_per_sec,
            "mcf ({:.3e}/s) must dwarf povray ({:.3e}/s)",
            busy.reads_per_sec,
            quiet.reads_per_sec
        );
    }

    #[test]
    fn write_heavy_benchmark_produces_llc_writes() {
        let config = CpuConfig::skylake_desktop();
        let lbm = simulate_traffic(benchmark("lbm").unwrap(), config, 40_000, 2);
        assert!(lbm.writes_per_sec > 0.0);
        assert!(lbm.write_fraction() > 0.15, "lbm writes = {}", lbm.write_fraction());
    }

    #[test]
    fn simulation_is_deterministic() {
        let config = CpuConfig::skylake_desktop();
        let a = simulate_traffic(benchmark("gcc").unwrap(), config, 10_000, 3);
        let b = simulate_traffic(benchmark("gcc").unwrap(), config, 10_000, 3);
        assert_eq!(a, b);
    }
}
