//! Std-only scoped worker pool for coldtall's parallel sweeps.
//!
//! The build environment is offline, so the workspace cannot pull in
//! `rayon`; this crate provides the small slice of it the explorer
//! needs, on `std::thread::scope` alone:
//!
//! * [`parallel_map`] — map an index range over all available cores,
//!   preserving order deterministically by writing each result into a
//!   pre-sized slot,
//! * an atomic work-stealing index, so uneven item costs (a PCM
//!   characterization is much slower than a cached SRAM lookup) never
//!   leave a core idle while work remains,
//! * automatic sequential fallback on 1-CPU machines, for trivially
//!   small inputs, and inside an already-parallel region (nested
//!   `parallel_map` calls run inline rather than oversubscribing),
//! * telemetry into the global `coldtall-obs` registry: a
//!   deterministic `pool.tasks` counter (items submitted, inline or
//!   not), `pool.spinups`/`pool.inline`/`pool.threads` gauges, and
//!   per-worker `pool.worker.busy`/`pool.worker.idle` time histograms.
//!
//! Determinism: `parallel_map(n, f)` returns exactly
//! `(0..n).map(f).collect()` whenever `f(i)` depends only on `i` — the
//! scheduling order varies between runs, the output order never does.
//!
//! The pool itself is key-agnostic: it schedules by index. Sweep job
//! claiming is keyed one layer up, in `coldtall-core`'s execution
//! plans, where each characterization job carries a canonical
//! `DesignPointKey` — duplicates are deduplicated *before* the plan
//! reaches the pool, so two workers never race to characterize the
//! same design point.
//!
//! # Examples
//!
//! ```
//! let squares = coldtall_par::parallel_map(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Instant;

use coldtall_obs::{Counter, Gauge, Histogram};

/// Items-per-thread threshold below which the scheduling overhead is
/// not worth paying and the map runs inline.
const MIN_ITEMS_FOR_PARALLEL: usize = 2;

/// Explicit thread-count override (0 = not set; see [`set_max_threads`]).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Parallel regions currently executing (inline or pooled). Drained by
/// [`quiesce`] on daemon shutdown.
static ACTIVE_REGIONS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True while this thread is executing inside a pool worker; nested
    /// [`parallel_map`] calls then run sequentially instead of spawning
    /// a second tier of threads.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Handles into the global metrics registry, resolved once.
///
/// Discipline (`DESIGN.md` § Observability): `pool.tasks` is a
/// *counter* — it advances by `n` per [`parallel_map`] call whether the
/// region runs inline or on worker threads, so its value is
/// deterministic under any thread count. Everything scheduling-
/// dependent (spin-ups, inline fallbacks, thread count, busy/idle
/// time) is a gauge or histogram.
struct PoolMetrics {
    /// Work items submitted through the pool (inline or pooled).
    tasks: Arc<Counter>,
    /// Parallel regions that spawned worker threads.
    spinups: Arc<Gauge>,
    /// Regions that fell back to the inline sequential path.
    inline: Arc<Gauge>,
    /// Worker threads used by the most recent pooled region.
    threads: Arc<Gauge>,
    /// Per-worker time spent inside `f` (one sample per worker).
    busy: Arc<Histogram>,
    /// Per-worker time spent claiming/waiting (lifetime minus busy).
    idle: Arc<Histogram>,
}

fn metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = coldtall_obs::global();
        PoolMetrics {
            tasks: registry.counter("pool.tasks"),
            spinups: registry.gauge("pool.spinups"),
            inline: registry.gauge("pool.inline"),
            threads: registry.gauge("pool.threads"),
            busy: registry.span("pool.worker.busy"),
            idle: registry.span("pool.worker.idle"),
        }
    })
}

fn detected_parallelism() -> usize {
    static DETECTED: OnceLock<usize> = OnceLock::new();
    *DETECTED.get_or_init(|| match std::env::var("COLDTALL_THREADS") {
        Ok(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => n,
            // A malformed override must not be silently swallowed: the
            // user asked for a specific thread count and is getting
            // auto-detection instead. Warn once (OnceLock init runs at
            // most once per process) and fall back.
            _ => {
                warn_invalid_threads(&raw);
                auto_detected_parallelism()
            }
        },
        Err(std::env::VarError::NotUnicode(raw)) => {
            warn_invalid_threads(&raw.to_string_lossy());
            auto_detected_parallelism()
        }
        Err(std::env::VarError::NotPresent) => auto_detected_parallelism(),
    })
}

fn auto_detected_parallelism() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

// The workspace denies `print_stderr` in libraries, but this is the one
// place a library-level diagnostic is the correct tool: the fallback
// happens once per process, before any Registry exists, and redirected
// stdout artifacts must stay clean (stderr is the diagnostics channel).
#[allow(clippy::print_stderr)]
fn warn_invalid_threads(raw: &str) {
    eprintln!(
        "warning: ignoring invalid COLDTALL_THREADS={raw:?} (expected a positive \
         integer); auto-detecting the thread count instead"
    );
}

/// The number of worker threads a [`parallel_map`] call will use.
///
/// Resolution order: [`set_max_threads`] override, then the
/// `COLDTALL_THREADS` environment variable (read once), then
/// [`std::thread::available_parallelism`]. Always at least 1.
#[must_use]
pub fn max_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => detected_parallelism(),
        n => n,
    }
}

/// Overrides the worker-thread count process-wide (`0` restores
/// auto-detection). Used by the timing harness to compare a genuinely
/// sequential run (1 thread at every level) against a parallel one.
pub fn set_max_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Whether the calling thread is already inside a pool worker (nested
/// parallel regions run inline).
#[must_use]
pub fn in_worker() -> bool {
    IN_POOL.with(Cell::get)
}

/// Explicit pool configuration, decoupled from the process
/// environment.
///
/// The environment path (`detected_parallelism` behind
/// [`max_threads`]) latches `COLDTALL_THREADS` in a `OnceLock` — the
/// right behavior for a one-shot CLI run (the warning prints exactly
/// once), but a long-running daemon must be reconfigurable across
/// logical restarts. Hosts parse their own settings into a
/// `PoolConfig` (collecting warnings as data, not stderr writes) and
/// [`PoolConfig::apply`] them through the [`set_max_threads`]
/// override, which bypasses the latch entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolConfig {
    /// Worker-thread count; `None` restores auto-detection.
    pub threads: Option<usize>,
}

impl PoolConfig {
    /// Parses a raw thread-count string. Pure: reads nothing from the
    /// environment and prints nothing. Invalid values (zero, garbage)
    /// are ignored with a returned warning, mirroring the environment
    /// path's fallback semantics.
    #[must_use]
    pub fn parse(threads: Option<&str>) -> (Self, Vec<String>) {
        let mut warnings = Vec::new();
        let threads = match threads {
            None => None,
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) if n > 0 => Some(n),
                _ => {
                    warnings.push(format!(
                        "warning: ignoring invalid COLDTALL_THREADS={raw:?} (expected a \
                         positive integer); auto-detecting the thread count instead"
                    ));
                    None
                }
            },
        };
        (Self { threads }, warnings)
    }

    /// Reads `COLDTALL_THREADS` fresh from the environment (no
    /// latching) and returns the parsed config plus any warnings —
    /// unlike the [`max_threads`] default path, a second call observes
    /// a changed environment.
    #[must_use]
    pub fn from_env() -> (Self, Vec<String>) {
        let raw = std::env::var("COLDTALL_THREADS").ok();
        Self::parse(raw.as_deref())
    }

    /// Installs this config process-wide through the
    /// [`set_max_threads`] override (`None` restores auto-detection).
    pub fn apply(&self) {
        set_max_threads(self.threads.unwrap_or(0));
    }
}

/// Parallel regions currently executing, inline fallbacks included. A
/// region is active from [`parallel_map`] entry until its results are
/// collected, so a zero reading with no new callers means the pool is
/// quiet.
#[must_use]
pub fn active_regions() -> usize {
    ACTIVE_REGIONS.load(Ordering::Acquire)
}

/// Waits until no parallel region is executing, polling for at most
/// `timeout`. Returns `true` on a quiet pool, `false` on timeout.
///
/// This is the daemon's shutdown drain: after the accept loop stops
/// admitting requests, `quiesce` confirms in-flight sweeps have left
/// the pool before the process exits. It does not *prevent* new
/// regions — the caller is responsible for stopping admission first.
pub fn quiesce(timeout: std::time::Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while active_regions() > 0 {
        if Instant::now() >= deadline {
            return false;
        }
        thread::sleep(std::time::Duration::from_millis(1));
    }
    true
}

/// Panic-safe active-region accounting: decrements on drop, so a
/// panicking worker region still leaves the counter balanced.
struct RegionGuard;

impl RegionGuard {
    fn enter() -> Self {
        ACTIVE_REGIONS.fetch_add(1, Ordering::AcqRel);
        Self
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        ACTIVE_REGIONS.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Maps `f` over `0..n` across all available cores, returning results
/// in index order.
///
/// Work is distributed by an atomic stealing index (each worker claims
/// the next unclaimed item), so heterogeneous item costs balance
/// automatically; each result is written into its own pre-sized slot,
/// so the output order is deterministic regardless of scheduling.
/// Falls back to an inline sequential map when `n` is small, only one
/// thread is available, or the caller is itself a pool worker.
///
/// # Panics
///
/// Propagates the first panic raised by `f` once all workers have
/// stopped (via [`std::thread::scope`]).
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    let _region = RegionGuard::enter();
    let m = metrics();
    // Counted up-front and identically on every path, so `pool.tasks`
    // stays deterministic across thread counts.
    m.tasks.add(n as u64);
    let threads = max_threads().min(n);
    if threads <= 1 || n < MIN_ITEMS_FOR_PARALLEL || in_worker() {
        m.inline.add(1);
        return (0..n).map(f).collect();
    }
    m.spinups.add(1);
    m.threads.set(threads as u64);

    let mut slots: Vec<OnceLock<T>> = Vec::new();
    slots.resize_with(n, OnceLock::new);
    let next = AtomicUsize::new(0);
    let (slots_ref, next_ref, f_ref) = (&slots, &next, &f);
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || {
                IN_POOL.with(|flag| flag.set(true));
                let born = Instant::now();
                let mut busy = std::time::Duration::ZERO;
                loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item_start = Instant::now();
                    let value = f_ref(i);
                    busy += item_start.elapsed();
                    assert!(
                        slots_ref[i].set(value).is_ok(),
                        "work item {i} claimed twice"
                    );
                }
                IN_POOL.with(|flag| flag.set(false));
                // One busy and one idle sample per worker per region:
                // utilization is busy / (busy + idle).
                let m = metrics();
                m.busy.record(duration_ns(busy));
                m.idle.record(duration_ns(born.elapsed().saturating_sub(busy)));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot filled by a worker"))
        .collect()
}

/// Saturating nanoseconds of a duration (a span longer than ~584 years
/// clamps rather than wraps).
#[allow(clippy::cast_possible_truncation)]
fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Maps `f` over a slice in parallel, preserving order (a shorthand for
/// [`parallel_map`] over indices).
pub fn parallel_map_slice<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send + Sync,
    F: Fn(&I) -> T + Sync,
{
    parallel_map(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    /// Serializes tests that mutate the process-wide thread override,
    /// so the default multi-threaded test runner cannot interleave
    /// their set/assert/restore sequences.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn matches_sequential_map() {
        let par = parallel_map(1000, |i| i * 3 + 1);
        let seq: Vec<_> = (0..1000).map(|i| i * 3 + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(parallel_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn slice_variant_preserves_order() {
        let words = ["cold", "or", "tall"];
        let lens = parallel_map_slice(&words, |w| w.len());
        assert_eq!(lens, vec![4, 2, 4]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let seen = Mutex::new(HashSet::new());
        let n = 500;
        let _ = parallel_map(n, |i| {
            assert!(seen.lock().unwrap().insert(i), "item {i} ran twice");
            i
        });
        assert_eq!(seen.lock().unwrap().len(), n);
    }

    #[test]
    fn nested_calls_run_inline() {
        let rows = parallel_map(4, |i| parallel_map(4, move |j| i * 10 + j));
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row, &vec![i * 10, i * 10 + 1, i * 10 + 2, i * 10 + 3]);
        }
        assert!(!in_worker(), "flag must reset after the region ends");
    }

    #[test]
    fn tasks_counter_advances_by_n_on_any_path() {
        // Other tests in this binary also feed the global counter, so
        // assert on the (monotone) delta only.
        let tasks = coldtall_obs::global().counter("pool.tasks");
        let before = tasks.get();
        let _ = parallel_map(10, |i| i);
        // Nested/inline regions count their items too.
        let _ = parallel_map(2, |_| parallel_map(3, |j| j));
        assert!(tasks.get() >= before + 10 + 2 + 2 * 3);
    }

    #[test]
    fn pool_config_parses_and_warns() {
        let (config, warnings) = PoolConfig::parse(Some("4"));
        assert_eq!(config.threads, Some(4));
        assert!(warnings.is_empty());

        let (config, warnings) = PoolConfig::parse(None);
        assert_eq!(config, PoolConfig::default());
        assert!(warnings.is_empty());

        for bad in ["0", "-2", "many"] {
            let (config, warnings) = PoolConfig::parse(Some(bad));
            assert_eq!(config.threads, None);
            assert_eq!(warnings.len(), 1);
            assert!(warnings[0].contains("COLDTALL_THREADS"));
            assert!(warnings[0].contains(bad));
        }
    }

    #[test]
    fn pool_config_apply_reconfigures_and_restores() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        PoolConfig { threads: Some(2) }.apply();
        assert_eq!(max_threads(), 2);
        // A second apply observes the new value — no once-latch.
        PoolConfig { threads: Some(5) }.apply();
        assert_eq!(max_threads(), 5);
        PoolConfig::default().apply();
        assert!(max_threads() >= 1);
    }

    #[test]
    fn active_regions_balance_even_across_panics() {
        let _ = parallel_map(8, |i| i);
        let caught = std::panic::catch_unwind(|| {
            let _ = parallel_map(4, |i| {
                assert!(i < 2, "forced worker panic");
                i
            });
        });
        assert!(caught.is_err());
        // Every region this test opened must close — the guard
        // releases on the panic path too. Other tests' transient
        // regions may be live at any sampling instant, so poll to
        // global quiescence instead of asserting an instantaneous
        // count; a leaked guard would pin the counter above zero and
        // time this out.
        assert!(
            quiesce(std::time::Duration::from_secs(10)),
            "pool failed to quiesce: a region guard leaked"
        );
    }

    #[test]
    fn thread_override_round_trips() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Relaxed check: the override store/load path, not detection.
        set_max_threads(3);
        assert_eq!(max_threads(), 3);
        set_max_threads(0);
        assert!(max_threads() >= 1);
    }
}
