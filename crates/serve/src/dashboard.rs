//! The static dashboard: HTML/SVG pages generated from the run
//! registry's warmed cache and the live metrics registry.
//!
//! `coldtall serve --render <dir>` replays the registry, runs the study
//! sweep and the default-constraint search from the warmed cache, and
//! writes four self-contained pages — no JavaScript, no external
//! assets, so the output can be dropped on any static file host:
//!
//! * `index.html` — status summary and links,
//! * `pareto.html` — power-vs-latency scatter with the Pareto frontier
//!   highlighted, plus the frontier table,
//! * `search.html` — branch-and-bound prune accounting,
//! * `latency.html` — request-span latency percentiles and the full
//!   metrics text dump.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use coldtall_core::{
    Constraints, Error, LlcEvaluation, Request, RequestHandler, ResponsePayload,
};
use coldtall_obs::Registry;

/// Escapes text for an HTML context.
fn html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Wraps a page body in the shared chrome.
fn page(title: &str, body: &str) -> String {
    format!(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>{title}</title><style>\
         body{{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:60rem;\
         padding:0 1rem;color:#1a1a2e}}\
         h1{{font-size:1.4rem}}table{{border-collapse:collapse;width:100%}}\
         th,td{{border:1px solid #ccd;padding:.3rem .6rem;text-align:right}}\
         th{{background:#eef}}td:first-child,th:first-child{{text-align:left}}\
         nav a{{margin-right:1rem}}pre{{background:#f4f4f8;padding:1rem;overflow-x:auto}}\
         svg{{background:#fbfbfe;border:1px solid #ccd}}\
         </style></head><body>\
         <nav><a href=\"index.html\">status</a><a href=\"pareto.html\">pareto</a>\
         <a href=\"search.html\">search</a><a href=\"latency.html\">latency</a></nav>\
         <h1>{title}</h1>\n{body}\n</body></html>\n",
        title = html(title),
    )
}

/// Renders the dashboard into `dir`, returning the written paths.
///
/// Runs the study sweep and the default-constraint search through
/// `handler` (warming from whatever cache state it holds), then lays
/// the results out as static pages.
///
/// # Errors
///
/// Returns directory-creation and file-write failures, and any typed
/// [`Error`] from the sweep or search wrapped as
/// [`io::ErrorKind::InvalidData`].
pub fn render_dashboard(
    dir: &Path,
    handler: &RequestHandler,
    metrics: &Registry,
) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    let wrap = |e: Error| io::Error::new(io::ErrorKind::InvalidData, e.to_string());
    let sweep = handler.handle(&Request::Sweep).map_err(wrap)?;
    let search = handler
        .handle(&Request::Search {
            tech: None,
            dies: None,
            constraints: Constraints::default(),
        })
        .map_err(wrap)?;
    let ResponsePayload::Sweep { rows, .. } = &sweep else {
        unreachable!("sweep returns a sweep payload");
    };
    let ResponsePayload::Search {
        region,
        outcome,
        plan_hash,
    } = &search
    else {
        unreachable!("search returns a search payload");
    };

    let mut written = Vec::new();
    for (name, contents) in [
        ("index.html", index_page(handler, rows.len(), *plan_hash)),
        ("pareto.html", pareto_page(rows, &outcome.frontier)),
        ("search.html", search_page(region, outcome)),
        ("latency.html", latency_page(metrics)),
    ] {
        let path = dir.join(name);
        fs::write(&path, contents)?;
        written.push(path);
    }
    Ok(written)
}

fn index_page(handler: &RequestHandler, sweep_rows: usize, plan_hash: u64) -> String {
    let status = handler.status();
    let mut body = String::new();
    let _ = write!(
        body,
        "<p>Study plan <code>{plan_hash:016x}</code> &mdash; {sweep_rows} sweep rows.</p>\
         <table><tr><th>metric</th><th>value</th></tr>"
    );
    for (name, value) in [
        ("cached characterizations", status.cached_characterizations as u64),
        ("cached geometries", status.cached_geometries as u64),
        ("cache hits", status.cache_hits),
        ("cache misses", status.cache_misses),
        ("cache rejected (admission cap)", status.cache_rejected),
        ("cache approx bytes", status.cache_approx_bytes),
        ("geometry solves", status.geometry_solves),
        ("requests served", status.requests_served),
    ] {
        let _ = write!(body, "<tr><td>{}</td><td>{value}</td></tr>", html(name));
    }
    body.push_str("</table>");
    page("coldtall serve — status", &body)
}

/// Scatter of wall power vs relative latency over serviceable sweep
/// rows, with the constrained Pareto frontier highlighted.
fn pareto_page(rows: &[LlcEvaluation], frontier: &[LlcEvaluation]) -> String {
    const W: f64 = 640.0;
    const H: f64 = 400.0;
    const M: f64 = 45.0;
    let serviceable: Vec<&LlcEvaluation> = rows
        .iter()
        .filter(|r| r.relative_latency.is_finite() && r.relative_power.is_finite())
        .collect();
    let bound = |f: fn(&LlcEvaluation) -> f64, init: (f64, f64)| {
        serviceable
            .iter()
            .fold(init, |(lo, hi), r| (lo.min(f(r)), hi.max(f(r))))
    };
    let (x_lo, x_hi) = bound(|r| r.relative_latency, (f64::INFINITY, f64::NEG_INFINITY));
    let (y_lo, y_hi) = bound(|r| r.relative_power, (f64::INFINITY, f64::NEG_INFINITY));
    let span = |lo: f64, hi: f64| if hi > lo { hi - lo } else { 1.0 };
    let sx = |v: f64| M + (v - x_lo) / span(x_lo, x_hi) * (W - 2.0 * M);
    let sy = |v: f64| H - M - (v - y_lo) / span(y_lo, y_hi) * (H - 2.0 * M);

    let mut svg = String::new();
    let _ = write!(
        svg,
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" \
         xmlns=\"http://www.w3.org/2000/svg\">\
         <line x1=\"{M}\" y1=\"{y0}\" x2=\"{x1}\" y2=\"{y0}\" stroke=\"#889\"/>\
         <line x1=\"{M}\" y1=\"{M}\" x2=\"{M}\" y2=\"{y0}\" stroke=\"#889\"/>\
         <text x=\"{xc}\" y=\"{yl}\" text-anchor=\"middle\" font-size=\"12\">\
         relative LLC latency (vs 350 K SRAM)</text>\
         <text x=\"12\" y=\"{ym}\" font-size=\"12\" \
         transform=\"rotate(-90 12 {ym})\" text-anchor=\"middle\">relative wall power</text>",
        y0 = H - M,
        x1 = W - M,
        xc = W / 2.0,
        yl = H - 8.0,
        ym = H / 2.0,
    );
    for row in &serviceable {
        let _ = write!(
            svg,
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"#9aa\" fill-opacity=\"0.6\">\
             <title>{} / {}</title></circle>",
            sx(row.relative_latency),
            sy(row.relative_power),
            html(&row.config_label),
            html(row.benchmark),
        );
    }
    for row in frontier {
        let _ = write!(
            svg,
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"4.5\" fill=\"#c22\">\
             <title>{} / {}</title></circle>",
            sx(row.relative_latency),
            sy(row.relative_power),
            html(&row.config_label),
            html(row.benchmark),
        );
    }
    svg.push_str("</svg>");

    let mut body = format!(
        "<p>{} serviceable rows of {}; {} frontier points (red).</p>{svg}\
         <h2>Frontier</h2><table><tr><th>configuration</th><th>benchmark</th>\
         <th>rel. latency</th><th>rel. power</th><th>footprint mm&sup2;</th>\
         <th>lifetime yr</th></tr>",
        serviceable.len(),
        rows.len(),
        frontier.len(),
    );
    for row in frontier {
        let _ = write!(
            body,
            "<tr><td>{}</td><td>{}</td><td>{:.4}</td><td>{:.4}</td>\
             <td>{:.2}</td><td>{:.1}</td></tr>",
            html(&row.config_label),
            html(row.benchmark),
            row.relative_latency,
            row.relative_power,
            row.footprint_mm2,
            row.lifetime_years,
        );
    }
    body.push_str("</table>");
    page("coldtall serve — Pareto frontier", &body)
}

fn search_page(region: &str, outcome: &coldtall_core::SearchOutcome) -> String {
    let stats = &outcome.stats;
    let mut body = format!(
        "<p>Region <code>{}</code> under the study's default constraints.</p>\
         <table><tr><th>stat</th><th>value</th></tr>",
        html(region)
    );
    for (name, value) in [
        ("grid rows total", stats.rows_total),
        ("points evaluated", stats.points_evaluated),
        ("points skipped", stats.points_skipped),
        ("&nbsp;&nbsp;skipped: provably infeasible", stats.skipped_infeasible),
        ("&nbsp;&nbsp;skipped: pruned by bound", stats.skipped_pruned),
        ("regions expanded", stats.regions_expanded),
        ("regions pruned", stats.regions_pruned),
        ("regions refined", stats.regions_refined),
        ("bounds computed", stats.bounds_computed),
    ] {
        let _ = write!(body, "<tr><td>{name}</td><td>{value}</td></tr>");
    }
    let _ = write!(
        body,
        "</table><p>{} pruned regions retained for bound auditing; \
         frontier holds {} rows.</p>",
        outcome.pruned.len(),
        outcome.frontier.len()
    );
    page("coldtall serve — search prune accounting", &body)
}

fn latency_page(metrics: &Registry) -> String {
    let mut body = String::from(
        "<table><tr><th>span</th><th>count</th><th>p50</th><th>p95</th>\
         <th>p99</th><th>max</th></tr>",
    );
    for name in ["serve.request", "characterize", "evaluate", "sweep"] {
        let hist = metrics.span(name);
        let us = |ns: u64| format!("{:.1} µs", ns as f64 / 1e3);
        let _ = write!(
            body,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            html(name),
            hist.count(),
            us(hist.quantile(0.50)),
            us(hist.quantile(0.95)),
            us(hist.quantile(0.99)),
            us(hist.max()),
        );
    }
    let _ = write!(
        body,
        "</table><h2>Full metrics</h2><pre>{}</pre>",
        html(&metrics.render_text())
    );
    page("coldtall serve — request latency", &body)
}

/// Quick structural sanity: every page is ASCII-clean HTML whose links
/// resolve within the directory. (Full rendering is covered by the
/// integration tests; this keeps the generator honest in isolation.)
#[cfg(test)]
mod tests {
    use super::*;
    use coldtall_core::Explorer;

    #[test]
    fn renders_all_four_pages() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("coldtall-dash-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let metrics = Registry::new();
        let handler = RequestHandler::new(Explorer::with_defaults(), &metrics, None);
        let written = render_dashboard(&dir, &handler, &metrics).unwrap();
        assert_eq!(written.len(), 4);
        for path in &written {
            let contents = fs::read_to_string(path).unwrap();
            assert!(contents.starts_with("<!DOCTYPE html>"), "{path:?}");
            assert!(contents.contains("</html>"), "{path:?}");
        }
        let pareto = fs::read_to_string(dir.join("pareto.html")).unwrap();
        assert!(pareto.contains("<svg"), "scatter plot missing");
        assert!(pareto.contains("frontier points"), "frontier count missing");
        let index = fs::read_to_string(dir.join("index.html")).unwrap();
        assert!(index.contains("cached characterizations"));

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn html_escaping_covers_the_metacharacters() {
        assert_eq!(html("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }
}
