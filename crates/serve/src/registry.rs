//! The persistent run registry: an append-only JSONL log of every
//! characterization the daemon computes, replayable at startup to warm
//! a fresh process's caches.
//!
//! One record per line. Floats are stored as the 16-hex-digit
//! [`f64::to_bits`] pattern, not decimal text, so a replayed value is
//! *bit-identical* to the one originally computed — the property the
//! round-trip tests pin. Records carry a schema version and the
//! [`ExecutionPlan::stable_hash`](coldtall_core::ExecutionPlan::stable_hash)
//! they were computed under; replay ignores records from other schema
//! versions, and dedup keys on `(plan, key)` so restarts never grow the
//! file with repeats.
//!
//! Only characterizations are logged. Evaluations derive from them
//! deterministically, so replaying the characterization cache is enough
//! to make a fresh daemon answer sweeps bit-identically without
//! re-solving any geometry.
//!
//! A corrupt or truncated line (a crash mid-append) is *skipped and
//! counted*, never fatal: the registry is a cache, and losing one
//! record costs a recomputation, not correctness.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use coldtall_array::{ArrayCharacterization, Organization};
use coldtall_core::{DesignPointKey, Explorer};
use coldtall_obs::json::{self, Value};
use coldtall_units::{Joules, Seconds, SquareMeters, Watts};

use crate::proto::escape;

/// The record schema this build writes and replays. Bump when the
/// field set changes; replay skips records from other versions.
///
/// v2 added the `backend` field: the registry-resolved backend per
/// design-point key, so the routing decision is persisted alongside
/// the characterization it produced.
pub const SCHEMA_VERSION: u32 = 2;

/// Counters from one registry replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Well-formed records imported into the cache.
    pub replayed: u64,
    /// Records whose `(plan, key)` was already seen earlier in the file.
    pub duplicates: u64,
    /// Corrupt, truncated, or wrong-schema lines skipped.
    pub skipped: u64,
}

/// Internal mutable state: the append handle and the dedup set.
struct Inner {
    writer: BufWriter<File>,
    /// `(plan_hash, canonical key)` pairs already on disk.
    seen: HashSet<(u64, String)>,
}

/// An append-only on-disk log of computed characterizations.
///
/// All methods take `&self`; appends serialize through an internal
/// mutex, so the registry can be shared across connection threads.
pub struct RunRegistry {
    path: PathBuf,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for RunRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunRegistry")
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

impl RunRegistry {
    /// Opens (creating if absent) the registry at `path` and scans any
    /// existing records into the dedup set so restarts append only
    /// genuinely new work.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be opened
    /// for appending. Unreadable *records* are not errors.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let mut seen = HashSet::new();
        if let Ok(file) = File::open(&path) {
            for line in BufReader::new(file).lines() {
                let Ok(line) = line else { break };
                if let Some(record) = parse_record(&line) {
                    seen.insert((record.plan, record.key.canonical().to_string()));
                }
            }
        }
        let writer = BufWriter::new(OpenOptions::new().create(true).append(true).open(&path)?);
        Ok(Self {
            path,
            inner: Mutex::new(Inner { writer, seen }),
        })
    }

    /// The file backing this registry.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records on disk (including those scanned at open).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry lock poisoned").seen.len()
    }

    /// Whether no records have been written or scanned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one characterization if its `(plan, key)` is not already
    /// on disk; flushes before returning so a crash after `record`
    /// never loses the line. Returns whether a record was written.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error from the append or flush.
    pub fn record(
        &self,
        plan_hash: u64,
        key: &DesignPointKey,
        backend: &str,
        value: &ArrayCharacterization,
    ) -> io::Result<bool> {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        let id = (plan_hash, key.canonical().to_string());
        if inner.seen.contains(&id) {
            return Ok(false);
        }
        let line = render_record(plan_hash, key, backend, value);
        inner.writer.write_all(line.as_bytes())?;
        inner.writer.write_all(b"\n")?;
        inner.writer.flush()?;
        inner.seen.insert(id);
        Ok(true)
    }

    /// Appends every cached characterization the explorer holds that is
    /// not yet on disk. Called after each completed request; returns
    /// how many new records landed.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error from an append.
    pub fn sync_from(&self, explorer: &Explorer, plan_hash: u64) -> io::Result<u64> {
        let mut appended = 0;
        for (key, value) in explorer.cached_entries() {
            // Every cache publish notes its routing; "unknown" is a
            // defensive fallback, not an expected value.
            let backend = explorer
                .resolved_backend(&key)
                .unwrap_or_else(|| "unknown".to_string());
            if self.record(plan_hash, &key, &backend, &value)? {
                appended += 1;
            }
        }
        Ok(appended)
    }

    /// Replays every well-formed record from this registry's file into
    /// the explorer's characterization cache.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file exists but cannot
    /// be read. A missing file replays zero records successfully.
    pub fn replay_into(&self, explorer: &Explorer) -> io::Result<ReplayStats> {
        replay_file(&self.path, explorer)
    }
}

/// Replays the registry file at `path` into `explorer`'s cache, without
/// opening it for writing. Corrupt lines are skipped and counted.
///
/// # Errors
///
/// Returns the underlying I/O error if the file exists but cannot be
/// read. A missing file is an empty registry, not an error.
pub fn replay_file(path: &Path, explorer: &Explorer) -> io::Result<ReplayStats> {
    let mut stats = ReplayStats::default();
    let file = match File::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(stats),
        Err(e) => return Err(e),
    };
    let mut seen: HashSet<(u64, String)> = HashSet::new();
    for line in BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let Some(record) = parse_record(&line) else {
            stats.skipped += 1;
            continue;
        };
        if !seen.insert((record.plan, record.key.canonical().to_string())) {
            stats.duplicates += 1;
            continue;
        }
        explorer.import_characterization(&record.key, record.value);
        explorer.note_resolved_backend(&record.key, &record.backend);
        stats.replayed += 1;
    }
    Ok(stats)
}

/// One decoded registry record.
struct Record {
    plan: u64,
    key: DesignPointKey,
    backend: String,
    value: ArrayCharacterization,
}

/// Renders one record line (no trailing newline). Floats go out as
/// their exact bit pattern in hex.
fn render_record(
    plan_hash: u64,
    key: &DesignPointKey,
    backend: &str,
    a: &ArrayCharacterization,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "{{\"schema\":{SCHEMA_VERSION},\"plan\":\"{plan_hash:016x}\",\"kind\":\"char\",\
         \"key\":\"{}\",\"backend\":\"{}\"",
        escape(key.canonical()),
        escape(backend)
    );
    let bits = |out: &mut String, name: &str, v: f64| {
        let _ = write!(out, ",\"{name}\":\"{:016x}\"", v.to_bits());
    };
    bits(&mut out, "read_latency", a.read_latency.get());
    bits(&mut out, "write_latency", a.write_latency.get());
    bits(&mut out, "read_energy", a.read_energy.get());
    bits(&mut out, "write_energy", a.write_energy.get());
    bits(&mut out, "leakage_power", a.leakage_power.get());
    bits(&mut out, "refresh_power", a.refresh_power.get());
    bits(&mut out, "refresh_busy_fraction", a.refresh_busy_fraction);
    match a.retention {
        Some(r) => bits(&mut out, "retention", r.get()),
        None => out.push_str(",\"retention\":null"),
    }
    bits(&mut out, "footprint", a.footprint.get());
    bits(&mut out, "total_silicon", a.total_silicon.get());
    bits(&mut out, "array_efficiency", a.array_efficiency);
    let _ = write!(
        out,
        ",\"org\":[{},{}],\"dies\":{}",
        a.organization.rows(),
        a.organization.cols(),
        a.dies
    );
    bits(&mut out, "transfer_bits", a.transfer_bits);
    bits(&mut out, "read_cycle", a.read_cycle_time.get());
    bits(&mut out, "write_cycle", a.write_cycle_time.get());
    out.push('}');
    out
}

/// Decodes one record line; `None` for anything malformed — bad JSON,
/// wrong schema, missing fields, bad hex, out-of-range geometry.
fn parse_record(line: &str) -> Option<Record> {
    let value = json::parse(line).ok()?;
    let Value::Object(fields) = &value else {
        return None;
    };
    if fields.get("schema").and_then(Value::as_f64) != Some(f64::from(SCHEMA_VERSION)) {
        return None;
    }
    if fields.get("kind") != Some(&Value::String("char".to_string())) {
        return None;
    }
    let plan = match fields.get("plan") {
        Some(Value::String(s)) if s.len() == 16 => u64::from_str_radix(s, 16).ok()?,
        _ => return None,
    };
    let key = match fields.get("key") {
        Some(Value::String(s)) if !s.is_empty() => DesignPointKey::from_canonical(s.clone()),
        _ => return None,
    };
    let backend = match fields.get("backend") {
        Some(Value::String(s)) if !s.is_empty() => s.clone(),
        _ => return None,
    };
    let bits = |name: &str| -> Option<f64> { f64_bits(fields.get(name)?) };
    let retention = match fields.get("retention") {
        Some(Value::Null) => None,
        Some(v) => Some(Seconds::new(f64_bits(v)?)),
        None => return None,
    };
    let (rows, cols) = match fields.get("org") {
        Some(Value::Array(dims)) if dims.len() == 2 => {
            let rows = subarray_dim(&dims[0])?;
            let cols = subarray_dim(&dims[1])?;
            (rows, cols)
        }
        _ => return None,
    };
    let dies = match fields.get("dies").and_then(Value::as_f64) {
        Some(n) if n.fract() == 0.0 && (1.0..=255.0).contains(&n) => {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            {
                n as u8
            }
        }
        _ => return None,
    };
    let value = ArrayCharacterization {
        read_latency: Seconds::new(bits("read_latency")?),
        write_latency: Seconds::new(bits("write_latency")?),
        read_energy: Joules::new(bits("read_energy")?),
        write_energy: Joules::new(bits("write_energy")?),
        leakage_power: Watts::new(bits("leakage_power")?),
        refresh_power: Watts::new(bits("refresh_power")?),
        refresh_busy_fraction: bits("refresh_busy_fraction")?,
        retention,
        footprint: SquareMeters::new(bits("footprint")?),
        total_silicon: SquareMeters::new(bits("total_silicon")?),
        array_efficiency: bits("array_efficiency")?,
        organization: Organization::new(rows, cols),
        dies,
        transfer_bits: bits("transfer_bits")?,
        read_cycle_time: Seconds::new(bits("read_cycle")?),
        write_cycle_time: Seconds::new(bits("write_cycle")?),
    };
    Some(Record {
        plan,
        key,
        backend,
        value,
    })
}

/// Decodes a 16-hex-digit bit-pattern string into the exact `f64`.
fn f64_bits(value: &Value) -> Option<f64> {
    match value {
        Value::String(s) if s.len() == 16 => {
            u64::from_str_radix(s, 16).ok().map(f64::from_bits)
        }
        _ => None,
    }
}

/// Validates a stored subarray dimension: [`Organization::new`] panics
/// on non-power-of-two geometry, so a corrupt record must be rejected
/// *here*, before reconstruction.
fn subarray_dim(value: &Value) -> Option<u32> {
    let n = value.as_f64()?;
    if !(n.is_finite() && n.fract() == 0.0 && (1.0..=f64::from(u32::MAX)).contains(&n)) {
        return None;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let dim = n as u32;
    dim.is_power_of_two().then_some(dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldtall_core::MemoryConfig;

    fn temp_path(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "coldtall-registry-{tag}-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn records_round_trip_bit_identically() {
        let explorer = Explorer::with_defaults();
        let config = MemoryConfig::edram_77k();
        let original = explorer.characterize(&config);
        let key = DesignPointKey::of_config(&config);

        let path = temp_path("roundtrip");
        let registry = RunRegistry::open(&path).unwrap();
        assert!(registry.record(7, &key, "cryomem", &original).unwrap());
        // Same (plan, key) again is a dedup no-op.
        assert!(!registry.record(7, &key, "cryomem", &original).unwrap());
        assert_eq!(registry.len(), 1);

        let fresh = Explorer::with_defaults();
        let stats = replay_file(&path, &fresh).unwrap();
        assert_eq!(
            stats,
            ReplayStats {
                replayed: 1,
                duplicates: 0,
                skipped: 0
            }
        );
        let cached = fresh.cached_entries();
        assert_eq!(cached.len(), 1);
        // Replay restores the routing record alongside the value.
        assert_eq!(fresh.resolved_backend(&key).as_deref(), Some("cryomem"));
        assert_eq!(cached[0].0.canonical(), key.canonical());
        assert_eq!(cached[0].0.stable_hash(), key.stable_hash());
        // Bit-identity, not approximate equality.
        assert_eq!(
            cached[0].1.read_latency.get().to_bits(),
            original.read_latency.get().to_bits()
        );
        assert_eq!(cached[0].1, original);

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_and_foreign_lines_are_skipped_not_fatal() {
        let explorer = Explorer::with_defaults();
        let config = MemoryConfig::sram_350k();
        let array = explorer.characterize(&config);
        let key = DesignPointKey::of_config(&config);

        let path = temp_path("corrupt");
        let good = render_record(1, &key, "cryomem", &array);
        let truncated = &good[..good.len() / 2];
        let wrong_schema = good.replacen("\"schema\":2", "\"schema\":99", 1);
        // A v1 record (no backend field) is foreign, not fatal.
        let v1_record = good
            .replacen("\"schema\":2", "\"schema\":1", 1)
            .replacen(",\"backend\":\"cryomem\"", "", 1);
        // Non-power-of-two geometry must be rejected before the
        // Organization constructor can panic on it.
        let bad_org = good.replacen("\"org\":[", "\"org\":[3,", 1);
        let contents = format!(
            "{good}\nnot json at all\n{truncated}\n{wrong_schema}\n{v1_record}\n{bad_org}\n{good}\n"
        );
        std::fs::write(&path, contents).unwrap();

        let fresh = Explorer::with_defaults();
        let stats = replay_file(&path, &fresh).unwrap();
        assert_eq!(stats.replayed, 1);
        assert_eq!(stats.duplicates, 1); // the repeated good line
        assert_eq!(stats.skipped, 5);
        assert_eq!(fresh.cached_entries().len(), 1);

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_scans_the_dedup_set_and_sync_appends_only_new_work() {
        let path = temp_path("reopen");
        let explorer = Explorer::with_defaults();
        let plan = 42;
        let _ = explorer.characterize(&MemoryConfig::sram_350k());
        {
            let registry = RunRegistry::open(&path).unwrap();
            assert_eq!(registry.sync_from(&explorer, plan).unwrap(), 1);
        }
        // A second process appends only what is genuinely new.
        let _ = explorer.characterize(&MemoryConfig::edram_77k());
        let registry = RunRegistry::open(&path).unwrap();
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.sync_from(&explorer, plan).unwrap(), 1);
        assert_eq!(registry.sync_from(&explorer, plan).unwrap(), 0);
        assert_eq!(registry.len(), 2);

        let stats = registry.replay_into(&Explorer::with_defaults()).unwrap();
        assert_eq!(stats.replayed, 2);
        assert_eq!(stats.skipped, 0);

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_replays_empty() {
        let path = temp_path("missing");
        let stats = replay_file(&path, &Explorer::with_defaults()).unwrap();
        assert_eq!(stats, ReplayStats::default());
    }

    #[test]
    fn retention_none_round_trips() {
        let explorer = Explorer::with_defaults();
        let config = MemoryConfig::sram_350k();
        let array = explorer.characterize(&config);
        assert!(array.retention.is_none(), "SRAM has no retention limit");
        let key = DesignPointKey::of_config(&config);
        let line = render_record(3, &key, "cryomem", &array);
        assert!(line.contains("\"retention\":null"));
        assert!(line.contains("\"backend\":\"cryomem\""));
        let record = parse_record(&line).expect("well-formed record");
        assert_eq!(record.value, array);
        assert_eq!(record.plan, 3);
        assert_eq!(record.backend, "cryomem");
    }
}
