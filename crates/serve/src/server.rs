//! The daemon: TCP + stdin frontends over one shared
//! [`RequestHandler`], with a drain-before-exit shutdown gate and
//! registry persistence after every completed request.
//!
//! Concurrency model (std only, no async runtime):
//!
//! - one *accept thread* polls a non-blocking [`TcpListener`] every few
//!   milliseconds, checking the shutdown flag between polls;
//! - one *connection thread* per client reads line-delimited requests
//!   with a short read timeout so it also observes shutdown promptly;
//! - the caller's thread (usually `main`) feeds stdin lines through the
//!   same [`Server::handle_line`] path, so a piped request and a TCP
//!   request take identical code.
//!
//! The shutdown gate is a `Mutex<GateState>` + condvar (a struct, not a
//! bare integer — the workspace denies `clippy::mutex_integer`). Every
//! request passes through it: admission refuses new work once draining
//! and bounds in-flight requests at `max_inflight`; shutdown flips the
//! flag, waits for the active count to reach zero, and only then
//! returns — so stdin EOF never strands a half-finished job or an
//! unsynced registry record.
//!
//! `std` cannot trap `SIGTERM` without external crates, so the
//! *graceful* shutdown trigger is stdin EOF (or an explicit
//! [`Server::shutdown`] call); orchestrators should close the daemon's
//! stdin rather than signal it.

use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use coldtall_core::{RequestHandler, SweepPlan};

use crate::proto;
use crate::registry::{ReplayStats, RunRegistry};

/// How the daemon should be stood up.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCP listen address (`127.0.0.1:0` for an ephemeral port), or
    /// `None` for a stdin-only daemon.
    pub listen: Option<String>,
    /// Run-registry file to replay at startup and append to, if any.
    pub registry: Option<PathBuf>,
    /// Maximum requests dispatching concurrently; further requests
    /// queue at the admission gate.
    pub max_inflight: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            listen: None,
            registry: None,
            max_inflight: 8,
        }
    }
}

/// The shutdown/admission gate's state, kept whole under one mutex.
#[derive(Debug, Default)]
struct GateState {
    /// Set once; no new request is admitted after.
    shutting_down: bool,
    /// Requests currently past admission and not yet finished.
    active: usize,
}

/// State shared by every frontend thread.
struct Shared {
    handler: RequestHandler,
    registry: Option<RunRegistry>,
    /// The study plan epoch registry records are keyed under.
    plan_hash: u64,
    max_inflight: usize,
    gate: Mutex<GateState>,
    gate_cv: Condvar,
}

impl Shared {
    fn draining(&self) -> bool {
        self.gate.lock().expect("gate lock poisoned").shutting_down
    }

    /// Admits one request: blocks while `max_inflight` are active,
    /// refuses (`false`) once draining.
    fn begin_request(&self) -> bool {
        let mut gate = self.gate.lock().expect("gate lock poisoned");
        loop {
            if gate.shutting_down {
                return false;
            }
            if gate.active < self.max_inflight {
                gate.active += 1;
                return true;
            }
            gate = self.gate_cv.wait(gate).expect("gate lock poisoned");
        }
    }

    fn end_request(&self) {
        let mut gate = self.gate.lock().expect("gate lock poisoned");
        gate.active = gate.active.saturating_sub(1);
        drop(gate);
        self.gate_cv.notify_all();
    }

    /// Handles one request line end to end: parse, admit, dispatch,
    /// persist, render. Always produces exactly one response line (no
    /// trailing newline).
    fn handle_line(&self, line: &str) -> String {
        let parsed = match proto::parse_request(line) {
            Ok(parsed) => parsed,
            Err(message) => return proto::render_parse_error(&message),
        };
        if !self.begin_request() {
            return proto::render_parse_error("server is shutting down");
        }
        // Panic-safe release of the admission slot.
        struct Slot<'a>(&'a Shared);
        impl Drop for Slot<'_> {
            fn drop(&mut self) {
                self.0.end_request();
            }
        }
        let _slot = Slot(self);
        let outcome = match parsed.deadline_ms {
            Some(ms) => self
                .handler
                .handle_with_deadline(&parsed.request, Some(Duration::from_millis(ms))),
            None => self.handler.handle(&parsed.request),
        };
        if outcome.is_ok() {
            if let Some(registry) = &self.registry {
                // A failed append must not fail the request: the answer
                // is already computed; persistence is best-effort and
                // will be retried by the next request's sync.
                let _ = registry.sync_from(self.handler.explorer(), self.plan_hash);
            }
        }
        proto::render_response(parsed.request.kind(), parsed.id.as_deref(), &outcome)
    }
}

/// A running daemon. Dropping it without [`Server::shutdown`] leaves
/// background threads to exit on their own polls once the process ends;
/// call `shutdown` for a clean drain.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: Option<SocketAddr>,
    replay: ReplayStats,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("replay", &self.replay)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Stands the daemon up: replays the registry (if any) into the
    /// handler's cache, binds and starts accepting on the listen
    /// address (if any), and returns ready to serve.
    ///
    /// # Errors
    ///
    /// Propagates registry-open, replay-read, and bind failures. A
    /// handler whose study plan cannot compile also errors (it could
    /// never serve a sweep).
    pub fn start(handler: RequestHandler, options: &ServeOptions) -> io::Result<Self> {
        let plan_hash = SweepPlan::study()
            .compile(handler.explorer().backends())
            .map_err(|e| io::Error::new(ErrorKind::InvalidInput, e.to_string()))?
            .stable_hash();
        let (registry, replay) = match &options.registry {
            Some(path) => {
                let registry = RunRegistry::open(path)?;
                let replay = registry.replay_into(handler.explorer())?;
                (Some(registry), replay)
            }
            None => (None, ReplayStats::default()),
        };
        let shared = Arc::new(Shared {
            handler,
            registry,
            plan_hash,
            max_inflight: options.max_inflight.max(1),
            gate: Mutex::new(GateState::default()),
            gate_cv: Condvar::new(),
        });
        let connections = Arc::new(Mutex::new(Vec::new()));
        let (local_addr, accept_thread) = match &options.listen {
            Some(addr) => {
                let listener = TcpListener::bind(addr)?;
                let local_addr = listener.local_addr()?;
                listener.set_nonblocking(true)?;
                let thread = spawn_accept_loop(listener, &shared, &connections);
                (Some(local_addr), Some(thread))
            }
            None => (None, None),
        };
        Ok(Self {
            shared,
            local_addr,
            replay,
            accept_thread: Mutex::new(accept_thread),
            connections,
        })
    }

    /// The bound TCP address, if listening.
    #[must_use]
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// What startup replay found in the registry.
    #[must_use]
    pub fn replay_stats(&self) -> ReplayStats {
        self.replay
    }

    /// The shared request handler (for status snapshots in tests).
    #[must_use]
    pub fn handler(&self) -> &RequestHandler {
        &self.shared.handler
    }

    /// The one-line startup announcement. Emitted on stdout by the CLI
    /// so orchestrators (and the integration tests) can discover the
    /// ephemeral port without racing the log.
    #[must_use]
    pub fn ready_line(&self) -> String {
        let addr = self.local_addr.map_or_else(
            || "null".to_string(),
            |a| format!("\"{}\"", proto::escape(&a.to_string())),
        );
        format!(
            "{{\"event\":\"ready\",\"addr\":{addr},\"replayed\":{},\"duplicates\":{},\
             \"skipped\":{}}}",
            self.replay.replayed, self.replay.duplicates, self.replay.skipped
        )
    }

    /// Handles one request line through the same gate and persistence
    /// path a TCP connection uses. Returns the response line (no
    /// trailing newline).
    #[must_use]
    pub fn handle_line(&self, line: &str) -> String {
        self.shared.handle_line(line)
    }

    /// Serves line-delimited requests from `input` until EOF, writing
    /// one response line per request to `output`, then drains and shuts
    /// down. This is the stdin frontend — EOF is the graceful-shutdown
    /// trigger, since std cannot trap `SIGTERM`.
    ///
    /// # Errors
    ///
    /// Propagates read errors from `input` and write errors from
    /// `output` (wrap `output` in
    /// [`PipeSafeWriter`](crate::PipeSafeWriter) to absorb a consumer
    /// hangup). The drain still runs on early return.
    pub fn serve_lines<R: BufRead, W: Write>(&self, input: R, output: &mut W) -> io::Result<()> {
        let result = (|| {
            for line in input.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                writeln!(output, "{}", self.shared.handle_line(&line))?;
                output.flush()?;
            }
            Ok(())
        })();
        self.shutdown();
        result
    }

    /// Drains and stops the daemon: refuses new requests, waits for
    /// every in-flight request to finish, joins the accept and
    /// connection threads, and quiesces the worker pool. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut gate = self.shared.gate.lock().expect("gate lock poisoned");
            gate.shutting_down = true;
            // Wait for every admitted request to finish. Queued
            // requests waiting at the gate see the flag and bail.
            while gate.active > 0 {
                gate = self
                    .shared
                    .gate_cv
                    .wait(gate)
                    .expect("gate lock poisoned");
            }
        }
        self.shared.gate_cv.notify_all();
        // The accept loop polls the flag every few ms, so this join is
        // bounded; taking the handle keeps shutdown idempotent.
        let accept = self
            .accept_thread
            .lock()
            .expect("accept thread lock poisoned")
            .take();
        if let Some(thread) = accept {
            let _ = thread.join();
        }
        let handles = std::mem::take(
            &mut *self
                .connections
                .lock()
                .expect("connection list lock poisoned"),
        );
        for handle in handles {
            let _ = handle.join();
        }
        // Parallel regions spawned by admitted requests have finished
        // (active == 0), but assert global quiescence for good measure.
        let _ = coldtall_par::quiesce(Duration::from_secs(30));
    }
}

/// Spawns the accept loop: polls the non-blocking listener, spawning a
/// connection thread per client, until the shutdown flag is set.
fn spawn_accept_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    let connections = Arc::clone(connections);
    thread::spawn(move || loop {
        if shared.draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                let handle = thread::spawn(move || serve_connection(&shared, stream));
                connections
                    .lock()
                    .expect("connection list lock poisoned")
                    .push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    })
}

/// Serves one TCP client: line-delimited requests in, one response line
/// per request out, until the client hangs up or the daemon drains.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let Ok(reader_half) = stream.try_clone() else {
        return;
    };
    let _ = stream.set_nodelay(true);
    let _ = reader_half.set_read_timeout(Some(Duration::from_millis(50)));
    let mut writer = stream;
    let mut reader = BufReader::new(reader_half);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let trimmed = line.trim_end_matches(['\r', '\n']);
                if !trimmed.is_empty() {
                    let response = shared.handle_line(trimmed);
                    if writer.write_all(response.as_bytes()).is_err()
                        || writer.write_all(b"\n").is_err()
                        || writer.flush().is_err()
                    {
                        break;
                    }
                }
                line.clear();
            }
            // A timeout just means "check the flag and keep waiting";
            // any partial line read so far stays buffered in `line`.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.draining() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}
