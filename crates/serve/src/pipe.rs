//! A writer that survives the reader hanging up.
//!
//! Rust binaries ignore `SIGPIPE` by default, so when a pipeline
//! consumer exits early (`coldtall sweep | head`) every further write
//! to stdout fails with [`ErrorKind::BrokenPipe`] — and a bare
//! `println!` turns that into a panic. [`PipeSafeWriter`] absorbs the
//! broken pipe instead: the first such error latches a flag, the write
//! reports success, and the caller checks [`PipeSafeWriter::broken`]
//! once at the end to exit 0 quietly (the consumer got everything it
//! asked for; producing more is not an error).
//!
//! Every *other* I/O error still surfaces — a full disk on redirected
//! output must fail loudly.

use std::io::{self, ErrorKind, Write};

/// Wraps a writer, converting `BrokenPipe` into a latched flag and a
/// pretend-success so formatted output macros never panic mid-pipe.
#[derive(Debug)]
pub struct PipeSafeWriter<W: Write> {
    inner: W,
    broken: bool,
}

impl<W: Write> PipeSafeWriter<W> {
    /// Wraps `inner`.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            broken: false,
        }
    }

    /// Whether the underlying writer has reported a broken pipe. Once
    /// true, all subsequent writes are silently discarded.
    #[must_use]
    pub fn broken(&self) -> bool {
        self.broken
    }

    /// Unwraps the inner writer (for tests that inspect what landed).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for PipeSafeWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.broken {
            return Ok(buf.len());
        }
        match self.inner.write(buf) {
            Err(e) if e.kind() == ErrorKind::BrokenPipe => {
                self.broken = true;
                Ok(buf.len())
            }
            other => other,
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.broken {
            return Ok(());
        }
        match self.inner.flush() {
            Err(e) if e.kind() == ErrorKind::BrokenPipe => {
                self.broken = true;
                Ok(())
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that accepts `accept` bytes then reports a broken pipe.
    struct Hangup {
        accept: usize,
        taken: Vec<u8>,
    }

    impl Write for Hangup {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.taken.len() >= self.accept {
                return Err(io::Error::new(ErrorKind::BrokenPipe, "reader gone"));
            }
            let n = buf.len().min(self.accept - self.taken.len());
            self.taken.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn broken_pipe_latches_instead_of_erroring() {
        let mut w = PipeSafeWriter::new(Hangup {
            accept: 4,
            taken: Vec::new(),
        });
        assert!(!w.broken());
        writeln!(w, "abcdefgh").expect("broken pipe must not surface");
        assert!(w.broken());
        // Subsequent writes are quietly discarded, never errors.
        writeln!(w, "more").unwrap();
        w.flush().unwrap();
        assert_eq!(w.into_inner().taken, b"abcd");
    }

    #[test]
    fn other_errors_still_surface() {
        struct DiskFull;
        impl Write for DiskFull {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(ErrorKind::WriteZero, "disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = PipeSafeWriter::new(DiskFull);
        assert!(writeln!(w, "x").is_err(), "non-pipe errors must propagate");
        assert!(!w.broken());
    }
}
