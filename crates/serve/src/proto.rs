//! The line-delimited JSON wire protocol.
//!
//! One request per line in, one response per line out — over TCP or
//! stdin alike. Requests parse into the typed
//! [`coldtall_core::Request`]; responses render from the typed
//! [`coldtall_core::ResponsePayload`]. The daemon and the direct
//! library path share this renderer, which is what makes a served
//! response *bit-identical* to a local call: both print the same
//! payload through the same code.
//!
//! Request grammar (unknown fields are rejected, not ignored — a typo
//! like `"benhc"` must never silently default):
//!
//! ```json
//! {"cmd":"characterize","tech":"pcm","tentpole":"optimistic","dies":4,"temp":350}
//! {"cmd":"evaluate","tech":"sram","temp":77,"bench":"namd"}
//! {"cmd":"sweep"}
//! {"cmd":"search","tech":"pcm","max_latency":1.1,"max_area":10.0}
//! {"cmd":"status"}
//! ```
//!
//! Every request may carry `"id"` (string or number, echoed verbatim
//! in the response) and `"deadline_ms"` (per-request budget). Design
//! point fields default to the 350 K 2D SRAM baseline.
//!
//! Responses are `{"ok":true,"cmd":...,"result":{...}}` or
//! `{"ok":false,"cmd":...,"error":"..."}`. Non-finite floats (the
//! infinite-latency sentinel) render as the JSON strings `"inf"`,
//! `"-inf"` — JSON numbers cannot carry them.

use std::fmt::Write as _;

use coldtall_array::ArrayCharacterization;
use coldtall_core::{
    Constraints, DesignPoint, Error, LlcEvaluation, Request, ResponsePayload, StatusReport,
};
use coldtall_obs::json::{self, Value};

/// A parsed request line: the typed request plus its envelope fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRequest {
    /// The typed request.
    pub request: Request,
    /// Client-chosen correlation id, echoed verbatim (already rendered
    /// as a JSON fragment: a quoted string or a bare number).
    pub id: Option<String>,
    /// Per-request deadline in milliseconds.
    pub deadline_ms: Option<u64>,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, an unknown
/// `cmd`, unknown fields, or out-of-range field values. The caller
/// wraps it in an error response; parsing never panics on any input.
pub fn parse_request(line: &str) -> Result<ParsedRequest, String> {
    let value = json::parse(line)?;
    let Value::Object(fields) = &value else {
        return Err("request must be a JSON object".to_string());
    };
    let cmd = match fields.get("cmd") {
        Some(Value::String(cmd)) => cmd.as_str(),
        Some(_) => return Err("'cmd' must be a string".to_string()),
        None => return Err("missing 'cmd' field".to_string()),
    };
    let allowed: &[&str] = match cmd {
        "characterize" => &["cmd", "id", "deadline_ms", "tech", "tentpole", "dies", "temp"],
        "evaluate" => &[
            "cmd",
            "id",
            "deadline_ms",
            "tech",
            "tentpole",
            "dies",
            "temp",
            "bench",
        ],
        "sweep" | "status" => &["cmd", "id", "deadline_ms"],
        "search" => &[
            "cmd",
            "id",
            "deadline_ms",
            "tech",
            "dies",
            "max_latency",
            "max_area",
            "min_lifetime",
            "max_power",
        ],
        other => return Err(format!("unknown cmd '{other}'")),
    };
    for key in fields.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown field '{key}' for cmd '{cmd}'"));
        }
    }
    let id = match fields.get("id") {
        None => None,
        Some(Value::String(s)) => Some(format!("\"{}\"", escape(s))),
        Some(Value::Number(n)) if n.is_finite() => Some(format!("{n}")),
        Some(_) => return Err("'id' must be a string or a finite number".to_string()),
    };
    let deadline_ms = match fields.get("deadline_ms") {
        None => None,
        Some(v) => Some(non_negative_int(v, "deadline_ms")?),
    };
    let request = match cmd {
        "characterize" => Request::Characterize {
            point: design_point(fields)?,
        },
        "evaluate" => Request::Evaluate {
            point: design_point(fields)?,
            benchmark: match fields.get("bench") {
                Some(Value::String(s)) => s.clone(),
                Some(_) => return Err("'bench' must be a string".to_string()),
                None => "namd".to_string(),
            },
        },
        "sweep" => Request::Sweep,
        "status" => Request::Status,
        "search" => {
            let tech = match fields.get("tech") {
                None => None,
                Some(Value::String(s)) => Some(s.clone()),
                Some(_) => return Err("'tech' must be a string".to_string()),
            };
            let dies = match fields.get("dies") {
                None => None,
                Some(v) => Some(u8_field(v, "dies")?),
            };
            let mut constraints = Constraints::none();
            if let Some(v) = fields.get("max_latency") {
                constraints.max_relative_latency = finite_f64(v, "max_latency")?;
            }
            if let Some(v) = fields.get("max_area") {
                constraints.max_area_mm2 = Some(finite_f64(v, "max_area")?);
            }
            if let Some(v) = fields.get("min_lifetime") {
                constraints.min_lifetime_years = finite_f64(v, "min_lifetime")?;
            }
            if let Some(v) = fields.get("max_power") {
                constraints.max_relative_power = Some(finite_f64(v, "max_power")?);
            }
            Request::Search {
                tech,
                dies,
                constraints,
            }
        }
        _ => unreachable!("cmd validated above"),
    };
    Ok(ParsedRequest {
        request,
        id,
        deadline_ms,
    })
}

/// The design-point envelope fields, defaulting to the 350 K SRAM
/// baseline.
fn design_point(
    fields: &std::collections::BTreeMap<String, Value>,
) -> Result<DesignPoint, String> {
    let mut point = DesignPoint::baseline();
    if let Some(v) = fields.get("tech") {
        match v {
            Value::String(s) => point.tech = s.clone(),
            _ => return Err("'tech' must be a string".to_string()),
        }
    }
    if let Some(v) = fields.get("tentpole") {
        match v {
            Value::String(s) => point.tentpole = s.clone(),
            _ => return Err("'tentpole' must be a string".to_string()),
        }
    }
    if let Some(v) = fields.get("dies") {
        point.dies = u8_field(v, "dies")?;
    }
    if let Some(v) = fields.get("temp") {
        point.temperature_kelvin = finite_f64(v, "temp")?;
    }
    Ok(point)
}

fn finite_f64(value: &Value, field: &str) -> Result<f64, String> {
    match value.as_f64() {
        Some(n) if n.is_finite() => Ok(n),
        _ => Err(format!("'{field}' must be a finite number")),
    }
}

fn non_negative_int(value: &Value, field: &str) -> Result<u64, String> {
    match value.as_f64() {
        Some(n) if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= 2.0_f64.powi(53) => {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Ok(n as u64)
        }
        _ => Err(format!("'{field}' must be a non-negative integer")),
    }
}

fn u8_field(value: &Value, field: &str) -> Result<u8, String> {
    let n = non_negative_int(value, field)?;
    u8::try_from(n).map_err(|_| format!("'{field}' is out of range"))
}

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON fragment: finite values as numbers
/// (Rust's shortest round-trip formatting), non-finite sentinels as
/// the strings `"inf"`, `"-inf"`, `"nan"`.
fn num(n: f64) -> String {
    if n.is_finite() {
        format!("{n}")
    } else if n.is_nan() {
        "\"nan\"".to_string()
    } else if n > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

/// Renders one response line (no trailing newline) for a handled
/// request. The daemon and the bit-identity tests both call this, so a
/// served response equals a locally rendered one byte for byte.
#[must_use]
pub fn render_response(
    cmd: &str,
    id: Option<&str>,
    outcome: &Result<ResponsePayload, Error>,
) -> String {
    let mut out = String::new();
    match outcome {
        Ok(payload) => {
            let _ = write!(out, "{{\"ok\":true,\"cmd\":\"{}\"", escape(cmd));
            if let Some(id) = id {
                let _ = write!(out, ",\"id\":{id}");
            }
            out.push_str(",\"result\":");
            render_payload(&mut out, payload);
            out.push('}');
        }
        Err(error) => {
            let _ = write!(out, "{{\"ok\":false,\"cmd\":\"{}\"", escape(cmd));
            if let Some(id) = id {
                let _ = write!(out, ",\"id\":{id}");
            }
            let _ = write!(out, ",\"error\":\"{}\"}}", escape(&error.to_string()));
        }
    }
    out
}

/// Renders one parse-failure response line (no trailing newline).
#[must_use]
pub fn render_parse_error(message: &str) -> String {
    format!(
        "{{\"ok\":false,\"cmd\":\"invalid\",\"error\":\"{}\"}}",
        escape(message)
    )
}

fn render_payload(out: &mut String, payload: &ResponsePayload) {
    match payload {
        ResponsePayload::Characterization {
            label,
            backend,
            plan_hash,
            characterization,
        } => {
            let _ = write!(
                out,
                "{{\"label\":\"{}\",\"backend\":\"{}\",\"plan\":\"{plan_hash:016x}\",\
                 \"characterization\":",
                escape(label),
                escape(backend)
            );
            render_characterization(out, characterization);
            out.push('}');
        }
        ResponsePayload::Evaluation { plan_hash, row } => {
            let _ = write!(out, "{{\"plan\":\"{plan_hash:016x}\",\"row\":");
            render_row(out, row);
            out.push('}');
        }
        ResponsePayload::Sweep { plan_hash, rows } => {
            let _ = write!(
                out,
                "{{\"plan\":\"{plan_hash:016x}\",\"rows\":{},\"evaluations\":[",
                rows.len()
            );
            for (i, row) in rows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_row(out, row);
            }
            out.push_str("]}");
        }
        ResponsePayload::Search {
            region,
            plan_hash,
            outcome,
        } => {
            let _ = write!(
                out,
                "{{\"region\":\"{}\",\"plan\":\"{plan_hash:016x}\",\"frontier\":[",
                escape(region)
            );
            for (i, row) in outcome.frontier.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_row(out, row);
            }
            let stats = &outcome.stats;
            let _ = write!(
                out,
                "],\"stats\":{{\"rows_total\":{},\"points_evaluated\":{},\
                 \"points_skipped\":{},\"skipped_infeasible\":{},\"skipped_pruned\":{},\
                 \"regions_expanded\":{},\"regions_pruned\":{},\"regions_refined\":{},\
                 \"bounds_computed\":{}}},\"pruned_regions\":{}}}",
                stats.rows_total,
                stats.points_evaluated,
                stats.points_skipped,
                stats.skipped_infeasible,
                stats.skipped_pruned,
                stats.regions_expanded,
                stats.regions_pruned,
                stats.regions_refined,
                stats.bounds_computed,
                outcome.pruned.len()
            );
        }
        ResponsePayload::Status(status) => render_status(out, status),
    }
}

fn render_status(out: &mut String, status: &StatusReport) {
    let _ = write!(
        out,
        "{{\"cached_characterizations\":{},\"cached_geometries\":{},\"cache_hits\":{},\
         \"cache_misses\":{},\"cache_rejected\":{},\"cache_approx_bytes\":{},\
         \"geometry_solves\":{},\"requests_served\":{}}}",
        status.cached_characterizations,
        status.cached_geometries,
        status.cache_hits,
        status.cache_misses,
        status.cache_rejected,
        status.cache_approx_bytes,
        status.geometry_solves,
        status.requests_served
    );
}

/// Renders an [`ArrayCharacterization`] as a JSON object of raw SI
/// numbers (seconds, joules, watts, square meters).
pub(crate) fn render_characterization(out: &mut String, a: &ArrayCharacterization) {
    let _ = write!(
        out,
        "{{\"read_latency_s\":{},\"write_latency_s\":{},\"read_energy_j\":{},\
         \"write_energy_j\":{},\"leakage_power_w\":{},\"refresh_power_w\":{},\
         \"refresh_busy_fraction\":{},\"retention_s\":{},\"footprint_m2\":{},\
         \"total_silicon_m2\":{},\"array_efficiency\":{},\"organization\":[{},{}],\
         \"dies\":{},\"transfer_bits\":{},\"read_cycle_s\":{},\"write_cycle_s\":{}}}",
        num(a.read_latency.get()),
        num(a.write_latency.get()),
        num(a.read_energy.get()),
        num(a.write_energy.get()),
        num(a.leakage_power.get()),
        num(a.refresh_power.get()),
        num(a.refresh_busy_fraction),
        a.retention
            .map_or_else(|| "null".to_string(), |r| num(r.get())),
        num(a.footprint.get()),
        num(a.total_silicon.get()),
        num(a.array_efficiency),
        a.organization.rows(),
        a.organization.cols(),
        a.dies,
        num(a.transfer_bits),
        num(a.read_cycle_time.get()),
        num(a.write_cycle_time.get()),
    );
}

fn render_row(out: &mut String, row: &LlcEvaluation) {
    let _ = write!(
        out,
        "{{\"config\":\"{}\",\"benchmark\":\"{}\",\"device_power_w\":{},\
         \"wall_power_w\":{},\"relative_power\":{},\"relative_latency\":{},\
         \"slowdown\":{},\"feasibility\":\"{}\",\"footprint_mm2\":{},\
         \"lifetime_years\":{},\"bandwidth_utilization\":{}}}",
        escape(&row.config_label),
        escape(row.benchmark),
        num(row.device_power.get()),
        num(row.wall_power.get()),
        num(row.relative_power),
        num(row.relative_latency),
        row.slowdown,
        escape(&row.feasibility.to_string()),
        num(row.footprint_mm2),
        num(row.lifetime_years),
        num(row.bandwidth_utilization),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_request_grammar() {
        let parsed = parse_request(
            r#"{"cmd":"characterize","tech":"pcm","tentpole":"pess","dies":8,"temp":350}"#,
        )
        .unwrap();
        assert!(matches!(
            &parsed.request,
            Request::Characterize { point } if point.tech == "pcm" && point.dies == 8
        ));
        assert_eq!(parsed.id, None);

        let parsed =
            parse_request(r#"{"cmd":"evaluate","bench":"mcf","id":7,"deadline_ms":500}"#).unwrap();
        assert!(matches!(
            &parsed.request,
            Request::Evaluate { benchmark, .. } if benchmark == "mcf"
        ));
        assert_eq!(parsed.id.as_deref(), Some("7"));
        assert_eq!(parsed.deadline_ms, Some(500));

        let parsed = parse_request(r#"{"cmd":"search","tech":"stt","max_latency":1.2}"#).unwrap();
        let Request::Search {
            tech, constraints, ..
        } = &parsed.request
        else {
            panic!("expected a search request");
        };
        assert_eq!(tech.as_deref(), Some("stt"));
        assert!((constraints.max_relative_latency - 1.2).abs() < 1e-12);

        assert!(matches!(
            parse_request(r#"{"cmd":"sweep"}"#).unwrap().request,
            Request::Sweep
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"status","id":"abc"}"#).unwrap().request,
            Request::Status
        ));
    }

    #[test]
    fn rejects_malformed_and_unknown_inputs() {
        for bad in [
            "",
            "not json",
            "[1,2]",
            r#"{"tech":"sram"}"#,
            r#"{"cmd":"teleport"}"#,
            r#"{"cmd":"sweep","tech":"sram"}"#,
            r#"{"cmd":"characterize","benhc":"namd"}"#,
            r#"{"cmd":"characterize","dies":"four"}"#,
            r#"{"cmd":"characterize","dies":2.5}"#,
            r#"{"cmd":"characterize","temp":"cold"}"#,
            r#"{"cmd":"evaluate","bench":7}"#,
            r#"{"cmd":"search","max_area":"big"}"#,
            r#"{"cmd":"status","deadline_ms":-1}"#,
            r#"{"cmd":"status","id":[1]}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted bad request {bad:?}");
        }
    }

    #[test]
    fn responses_are_valid_json_and_echo_ids() {
        let status = ResponsePayload::Status(StatusReport {
            cached_characterizations: 3,
            cached_geometries: 2,
            cache_hits: 10,
            cache_misses: 4,
            cache_rejected: 0,
            cache_approx_bytes: 1234,
            geometry_solves: 2,
            requests_served: 14,
        });
        let line = render_response("status", Some("\"abc\""), &Ok(status));
        let value = coldtall_obs::json::parse(&line).expect("response must be valid JSON");
        assert_eq!(value.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(value.get("id"), Some(&Value::String("abc".to_string())));
        assert_eq!(
            value.get("result").and_then(|r| r.get("cache_hits")).and_then(Value::as_f64),
            Some(10.0)
        );

        let err = render_response(
            "evaluate",
            None,
            &Err(Error::UnknownBenchmark {
                name: "doom".to_string(),
            }),
        );
        let value = coldtall_obs::json::parse(&err).unwrap();
        assert_eq!(value.get("ok"), Some(&Value::Bool(false)));
        assert!(matches!(
            value.get("error"),
            Some(Value::String(m)) if m.contains("doom")
        ));

        let invalid = render_parse_error("missing 'cmd' field");
        assert!(coldtall_obs::json::parse(&invalid).is_ok());
    }

    #[test]
    fn non_finite_floats_render_as_strings() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::INFINITY), "\"inf\"");
        assert_eq!(num(f64::NEG_INFINITY), "\"-inf\"");
        assert_eq!(num(f64::NAN), "\"nan\"");
    }

    #[test]
    fn escape_handles_quotes_and_control_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
