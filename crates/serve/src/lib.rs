//! Sweep-as-a-service: the long-running frontend over the exploration
//! library.
//!
//! The binary workflow (`coldtall sweep`, `coldtall search`) pays the
//! full characterization cost on every invocation and throws the
//! warmed caches away at exit. This crate keeps the process — and the
//! work — alive:
//!
//! * [`server`] — a daemon accepting line-delimited JSON requests over
//!   TCP and stdin, dispatching through the library's
//!   [`RequestHandler`](coldtall_core::RequestHandler) with per-request
//!   deadlines, bounded in-flight concurrency, and a drain-before-exit
//!   shutdown gate;
//! * [`proto`] — the wire protocol: request parsing and response
//!   rendering shared by the daemon and the bit-identity tests;
//! * [`registry`] — the persistent run registry: an append-only JSONL
//!   log of computed characterizations (floats stored as exact bit
//!   patterns) replayed at startup to warm a fresh process;
//! * [`dashboard`] — a static HTML/SVG dashboard generated from the
//!   warmed cache and live metrics;
//! * [`pipe`] — the broken-pipe-absorbing writer that lets
//!   `coldtall sweep | head` exit 0 instead of panicking.
//!
//! Everything is `std`-only: no async runtime, no serialization crates,
//! no signal handling. Graceful shutdown is stdin EOF (or an explicit
//! [`Server::shutdown`]), because trapping `SIGTERM` would need a
//! non-`std` dependency.

pub mod dashboard;
pub mod pipe;
pub mod proto;
pub mod registry;
pub mod server;

pub use dashboard::render_dashboard;
pub use pipe::PipeSafeWriter;
pub use proto::{parse_request, render_parse_error, render_response, ParsedRequest};
pub use registry::{replay_file, ReplayStats, RunRegistry, SCHEMA_VERSION};
pub use server::{ServeOptions, Server};
