//! Trace-driven multi-core cache-hierarchy simulator.
//!
//! This crate substitutes for the Sniper simulations of the paper: it
//! models the Table I desktop CPU — eight cores at 5 GHz with 32 KiB L1
//! instruction and data caches, 512 KiB private L2 caches, and a shared
//! 16 MiB 16-way L3 — and extracts the quantity the design-space
//! exploration consumes: **LLC read and write accesses per second** under
//! continuous execution of a workload.
//!
//! The caches are set-associative with true-LRU replacement,
//! write-back/write-allocate, and an inclusive shared LLC. Coherence is
//! not modelled (the paper's pipeline only consumes traffic counts, not
//! inter-core ordering).
//!
//! # Examples
//!
//! ```
//! use coldtall_cachesim::{CpuConfig, Hierarchy, MemoryAccess};
//!
//! let mut hierarchy = Hierarchy::new(CpuConfig::skylake_desktop());
//! for i in 0..10_000u64 {
//!     hierarchy.access(MemoryAccess::data_read(0, i * 64));
//! }
//! let stats = hierarchy.llc_stats();
//! assert!(stats.read_accesses > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod access;
mod cache;
mod config;
mod hierarchy;
mod replacement;
mod stats;
pub mod trace;
mod traffic;

pub use access::{AccessKind, MemoryAccess};
pub use cache::{AccessOutcome, CacheConfig, SetAssociativeCache};
pub use config::CpuConfig;
pub use hierarchy::Hierarchy;
pub use replacement::ReplacementPolicy;
pub use stats::CacheStats;
pub use traffic::{InvalidTraffic, LlcTraffic, TrafficTable};
