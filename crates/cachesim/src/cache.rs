//! A single set-associative, write-back, write-allocate cache.

use coldtall_units::Capacity;

use crate::replacement::ReplacementPolicy;
use crate::stats::CacheStats;

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total data capacity.
    pub capacity: Capacity,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
}

impl CacheConfig {
    /// Creates a configuration with LRU replacement.
    ///
    /// # Panics
    ///
    /// Panics unless ways and line size are nonzero powers of two and the
    /// capacity divides evenly into at least one set.
    #[must_use]
    pub fn new(capacity: Capacity, ways: u32, line_bytes: u32) -> Self {
        assert!(ways.is_power_of_two(), "ways must be a power of two");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = capacity.bytes() / u64::from(line_bytes);
        assert!(
            lines >= u64::from(ways) && lines.is_multiple_of(u64::from(ways)),
            "capacity must hold a whole number of sets"
        );
        Self {
            capacity,
            ways,
            line_bytes,
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.capacity.bytes() / u64::from(self.line_bytes) / u64::from(self.ways)
    }
}

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; it has been filled. If the victim was dirty,
    /// its line address must be written back to the next level.
    Miss {
        /// Dirty victim line address needing write-back, if any.
        writeback: Option<u64>,
    },
}

impl AccessOutcome {
    /// Returns `true` on a hit.
    #[must_use]
    pub fn is_hit(&self) -> bool {
        matches!(self, Self::Hit)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    stamp: u64,
    /// SRRIP re-reference prediction value (unused by LRU/FIFO).
    rrpv: u8,
}

/// A set-associative, write-back, write-allocate cache.
///
/// # Examples
///
/// ```
/// use coldtall_cachesim::{CacheConfig, SetAssociativeCache};
/// use coldtall_units::Capacity;
///
/// let mut cache = SetAssociativeCache::new(CacheConfig::new(
///     Capacity::from_kibibytes(32), 8, 64,
/// ));
/// assert!(!cache.access(0x1000, false).is_hit());
/// assert!(cache.access(0x1000, false).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct SetAssociativeCache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: CacheStats,
}

impl SetAssociativeCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets() as usize;
        Self {
            config,
            sets: vec![vec![Line::default(); config.ways as usize]; sets],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears the statistics counters without disturbing cache contents
    /// (used to discard warm-up transients).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn index_tag(&self, address: u64) -> (usize, u64) {
        let line = address / u64::from(self.config.line_bytes);
        let sets = self.config.sets();
        ((line % sets) as usize, line / sets)
    }

    /// Accesses `address`; on a miss the line is allocated (write
    /// allocate for stores as well) and a dirty victim is reported for
    /// write-back.
    pub fn access(&mut self, address: u64, is_write: bool) -> AccessOutcome {
        self.clock += 1;
        let (set_idx, tag) = self.index_tag(address);
        self.stats.record_access(is_write);

        let policy = self.config.replacement;
        let touch = policy.touch_on_hit();
        let sets_count = self.config.sets();
        let line_bytes = u64::from(self.config.line_bytes);
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            if touch {
                line.stamp = self.clock;
            }
            if policy == ReplacementPolicy::Srrip {
                // A re-reference promotes to "immediate".
                line.rrpv = 0;
            }
            line.dirty |= is_write;
            self.stats.record_hit();
            return AccessOutcome::Hit;
        }

        // Miss: pick the victim per policy (an invalid way always first).
        let victim_idx = match policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| (l.valid, l.stamp))
                .map(|(i, _)| i)
                .expect("sets are never empty"),
            ReplacementPolicy::Srrip => Self::srrip_victim(set),
        };
        let victim = set[victim_idx];
        let writeback = (victim.valid && victim.dirty)
            .then(|| (victim.tag * sets_count + set_idx as u64) * line_bytes);
        if writeback.is_some() {
            self.stats.record_writeback();
        }
        set[victim_idx] = Line {
            tag,
            valid: true,
            dirty: is_write,
            stamp: self.clock,
            rrpv: ReplacementPolicy::RRPV_INSERT,
        };
        AccessOutcome::Miss { writeback }
    }

    /// SRRIP victim search: the first way predicted "distant", aging the
    /// whole set until one appears.
    fn srrip_victim(set: &mut [Line]) -> usize {
        if let Some(i) = set.iter().position(|l| !l.valid) {
            return i;
        }
        loop {
            if let Some(i) = set
                .iter()
                .position(|l| l.rrpv >= ReplacementPolicy::RRPV_MAX)
            {
                return i;
            }
            for line in set.iter_mut() {
                line.rrpv += 1;
            }
        }
    }

    /// Non-destructive probe: is `address` present, and if so is it
    /// dirty? Used by coherence snooping.
    #[must_use]
    pub fn probe(&self, address: u64) -> Option<bool> {
        let (set_idx, tag) = self.index_tag(address);
        self.sets[set_idx]
            .iter()
            .find(|l| l.valid && l.tag == tag)
            .map(|l| l.dirty)
    }

    /// Clears the dirty bit of `address` if present (a coherence
    /// downgrade after a dirty forward), returning whether it was dirty.
    pub fn clean(&mut self, address: u64) -> Option<bool> {
        let (set_idx, tag) = self.index_tag(address);
        let line = self.sets[set_idx]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)?;
        let was_dirty = line.dirty;
        line.dirty = false;
        Some(was_dirty)
    }

    /// Invalidates `address` if present, reporting whether the line was
    /// dirty (used to maintain LLC inclusion).
    pub fn invalidate(&mut self, address: u64) -> Option<bool> {
        let (set_idx, tag) = self.index_tag(address);
        let line = self.sets[set_idx]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)?;
        line.valid = false;
        Some(line.dirty)
    }

    /// Returns `true` if `address`'s line is currently cached.
    #[must_use]
    pub fn contains(&self, address: u64) -> bool {
        let (set_idx, tag) = self.index_tag(address);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ways: u32) -> SetAssociativeCache {
        // 4 sets x `ways` x 64 B lines.
        SetAssociativeCache::new(CacheConfig::new(
            Capacity::from_bytes(u64::from(ways) * 4 * 64),
            ways,
            64,
        ))
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small_cache(2);
        assert!(!c.access(0, false).is_hit());
        assert!(c.access(0, false).is_hit());
        assert!(c.access(63, false).is_hit(), "same line");
        assert!(!c.access(64, false).is_hit(), "next line");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache(2);
        // Three lines mapping to set 0 in a 4-set cache: stride 256.
        c.access(0, false);
        c.access(256, false);
        c.access(0, false); // refresh line 0
        c.access(512, false); // evicts 256
        assert!(c.contains(0));
        assert!(!c.contains(256));
        assert!(c.contains(512));
    }

    #[test]
    fn dirty_victim_reports_writeback() {
        let mut c = small_cache(2);
        c.access(0, true);
        c.access(256, false);
        let out = c.access(512, false); // evicts dirty line 0
        assert_eq!(out, AccessOutcome::Miss { writeback: Some(0) });
    }

    #[test]
    fn clean_victim_reports_none() {
        let mut c = small_cache(2);
        c.access(0, false);
        c.access(256, false);
        let out = c.access(512, false);
        assert_eq!(out, AccessOutcome::Miss { writeback: None });
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small_cache(2);
        c.access(0, false);
        c.access(0, true); // hit, now dirty
        c.access(256, false);
        let out = c.access(512, false);
        assert_eq!(out, AccessOutcome::Miss { writeback: Some(0) });
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = small_cache(2);
        c.access(0, true);
        assert_eq!(c.invalidate(0), Some(true));
        assert_eq!(c.invalidate(0), None);
        assert!(!c.contains(0));
    }

    #[test]
    fn stats_accumulate() {
        let mut c = small_cache(2);
        c.access(0, false);
        c.access(0, true);
        c.access(64, false);
        let s = c.stats();
        assert_eq!(s.read_accesses, 2);
        assert_eq!(s.write_accesses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses(), 2);
    }

    #[test]
    fn fifo_does_not_refresh_on_hit() {
        let mut cfg = CacheConfig::new(Capacity::from_bytes(2 * 4 * 64), 2, 64);
        cfg.replacement = ReplacementPolicy::Fifo;
        let mut c = SetAssociativeCache::new(cfg);
        c.access(0, false);
        c.access(256, false);
        c.access(0, false); // hit, but FIFO ignores it
        c.access(512, false); // evicts 0 (oldest insertion)
        assert!(!c.contains(0));
        assert!(c.contains(256));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_ways() {
        let _ = CacheConfig::new(Capacity::from_kibibytes(32), 3, 64);
    }

    #[test]
    fn srrip_resists_a_scan() {
        // A hot line that is re-referenced survives a one-shot scan that
        // would evict it under LRU.
        let mut cfg = CacheConfig::new(Capacity::from_bytes(4 * 64), 4, 64);
        cfg.replacement = ReplacementPolicy::Srrip;
        let mut c = SetAssociativeCache::new(cfg);
        // Establish the hot line with a re-reference (promotes to rrpv 0).
        c.access(0, false);
        c.access(0, false);
        // Scan five distinct lines through the single set.
        for i in 1..=5u64 {
            c.access(i * 64, false);
        }
        assert!(c.contains(0), "SRRIP must keep the re-referenced hot line");
    }

    #[test]
    fn probe_and_clean() {
        let mut c = small_cache(2);
        assert_eq!(c.probe(0), None);
        c.access(0, true);
        assert_eq!(c.probe(0), Some(true));
        assert_eq!(c.clean(0), Some(true));
        assert_eq!(c.probe(0), Some(false));
        assert_eq!(c.clean(64 * 1024), None);
    }
}
