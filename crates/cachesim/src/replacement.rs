//! Replacement policies for set-associative caches.

/// A per-set replacement policy: tracks use recency and nominates
/// victims.
///
/// The simulator ships true-LRU (the study default), FIFO (insertion
/// order), and SRRIP (static re-reference interval prediction, a
/// scan-resistant policy common in real LLCs) for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used way.
    #[default]
    Lru,
    /// Evict the oldest-inserted way, ignoring hits.
    Fifo,
    /// Static re-reference interval prediction with 2-bit counters:
    /// lines are inserted "long", promoted to "immediate" on a hit, and
    /// the victim is the first line predicted "distant".
    Srrip,
}

impl ReplacementPolicy {
    /// Whether a hit refreshes the way's recency stamp (LRU-family
    /// behaviour).
    #[must_use]
    pub(crate) fn touch_on_hit(self) -> bool {
        match self {
            Self::Lru => true,
            Self::Fifo | Self::Srrip => false,
        }
    }

    /// Maximum re-reference prediction value for SRRIP (2-bit counters).
    pub(crate) const RRPV_MAX: u8 = 3;

    /// Insertion prediction for SRRIP ("long" re-reference interval).
    pub(crate) const RRPV_INSERT: u8 = 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_touch_behaviour() {
        assert!(ReplacementPolicy::Lru.touch_on_hit());
        assert!(!ReplacementPolicy::Fifo.touch_on_hit());
        assert!(!ReplacementPolicy::Srrip.touch_on_hit());
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // guards against miscalibration edits
    fn srrip_constants_are_two_bit() {
        assert!(ReplacementPolicy::RRPV_INSERT < ReplacementPolicy::RRPV_MAX);
        assert_eq!(ReplacementPolicy::RRPV_MAX, 3);
    }
}
