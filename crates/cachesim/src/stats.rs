//! Access counters per cache level.

/// Counters accumulated by one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read (load/fetch) accesses presented to this cache.
    pub read_accesses: u64,
    /// Write (store/write-back) accesses presented to this cache.
    pub write_accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Dirty evictions written back to the next level.
    pub writebacks: u64,
}

impl CacheStats {
    pub(crate) fn record_access(&mut self, is_write: bool) {
        if is_write {
            self.write_accesses += 1;
        } else {
            self.read_accesses += 1;
        }
    }

    pub(crate) fn record_hit(&mut self) {
        self.hits += 1;
    }

    pub(crate) fn record_writeback(&mut self) {
        self.writebacks += 1;
    }

    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.read_accesses + self.write_accesses
    }

    /// Misses (accesses minus hits).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.accesses() - self.hits
    }

    /// Hit rate in `[0, 1]`; zero for an untouched cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_counters() {
        let mut s = CacheStats::default();
        s.record_access(false);
        s.record_access(true);
        s.record_access(false);
        s.record_hit();
        assert_eq!(s.accesses(), 3);
        assert_eq!(s.misses(), 2);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cache_hit_rate_is_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
