//! CPU model configuration (the paper's Table I).

use coldtall_units::{Capacity, Hertz};

use crate::cache::CacheConfig;

/// The simulated CPU: core count, frequency, and the cache hierarchy.
///
/// [`CpuConfig::skylake_desktop`] reproduces Table I of the paper: an
/// 8-core desktop-class CPU at 5 GHz (22 nm) with 32 KiB L1I/L1D,
/// 512 KiB private L2, and a shared 16 MiB, 16-way L3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuConfig {
    /// Number of cores.
    pub cores: u8,
    /// Core clock frequency.
    pub frequency: Hertz,
    /// L1 instruction cache, per core.
    pub l1i: CacheConfig,
    /// L1 data cache, per core.
    pub l1d: CacheConfig,
    /// Private unified L2, per core.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// Next-line prefetch degree at the L2 (0 disables prefetching).
    pub prefetch_degree: u8,
    /// Enables write-invalidate snooping coherence between the private
    /// hierarchies (SPECrate copies share nothing, so the study default
    /// is off; multi-threaded traces need it).
    pub coherence: bool,
}

impl CpuConfig {
    /// The paper's Table I desktop CPU.
    #[must_use]
    pub fn skylake_desktop() -> Self {
        Self {
            cores: 8,
            frequency: Hertz::from_gigas(5.0),
            l1i: CacheConfig::new(Capacity::from_kibibytes(32), 8, 64),
            l1d: CacheConfig::new(Capacity::from_kibibytes(32), 8, 64),
            l2: CacheConfig::new(Capacity::from_kibibytes(512), 8, 64),
            llc: CacheConfig::new(Capacity::from_mebibytes(16), 16, 64),
            prefetch_degree: 0,
            coherence: false,
        }
    }

    /// Enables the L2 next-line prefetcher with the given degree.
    #[must_use]
    pub fn with_prefetch(mut self, degree: u8) -> Self {
        self.prefetch_degree = degree;
        self
    }

    /// Enables write-invalidate snooping coherence.
    #[must_use]
    pub fn with_coherence(mut self) -> Self {
        self.coherence = true;
        self
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::skylake_desktop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_parameters() {
        let cfg = CpuConfig::skylake_desktop();
        assert_eq!(cfg.cores, 8);
        assert_eq!(cfg.frequency, Hertz::from_gigas(5.0));
        assert_eq!(cfg.l1i.capacity, Capacity::from_kibibytes(32));
        assert_eq!(cfg.l1d.capacity, Capacity::from_kibibytes(32));
        assert_eq!(cfg.l2.capacity, Capacity::from_kibibytes(512));
        assert_eq!(cfg.llc.capacity, Capacity::from_mebibytes(16));
        assert_eq!(cfg.llc.ways, 16);
    }
}
