//! LLC traffic extraction: the quantity the DSE consumes.

use core::fmt;

use coldtall_units::Seconds;

use crate::hierarchy::Hierarchy;

/// A rejected traffic record: a rate was negative, `NaN`, or infinite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidTraffic {
    /// The rejected reads-per-second rate.
    pub reads_per_sec: f64,
    /// The rejected writes-per-second rate.
    pub writes_per_sec: f64,
}

impl fmt::Display for InvalidTraffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "traffic rates must be finite and non-negative, got {} reads/s, {} writes/s",
            self.reads_per_sec, self.writes_per_sec
        )
    }
}

impl std::error::Error for InvalidTraffic {}

/// LLC traffic under continuous execution: read and write accesses per
/// second, the x-axes of the paper's Fig. 5 and Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlcTraffic {
    /// LLC read accesses per second.
    pub reads_per_sec: f64,
    /// LLC write accesses per second.
    pub writes_per_sec: f64,
}

impl LlcTraffic {
    /// Builds a traffic record directly from rates, rejecting negative,
    /// `NaN`, or infinite rates (zero is legal: an idle cache).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidTraffic`] if either rate is negative or not
    /// finite.
    pub fn try_new(reads_per_sec: f64, writes_per_sec: f64) -> Result<Self, InvalidTraffic> {
        let ok = |rate: f64| rate.is_finite() && rate >= 0.0;
        if ok(reads_per_sec) && ok(writes_per_sec) {
            Ok(Self {
                reads_per_sec,
                writes_per_sec,
            })
        } else {
            Err(InvalidTraffic {
                reads_per_sec,
                writes_per_sec,
            })
        }
    }

    /// Builds a traffic record directly from rates.
    ///
    /// Precondition: both rates are finite and non-negative. Use
    /// [`LlcTraffic::try_new`] for untrusted inputs.
    ///
    /// # Panics
    ///
    /// Panics if either rate is negative or not finite.
    #[must_use]
    pub fn new(reads_per_sec: f64, writes_per_sec: f64) -> Self {
        assert!(
            reads_per_sec.is_finite() && reads_per_sec >= 0.0,
            "read rate must be finite and non-negative"
        );
        assert!(
            writes_per_sec.is_finite() && writes_per_sec >= 0.0,
            "write rate must be finite and non-negative"
        );
        Self {
            reads_per_sec,
            writes_per_sec,
        }
    }

    /// Extracts traffic from a simulated hierarchy, extrapolating the
    /// counted LLC accesses over the simulated execution time — the same
    /// continuous-operation extrapolation the paper applies to its
    /// Sniper runs.
    ///
    /// # Panics
    ///
    /// Panics if `execution_time` is not strictly positive.
    #[must_use]
    pub fn from_simulation(hierarchy: &Hierarchy, execution_time: Seconds) -> Self {
        assert!(
            execution_time.get() > 0.0,
            "execution time must be positive"
        );
        let stats = hierarchy.llc_stats();
        Self::new(
            stats.read_accesses as f64 / execution_time.get(),
            stats.write_accesses as f64 / execution_time.get(),
        )
    }

    /// Total accesses per second.
    #[must_use]
    pub fn total_per_sec(&self) -> f64 {
        self.reads_per_sec + self.writes_per_sec
    }

    /// Write share of the traffic, in `[0, 1]`; zero for no traffic.
    #[must_use]
    pub fn write_fraction(&self) -> f64 {
        let total = self.total_per_sec();
        if total == 0.0 {
            0.0
        } else {
            self.writes_per_sec / total
        }
    }
}

/// A dense struct-of-arrays traffic table: the read and write rates of
/// a benchmark list, each in its own contiguous slice.
///
/// Batched evaluation reads traffic once per benchmark into this table
/// and then streams the columns, instead of chasing one
/// [`LlcTraffic`] record per (configuration, benchmark) grid cell.
/// The stored rates are the exact `f64`s pushed in, so a row
/// reconstructed via [`TrafficTable::get`] is bit-identical to the
/// original record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrafficTable {
    reads_per_sec: Vec<f64>,
    writes_per_sec: Vec<f64>,
}

impl TrafficTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the table, keeping its allocated capacity (so a reused
    /// table reaches a steady state with zero reallocations).
    pub fn clear(&mut self) {
        self.reads_per_sec.clear();
        self.writes_per_sec.clear();
    }

    /// Appends one traffic record's rates.
    pub fn push(&mut self, traffic: LlcTraffic) {
        self.reads_per_sec.push(traffic.reads_per_sec);
        self.writes_per_sec.push(traffic.writes_per_sec);
    }

    /// Number of records in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.reads_per_sec.len()
    }

    /// Whether the table holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.reads_per_sec.is_empty()
    }

    /// Reconstructs the record at `index`, bit-identical to the pushed
    /// original.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> LlcTraffic {
        LlcTraffic {
            reads_per_sec: self.reads_per_sec[index],
            writes_per_sec: self.writes_per_sec[index],
        }
    }

    /// The dense read-rate column.
    #[must_use]
    pub fn reads_per_sec(&self) -> &[f64] {
        &self.reads_per_sec
    }

    /// The dense write-rate column.
    #[must_use]
    pub fn writes_per_sec(&self) -> &[f64] {
        &self.writes_per_sec
    }
}

impl FromIterator<LlcTraffic> for TrafficTable {
    fn from_iter<I: IntoIterator<Item = LlcTraffic>>(iter: I) -> Self {
        let mut table = Self::new();
        for traffic in iter {
            table.push(traffic);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::MemoryAccess;
    use crate::config::CpuConfig;

    #[test]
    fn try_new_accepts_idle_and_rejects_hostile_rates() {
        assert_eq!(
            LlcTraffic::try_new(0.0, 0.0),
            Ok(LlcTraffic::new(0.0, 0.0))
        );
        for (r, w) in [
            (-1.0, 0.0),
            (0.0, -1e6),
            (f64::NAN, 1.0),
            (1.0, f64::INFINITY),
        ] {
            let err = LlcTraffic::try_new(r, w).unwrap_err();
            assert!(err.to_string().contains("finite and non-negative"));
        }
    }

    #[test]
    fn from_simulation_extrapolates_rates() {
        let mut h = Hierarchy::new(CpuConfig::skylake_desktop());
        for i in 0..1000u64 {
            h.access(MemoryAccess::data_read(0, i * 64 * 128));
        }
        let t = LlcTraffic::from_simulation(&h, Seconds::new(1e-3));
        assert!((t.reads_per_sec - 1e6).abs() < 1e-6 * 1e6);
    }

    #[test]
    fn derived_quantities() {
        let t = LlcTraffic::new(3e6, 1e6);
        assert_eq!(t.total_per_sec(), 4e6);
        assert!((t.write_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(LlcTraffic::new(0.0, 0.0).write_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_rate_rejected() {
        let _ = LlcTraffic::new(-1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_time_rejected() {
        let h = Hierarchy::new(CpuConfig::skylake_desktop());
        let _ = LlcTraffic::from_simulation(&h, Seconds::ZERO);
    }

    #[test]
    fn traffic_table_round_trips_records_bit_identically() {
        let records = [
            LlcTraffic::new(3e6, 1e6),
            LlcTraffic::new(0.0, 0.0),
            LlcTraffic::new(1.25e9, 7.5e3),
        ];
        let table: TrafficTable = records.iter().copied().collect();
        assert_eq!(table.len(), 3);
        assert!(!table.is_empty());
        for (i, record) in records.iter().enumerate() {
            assert_eq!(&table.get(i), record);
            assert_eq!(table.reads_per_sec()[i].to_bits(), record.reads_per_sec.to_bits());
            assert_eq!(table.writes_per_sec()[i].to_bits(), record.writes_per_sec.to_bits());
        }
    }

    #[test]
    fn traffic_table_clear_keeps_capacity() {
        let mut table = TrafficTable::new();
        for _ in 0..64 {
            table.push(LlcTraffic::new(1.0, 2.0));
        }
        let capacity = table.reads_per_sec.capacity();
        table.clear();
        assert!(table.is_empty());
        assert_eq!(table.reads_per_sec.capacity(), capacity, "clear must not shed capacity");
        table.push(LlcTraffic::new(3.0, 4.0));
        assert_eq!(table.get(0), LlcTraffic::new(3.0, 4.0));
        assert_eq!(table.reads_per_sec.capacity(), capacity);
    }
}
