//! Memory-access records consumed by the simulator.

use core::fmt;

/// The kind of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (routed through the L1I).
    InstructionFetch,
    /// Data load (routed through the L1D).
    DataRead,
    /// Data store (routed through the L1D, write-allocate).
    DataWrite,
}

impl AccessKind {
    /// Returns `true` for stores.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, Self::DataWrite)
    }
}

/// One memory access by one core.
///
/// This is a passive record type; all fields are public.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryAccess {
    /// Issuing core index.
    pub core: u8,
    /// Byte address.
    pub address: u64,
    /// Kind of access.
    pub kind: AccessKind,
}

impl MemoryAccess {
    /// An instruction fetch by `core` at `address`.
    #[must_use]
    pub fn fetch(core: u8, address: u64) -> Self {
        Self {
            core,
            address,
            kind: AccessKind::InstructionFetch,
        }
    }

    /// A data load by `core` at `address`.
    #[must_use]
    pub fn data_read(core: u8, address: u64) -> Self {
        Self {
            core,
            address,
            kind: AccessKind::DataRead,
        }
    }

    /// A data store by `core` at `address`.
    #[must_use]
    pub fn data_write(core: u8, address: u64) -> Self {
        Self {
            core,
            address,
            kind: AccessKind::DataWrite,
        }
    }
}

impl fmt::Display for MemoryAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            AccessKind::InstructionFetch => "I",
            AccessKind::DataRead => "R",
            AccessKind::DataWrite => "W",
        };
        write!(f, "core{} {k} {:#x}", self.core, self.address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert_eq!(MemoryAccess::fetch(1, 0x40).kind, AccessKind::InstructionFetch);
        assert_eq!(MemoryAccess::data_read(2, 0x80).kind, AccessKind::DataRead);
        assert_eq!(MemoryAccess::data_write(3, 0xc0).kind, AccessKind::DataWrite);
    }

    #[test]
    fn write_classification() {
        assert!(AccessKind::DataWrite.is_write());
        assert!(!AccessKind::DataRead.is_write());
        assert!(!AccessKind::InstructionFetch.is_write());
    }

    #[test]
    fn display() {
        assert_eq!(MemoryAccess::data_read(0, 256).to_string(), "core0 R 0x100");
    }
}
