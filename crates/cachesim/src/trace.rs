//! Access-trace record and replay.
//!
//! A trace is a newline-delimited text format, one access per line:
//!
//! ```text
//! <core> <R|W|I> <hex address>
//! ```
//!
//! Traces decouple workload generation from simulation: a stream can be
//! recorded once (e.g. from the synthetic generators, or converted from
//! an external simulator's output) and replayed through any hierarchy
//! configuration.

use std::io::{BufRead, Write};

use crate::access::{AccessKind, MemoryAccess};
use crate::hierarchy::Hierarchy;

/// Error raised when parsing a trace line fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Serializes accesses into the trace text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use coldtall_cachesim::{trace, MemoryAccess};
///
/// let mut out = Vec::new();
/// trace::write_trace(&mut out, [MemoryAccess::data_read(0, 0x40)]).unwrap();
/// assert_eq!(String::from_utf8(out).unwrap(), "0 R 0x40\n");
/// ```
pub fn write_trace<W: Write>(
    mut writer: W,
    accesses: impl IntoIterator<Item = MemoryAccess>,
) -> std::io::Result<()> {
    for a in accesses {
        let kind = match a.kind {
            AccessKind::InstructionFetch => 'I',
            AccessKind::DataRead => 'R',
            AccessKind::DataWrite => 'W',
        };
        writeln!(writer, "{} {kind} {:#x}", a.core, a.address)?;
    }
    Ok(())
}

/// Parses a trace from a reader.
///
/// Blank lines and lines starting with `#` are skipped.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on the first malformed record; I/O errors
/// are reported as parse errors carrying the line number.
pub fn read_trace<R: BufRead>(reader: R) -> Result<Vec<MemoryAccess>, ParseTraceError> {
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|e| ParseTraceError {
            line: line_no,
            message: e.to_string(),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let err = |message: &str| ParseTraceError {
            line: line_no,
            message: message.to_string(),
        };
        let core: u8 = parts
            .next()
            .ok_or_else(|| err("missing core"))?
            .parse()
            .map_err(|_| err("bad core"))?;
        let kind = match parts.next().ok_or_else(|| err("missing kind"))? {
            "R" => AccessKind::DataRead,
            "W" => AccessKind::DataWrite,
            "I" => AccessKind::InstructionFetch,
            other => {
                return Err(ParseTraceError {
                    line: line_no,
                    message: format!("unknown access kind '{other}'"),
                })
            }
        };
        let addr_str = parts.next().ok_or_else(|| err("missing address"))?;
        let address = addr_str
            .strip_prefix("0x")
            .or_else(|| addr_str.strip_prefix("0X"))
            .ok_or_else(|| err("address must be hex (0x...)"))
            .and_then(|hex| {
                u64::from_str_radix(hex, 16).map_err(|_| err("bad hex address"))
            })?;
        if parts.next().is_some() {
            return Err(err("trailing tokens"));
        }
        out.push(MemoryAccess {
            core,
            address,
            kind,
        });
    }
    Ok(out)
}

/// Replays a trace through a hierarchy.
pub fn replay(hierarchy: &mut Hierarchy, trace: &[MemoryAccess]) {
    for &access in trace {
        hierarchy.access(access);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpuConfig;

    #[test]
    fn round_trip() {
        let accesses = vec![
            MemoryAccess::data_read(0, 0x1000),
            MemoryAccess::data_write(3, 0x2040),
            MemoryAccess::fetch(7, 0x400000),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, accesses.iter().copied()).unwrap();
        let parsed = read_trace(buf.as_slice()).unwrap();
        assert_eq!(parsed, accesses);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n0 R 0x40\n  \n1 W 0x80\n";
        let parsed = read_trace(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn malformed_lines_carry_position() {
        let text = "0 R 0x40\n9 Q 0x80\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unknown access kind"));
    }

    #[test]
    fn rejects_decimal_addresses() {
        let err = read_trace("0 R 64\n".as_bytes()).unwrap_err();
        assert!(err.message.contains("hex"));
    }

    #[test]
    fn replay_drives_the_hierarchy() {
        let trace = vec![
            MemoryAccess::data_read(0, 0x0),
            MemoryAccess::data_read(0, 0x0),
        ];
        let mut h = Hierarchy::new(CpuConfig::skylake_desktop());
        replay(&mut h, &trace);
        assert_eq!(h.llc_stats().read_accesses, 1);
    }
}
