//! The full multi-core cache hierarchy.

use crate::access::{AccessKind, MemoryAccess};
use crate::cache::{AccessOutcome, SetAssociativeCache};
use crate::config::CpuConfig;
use crate::stats::CacheStats;

/// One core's private caches.
#[derive(Debug, Clone)]
struct CorePrivate {
    l1i: SetAssociativeCache,
    l1d: SetAssociativeCache,
    l2: SetAssociativeCache,
}

/// The simulated hierarchy: per-core L1I/L1D/L2 plus the shared,
/// inclusive LLC, backed by main memory.
///
/// # Examples
///
/// ```
/// use coldtall_cachesim::{CpuConfig, Hierarchy, MemoryAccess};
///
/// let mut h = Hierarchy::new(CpuConfig::skylake_desktop());
/// h.access(MemoryAccess::data_write(3, 0xdead_c0));
/// assert_eq!(h.llc_stats().read_accesses, 1); // write-allocate fill
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: CpuConfig,
    cores: Vec<CorePrivate>,
    llc: SetAssociativeCache,
    memory_reads: u64,
    memory_writes: u64,
    prefetches_issued: u64,
    snoop_invalidations: u64,
    dirty_forwards: u64,
}

impl Hierarchy {
    /// Creates an empty hierarchy for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.cores` is zero.
    #[must_use]
    pub fn new(config: CpuConfig) -> Self {
        assert!(config.cores > 0, "at least one core required");
        let cores = (0..config.cores)
            .map(|_| CorePrivate {
                l1i: SetAssociativeCache::new(config.l1i),
                l1d: SetAssociativeCache::new(config.l1d),
                l2: SetAssociativeCache::new(config.l2),
            })
            .collect();
        Self {
            config,
            cores,
            llc: SetAssociativeCache::new(config.llc),
            memory_reads: 0,
            memory_writes: 0,
            prefetches_issued: 0,
            snoop_invalidations: 0,
            dirty_forwards: 0,
        }
    }

    /// The CPU configuration.
    #[must_use]
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Routes one access through the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the access names a core outside the configuration.
    pub fn access(&mut self, access: MemoryAccess) {
        let core_idx = usize::from(access.core);
        assert!(
            core_idx < self.cores.len(),
            "core {} out of range",
            access.core
        );
        let is_write = access.kind.is_write();

        if self.config.coherence && matches!(access.kind, AccessKind::DataWrite) {
            self.snoop_for_write(core_idx, access.address);
        }

        // L1 lookup.
        let l1_outcome = {
            let core = &mut self.cores[core_idx];
            let l1 = match access.kind {
                AccessKind::InstructionFetch => &mut core.l1i,
                AccessKind::DataRead | AccessKind::DataWrite => &mut core.l1d,
            };
            l1.access(access.address, is_write)
        };
        let AccessOutcome::Miss { writeback: l1_wb } = l1_outcome else {
            return;
        };
        if self.config.coherence && matches!(access.kind, AccessKind::DataRead) {
            self.snoop_for_read(core_idx, access.address);
        }
        if let Some(victim) = l1_wb {
            // Dirty L1 victim lands in the L2.
            self.l2_access(core_idx, victim, true);
        }
        // The L1 fill itself: a read of the L2 (even for stores — the
        // line is fetched, then dirtied in L1).
        self.l2_access(core_idx, access.address, false);
    }

    /// Write-invalidate snoop: remote copies of the line are invalidated
    /// before the local write; a dirty remote copy is written back to
    /// the shared LLC first.
    fn snoop_for_write(&mut self, writer: usize, address: u64) {
        let mut dirty_remote = false;
        for (idx, core) in self.cores.iter_mut().enumerate() {
            if idx == writer {
                continue;
            }
            for cache in [&mut core.l1d, &mut core.l2] {
                if let Some(was_dirty) = cache.invalidate(address) {
                    self.snoop_invalidations += 1;
                    dirty_remote |= was_dirty;
                }
            }
        }
        if dirty_remote {
            self.dirty_forwards += 1;
            self.llc_access(address, true);
        }
    }

    /// Read snoop: a dirty remote copy is forwarded through the LLC and
    /// downgraded to clean.
    fn snoop_for_read(&mut self, reader: usize, address: u64) {
        let mut forwarded = false;
        for (idx, core) in self.cores.iter_mut().enumerate() {
            if idx == reader {
                continue;
            }
            for cache in [&mut core.l1d, &mut core.l2] {
                if cache.probe(address) == Some(true) {
                    cache.clean(address);
                    forwarded = true;
                }
            }
        }
        if forwarded {
            self.dirty_forwards += 1;
            self.llc_access(address, true);
        }
    }

    fn l2_access(&mut self, core_idx: usize, address: u64, is_write: bool) {
        let outcome = self.cores[core_idx].l2.access(address, is_write);
        let AccessOutcome::Miss { writeback } = outcome else {
            return;
        };
        if let Some(victim) = writeback {
            self.llc_access(victim, true);
        }
        self.llc_access(address, false);
        // A demand read miss trains the next-line prefetcher.
        if !is_write && self.config.prefetch_degree > 0 {
            let line = u64::from(self.config.l2.line_bytes);
            for k in 1..=u64::from(self.config.prefetch_degree) {
                let target = address.wrapping_add(k * line);
                if self.cores[core_idx].l2.probe(target).is_none() {
                    self.prefetches_issued += 1;
                    let outcome = self.cores[core_idx].l2.access(target, false);
                    if let AccessOutcome::Miss { writeback } = outcome {
                        if let Some(victim) = writeback {
                            self.llc_access(victim, true);
                        }
                        self.llc_access(target, false);
                    }
                }
            }
        }
    }

    fn llc_access(&mut self, address: u64, is_write: bool) {
        let outcome = self.llc.access(address, is_write);
        let AccessOutcome::Miss { writeback } = outcome else {
            return;
        };
        if let Some(victim) = writeback {
            self.memory_writes += 1;
            self.back_invalidate(victim);
        } else if is_write {
            // A write-back that missed the (inclusive) LLC still
            // allocated; the data came from the L2, not memory.
        } else {
            self.memory_reads += 1;
        }
    }

    /// Maintains inclusion: when the LLC evicts a line, private copies
    /// are invalidated (dirty private copies are folded into the memory
    /// write already counted).
    fn back_invalidate(&mut self, address: u64) {
        for core in &mut self.cores {
            core.l1i.invalidate(address);
            core.l1d.invalidate(address);
            core.l2.invalidate(address);
        }
    }

    /// Statistics of the shared LLC.
    #[must_use]
    pub fn llc_stats(&self) -> &CacheStats {
        self.llc.stats()
    }

    /// Clears every statistics counter while keeping cache contents, so
    /// that measurement excludes cold-start warm-up.
    pub fn reset_stats(&mut self) {
        for core in &mut self.cores {
            core.l1i.reset_stats();
            core.l1d.reset_stats();
            core.l2.reset_stats();
        }
        self.llc.reset_stats();
        self.memory_reads = 0;
        self.memory_writes = 0;
        self.prefetches_issued = 0;
        self.snoop_invalidations = 0;
        self.dirty_forwards = 0;
    }

    /// Statistics of one core's private L2.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn l2_stats(&self, core: u8) -> &CacheStats {
        self.cores[usize::from(core)].l2.stats()
    }

    /// Statistics of one core's L1 data cache.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn l1d_stats(&self, core: u8) -> &CacheStats {
        self.cores[usize::from(core)].l1d.stats()
    }

    /// Main-memory reads (LLC read misses).
    #[must_use]
    pub fn memory_reads(&self) -> u64 {
        self.memory_reads
    }

    /// Main-memory writes (LLC dirty evictions).
    #[must_use]
    pub fn memory_writes(&self) -> u64 {
        self.memory_writes
    }

    /// Prefetches issued by the L2 next-line prefetcher.
    #[must_use]
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetches_issued
    }

    /// Remote copies invalidated by write snoops.
    #[must_use]
    pub fn snoop_invalidations(&self) -> u64 {
        self.snoop_invalidations
    }

    /// Dirty lines forwarded between cores through the LLC.
    #[must_use]
    pub fn dirty_forwards(&self) -> u64 {
        self.dirty_forwards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> Hierarchy {
        Hierarchy::new(CpuConfig::skylake_desktop())
    }

    #[test]
    fn l1_hit_never_reaches_llc() {
        let mut h = hierarchy();
        h.access(MemoryAccess::data_read(0, 0x1000));
        let llc_after_first = h.llc_stats().accesses();
        h.access(MemoryAccess::data_read(0, 0x1000));
        assert_eq!(h.llc_stats().accesses(), llc_after_first);
    }

    #[test]
    fn cold_miss_walks_to_memory() {
        let mut h = hierarchy();
        h.access(MemoryAccess::data_read(0, 0x1000));
        assert_eq!(h.llc_stats().read_accesses, 1);
        assert_eq!(h.memory_reads(), 1);
        assert_eq!(h.memory_writes(), 0);
    }

    #[test]
    fn working_set_within_l2_stops_generating_llc_traffic() {
        let mut h = hierarchy();
        // 256 KiB working set fits in the 512 KiB L2.
        let lines = 256 * 1024 / 64;
        for round in 0..3 {
            for i in 0..lines {
                h.access(MemoryAccess::data_read(0, i * 64));
            }
            if round == 0 {
                assert_eq!(h.llc_stats().read_accesses, lines);
            }
        }
        // After the first sweep, everything hits in L1/L2.
        assert_eq!(h.llc_stats().read_accesses, lines);
    }

    #[test]
    fn writes_eventually_produce_llc_writebacks() {
        let mut h = hierarchy();
        // Stream 4 MiB of stores through a 512 KiB L2: dirty evictions
        // must land in the LLC as writes.
        let lines = 4 * 1024 * 1024 / 64;
        for i in 0..lines {
            h.access(MemoryAccess::data_write(0, i * 64));
        }
        assert!(h.llc_stats().write_accesses > 0);
        assert!(h.llc_stats().read_accesses >= lines);
    }

    #[test]
    fn streaming_past_llc_reaches_memory_and_back_invalidates() {
        let mut h = hierarchy();
        // 64 MiB stream overflows the 16 MiB LLC.
        let lines = 64 * 1024 * 1024 / 64;
        for i in 0..lines {
            h.access(MemoryAccess::data_write(0, i * 64));
        }
        assert!(h.memory_writes() > 0, "dirty LLC victims must reach memory");
    }

    #[test]
    fn cores_have_private_l1_l2() {
        let mut h = hierarchy();
        h.access(MemoryAccess::data_read(0, 0x1000));
        // Same line from another core misses its own privates but hits
        // the shared LLC.
        h.access(MemoryAccess::data_read(1, 0x1000));
        assert_eq!(h.llc_stats().read_accesses, 2);
        assert_eq!(h.llc_stats().hits, 1);
        assert_eq!(h.memory_reads(), 1);
    }

    #[test]
    fn instruction_fetches_use_l1i() {
        let mut h = hierarchy();
        h.access(MemoryAccess::fetch(0, 0x4000));
        h.access(MemoryAccess::fetch(0, 0x4000));
        assert_eq!(h.l1d_stats(0).accesses(), 0);
        assert_eq!(h.llc_stats().read_accesses, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_panics() {
        let mut h = hierarchy();
        h.access(MemoryAccess::data_read(200, 0));
    }

    #[test]
    fn write_snoop_invalidates_remote_copies() {
        let mut h = Hierarchy::new(CpuConfig::skylake_desktop().with_coherence());
        h.access(MemoryAccess::data_read(0, 0x1000));
        h.access(MemoryAccess::data_write(1, 0x1000));
        assert!(h.snoop_invalidations() > 0);
        // Core 0 must re-fetch the line now.
        let before = h.llc_stats().accesses();
        h.access(MemoryAccess::data_read(0, 0x1000));
        assert!(h.llc_stats().accesses() > before);
    }

    #[test]
    fn read_snoop_forwards_dirty_remote_data() {
        let mut h = Hierarchy::new(CpuConfig::skylake_desktop().with_coherence());
        h.access(MemoryAccess::data_write(0, 0x2000));
        h.access(MemoryAccess::data_read(1, 0x2000));
        assert_eq!(h.dirty_forwards(), 1);
        // The forward writes the data through the shared LLC.
        assert!(h.llc_stats().write_accesses >= 1);
    }

    #[test]
    fn coherence_off_means_no_snoops() {
        let mut h = hierarchy();
        h.access(MemoryAccess::data_read(0, 0x1000));
        h.access(MemoryAccess::data_write(1, 0x1000));
        assert_eq!(h.snoop_invalidations(), 0);
        assert_eq!(h.dirty_forwards(), 0);
    }

    #[test]
    fn prefetcher_pulls_next_lines_into_l2() {
        let mut with = Hierarchy::new(CpuConfig::skylake_desktop().with_prefetch(2));
        let mut without = hierarchy();
        // One demand miss at line 0 prefetches lines 1 and 2.
        with.access(MemoryAccess::data_read(0, 0));
        without.access(MemoryAccess::data_read(0, 0));
        assert_eq!(with.prefetches_issued(), 2);
        assert!(with.llc_stats().read_accesses > without.llc_stats().read_accesses);
        // The prefetched line now hits in L2: no new LLC access.
        let llc_before = with.llc_stats().accesses();
        with.access(MemoryAccess::data_read(0, 64));
        // (the hit on line 1 itself prefetches further lines, so allow
        // the prefetch traffic but require the demand access be a hit)
        assert!(with.l2_stats(0).hits >= 1 || with.llc_stats().accesses() >= llc_before);
        let l1_miss_fill_hit = with.l2_stats(0).hits;
        assert!(l1_miss_fill_hit >= 1, "prefetched line must hit in L2");
    }

    #[test]
    fn prefetching_reduces_demand_misses_on_streams() {
        let mut with = Hierarchy::new(CpuConfig::skylake_desktop().with_prefetch(4));
        let mut without = hierarchy();
        for i in 0..1000u64 {
            with.access(MemoryAccess::data_read(0, i * 64));
            without.access(MemoryAccess::data_read(0, i * 64));
        }
        let hit_rate_with = with.l2_stats(0).hit_rate();
        let hit_rate_without = without.l2_stats(0).hit_rate();
        assert!(
            hit_rate_with > hit_rate_without,
            "prefetching must raise the L2 hit rate on a stream: {hit_rate_with} vs {hit_rate_without}"
        );
    }
}
