//! Fig. 1: total LLC power of the client CPU running `namd` at
//! temperatures between 77 K and 387 K, relative to 350 K SRAM.

use coldtall_cell::MemoryTechnology;
use coldtall_core::report::{sci, TextTable};
use coldtall_core::{Explorer, MemoryConfig};
use coldtall_cryo::{study_temperatures, CoolingSystem};
use coldtall_workloads::benchmark;

/// Regenerates Fig. 1: one row per (technology, temperature) with total
/// LLC power relative to the 350 K SRAM reference — without cooling and
/// under each cryocooler capacity tier.
///
/// # Panics
///
/// Panics if the reference benchmark is missing (it never is).
#[must_use]
pub fn run() -> TextTable {
    let explorer = Explorer::with_defaults();
    let namd = benchmark("namd").expect("namd present");
    let mut table = TextTable::new(&[
        "technology",
        "temp_K",
        "rel_power_no_cooling",
        "rel_power_100kW",
        "rel_power_1kW",
        "rel_power_100W",
        "rel_power_10W",
    ]);
    for tech in [MemoryTechnology::Sram, MemoryTechnology::Edram3T] {
        for &t in study_temperatures() {
            let base = MemoryConfig::volatile_2d(tech, t);
            let no_cooling = explorer
                .evaluate(&base.clone().with_cooling(CoolingSystem::Server100kW), namd)
                .device_power
                / explorer.reference_power();
            let mut cells = vec![
                tech.name().to_string(),
                format!("{:.0}", t.get()),
                sci(no_cooling),
            ];
            for cooling in CoolingSystem::ALL {
                let eval = explorer.evaluate(&base.clone().with_cooling(cooling), namd);
                cells.push(sci(eval.relative_power));
            }
            table.row_owned(cells);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_both_technologies_across_the_sweep() {
        let table = run();
        assert_eq!(table.len(), 2 * study_temperatures().len());
    }

    #[test]
    fn csv_round_trips() {
        let table = run();
        let csv = table.to_csv();
        assert_eq!(csv.lines().count(), table.len() + 1);
    }
}
