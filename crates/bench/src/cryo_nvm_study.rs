//! Extension study: cryogenic STT-MRAM across the temperature ladder.
//!
//! Sweeps both STT-RAM tentpoles over 1/2/4/8 dies and the full study
//! temperature ladder (77-387 K), reporting the Δ(T) thermal
//! stability, the retention it implies, the write-energy inflation the
//! cryogenic switching-current rise costs, and the suite-mean relative
//! power/latency from the exhaustive sweep. The `frontier` column
//! marks design points the adaptive search keeps on the Pareto front —
//! the search and the exhaustive extraction are bit-identical over
//! this region (asserted by `tests/search.rs`), so either path
//! regenerates the same bytes.

use std::collections::BTreeSet;

use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
use coldtall_core::report::{sci, TextTable};
use coldtall_core::{Constraints, Explorer, MemoryConfig};
use coldtall_workloads::spec2017;

/// One row per (tentpole, dies, temperature) point of the cryo-NVM
/// region, in [`MemoryConfig::cryo_stt_study_set`] order.
#[must_use]
pub fn run() -> TextTable {
    let explorer = Explorer::with_defaults();
    let configs = MemoryConfig::cryo_stt_study_set();

    // Exhaustive path: one batched sweep of the region under the full
    // SPEC2017 suite, rows in config-major order.
    let rows = explorer.sweep_configs(&configs);
    let suite = spec2017().len();
    assert_eq!(rows.len(), configs.len() * suite);

    // Adaptive path over the same region: the frontier labels mark
    // which design points survive to the Pareto front.
    let outcome = explorer
        .search("cryo-STT region", &configs, &Constraints::none())
        .expect("the cryo-STT region resolves and searches");
    let on_frontier: BTreeSet<&str> = outcome
        .frontier
        .iter()
        .map(|row| row.config_label.as_str())
        .collect();

    let mut table = TextTable::new(&[
        "tentpole",
        "dies",
        "temp_k",
        "delta",
        "retention_s",
        "write_energy_x",
        "rel_power",
        "rel_latency",
        "frontier",
    ]);
    for (config, evals) in configs.iter().zip(rows.chunks_exact(suite)) {
        let cell = CellModel::tentpole(
            MemoryTechnology::SttRam,
            config.tentpole(),
            explorer.node(),
        );
        let t = config.temperature();
        let thermal = cell
            .mtj_thermal(t)
            .expect("STT-RAM cells model an MTJ junction");
        let rel_power = evals.iter().map(|e| e.relative_power).sum::<f64>() / suite as f64;
        let rel_latency = evals.iter().map(|e| e.relative_latency).sum::<f64>() / suite as f64;
        table.row_owned(vec![
            match config.tentpole() {
                Tentpole::Optimistic => "optimistic".to_string(),
                Tentpole::Pessimistic => "pessimistic".to_string(),
            },
            config.dies().to_string(),
            format!("{:.0}", t.get()),
            sci(thermal.delta),
            sci(thermal.retention.get()),
            sci(thermal.write_energy_factor),
            sci(rel_power),
            sci(rel_latency),
            if on_frontier.contains(config.label().as_str()) {
                "yes".to_string()
            } else {
                "no".to_string()
            },
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_full_region_with_a_nonempty_frontier() {
        let table = run();
        // 2 tentpoles x 4 die counts x 8 temperatures.
        assert_eq!(table.len(), 2 * 4 * 8);
        let csv = table.to_csv();
        assert!(
            csv.lines().any(|l| l.ends_with(",yes")),
            "some cryo-STT point must sit on the Pareto front"
        );
    }

    #[test]
    fn delta_and_write_energy_shift_monotonically_with_temperature() {
        let csv = run().to_csv();
        // The first group (optimistic, 1 die) walks 77 K -> 387 K:
        // Δ(T) falls, and the write-energy inflation relaxes toward 1.
        let rows: Vec<Vec<&str>> = csv
            .lines()
            .skip(1)
            .take(8)
            .map(|l| l.split(',').collect())
            .collect();
        assert_eq!(rows.len(), 8);
        for pair in rows.windows(2) {
            let delta: [f64; 2] = [pair[0][3].parse().unwrap(), pair[1][3].parse().unwrap()];
            let factor: [f64; 2] = [pair[0][5].parse().unwrap(), pair[1][5].parse().unwrap()];
            assert!(delta[0] > delta[1], "Δ(T) must fall as T rises");
            assert!(factor[0] > factor[1], "write energy must relax as T rises");
        }
    }
}
