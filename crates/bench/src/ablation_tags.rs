//! Ablation: the tag store's share of the LLC.
//!
//! Real LLCs pair the data array with an SRAM tag store (the 16 MiB /
//! 64 B cache needs 256 Ki tags of ~48 bits: address tag, state, ECC —
//! about 1.5 MiB). Tags are latency-critical and always SRAM, even when
//! the data array is an eNVM, so they set a floor on leakage and
//! lookup latency that pure data-array comparisons hide. This study
//! quantifies that floor for each technology.

use coldtall_array::{ArrayCharacterization, ArraySpec, Objective};
use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
use coldtall_core::report::{sci, TextTable};
use coldtall_tech::ProcessNode;
use coldtall_units::Capacity;

/// Tag entry width: ~26 address bits + way/state + SECDED, per 64 B line.
const TAG_BITS_PER_LINE: u64 = 48;

/// Builds the SRAM tag store paired with a 16 MiB data array.
fn tag_store(node: &ProcessNode) -> ArrayCharacterization {
    let lines = Capacity::from_mebibytes(16).bytes() / 64;
    let tag_capacity = Capacity::from_bits(lines * TAG_BITS_PER_LINE);
    ArraySpec::new(CellModel::sram(node), node, tag_capacity)
        .with_line_bits(u32::try_from(TAG_BITS_PER_LINE * 16).expect("fits"))
        .with_ecc(false)
        .characterize(Objective::ReadLatency)
}

/// One row per technology: the data array alone versus data + tags,
/// showing the tag store's share of leakage, lookup latency (serial
/// tag-then-data), and area.
#[must_use]
pub fn run() -> TextTable {
    let node = ProcessNode::ptm_22nm_hp();
    let tags = tag_store(&node);
    let mut table = TextTable::new(&[
        "technology",
        "tag_leak_share",
        "tag_latency_share_serial",
        "tag_area_share",
        "data_leakage_W",
        "tag_leakage_W",
    ]);
    for tech in [
        MemoryTechnology::Sram,
        MemoryTechnology::Edram3T,
        MemoryTechnology::Pcm,
        MemoryTechnology::SttRam,
        MemoryTechnology::Rram,
    ] {
        let cell = CellModel::tentpole(tech, Tentpole::Optimistic, &node);
        let data = ArraySpec::llc_16mib(cell, &node)
            .with_dies(if tech.is_nonvolatile() { 8 } else { 1 })
            .characterize(Objective::EnergyDelayProduct);
        let leak_share =
            tags.leakage_power.get() / (tags.leakage_power.get() + data.leakage_power.get());
        let latency_share =
            tags.read_latency.get() / (tags.read_latency.get() + data.read_latency.get());
        let area_share = tags.footprint.get() / (tags.footprint.get() + data.footprint.get());
        table.row_owned(vec![
            tech.name().to_string(),
            sci(leak_share),
            sci(latency_share),
            sci(area_share),
            sci(data.leakage_power.get()),
            sci(tags.leakage_power.get()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_five_technologies() {
        assert_eq!(run().len(), 5);
    }

    #[test]
    fn tag_store_is_modest_next_to_sram_but_dominates_envm_leakage() {
        let csv = run().to_csv();
        let share = |tech: &str| -> f64 {
            csv.lines()
                .find(|l| l.starts_with(&format!("{tech},")))
                .and_then(|l| l.split(',').nth(1))
                .unwrap()
                .parse()
                .unwrap()
        };
        // Tags are ~9% of a 16 MiB SRAM (1.5/17.5 MiB), so a small
        // leakage share next to the SRAM data array...
        assert!(share("SRAM") < 0.2, "SRAM tag share = {}", share("SRAM"));
        // ...but a large share of an eNVM LLC's total leakage, setting
        // the floor the eNVM cannot undercut.
        assert!(share("PCM") > 0.4, "PCM tag share = {}", share("PCM"));
    }

    #[test]
    fn tag_lookup_is_fast_relative_to_data() {
        let csv = run().to_csv();
        let latency_share: f64 = csv
            .lines()
            .find(|l| l.starts_with("SRAM,"))
            .and_then(|l| l.split(',').nth(2))
            .unwrap()
            .parse()
            .unwrap();
        assert!(latency_share < 0.5, "tag latency share = {latency_share}");
    }
}
