//! Runs the ablation_voltage study. Pass `--csv` for CSV output.

fn main() {
    coldtall_bench::emit("ablation_voltage", &coldtall_bench::ablation_voltage::run());
}
