//! Runs the ablation_node study. Pass `--csv` for CSV output.

fn main() {
    coldtall_bench::emit("ablation_node", &coldtall_bench::ablation_node::run());
}
