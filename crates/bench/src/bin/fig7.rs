//! Regenerates the paper's fig7 data series. Pass `--csv` for CSV output.

fn main() {
    coldtall_bench::emit("fig7", &coldtall_bench::fig7::run());
}
