//! Runs the ablation_stacking study. Pass `--csv` for CSV output.

fn main() {
    coldtall_bench::emit(
        "ablation_stacking",
        &coldtall_bench::ablation_stacking::run(),
    );
}
