//! Runs the cryo_nvm_study study. Pass `--csv` for CSV output.

fn main() {
    coldtall_bench::emit("cryo_nvm_study", &coldtall_bench::cryo_nvm_study::run());
}
