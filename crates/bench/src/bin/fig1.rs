//! Regenerates the paper's fig1 data series. Pass `--csv` for CSV output.

fn main() {
    coldtall_bench::emit("fig1", &coldtall_bench::fig1::run());
}
