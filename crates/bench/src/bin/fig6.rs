//! Regenerates the paper's fig6 data series. Pass `--csv` for CSV output.

fn main() {
    coldtall_bench::emit("fig6", &coldtall_bench::fig6::run());
}
