//! Runs the dynamic_temperature study. Pass `--csv` for CSV output.

fn main() {
    coldtall_bench::emit(
        "dynamic_temperature",
        &coldtall_bench::dynamic_temperature::run(),
    );
}
