//! Runs the ablation_tags study. Pass `--csv` for CSV output.

fn main() {
    coldtall_bench::emit("ablation_tags", &coldtall_bench::ablation_tags::run());
}
