//! Runs the hybrid_study study. Pass `--csv` for CSV output.

fn main() {
    coldtall_bench::emit("hybrid_study", &coldtall_bench::hybrid_study::run());
}
