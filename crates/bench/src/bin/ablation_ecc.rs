//! Runs the ablation_ecc study. Pass `--csv` for CSV output.

fn main() {
    coldtall_bench::emit("ablation_ecc", &coldtall_bench::ablation_ecc::run());
}
