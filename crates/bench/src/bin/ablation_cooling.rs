//! Runs the ablation_cooling study. Pass `--csv` for CSV output.

fn main() {
    coldtall_bench::emit("ablation_cooling", &coldtall_bench::ablation_cooling::run());
}
