//! Regenerates the paper's fig5 data series. Pass `--csv` for CSV output.

fn main() {
    coldtall_bench::emit("fig5", &coldtall_bench::fig5::run());
}
