//! Regenerates the paper's fig4 data series. Pass `--csv` for CSV output.

fn main() {
    coldtall_bench::emit("fig4", &coldtall_bench::fig4::run());
}
