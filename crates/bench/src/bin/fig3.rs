//! Regenerates the paper's fig3 data series. Pass `--csv` for CSV output.

fn main() {
    coldtall_bench::emit("fig3", &coldtall_bench::fig3::run());
}
