//! Timing harness: sequential versus parallel design-space sweeps.
//!
//! Two workloads, each swept twice — pinned to one thread at every
//! level, then on the full worker pool — with the results verified
//! bit-identical between the paths:
//!
//! * `study` — the paper's full study set under every SPEC2017
//!   benchmark (31 x 23 = 713 rows),
//! * `study_x_temps` — the study set expanded across the eight study
//!   temperatures (the Fig. 1/Fig. 3 axis), multiplying the number of
//!   distinct characterizations by ~8x so the pool has enough work to
//!   amortize thread startup.
//!
//! Prints the wall-clock comparison and writes `BENCH_sweep.json` so
//! future PRs have a perf trajectory.
//!
//! Usage: `bench_sweep [--iters N] [--out PATH]`

// A harness binary: warnings go to stderr so `--out -`-style stdout
// redirection stays clean.
#![allow(clippy::print_stderr)]

use std::time::Instant;

use coldtall_bench::timing::JsonObject;
use coldtall_core::{pool, Explorer, LlcEvaluation, MemoryConfig};
use coldtall_workloads::spec2017;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Times cold sweeps: fresh explorer (empty cache) each iteration, so
/// every run includes the expensive characterization phase.
fn timed_sweep(
    iters: u32,
    configs: &[MemoryConfig],
    sweep: impl Fn(&Explorer, &[MemoryConfig]) -> Vec<LlcEvaluation>,
) -> (f64, Vec<LlcEvaluation>) {
    // Warmup iteration (first touch of lazily initialized statics).
    let mut rows = sweep(&Explorer::with_defaults(), configs);
    let start = Instant::now();
    for _ in 0..iters {
        rows = sweep(&Explorer::with_defaults(), configs);
    }
    (start.elapsed().as_secs_f64() / f64::from(iters), rows)
}

/// One sequential-vs-parallel comparison over `configs`.
fn compare(label: &str, iters: u32, configs: &[MemoryConfig], json: &mut JsonObject) -> bool {
    // Sequential reference: one thread at every level (outer sweep and
    // inner organization search alike).
    pool::set_max_threads(1);
    let (seq_secs, seq_rows) = timed_sweep(iters, configs, Explorer::sweep_configs_seq);

    // Parallel: restore auto-detection.
    pool::set_max_threads(0);
    let threads = pool::max_threads();
    let (par_secs, par_rows) = timed_sweep(iters, configs, Explorer::par_sweep_configs);

    let identical = seq_rows == par_rows;
    let speedup = seq_secs / par_secs;

    println!(
        "# {label}: {} configs x {} benchmarks = {} rows",
        configs.len(),
        spec2017().len(),
        seq_rows.len()
    );
    println!("  sequential (1 thread)  {:>10.3} ms", seq_secs * 1e3);
    println!(
        "  parallel ({threads} threads)   {:>10.3} ms",
        par_secs * 1e3
    );
    println!("  speedup                {speedup:>10.2}x");
    println!("  identical results      {identical:>10}");

    json.number(&format!("{label}_rows"), seq_rows.len() as f64)
        .number(&format!("{label}_sequential_secs"), seq_secs)
        .number(&format!("{label}_parallel_secs"), par_secs)
        .number(&format!("{label}_speedup"), speedup)
        .boolean(&format!("{label}_identical"), identical);
    identical
}

fn main() {
    let iters: u32 = arg_value("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_sweep.json".to_string());

    let study = MemoryConfig::study_set();
    // The temperature-expanded set: every study configuration at every
    // study temperature (duplicate labels near 350 K simply hit the
    // cache, as they would in a real figure regeneration).
    let expanded: Vec<MemoryConfig> = study
        .iter()
        .flat_map(|config| {
            coldtall_cryo::study_temperatures()
                .into_iter()
                .map(|t| config.clone().at_temperature(t))
        })
        .collect();

    let mut json = JsonObject::new();
    json.string("bench", "sweep_seq_vs_par")
        .number("iters", f64::from(iters))
        .number("threads_detected", pool::max_threads() as f64);

    let ok_study = compare("study", iters, &study, &mut json);
    let ok_expanded = compare("study_x_temps", iters, &expanded, &mut json);

    // Per-backend characterization tallies as their own flat section:
    // how the study's design points split between the CryoMEM and
    // Destiny paths, accumulated across every timed sweep above.
    let mut backends = JsonObject::new();
    for backend in coldtall_core::BackendRegistry::with_defaults().backends() {
        let name = backend.name();
        #[allow(clippy::cast_precision_loss)]
        let tally = coldtall_obs::global()
            .counter_value(&format!("backend.{name}.characterizations"))
            .unwrap_or(0) as f64;
        backends.number(&format!("{name}_characterizations"), tally);
    }
    json.raw("backends", &backends.render());

    // Fold the engine's telemetry (cache hit/miss, pool utilization,
    // span timings accumulated across every timed sweep above) into
    // the report, so the perf trajectory carries its own explanation.
    json.raw("metrics", &coldtall_obs::global().render_json());

    if let Err(err) = std::fs::write(&out, json.render()) {
        eprintln!("warning: could not write {out}: {err}");
    } else {
        println!("wrote {out}");
    }

    assert!(
        ok_study && ok_expanded,
        "parallel sweep diverged from the sequential reference"
    );
}
