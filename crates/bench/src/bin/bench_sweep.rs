//! Timing harness: sequential versus parallel design-space sweeps,
//! and per-point versus geometry-batched characterization.
//!
//! Two workloads, each swept twice — pinned to one thread at every
//! level, then on the full worker pool — with the results verified
//! bit-identical between the paths:
//!
//! * `study` — the paper's full study set under every SPEC2017
//!   benchmark (31 x 23 = 713 rows),
//! * `study_x_temps` — the study set expanded across the eight study
//!   temperatures (the Fig. 1/Fig. 3 axis), multiplying the number of
//!   distinct characterizations by ~8x so the pool has enough work to
//!   amortize thread startup.
//!
//! A third section (`batch`) isolates the two-phase characterization
//! kernel: the `study_x_temps` plan executed once with every
//! characterization dispatched individually
//! ([`Explorer::execute_per_point`]) and once geometry-batched
//! ([`Explorer::execute`]), both pinned to one thread so the
//! comparison measures the kernel, not the pool.
//!
//! A fourth section (`eval`) isolates the batch **evaluation** kernel
//! on a warm explorer (characterizations cached, so only row
//! production is measured): the full `study_x_temps` x SPEC2017 grid
//! evaluated once through the scalar per-row loop
//! ([`Explorer::evaluate`] per grid cell) and once through
//! [`evaluate_batch`] into a reused [`EvalArena`]. The same persistent
//! explorer then re-sweeps the grid shifted by +1 K, so the metrics
//! section records the geometry cache taking hits (a fresh explorer
//! per sweep never revisits a geometry, which is why `geometry.hits`
//! used to read zero here).
//!
//! A fifth section (`search`) compares the adaptive branch-and-bound
//! search ([`Explorer::search`]) against the exhaustive
//! sweep-then-filter frontier extraction on the `study_x_temps`
//! region, reporting wall time, points evaluated versus provably
//! skipped, and whether the two frontiers are bit-identical.
//!
//! Every number is a median over `--iters` individually timed
//! iterations after one untimed warmup, reported per row in
//! nanoseconds. Prints the comparison and writes `BENCH_sweep.json`
//! so future PRs have a perf trajectory.
//!
//! Usage: `bench_sweep [--iters N] [--out PATH]`

// A harness binary: warnings go to stderr so `--out -`-style stdout
// redirection stays clean.
#![allow(clippy::print_stderr)]

use coldtall_bench::timing::{time_median_pair, JsonObject};
use coldtall_core::{
    evaluate_batch, pareto_front, pool, Constraints, EvalArena, Explorer, LlcEvaluation,
    MemoryConfig,
};
use coldtall_units::Kelvin;
use coldtall_workloads::spec2017;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// One cold sweep: fresh explorer (empty cache), so every run includes
/// the expensive characterization phase.
fn cold_sweep(
    configs: &[MemoryConfig],
    sweep: impl Fn(&Explorer, &[MemoryConfig]) -> Vec<LlcEvaluation>,
) -> Vec<LlcEvaluation> {
    sweep(&Explorer::with_defaults(), configs)
}

/// One sequential-vs-parallel comparison over `configs`, iterations
/// interleaved (each round pins the pool to one thread for the
/// sequential run, then restores auto-detection for the parallel one).
fn compare(label: &str, iters: u32, configs: &[MemoryConfig], json: &mut JsonObject) -> bool {
    pool::set_max_threads(1);
    let seq_rows = cold_sweep(configs, Explorer::sweep_configs_seq);
    pool::set_max_threads(0);
    let threads = pool::max_threads();
    let par_rows = cold_sweep(configs, Explorer::par_sweep_configs);

    let (seq, par) = time_median_pair(
        ("sequential", "parallel"),
        iters,
        || {
            // Sequential reference: one thread at every level (outer
            // sweep and inner organization search alike).
            pool::set_max_threads(1);
            let rows = cold_sweep(configs, Explorer::sweep_configs_seq);
            pool::set_max_threads(0);
            rows
        },
        || cold_sweep(configs, Explorer::par_sweep_configs),
    );

    let identical = seq_rows == par_rows;
    let rows = seq_rows.len();
    let speedup = seq.median_secs() / par.median_secs();

    println!(
        "# {label}: {} configs x {} benchmarks = {rows} rows ({iters} iters, median)",
        configs.len(),
        spec2017().len(),
    );
    println!(
        "  sequential (1 thread)  {:>10.3} ms  {:>9.0} ns/row",
        seq.median_secs() * 1e3,
        seq.median_ns_per(rows)
    );
    println!(
        "  parallel ({threads} threads)   {:>10.3} ms  {:>9.0} ns/row",
        par.median_secs() * 1e3,
        par.median_ns_per(rows)
    );
    println!("  speedup                {speedup:>10.2}x");
    println!("  identical results      {identical:>10}");

    #[allow(clippy::cast_precision_loss)]
    json.number(&format!("{label}_rows"), rows as f64)
        .number(&format!("{label}_sequential_secs"), seq.median_secs())
        .number(&format!("{label}_parallel_secs"), par.median_secs())
        .number(
            &format!("{label}_sequential_ns_per_row"),
            seq.median_ns_per(rows),
        )
        .number(
            &format!("{label}_parallel_ns_per_row"),
            par.median_ns_per(rows),
        )
        .number(&format!("{label}_speedup"), speedup)
        .boolean(&format!("{label}_identical"), identical);
    identical
}

/// Per-point versus geometry-batched execution of one plan, pinned to
/// a single thread so the two-phase kernel — not the pool — is what
/// gets measured. Fresh explorer per iteration: both paths pay the
/// full characterization phase every time. The plan carries a single
/// benchmark — the evaluation grid is identical between the paths, so
/// a full grid would only dilute the kernel difference under noise.
fn compare_batch(iters: u32, configs: &[MemoryConfig], json: &mut JsonObject) -> bool {
    pool::set_max_threads(1);
    let namd = coldtall_workloads::benchmark("namd").expect("namd profile exists");
    let plan = coldtall_core::SweepPlan::new(configs.to_vec())
        .with_benchmarks(std::slice::from_ref(namd))
        .compile(&coldtall_core::BackendRegistry::with_defaults())
        .expect("study configs resolve");
    let run = |execute: fn(&Explorer, &coldtall_core::ExecutionPlan) -> Vec<LlcEvaluation>| {
        let explorer = Explorer::with_defaults();
        execute(&explorer, &plan)
    };
    let per_point_rows = run(Explorer::execute_per_point);
    let batched_rows = run(Explorer::execute);
    let identical = per_point_rows == batched_rows;
    let rows = batched_rows.len();

    let (per_point, batched) = time_median_pair(
        ("per_point", "batched"),
        iters,
        || run(Explorer::execute_per_point),
        || run(Explorer::execute),
    );
    pool::set_max_threads(0);

    let speedup = per_point.median_secs() / batched.median_secs();
    println!("# batch: study_x_temps plan, 1 thread ({iters} iters, median)");
    println!(
        "  per-point dispatch     {:>10.3} ms  {:>9.0} ns/row",
        per_point.median_secs() * 1e3,
        per_point.median_ns_per(rows)
    );
    println!(
        "  geometry-batched       {:>10.3} ms  {:>9.0} ns/row",
        batched.median_secs() * 1e3,
        batched.median_ns_per(rows)
    );
    println!("  speedup                {speedup:>10.2}x");
    println!("  identical results      {identical:>10}");

    let mut section = JsonObject::new();
    #[allow(clippy::cast_precision_loss)]
    section
        .number("rows", rows as f64)
        .number("per_point_ns_per_row", per_point.median_ns_per(rows))
        .number("batched_ns_per_row", batched.median_ns_per(rows))
        .number("speedup", speedup)
        .boolean("identical", identical);
    json.raw("batch", &section.render());
    identical
}

/// Scalar per-row loop versus the batch evaluation kernel over the
/// full grid, on one warm persistent explorer (every characterization
/// cached up front, arena reused across iterations) pinned to a single
/// thread: what gets measured is row production, not geometry solving.
///
/// The warm persistent explorer also exercises the geometry cache the
/// way a long-lived service would: after the timed comparison the same
/// explorer sweeps the grid shifted by +1 K — all-new characterization
/// keys over all-cached geometry keys — so the report's metrics
/// section shows nonzero `geometry.hits`.
fn compare_eval(iters: u32, configs: &[MemoryConfig], json: &mut JsonObject) -> bool {
    pool::set_max_threads(1);
    let explorer = Explorer::with_defaults();
    let plan = explorer.plan_sweep(configs).expect("study configs resolve");
    let reference = explorer.execute(&plan); // warms every characterization
    let rows = reference.len();

    let mut arena = EvalArena::new();
    let (per_row, batched) = time_median_pair(
        ("per_row", "batched"),
        iters,
        || -> Vec<LlcEvaluation> {
            configs
                .iter()
                .flat_map(|config| spec2017().iter().map(|b| explorer.evaluate(config, b)))
                .collect()
        },
        || evaluate_batch(&explorer, &plan, &mut arena),
    );
    let identical = arena.to_rows() == reference;

    // The +1 K re-sweep: new temperatures, warm geometries.
    let shifted: Vec<MemoryConfig> = configs
        .iter()
        .map(|config| {
            config
                .clone()
                .at_temperature(Kelvin::new(config.temperature().get() + 1.0))
        })
        .collect();
    let shifted_plan = explorer.plan_sweep(&shifted).expect("shifted configs resolve");
    let _ = explorer.execute(&shifted_plan);
    pool::set_max_threads(0);

    let speedup = per_row.median_secs() / batched.median_secs();
    println!("# eval: warm study_x_temps grid, 1 thread ({iters} iters, median)");
    println!(
        "  scalar per-row loop    {:>10.3} ms  {:>9.0} ns/row",
        per_row.median_secs() * 1e3,
        per_row.median_ns_per(rows)
    );
    println!(
        "  batched kernel         {:>10.3} ms  {:>9.0} ns/row",
        batched.median_secs() * 1e3,
        batched.median_ns_per(rows)
    );
    println!("  speedup                {speedup:>10.2}x");
    println!("  identical results      {identical:>10}");

    let mut section = JsonObject::new();
    #[allow(clippy::cast_precision_loss)]
    section
        .number("rows", rows as f64)
        .number("per_row_ns_per_row", per_row.median_ns_per(rows))
        .number("batched_ns_per_row", batched.median_ns_per(rows))
        .number("speedup", speedup)
        .boolean("identical", identical);
    json.raw("eval", &section.render());
    identical
}

/// Adaptive branch-and-bound search versus the exhaustive
/// sweep-then-filter frontier extraction, both from a cold explorer so
/// each pays its own characterization phase: the exhaustive path
/// characterizes every plane and filters at the end, the adaptive path
/// bounds regions first and refines only the survivors. Returns `true`
/// only if the two frontiers are bit-identical *and* the search
/// actually avoided work (skipped points, evaluated strictly fewer
/// rows than the grid holds).
fn compare_search(iters: u32, configs: &[MemoryConfig], json: &mut JsonObject) -> bool {
    let search = || {
        Explorer::with_defaults()
            .search("study_x_temps", configs, &Constraints::none())
            .expect("the study region searches")
    };
    let exhaustive_front = pareto_front(&cold_sweep(configs, Explorer::par_sweep_configs));
    let outcome = search();
    let identical = outcome.frontier == exhaustive_front;
    let stats = outcome.stats;
    let avoided = stats.points_skipped > 0 && stats.points_evaluated < stats.rows_total;

    let (exhaustive, adaptive) = time_median_pair(
        ("exhaustive", "adaptive"),
        iters,
        || pareto_front(&cold_sweep(configs, Explorer::par_sweep_configs)),
        || search().frontier,
    );

    let rows = stats.rows_total as usize;
    let speedup = exhaustive.median_secs() / adaptive.median_secs();
    println!("# search: study_x_temps region, adaptive vs exhaustive ({iters} iters, median)");
    println!(
        "  exhaustive + filter    {:>10.3} ms  {:>9.0} ns/row",
        exhaustive.median_secs() * 1e3,
        exhaustive.median_ns_per(rows)
    );
    println!(
        "  adaptive search        {:>10.3} ms  {:>9.0} ns/row",
        adaptive.median_secs() * 1e3,
        adaptive.median_ns_per(rows)
    );
    println!("  speedup                {speedup:>10.2}x");
    println!(
        "  points evaluated       {:>10} of {rows} ({} skipped: {} infeasible, {} pruned)",
        stats.points_evaluated, stats.points_skipped, stats.skipped_infeasible, stats.skipped_pruned
    );
    println!("  identical frontier     {identical:>10}");

    let mut section = JsonObject::new();
    #[allow(clippy::cast_precision_loss)]
    section
        .number("rows", rows as f64)
        .number("exhaustive_secs", exhaustive.median_secs())
        .number("adaptive_secs", adaptive.median_secs())
        .number("speedup", speedup)
        .number("points_evaluated", stats.points_evaluated as f64)
        .number("points_skipped", stats.points_skipped as f64)
        .number("skipped_infeasible", stats.skipped_infeasible as f64)
        .number("skipped_pruned", stats.skipped_pruned as f64)
        .number("regions_expanded", stats.regions_expanded as f64)
        .number("regions_pruned", stats.regions_pruned as f64)
        .number("frontier_points", outcome.frontier.len() as f64)
        .boolean("identical", identical);
    json.raw("search", &section.render());
    identical && avoided
}

fn main() {
    let iters: u32 = arg_value("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_sweep.json".to_string());

    let study = MemoryConfig::study_set();
    // The temperature-expanded set: every study configuration at every
    // study temperature (duplicate labels near 350 K simply hit the
    // cache, as they would in a real figure regeneration).
    let expanded: Vec<MemoryConfig> = study
        .iter()
        .flat_map(|config| {
            coldtall_cryo::study_temperatures()
                .iter()
                .map(|&t| config.clone().at_temperature(t))
        })
        .collect();

    let mut json = JsonObject::new();
    #[allow(clippy::cast_precision_loss)]
    json.string("bench", "sweep_seq_vs_par")
        .number("iters", f64::from(iters))
        .number("threads_detected", pool::max_threads() as f64);

    let ok_study = compare("study", iters, &study, &mut json);
    let ok_expanded = compare("study_x_temps", iters, &expanded, &mut json);
    let ok_batch = compare_batch(iters, &expanded, &mut json);
    let ok_eval = compare_eval(iters, &expanded, &mut json);
    let ok_search = compare_search(iters, &expanded, &mut json);

    // Per-backend tallies as their own flat section: how the study's
    // design points split between the CryoMEM and Destiny paths
    // (characterizations actually dispatched, and resolutions the
    // overlap policy awarded), accumulated across every timed sweep
    // above.
    let mut backends = JsonObject::new();
    for backend in coldtall_core::BackendRegistry::with_defaults().backends() {
        let name = backend.name();
        #[allow(clippy::cast_precision_loss)]
        let tally = |suffix: &str| {
            coldtall_obs::global()
                .counter_value(&format!("backend.{name}.{suffix}"))
                .unwrap_or(0) as f64
        };
        backends
            .number(&format!("{name}_characterizations"), tally("characterizations"))
            .number(&format!("{name}_resolved"), tally("resolved"));
    }
    // Per-plane routing: every design point of the study plan and the
    // backend the registry's resolution policy picks for it.
    let study_plan = coldtall_core::SweepPlan::new(study.clone())
        .compile(&coldtall_core::BackendRegistry::with_defaults())
        .expect("study configs resolve");
    let mut planes = JsonObject::new();
    for job in study_plan.jobs() {
        planes.string(job.key().canonical(), job.backend());
    }
    backends.raw("resolved_planes", &planes.render());
    json.raw("backends", &backends.render());

    // Fold the engine's telemetry (cache hit/miss, pool utilization,
    // span timings accumulated across every timed sweep above) into
    // the report, so the perf trajectory carries its own explanation.
    json.raw("metrics", &coldtall_obs::global().render_json());

    if let Err(err) = std::fs::write(&out, json.render()) {
        eprintln!("warning: could not write {out}: {err}");
    } else {
        println!("wrote {out}");
    }

    assert!(
        ok_study && ok_expanded,
        "parallel sweep diverged from the sequential reference"
    );
    assert!(
        ok_batch,
        "geometry-batched execution diverged from the per-point reference"
    );
    assert!(
        ok_eval,
        "batch evaluation kernel diverged from the scalar per-row loop"
    );
    assert!(
        ok_search,
        "adaptive search diverged from the exhaustive frontier or avoided no work"
    );
}
