//! Runs the variation_study experiment. Pass `--csv` for CSV output.

fn main() {
    coldtall_bench::emit("variation_study", &coldtall_bench::variation_study::run());
}
