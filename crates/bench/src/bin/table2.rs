//! Regenerates the paper's table2 data series. Pass `--csv` for CSV output.

fn main() {
    coldtall_bench::emit("table2", &coldtall_bench::table2::run());
}
