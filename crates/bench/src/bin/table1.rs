//! Regenerates the paper's table1 data series. Pass `--csv` for CSV output.

fn main() {
    coldtall_bench::emit("table1", &coldtall_bench::table1::run());
}
