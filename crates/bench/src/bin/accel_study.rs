//! Runs the accel_study study. Pass `--csv` for CSV output.

fn main() {
    coldtall_bench::emit("accel_study", &coldtall_bench::accel_study::run());
}
