//! Future-work study: temperature as a dynamic design knob (Section VI).
//!
//! Builds a phased day-in-the-life workload from SPEC2017 profiles and
//! plans the energy-optimal temperature schedule, comparing dynamic
//! operation against the best fixed temperature under discrete and
//! continuously-tunable set-point regimes.

use coldtall_cell::MemoryTechnology;
use coldtall_core::report::{sci, TextTable};
use coldtall_core::{plan_schedule, Explorer, WorkloadPhase};
use coldtall_cryo::study_temperatures;
use coldtall_units::{Kelvin, Seconds};
use coldtall_workloads::benchmark;

fn phases() -> Vec<WorkloadPhase> {
    // A bursty duty cycle: long quiet stretches with compute bursts.
    [
        ("leela", 3600.0),
        ("mcf", 300.0),
        ("povray", 7200.0),
        ("lbm", 600.0),
        ("deepsjeng", 3600.0),
    ]
    .into_iter()
    .map(|(name, secs)| {
        WorkloadPhase::from_benchmark(
            benchmark(name).expect("benchmark present"),
            Seconds::new(secs),
        )
    })
    .collect()
}

/// Two rows per technology: the discrete-set-point schedule (77 K or
/// 350 K only) and the tunable-set-point schedule (the full study
/// sweep), with the planned temperatures and savings.
#[must_use]
pub fn run() -> TextTable {
    let explorer = Explorer::with_defaults();
    let phases = phases();
    let mut table = TextTable::new(&[
        "technology",
        "setpoints",
        "schedule_K",
        "transitions",
        "best_fixed_K",
        "dynamic_savings",
    ]);
    for tech in [MemoryTechnology::Sram, MemoryTechnology::Edram3T] {
        let cases: [(&str, Vec<Kelvin>); 2] = [
            ("77|350", vec![Kelvin::LN2, Kelvin::REFERENCE]),
            ("tunable", study_temperatures().to_vec()),
        ];
        for (label, candidates) in cases {
            let schedule = plan_schedule(&explorer, tech, &phases, &candidates);
            let temps: Vec<String> = schedule
                .temperatures
                .iter()
                .map(|t| format!("{:.0}", t.get()))
                .collect();
            table.row_owned(vec![
                tech.name().to_string(),
                label.to_string(),
                temps.join(">"),
                schedule.transitions().to_string(),
                format!("{:.0}", schedule.best_fixed_temperature.get()),
                sci(schedule.savings_fraction()),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_rows() {
        assert_eq!(run().len(), 4);
    }

    #[test]
    fn discrete_setpoints_reward_switching_tunable_ones_do_not() {
        let csv = run().to_csv();
        let sram_discrete = csv.lines().find(|l| l.starts_with("SRAM,77|350")).unwrap();
        let savings: f64 = sram_discrete.split(',').nth(5).unwrap().parse().unwrap();
        assert!(savings > 0.05, "discrete savings = {savings}");
        let sram_tunable = csv.lines().find(|l| l.starts_with("SRAM,tunable")).unwrap();
        let fixed: f64 = sram_tunable.split(',').nth(4).unwrap().parse().unwrap();
        assert!(
            (100.0..330.0).contains(&fixed),
            "tunable optimum must be intermediate: {fixed} K"
        );
    }
}
