//! Fig. 6: array-level characterization of 2D and 3D eNVMs (and stacked
//! SRAM) at 350 K, relative to 16 MiB 2D SRAM.

use coldtall_array::{ArraySpec, Objective};
use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
use coldtall_core::report::{sci, TextTable};
use coldtall_tech::ProcessNode;

/// Regenerates Fig. 6: one row per (technology, tentpole, die count)
/// with 2D footprint, read/write energy-per-bit, and read/write latency
/// relative to 1-die SRAM at 350 K.
#[must_use]
pub fn run() -> TextTable {
    let node = ProcessNode::ptm_22nm_hp();
    let objective = Objective::EnergyDelayProduct;
    let base = ArraySpec::llc_16mib(CellModel::sram(&node), &node).characterize(objective);

    let mut table = TextTable::new(&[
        "technology",
        "tentpole",
        "dies",
        "rel_area",
        "rel_read_energy_per_bit",
        "rel_write_energy_per_bit",
        "rel_read_latency",
        "rel_write_latency",
        "rel_leakage_power",
    ]);
    let techs = [
        MemoryTechnology::Sram,
        MemoryTechnology::Pcm,
        MemoryTechnology::SttRam,
        MemoryTechnology::Rram,
    ];
    for tech in techs {
        let tentpoles: &[Tentpole] = if tech == MemoryTechnology::Sram {
            &[Tentpole::Optimistic]
        } else {
            &Tentpole::BOTH
        };
        for &tentpole in tentpoles {
            for dies in [1u8, 2, 4, 8] {
                let cell = CellModel::tentpole(tech, tentpole, &node);
                let mut spec = ArraySpec::llc_16mib(cell, &node);
                if dies > 1 {
                    spec = spec.with_dies(dies);
                }
                let a = spec.characterize(objective);
                table.row_owned(vec![
                    tech.name().to_string(),
                    if tech == MemoryTechnology::Sram {
                        "-".to_string()
                    } else {
                        tentpole.to_string()
                    },
                    dies.to_string(),
                    sci(a.footprint / base.footprint),
                    sci(a.read_energy_per_bit() / base.read_energy_per_bit()),
                    sci(a.write_energy_per_bit() / base.write_energy_per_bit()),
                    sci(a.read_latency / base.read_latency),
                    sci(a.write_latency / base.write_latency),
                    sci(a.leakage_power / base.leakage_power),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_row_per_configuration() {
        // SRAM x 4 dies + 3 eNVMs x 2 tentpoles x 4 dies.
        assert_eq!(run().len(), 4 + 3 * 2 * 4);
    }
}
