//! Table I: key CPU model parameters.

use coldtall_cachesim::CpuConfig;
use coldtall_core::report::TextTable;

/// Regenerates Table I from the simulator's configuration (desktop-class
/// CPU based on an Intel Skylake at 22 nm).
#[must_use]
pub fn run() -> TextTable {
    let cfg = CpuConfig::skylake_desktop();
    let mut table = TextTable::new(&["parameter", "value"]);
    table.row(&["class", "Desktop (based on Intel Skylake)"]);
    table.row_owned(vec!["num. cores".into(), cfg.cores.to_string()]);
    table.row(&["process node", "22nm"]);
    table.row_owned(vec![
        "frequency".into(),
        format!("{:.0} GHz", cfg.frequency.get() / 1e9),
    ]);
    table.row_owned(vec!["L1I$".into(), cfg.l1i.capacity.to_string()]);
    table.row_owned(vec!["L1D$".into(), cfg.l1d.capacity.to_string()]);
    table.row_owned(vec!["L2$".into(), cfg.l2.capacity.to_string()]);
    table.row_owned(vec![
        "L3$".into(),
        format!("shared {}, {} ways", cfg.llc.capacity, cfg.llc.ways),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table_one() {
        let rendered = run().render();
        assert!(rendered.contains("8"));
        assert!(rendered.contains("5 GHz"));
        assert!(rendered.contains("32 KiB"));
        assert!(rendered.contains("512 KiB"));
        assert!(rendered.contains("shared 16 MiB, 16 ways"));
    }
}
