//! Extension study: Monte-Carlo variation between the tentpoles.
//!
//! The paper's tentpoles bound each technology's behaviour; this study
//! samples the space between them to show where the *distribution*
//! lies — e.g. whether the optimistic PCM corner that wins Table II is
//! an outlier or representative.

use coldtall_cell::MemoryTechnology;
use coldtall_core::report::{sci, TextTable};
use coldtall_core::{monte_carlo, VariationSummary};

const SAMPLES: usize = 60;

fn push(table: &mut TextTable, s: &VariationSummary) {
    table.row_owned(vec![
        s.technology.name().to_string(),
        s.dies.to_string(),
        format!(
            "{}/{}/{}",
            sci(s.read_latency.p5),
            sci(s.read_latency.p50),
            sci(s.read_latency.p95)
        ),
        format!(
            "{}/{}/{}",
            sci(s.write_latency.p5),
            sci(s.write_latency.p50),
            sci(s.write_latency.p95)
        ),
        format!(
            "{}/{}/{}",
            sci(s.read_energy.p5),
            sci(s.read_energy.p50),
            sci(s.read_energy.p95)
        ),
        format!("{}/{}/{}", sci(s.area.p5), sci(s.area.p50), sci(s.area.p95)),
    ]);
}

/// One row per (technology, die count): p5/p50/p95 of the key metrics
/// across 60 sampled cells, relative to 2D SRAM.
#[must_use]
pub fn run() -> TextTable {
    let mut table = TextTable::new(&[
        "technology",
        "dies",
        "read_latency_p5/50/95",
        "write_latency_p5/50/95",
        "read_energy_p5/50/95",
        "area_p5/50/95",
    ]);
    for tech in MemoryTechnology::ENVM_SET {
        for dies in [1u8, 8] {
            let summary = monte_carlo(tech, dies, SAMPLES, 0xC01D + u64::from(dies));
            push(&mut table, &summary);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_techs_two_die_counts() {
        assert_eq!(run().len(), 6);
    }

    #[test]
    fn median_pcm_area_is_well_below_sram() {
        let csv = run().to_csv();
        let pcm_row = csv
            .lines()
            .find(|l| l.starts_with("PCM,1"))
            .expect("PCM row present");
        let area_band = pcm_row.split(',').next_back().unwrap();
        let p50: f64 = area_band
            .trim_matches('"')
            .split('/')
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!(p50 < 0.3, "median PCM area = {p50}");
    }
}
