//! Ablation: error-correction strength.
//!
//! NVMExplorer's application inputs include fault-tolerance demands;
//! this study quantifies what stepping from no ECC through SECDED to a
//! BCH-class code costs each technology in area, energy, and latency.

use coldtall_array::{ArraySpec, EccScheme, Objective};
use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
use coldtall_core::report::{sci, TextTable};
use coldtall_tech::ProcessNode;

/// One row per (technology, scheme), relative to that technology's
/// no-ECC configuration.
#[must_use]
pub fn run() -> TextTable {
    let node = ProcessNode::ptm_22nm_hp();
    let objective = Objective::EnergyDelayProduct;
    let mut table = TextTable::new(&[
        "technology",
        "ecc",
        "correctable_bits",
        "rel_area",
        "rel_read_energy",
        "rel_read_latency",
    ]);
    for tech in [
        MemoryTechnology::Sram,
        MemoryTechnology::Pcm,
        MemoryTechnology::SttRam,
    ] {
        let cell = CellModel::tentpole(tech, Tentpole::Optimistic, &node);
        let bare = ArraySpec::llc_16mib(cell.clone(), &node)
            .with_ecc_scheme(EccScheme::None)
            .characterize(objective);
        for scheme in EccScheme::ALL {
            let a = ArraySpec::llc_16mib(cell.clone(), &node)
                .with_ecc_scheme(scheme)
                .characterize(objective);
            table.row_owned(vec![
                tech.name().to_string(),
                scheme.to_string(),
                scheme.correctable_bits().to_string(),
                sci(a.footprint / bare.footprint),
                sci(a.read_energy / bare.read_energy),
                sci(a.read_latency / bare.read_latency),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_techs_three_schemes() {
        assert_eq!(run().len(), 9);
    }

    #[test]
    fn stronger_codes_cost_more_area_and_energy() {
        let csv = run().to_csv();
        let col = |scheme: &str, idx: usize| -> f64 {
            csv.lines()
                .find(|l| l.starts_with("SRAM") && l.contains(scheme))
                .and_then(|l| l.split(',').nth(idx))
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(col("SECDED", 3) > col("no-ECC", 3));
        assert!(col("BCH", 3) > col("SECDED", 3));
        assert!(col("BCH", 4) > col("no-ECC", 4));
        // SECDED costs roughly its 12.5% storage overhead in area.
        let secded_area = col("SECDED", 3);
        assert!(
            (1.05..1.25).contains(&secded_area),
            "SECDED area = {secded_area}"
        );
    }
}
