//! Fig. 3: array-level characterization of 16 MiB SRAM and 3T-eDRAM
//! under varying operating temperature, relative to 350 K SRAM.

use coldtall_array::{ArraySpec, Objective};
use coldtall_cell::{CellModel, MemoryTechnology};
use coldtall_core::report::{sci, TextTable};
use coldtall_cryo::{characterize_at, study_temperatures};
use coldtall_tech::ProcessNode;
use coldtall_units::Kelvin;

/// Regenerates Fig. 3: read/write energy-per-bit, read/write latency,
/// and leakage power for SRAM and 3T-eDRAM from 77 K to 387 K, all
/// relative to SRAM at 350 K.
#[must_use]
pub fn run() -> TextTable {
    let node = ProcessNode::ptm_22nm_hp();
    let objective = Objective::EnergyDelayProduct;
    let base = ArraySpec::llc_16mib(CellModel::sram(&node), &node)
        .at_temperature(Kelvin::REFERENCE)
        .characterize(objective);

    let mut table = TextTable::new(&[
        "technology",
        "temp_K",
        "rel_read_energy_per_bit",
        "rel_write_energy_per_bit",
        "rel_read_latency",
        "rel_write_latency",
        "rel_leakage_power",
    ]);
    for tech in [MemoryTechnology::Sram, MemoryTechnology::Edram3T] {
        let cell = CellModel::tentpole(tech, coldtall_cell::Tentpole::Optimistic, &node);
        let spec = ArraySpec::llc_16mib(cell, &node);
        for &t in study_temperatures() {
            let a = characterize_at(&spec, t, objective);
            table.row_owned(vec![
                tech.name().to_string(),
                format!("{:.0}", t.get()),
                sci(a.read_energy_per_bit() / base.read_energy_per_bit()),
                sci(a.write_energy_per_bit() / base.write_energy_per_bit()),
                sci(a.read_latency / base.read_latency),
                sci(a.write_latency / base.write_latency),
                sci(a.leakage_power / base.leakage_power),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_both_technologies() {
        let table = run();
        assert_eq!(table.len(), 2 * study_temperatures().len());
    }
}
