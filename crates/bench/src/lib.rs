//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each submodule reproduces one evaluation artifact, returning a
//! [`coldtall_core::report::TextTable`] with the same rows/series the
//! paper plots. A thin binary per experiment (in `src/bin/`) prints the
//! table (pass `--csv` for machine-readable output); the integration
//! test suite asserts the paper's shape anchors on the same data.
//!
//! | binary | artifact |
//! |---|---|
//! | `fig1` | total LLC power vs temperature for `namd`, with cooling tiers |
//! | `fig3` | array characterization vs temperature (SRAM, 3T-eDRAM) |
//! | `fig4` | total LLC power for `namd` and `leela` at 350 K / 77 K / 77 K + cooling |
//! | `fig5` | total LLC power and latency across SPEC2017, cryo vs room temperature |
//! | `fig6` | 2D/3D eNVM array characterization at 350 K |
//! | `fig7` | total LLC power and latency across SPEC2017 for 2D/3D eNVMs |
//! | `table1` | CPU model parameters |
//! | `table2` | optimal LLC per traffic band and design target |
//!
//! Beyond the paper's artifacts, four ablation/extension studies:
//!
//! | binary | study |
//! |---|---|
//! | `ablation_node` | process-node scaling (45/32/22/16 nm) |
//! | `ablation_stacking` | 3D integration styles (F2F / F2B / monolithic) |
//! | `ablation_cooling` | cryocooler break-even capacity per benchmark |
//! | `ablation_ecc` | error-correction strength (none / SECDED / BCH) |
//! | `ablation_voltage` | 77 K supply-voltage sweep around the cryo policy |
//! | `ablation_tags` | the SRAM tag store's share of leakage/latency/area |
//! | `accel_study` | the future-work accelerator scenarios at 10 W cooling |
//! | `cryo_nvm_study` | Δ(T) STT-MRAM across 77-387 K × 1-8 dies, sweep + search |
//! | `hybrid_study` | SRAM + eNVM hybrid partitions (related work II-B) |
//! | `dynamic_temperature` | temperature as a dynamic knob (future work VI) |
//! | `variation_study` | Monte-Carlo sampling between the tentpoles |
//! | `bench_sweep` | sequential-vs-parallel sweep wall-clock (writes `BENCH_sweep.json`) |
//!
//! # Examples
//!
//! ```
//! let table = coldtall_bench::fig4::run();
//! assert!(!table.is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation_cooling;
pub mod ablation_ecc;
pub mod ablation_node;
pub mod ablation_stacking;
pub mod ablation_tags;
pub mod ablation_voltage;
pub mod accel_study;
pub mod cryo_nvm_study;
pub mod dynamic_temperature;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod hybrid_study;
pub mod table1;
pub mod table2;
pub mod timing;
pub mod variation_study;

use coldtall_core::report::TextTable;

/// Prints an experiment table to stdout, honouring a `--csv` argument.
///
/// This is the shared entry point of every experiment binary.
pub fn emit(title: &str, table: &TextTable) {
    let csv = std::env::args().any(|a| a == "--csv");
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("# {title}");
        println!();
        print!("{}", table.render());
    }
}
