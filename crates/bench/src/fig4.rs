//! Fig. 4: total LLC power for `namd` and `leela` at room temperature,
//! cryogenic temperature, and cryogenic temperature including cooling.

use coldtall_cell::MemoryTechnology;
use coldtall_core::report::{sci, TextTable};
use coldtall_core::{Explorer, MemoryConfig};
use coldtall_units::Kelvin;
use coldtall_workloads::benchmark;

/// Regenerates Fig. 4: for the `namd` and `leela` benchmarks and both
/// volatile technologies, total LLC power at 350 K, at 77 K without
/// cooling, and at 77 K including the 100 kW-class cooling overhead —
/// relative to 350 K SRAM running `namd`.
///
/// # Panics
///
/// Panics if either benchmark is missing (they never are).
#[must_use]
pub fn run() -> TextTable {
    let explorer = Explorer::with_defaults();
    let mut table = TextTable::new(&[
        "benchmark",
        "technology",
        "rel_power_350K",
        "rel_power_77K",
        "rel_power_77K_cooled",
    ]);
    for bench_name in ["namd", "leela"] {
        let bench = benchmark(bench_name).expect("benchmark present");
        for tech in [MemoryTechnology::Sram, MemoryTechnology::Edram3T] {
            let warm =
                explorer.evaluate(&MemoryConfig::volatile_2d(tech, Kelvin::REFERENCE), bench);
            let cold = explorer.evaluate(&MemoryConfig::volatile_2d(tech, Kelvin::LN2), bench);
            let cold_device_rel = cold.device_power / explorer.reference_power();
            table.row_owned(vec![
                bench_name.to_string(),
                tech.name().to_string(),
                sci(warm.relative_power),
                sci(cold_device_rel),
                sci(cold.relative_power),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_rows() {
        assert_eq!(run().len(), 4);
    }
}
