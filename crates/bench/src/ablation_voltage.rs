//! Ablation: cryogenic voltage scaling (CryoMEM's central idea).
//!
//! At 77 K the threshold voltage is retargeted downwards and the supply
//! follows. This study sweeps the 77 K supply voltage around the policy
//! point to show the trade: lower Vdd saves CV^2 dynamic energy until
//! the shrinking overdrive stalls the devices.

use coldtall_array::{ArraySpec, Objective};
use coldtall_cell::CellModel;
use coldtall_core::report::{sci, TextTable};
use coldtall_tech::{OperatingPoint, ProcessNode};
use coldtall_units::{Kelvin, Volts};

/// One row per supply point at 77 K, relative to the cryo-policy
/// default (0.76 V with the 0.35 V threshold retarget).
#[must_use]
pub fn run() -> TextTable {
    let node = ProcessNode::ptm_22nm_hp();
    let objective = Objective::EnergyDelayProduct;
    let cell = CellModel::sram(&node);
    let policy = ArraySpec::llc_16mib(cell.clone(), &node)
        .at_temperature_cryo(Kelvin::LN2)
        .characterize(objective);

    let mut table = TextTable::new(&[
        "vdd_V",
        "rel_read_energy",
        "rel_read_latency",
        "rel_leakage",
        "rel_read_edp",
    ]);
    for vdd_mv in (500..=900).step_by(50) {
        let vdd = Volts::new(f64::from(vdd_mv) / 1000.0);
        let op = OperatingPoint::custom(Kelvin::LN2, vdd, Some(Volts::new(0.35)));
        let a = ArraySpec::llc_16mib(cell.clone(), &node)
            .with_operating_point(op)
            .characterize(objective);
        table.row_owned(vec![
            format!("{:.2}", vdd.get()),
            sci(a.read_energy / policy.read_energy),
            sci(a.read_latency / policy.read_latency),
            sci(a.leakage_power / policy.leakage_power),
            sci(a.read_edp() / policy.read_edp()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_supply_points() {
        assert_eq!(run().len(), 9);
    }

    #[test]
    fn lower_vdd_saves_energy_but_costs_latency() {
        let csv = run().to_csv();
        let row = |vdd: &str| -> Vec<f64> {
            csv.lines()
                .find(|l| l.starts_with(vdd))
                .unwrap()
                .split(',')
                .skip(1)
                .map(|c| c.parse().unwrap())
                .collect()
        };
        let low = row("0.55");
        let high = row("0.90");
        assert!(low[0] < high[0], "energy must fall with Vdd");
        assert!(low[1] > high[1], "latency must rise as overdrive shrinks");
    }

    #[test]
    fn the_edp_optimum_is_near_the_policy_point() {
        // The cryo policy's 0.76 V choice should sit within ~25% of the
        // swept EDP minimum.
        let csv = run().to_csv();
        let edps: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(4).unwrap().parse().unwrap())
            .collect();
        let min = edps.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            min > 0.7,
            "policy EDP must be within 40% of the sweep optimum (min = {min})"
        );
    }
}
