//! Fig. 5: total LLC power and total LLC latency across the SPEC2017
//! suite at 77 K vs 350 K, relative to 350 K SRAM running `namd`
//! (power) and 350 K SRAM on the same benchmark (latency).

use coldtall_cell::MemoryTechnology;
use coldtall_core::report::{sci, TextTable};
use coldtall_core::{Explorer, MemoryConfig};
use coldtall_units::Kelvin;
use coldtall_workloads::spec2017;

/// The four configurations Fig. 5 plots.
fn configs() -> Vec<MemoryConfig> {
    vec![
        MemoryConfig::volatile_2d(MemoryTechnology::Sram, Kelvin::REFERENCE),
        MemoryConfig::volatile_2d(MemoryTechnology::Edram3T, Kelvin::REFERENCE),
        MemoryConfig::volatile_2d(MemoryTechnology::Sram, Kelvin::LN2),
        MemoryConfig::volatile_2d(MemoryTechnology::Edram3T, Kelvin::LN2),
    ]
}

/// Regenerates Fig. 5: one row per (benchmark, configuration) carrying
/// the traffic coordinates and the relative power (device-only and
/// including cooling) and relative latency series.
#[must_use]
pub fn run() -> TextTable {
    let explorer = Explorer::with_defaults();
    let mut table = TextTable::new(&[
        "benchmark",
        "reads_per_s",
        "writes_per_s",
        "config",
        "rel_power_no_cooling",
        "rel_power_cooled",
        "rel_latency",
    ]);
    for bench in spec2017() {
        for config in configs() {
            let eval = explorer.evaluate(&config, bench);
            let device_rel = eval.device_power / explorer.reference_power();
            table.row_owned(vec![
                bench.name.to_string(),
                sci(bench.traffic.reads_per_sec),
                sci(bench.traffic.writes_per_sec),
                eval.config_label.clone(),
                sci(device_rel),
                sci(eval.relative_power),
                sci(eval.relative_latency),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_suite_times_configs() {
        assert_eq!(run().len(), spec2017().len() * 4);
    }
}
