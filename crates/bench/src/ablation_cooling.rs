//! Ablation: how much cryocooler does it take to break even?
//!
//! Sweeps the continuous cooling-overhead model over plant capacities
//! and reports, per benchmark, the largest overhead factor at which the
//! 77 K 3T-eDRAM LLC still beats 350 K SRAM — and thus the smallest
//! cryocooler class that makes cryogenic operation pay.

use coldtall_core::report::{sci, TextTable};
use coldtall_core::{Explorer, MemoryConfig};
use coldtall_cryo::overhead_for_capacity;
use coldtall_units::Watts;
use coldtall_workloads::spec2017;

/// Break-even cooling factor per benchmark: `(warm power) / (77 K
/// device power)`, i.e. `1 + overhead` at parity, plus the smallest
/// surveyed plant capacity that achieves it.
#[must_use]
pub fn run() -> TextTable {
    let explorer = Explorer::with_defaults();
    let mut table = TextTable::new(&[
        "benchmark",
        "reads_per_s",
        "break_even_factor",
        "smallest_viable_plant_W",
    ]);
    for bench in spec2017() {
        let warm = explorer.evaluate(&MemoryConfig::sram_350k(), bench);
        let cold = explorer.evaluate(&MemoryConfig::edram_77k(), bench);
        // wall = device * (1 + f) <= warm  =>  f <= warm/device - 1.
        let break_even = warm.device_power / cold.device_power - 1.0;
        let plant = smallest_viable_plant(break_even);
        table.row_owned(vec![
            bench.name.to_string(),
            sci(bench.traffic.reads_per_sec),
            sci(break_even),
            plant.map_or_else(|| "none".to_string(), sci),
        ]);
    }
    table
}

/// Smallest plant capacity (watts) whose overhead is within the
/// break-even factor, searched over the survey's capacity range.
fn smallest_viable_plant(break_even_factor: f64) -> Option<f64> {
    let mut capacity = 10.0;
    while capacity <= 1.0e5 {
        if overhead_for_capacity(Watts::new(capacity)) <= break_even_factor {
            return Some(capacity);
        }
        capacity *= 1.25;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_suite() {
        assert_eq!(run().len(), 23);
    }

    #[test]
    fn quiet_workloads_break_even_on_any_cooler() {
        let csv = run().to_csv();
        let povray = csv.lines().find(|l| l.starts_with("povray")).unwrap();
        let factor: f64 = povray.split(',').nth(2).unwrap().parse().unwrap();
        assert!(factor > 39.6, "povray must tolerate even the 10 W tier");
        let plant = povray.split(',').nth(3).unwrap();
        let plant_w: f64 = plant.parse().unwrap();
        assert!(plant_w <= 10.0 + 1e-9);
    }

    #[test]
    fn busiest_workloads_cannot_break_even() {
        let csv = run().to_csv();
        let mcf = csv.lines().find(|l| l.starts_with("mcf")).unwrap();
        let factor: f64 = mcf.split(',').nth(2).unwrap().parse().unwrap();
        assert!(
            factor < 9.65,
            "mcf must not break even at any surveyed scale (factor = {factor})"
        );
        assert!(mcf.ends_with("none"));
    }
}
