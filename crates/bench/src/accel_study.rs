//! Future-work study: cryogenic LLCs for specialized accelerators.
//!
//! The paper's summary proposes cryogenic operation for "more
//! specialized computing systems and settings where memory traffic is
//! well-understood, relatively lower overall traffic" — this experiment
//! runs the accelerator traffic profiles against the full configuration
//! set under the *embedded* (10 W, 39.6x) cooling tier, the worst case
//! for cryogenics, and reports the winner per scenario.

use coldtall_core::report::{sci, TextTable};
use coldtall_core::{Constraints, Explorer, LlcEvaluation, MemoryConfig};
use coldtall_cryo::CoolingSystem;
use coldtall_workloads::accelerator_profiles;

/// Winner per accelerator scenario under embedded-scale cooling.
#[must_use]
pub fn run() -> TextTable {
    let explorer = Explorer::with_defaults();
    let configs: Vec<MemoryConfig> = MemoryConfig::study_set()
        .into_iter()
        .map(|c| c.with_cooling(CoolingSystem::Embedded10W))
        .collect();
    let mut table = TextTable::new(&[
        "scenario",
        "reads_per_s",
        "winner",
        "rel_power",
        "cryo_wins",
    ]);
    for bench in accelerator_profiles() {
        let evals: Vec<LlcEvaluation> = configs
            .iter()
            .map(|c| explorer.evaluate(c, &bench))
            .collect();
        let pick = coldtall_core::recommend(&evals, &Constraints::default())
            .expect("some configuration is always viable");
        let cryo_wins = pick.config_label.contains("77K");
        table.row_owned(vec![
            bench.name.to_string(),
            sci(bench.traffic.reads_per_sec),
            pick.config_label.clone(),
            sci(pick.relative_power),
            cryo_wins.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_scenarios() {
        assert_eq!(run().len(), 4);
    }

    #[test]
    fn cryo_wins_the_quiet_specialized_settings_even_at_10w_cooling() {
        let csv = run().to_csv();
        for quiet in ["sensor-fusion-space", "dnn-inference-edge"] {
            let row = csv.lines().find(|l| l.starts_with(quiet)).unwrap();
            assert!(
                row.contains("77K"),
                "{quiet}: cryo must win even under 39.6x cooling ({row})"
            );
        }
    }

    #[test]
    fn cryo_loses_the_streaming_accelerator() {
        let csv = run().to_csv();
        let row = csv.lines().find(|l| l.starts_with("graph-engine")).unwrap();
        assert!(
            !row.contains("77K"),
            "high-traffic accelerators should not pick cryo at 10 W scale ({row})"
        );
    }
}
