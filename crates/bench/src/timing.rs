//! Minimal std-only timing support for the bench binaries.
//!
//! The offline build cannot depend on criterion; this module provides
//! the slice of it the harness needs: warmup-then-measure wall-clock
//! timing with a stable report format, and a tiny JSON writer so runs
//! leave a machine-readable trail (`BENCH_sweep.json`) for tracking
//! the perf trajectory across PRs.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One timed measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    /// What was measured.
    pub label: String,
    /// Measured iterations (after one untimed warmup).
    pub iters: u32,
    /// Total wall-clock across the measured iterations.
    pub total: Duration,
}

impl Sample {
    /// Mean seconds per iteration.
    #[must_use]
    pub fn secs_per_iter(&self) -> f64 {
        self.total.as_secs_f64() / f64::from(self.iters.max(1))
    }
}

/// Runs `f` once untimed (warmup), then `iters` timed iterations, and
/// returns the measurement. The closure's result is passed through
/// [`std::hint::black_box`] so the optimizer cannot elide the work.
pub fn time<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) -> Sample {
    let _ = std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        let _ = std::hint::black_box(f());
    }
    Sample {
        label: label.to_string(),
        iters,
        total: start.elapsed(),
    }
}

/// Prints samples as an aligned two-column report.
pub fn report(title: &str, samples: &[Sample]) {
    println!("# {title}");
    let width = samples.iter().map(|s| s.label.len()).max().unwrap_or(0);
    for s in samples {
        println!(
            "{:width$}  {:>12.3} ms/iter  ({} iters)",
            s.label,
            s.secs_per_iter() * 1e3,
            s.iters,
        );
    }
}

/// A flat string/number JSON object writer (no external crates; the
/// harness only ever needs one nesting level).
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// Creates an empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        let escaped: String = value.chars().flat_map(char::escape_default).collect();
        self.fields
            .push((key.to_string(), format!("\"{escaped}\"")));
        self
    }

    /// Adds a numeric field.
    pub fn number(&mut self, key: &str, value: f64) -> &mut Self {
        // JSON has no NaN/inf; clamp to null for robustness.
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds a boolean field.
    pub fn boolean(&mut self, key: &str, value: bool) -> &mut Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Embeds a pre-rendered JSON value verbatim (used to fold the
    /// metrics registry's nested export into the flat report). The
    /// caller is responsible for `value` being valid JSON.
    pub fn raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.fields
            .push((key.to_string(), value.trim_end().to_string()));
        self
    }

    /// Renders the object with one field per line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            let comma = if i + 1 == self.fields.len() { "" } else { "," };
            let _ = writeln!(out, "  \"{key}\": {value}{comma}");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_counts_iterations() {
        let mut calls = 0u32;
        let sample = time("noop", 5, || calls += 1);
        // 1 warmup + 5 measured.
        assert_eq!(calls, 6);
        assert_eq!(sample.iters, 5);
        assert!(sample.secs_per_iter() >= 0.0);
    }

    #[test]
    fn json_renders_all_field_kinds() {
        let mut obj = JsonObject::new();
        obj.string("name", "sweep \"full\"")
            .number("seconds", 1.25)
            .number("bad", f64::NAN)
            .boolean("identical", true);
        let json = obj.render();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"seconds\": 1.25,"));
        assert!(json.contains("\"bad\": null,"));
        assert!(json.contains("\"identical\": true\n"));
        assert!(json.contains("\\\"full\\\""));
    }
}
