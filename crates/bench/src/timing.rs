//! Minimal std-only timing support for the bench binaries.
//!
//! The offline build cannot depend on criterion; this module provides
//! the slice of it the harness needs: warmup-then-measure wall-clock
//! timing with a stable report format, and a tiny JSON writer so runs
//! leave a machine-readable trail (`BENCH_sweep.json`) for tracking
//! the perf trajectory across PRs.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One timed measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    /// What was measured.
    pub label: String,
    /// Measured iterations (after one untimed warmup).
    pub iters: u32,
    /// Total wall-clock across the measured iterations.
    pub total: Duration,
}

impl Sample {
    /// Mean seconds per iteration.
    #[must_use]
    pub fn secs_per_iter(&self) -> f64 {
        self.total.as_secs_f64() / f64::from(self.iters.max(1))
    }
}

/// Runs `f` once untimed (warmup), then `iters` timed iterations, and
/// returns the measurement. The closure's result is passed through
/// [`std::hint::black_box`] so the optimizer cannot elide the work.
pub fn time<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) -> Sample {
    let _ = std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        let _ = std::hint::black_box(f());
    }
    Sample {
        label: label.to_string(),
        iters,
        total: start.elapsed(),
    }
}

/// Per-iteration wall-clock samples: one untimed warmup, then every
/// iteration timed individually, summarized by the median.
///
/// The median is the honest summary for a harness sharing a machine
/// with other work: one stray slow iteration (page cache miss, CPU
/// migration) shifts a mean but not the middle order statistic.
#[derive(Debug, Clone)]
pub struct MedianSample {
    /// What was measured.
    pub label: String,
    /// Individual measured iterations, in run order.
    pub runs: Vec<Duration>,
}

impl MedianSample {
    /// Median seconds per iteration (mean of the middle pair when the
    /// run count is even; `0.0` for an empty sample).
    #[must_use]
    pub fn median_secs(&self) -> f64 {
        let mut secs: Vec<f64> = self.runs.iter().map(Duration::as_secs_f64).collect();
        if secs.is_empty() {
            return 0.0;
        }
        secs.sort_by(f64::total_cmp);
        let mid = secs.len() / 2;
        if secs.len().is_multiple_of(2) {
            (secs[mid - 1] + secs[mid]) / 2.0
        } else {
            secs[mid]
        }
    }

    /// Median nanoseconds per work item, for `items` items per
    /// iteration (e.g. sweep rows).
    #[must_use]
    pub fn median_ns_per(&self, items: usize) -> f64 {
        #[allow(clippy::cast_precision_loss)] // row counts are tiny
        let items = (items.max(1)) as f64;
        self.median_secs() * 1e9 / items
    }
}

/// Runs `f` once untimed (warmup), then `iters` individually timed
/// iterations, and returns the per-iteration samples. The closure's
/// result is passed through [`std::hint::black_box`] so the optimizer
/// cannot elide the work.
pub fn time_median<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) -> MedianSample {
    let _ = std::hint::black_box(f());
    let runs = (0..iters.max(1))
        .map(|_| timed_run(&mut f))
        .collect();
    MedianSample {
        label: label.to_string(),
        runs,
    }
}

/// Times two workloads **interleaved**: one untimed warmup of each,
/// then `iters` rounds of (one `a` run, one `b` run), each timed
/// individually.
///
/// Interleaving is what makes an A-vs-B comparison honest on a shared
/// host: machine-speed drift (thermal throttling, a noisy neighbor
/// arriving mid-run) lands on both workloads alike instead of biasing
/// against whichever was measured second.
pub fn time_median_pair<T, U>(
    labels: (&str, &str),
    iters: u32,
    mut a: impl FnMut() -> T,
    mut b: impl FnMut() -> U,
) -> (MedianSample, MedianSample) {
    let _ = std::hint::black_box(a());
    let _ = std::hint::black_box(b());
    let mut a_runs = Vec::new();
    let mut b_runs = Vec::new();
    for _ in 0..iters.max(1) {
        a_runs.push(timed_run(&mut a));
        b_runs.push(timed_run(&mut b));
    }
    (
        MedianSample {
            label: labels.0.to_string(),
            runs: a_runs,
        },
        MedianSample {
            label: labels.1.to_string(),
            runs: b_runs,
        },
    )
}

fn timed_run<T>(f: &mut impl FnMut() -> T) -> Duration {
    let start = Instant::now();
    let _ = std::hint::black_box(f());
    start.elapsed()
}

/// Prints samples as an aligned two-column report.
pub fn report(title: &str, samples: &[Sample]) {
    println!("# {title}");
    let width = samples.iter().map(|s| s.label.len()).max().unwrap_or(0);
    for s in samples {
        println!(
            "{:width$}  {:>12.3} ms/iter  ({} iters)",
            s.label,
            s.secs_per_iter() * 1e3,
            s.iters,
        );
    }
}

/// A flat string/number JSON object writer (no external crates; the
/// harness only ever needs one nesting level).
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// Creates an empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        let escaped: String = value.chars().flat_map(char::escape_default).collect();
        self.fields
            .push((key.to_string(), format!("\"{escaped}\"")));
        self
    }

    /// Adds a numeric field.
    pub fn number(&mut self, key: &str, value: f64) -> &mut Self {
        // JSON has no NaN/inf; clamp to null for robustness.
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds a boolean field.
    pub fn boolean(&mut self, key: &str, value: bool) -> &mut Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Embeds a pre-rendered JSON value verbatim (used to fold the
    /// metrics registry's nested export into the flat report). The
    /// caller is responsible for `value` being valid JSON.
    pub fn raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.fields
            .push((key.to_string(), value.trim_end().to_string()));
        self
    }

    /// Renders the object with one field per line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            let comma = if i + 1 == self.fields.len() { "" } else { "," };
            let _ = writeln!(out, "  \"{key}\": {value}{comma}");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_counts_iterations() {
        let mut calls = 0u32;
        let sample = time("noop", 5, || calls += 1);
        // 1 warmup + 5 measured.
        assert_eq!(calls, 6);
        assert_eq!(sample.iters, 5);
        assert!(sample.secs_per_iter() >= 0.0);
    }

    #[test]
    fn median_is_the_middle_order_statistic() {
        let sample = MedianSample {
            label: "m".to_string(),
            runs: vec![
                Duration::from_secs(9), // the stray outlier a mean would fold in
                Duration::from_secs(1),
                Duration::from_secs(2),
            ],
        };
        assert!((sample.median_secs() - 2.0).abs() < 1e-12);
        let even = MedianSample {
            label: "e".to_string(),
            runs: vec![Duration::from_secs(1), Duration::from_secs(3)],
        };
        assert!((even.median_secs() - 2.0).abs() < 1e-12);
        assert!((even.median_ns_per(1000) - 2e6).abs() < 1e-3);
        let empty = MedianSample {
            label: "0".to_string(),
            runs: vec![],
        };
        assert_eq!(empty.median_secs(), 0.0);
    }

    #[test]
    fn time_median_records_one_run_per_iteration() {
        let mut calls = 0u32;
        let sample = time_median("noop", 4, || calls += 1);
        // 1 warmup + 4 measured.
        assert_eq!(calls, 5);
        assert_eq!(sample.runs.len(), 4);
    }

    #[test]
    fn interleaved_pair_alternates_the_workloads() {
        let order = std::cell::RefCell::new(Vec::new());
        let (a, b) = time_median_pair(
            ("a", "b"),
            3,
            || order.borrow_mut().push('a'),
            || order.borrow_mut().push('b'),
        );
        // 1 warmup of each, then strict a/b alternation.
        assert_eq!(*order.borrow(), vec!['a', 'b', 'a', 'b', 'a', 'b', 'a', 'b']);
        assert_eq!(a.runs.len(), 3);
        assert_eq!(b.runs.len(), 3);
    }

    #[test]
    fn json_renders_all_field_kinds() {
        let mut obj = JsonObject::new();
        obj.string("name", "sweep \"full\"")
            .number("seconds", 1.25)
            .number("bad", f64::NAN)
            .boolean("identical", true);
        let json = obj.render();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"seconds\": 1.25,"));
        assert!(json.contains("\"bad\": null,"));
        assert!(json.contains("\"identical\": true\n"));
        assert!(json.contains("\\\"full\\\""));
    }
}
