//! Table II: summary of the optimal LLC solution per traffic band and
//! design target.

use coldtall_core::report::TextTable;
use coldtall_core::selection::{summarize, table2 as select};
use coldtall_core::{Explorer, MemoryConfig};

/// Regenerates Table II: for each read-traffic band, the optimal LLC
/// under the power (100 kW cooling), performance, and area targets, with
/// the endurance-screened alternate.
///
/// Two performance columns are reported: the overall winner (which in
/// this reproduction is the cryogenic array — see `EXPERIMENTS.md`) and
/// the winner among room-temperature solutions, which is the
/// paper-comparable cell.
#[must_use]
pub fn run() -> TextTable {
    let explorer = Explorer::with_defaults();
    let full = select(&explorer);
    let room_temp_configs: Vec<MemoryConfig> = MemoryConfig::study_set()
        .into_iter()
        .filter(|c| !c.is_cryogenic())
        .collect();
    let room_temp = summarize(&explorer, &room_temp_configs);

    let mut table = TextTable::new(&[
        "read_accesses_per_s",
        "power_100kW_cooling",
        "power_reduction",
        "power_alt",
        "performance",
        "performance_room_temp",
        "area",
        "area_alt",
    ]);
    for (row, rt) in full.iter().zip(&room_temp) {
        let power_label = if row.power.endurance_limited {
            format!("{} [endurance-limited]", row.power.label)
        } else {
            row.power.label.clone()
        };
        table.row_owned(vec![
            row.band.label().to_string(),
            power_label,
            format!("{:.0}x", row.power.improvement),
            row.power.alternate.clone().unwrap_or_else(|| "-".into()),
            row.performance.label.clone(),
            rt.performance.label.clone(),
            row.area.label.clone(),
            row.area.alternate.clone().unwrap_or_else(|| "-".into()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_bands() {
        let table = run();
        assert_eq!(table.len(), 3);
        let rendered = table.render();
        assert!(rendered.contains("77K 3T-eDRAM"));
        assert!(rendered.contains("PCM"));
    }
}
