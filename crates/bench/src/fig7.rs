//! Fig. 7: total LLC power and latency vs workload traffic for 2D and
//! 3D eNVMs across the SPEC2017 suite at 350 K.

use coldtall_cell::{MemoryTechnology, Tentpole};
use coldtall_core::report::{sci, TextTable};
use coldtall_core::{Explorer, MemoryConfig};
use coldtall_workloads::spec2017;

/// The configurations Fig. 7 plots: 2D/3D SRAM plus every eNVM tentpole
/// at every die count, all at 350 K.
fn configs() -> Vec<MemoryConfig> {
    let mut set = vec![MemoryConfig::sram_350k()];
    for dies in [2u8, 4, 8] {
        set.push(MemoryConfig::envm_3d(
            MemoryTechnology::Sram,
            Tentpole::Optimistic,
            dies,
        ));
    }
    for tech in MemoryTechnology::ENVM_SET {
        for tentpole in Tentpole::BOTH {
            for dies in [1u8, 2, 4, 8] {
                set.push(MemoryConfig::envm_3d(tech, tentpole, dies));
            }
        }
    }
    set
}

/// Regenerates Fig. 7: one row per (benchmark, configuration) with the
/// traffic coordinates, relative power, relative latency, and the
/// wear-limited lifetime used for endurance screening.
#[must_use]
pub fn run() -> TextTable {
    let explorer = Explorer::with_defaults();
    let mut table = TextTable::new(&[
        "benchmark",
        "reads_per_s",
        "writes_per_s",
        "config",
        "rel_power",
        "rel_latency",
        "lifetime_years",
    ]);
    for bench in spec2017() {
        for config in configs() {
            let eval = explorer.evaluate(&config, bench);
            table.row_owned(vec![
                bench.name.to_string(),
                sci(bench.traffic.reads_per_sec),
                sci(bench.traffic.writes_per_sec),
                eval.config_label.clone(),
                sci(eval.relative_power),
                sci(eval.relative_latency),
                sci(eval.lifetime_years),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_suite_times_configs() {
        assert_eq!(run().len(), spec2017().len() * configs().len());
    }
}
