//! Extension study: hybrid SRAM + eNVM LLCs (related work, Section II-B).
//!
//! Sweeps the fast-partition size for SRAM+STT-RAM and SRAM+PCM hybrids
//! on a write-heavy and a read-heavy workload, reporting power, latency,
//! and the dense partition's wear-limited lifetime against the pure
//! configurations.

use coldtall_cell::{MemoryTechnology, Tentpole};
use coldtall_core::report::{sci, TextTable};
use coldtall_core::{Explorer, HybridLlc, MemoryConfig};
use coldtall_workloads::benchmark;

/// One row per (workload, dense technology, fast ways 0/2/4/8), where
/// zero fast ways denotes the pure dense configuration and 16 the pure
/// SRAM one.
#[must_use]
pub fn run() -> TextTable {
    let explorer = Explorer::with_defaults();
    let mut table = TextTable::new(&[
        "benchmark",
        "dense_technology",
        "fast_ways",
        "rel_power",
        "rel_latency",
        "lifetime_years",
    ]);
    for bench_name in ["lbm", "mcf"] {
        let bench = benchmark(bench_name).expect("benchmark present");
        for dense_tech in [MemoryTechnology::SttRam, MemoryTechnology::Pcm] {
            let dense = MemoryConfig::envm_3d(dense_tech, Tentpole::Optimistic, 4);
            // Pure dense end point.
            let pure = explorer.evaluate(&dense, bench);
            table.row_owned(vec![
                bench_name.to_string(),
                dense_tech.name().to_string(),
                "0".to_string(),
                sci(pure.relative_power),
                sci(pure.relative_latency),
                sci(pure.lifetime_years),
            ]);
            for fast_ways in [2u8, 4, 8] {
                let hybrid = HybridLlc::new(MemoryConfig::sram_350k(), dense.clone(), fast_ways);
                let eval = explorer.evaluate_hybrid(&hybrid, bench);
                table.row_owned(vec![
                    bench_name.to_string(),
                    dense_tech.name().to_string(),
                    fast_ways.to_string(),
                    sci(eval.relative_power),
                    sci(eval.relative_latency),
                    sci(eval.lifetime_years),
                ]);
            }
            // Pure SRAM end point.
            let sram = explorer.evaluate(&MemoryConfig::sram_350k(), bench);
            table.row_owned(vec![
                bench_name.to_string(),
                dense_tech.name().to_string(),
                "16".to_string(),
                sci(sram.relative_power),
                sci(sram.relative_latency),
                sci(sram.lifetime_years),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_both_workloads_and_technologies() {
        assert_eq!(run().len(), 2 * 2 * 5);
    }

    #[test]
    fn hybridization_extends_pcm_lifetime_on_lbm() {
        let csv = run().to_csv();
        let lifetime = |ways: &str| -> f64 {
            csv.lines()
                .find(|l| l.starts_with("lbm,PCM,") && l.split(',').nth(2) == Some(ways))
                .and_then(|l| l.split(',').nth(5))
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(lifetime("4") > lifetime("0"), "SRAM ways must shield PCM");
    }
}
