//! Ablation: process-node scaling of the 16 MiB LLC.
//!
//! The study is pinned at 22 nm (Table I); this ablation sweeps the
//! array engine across 45/32/22/16 nm nodes to check that the
//! technology-ranking conclusions are not an artifact of the node
//! choice.

use coldtall_array::{ArraySpec, Objective};
use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
use coldtall_core::report::{sci, TextTable};
use coldtall_tech::ProcessNode;

/// One row per (node, technology): absolute footprint plus read
/// latency/energy relative to that node's own 2D SRAM.
#[must_use]
pub fn run() -> TextTable {
    let mut table = TextTable::new(&[
        "node",
        "technology",
        "footprint_mm2",
        "rel_read_latency",
        "rel_read_energy",
        "leakage_W",
    ]);
    for node in ProcessNode::scaling_set() {
        let base = ArraySpec::llc_16mib(CellModel::sram(&node), &node)
            .characterize(Objective::EnergyDelayProduct);
        for tech in [
            MemoryTechnology::Sram,
            MemoryTechnology::Edram3T,
            MemoryTechnology::Pcm,
            MemoryTechnology::SttRam,
        ] {
            let cell = CellModel::tentpole(tech, Tentpole::Optimistic, &node);
            let a = ArraySpec::llc_16mib(cell, &node).characterize(Objective::EnergyDelayProduct);
            table.row_owned(vec![
                node.name().to_string(),
                tech.name().to_string(),
                format!("{:.2}", a.footprint.as_mm2()),
                sci(a.read_latency / base.read_latency),
                sci(a.read_energy / base.read_energy),
                sci(a.leakage_power.get()),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_nodes_by_four_technologies() {
        assert_eq!(run().len(), 16);
    }

    #[test]
    fn finer_nodes_yield_smaller_sram() {
        let csv = run().to_csv();
        let footprint = |node: &str| -> f64 {
            csv.lines()
                .find(|l| l.starts_with(node) && l.contains("SRAM,"))
                .and_then(|l| l.split(',').nth(2))
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(footprint("PTM 45nm HP") > footprint("PTM 22nm HP"));
    }

    #[test]
    fn pcm_stays_denser_than_sram_on_every_node() {
        let csv = run().to_csv();
        for node in ["PTM 45nm HP", "PTM 32nm HP", "PTM 22nm HP"] {
            let get = |tech: &str| -> f64 {
                csv.lines()
                    .find(|l| l.starts_with(node) && l.contains(&format!("{tech},")))
                    .and_then(|l| l.split(',').nth(2))
                    .unwrap()
                    .parse()
                    .unwrap()
            };
            assert!(get("PCM") < get("SRAM"), "{node}: PCM must stay denser");
        }
    }
}
