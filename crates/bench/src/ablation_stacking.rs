//! Ablation: 3D integration styles (Section II-C trade-offs).
//!
//! Face-to-face bonding offers dense bond points but only two layers;
//! face-to-back TSVs scale to eight dies at coarser pitch; monolithic
//! vias are densest but derate upper-layer devices.

use coldtall_array::{ArraySpec, Objective, Stacking};
use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
use coldtall_core::report::{sci, TextTable};
use coldtall_tech::ProcessNode;

/// One row per (technology, stacking style, die count) with the key
/// array metrics relative to that technology's own 2D configuration.
#[must_use]
pub fn run() -> TextTable {
    let node = ProcessNode::ptm_22nm_hp();
    let objective = Objective::EnergyDelayProduct;
    let mut table = TextTable::new(&[
        "technology",
        "stacking",
        "dies",
        "rel_area_vs_own_2d",
        "rel_read_latency_vs_own_2d",
        "rel_read_energy_vs_own_2d",
    ]);
    for tech in [
        MemoryTechnology::Sram,
        MemoryTechnology::SttRam,
        MemoryTechnology::Pcm,
    ] {
        let cell = CellModel::tentpole(tech, Tentpole::Optimistic, &node);
        let own_2d = ArraySpec::llc_16mib(cell.clone(), &node).characterize(objective);
        for (stacking, dies_set) in [
            (Stacking::FaceToFace, vec![2u8]),
            (Stacking::FaceToBack, vec![2, 4, 8]),
            (Stacking::Monolithic, vec![2, 4, 8]),
        ] {
            for dies in dies_set {
                let a = ArraySpec::llc_16mib(cell.clone(), &node)
                    .with_stacking(stacking, dies)
                    .characterize(objective);
                table.row_owned(vec![
                    tech.name().to_string(),
                    stacking.to_string(),
                    dies.to_string(),
                    sci(a.footprint / own_2d.footprint),
                    sci(a.read_latency / own_2d.read_latency),
                    sci(a.read_energy / own_2d.read_energy),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_three_techs_and_seven_configs_each() {
        assert_eq!(run().len(), 3 * 7);
    }

    #[test]
    fn face_to_face_beats_face_to_back_at_two_dies() {
        // Denser bond points mean less vertical-field area and energy.
        let csv = run().to_csv();
        let get = |style: &str| -> f64 {
            csv.lines()
                .find(|l| l.starts_with("SRAM") && l.contains(style) && l.contains(",2,"))
                .and_then(|l| l.split(',').nth(3))
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(get("3D face-to-face") <= get("3D face-to-back"));
    }
}
