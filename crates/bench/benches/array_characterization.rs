//! Criterion benchmarks of the array-characterization engine: the inner
//! loop behind every figure (NVSim/Destiny/CryoMEM-equivalent work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use coldtall_array::{ArraySpec, Objective};
use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
use coldtall_tech::ProcessNode;
use coldtall_units::Kelvin;

fn bench_characterize(c: &mut Criterion) {
    let node = ProcessNode::ptm_22nm_hp();
    let mut group = c.benchmark_group("characterize_16mib");
    for tech in [
        MemoryTechnology::Sram,
        MemoryTechnology::Edram3T,
        MemoryTechnology::Pcm,
        MemoryTechnology::SttRam,
    ] {
        let cell = CellModel::tentpole(tech, Tentpole::Optimistic, &node);
        let spec = ArraySpec::llc_16mib(cell, &node);
        group.bench_with_input(BenchmarkId::from_parameter(tech.name()), &spec, |b, spec| {
            b.iter(|| black_box(spec.characterize(Objective::EnergyDelayProduct)));
        });
    }
    group.finish();
}

fn bench_die_counts(c: &mut Criterion) {
    let node = ProcessNode::ptm_22nm_hp();
    let mut group = c.benchmark_group("characterize_stacked_pcm");
    for dies in [1u8, 2, 4, 8] {
        let cell = CellModel::tentpole(MemoryTechnology::Pcm, Tentpole::Optimistic, &node);
        let mut spec = ArraySpec::llc_16mib(cell, &node);
        if dies > 1 {
            spec = spec.with_dies(dies);
        }
        group.bench_with_input(BenchmarkId::from_parameter(dies), &spec, |b, spec| {
            b.iter(|| black_box(spec.characterize(Objective::EnergyDelayProduct)));
        });
    }
    group.finish();
}

fn bench_temperature_sweep(c: &mut Criterion) {
    let node = ProcessNode::ptm_22nm_hp();
    let cell = CellModel::sram(&node);
    let spec = ArraySpec::llc_16mib(cell, &node);
    c.bench_function("characterize_cryo_sweep", |b| {
        b.iter(|| {
            for t in coldtall_cryo::study_temperatures() {
                black_box(coldtall_cryo::characterize_at(
                    &spec,
                    t,
                    Objective::EnergyDelayProduct,
                ));
            }
        });
    });
    c.bench_function("characterize_77k_single", |b| {
        b.iter(|| {
            black_box(coldtall_cryo::characterize_at(
                &spec,
                Kelvin::LN2,
                Objective::EnergyDelayProduct,
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_characterize,
    bench_die_counts,
    bench_temperature_sweep
);
criterion_main!(benches);
