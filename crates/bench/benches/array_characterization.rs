//! Wall-clock benchmarks of the array-characterization engine: the
//! inner loop behind every figure (NVSim/Destiny/CryoMEM-equivalent
//! work). Std-only timing — the offline workspace has no criterion.

use coldtall_array::{ArraySpec, Objective};
use coldtall_bench::timing::{report, time};
use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
use coldtall_tech::ProcessNode;
use coldtall_units::Kelvin;

const ITERS: u32 = 10;

fn main() {
    let node = ProcessNode::ptm_22nm_hp();
    let mut samples = Vec::new();

    for tech in [
        MemoryTechnology::Sram,
        MemoryTechnology::Edram3T,
        MemoryTechnology::Pcm,
        MemoryTechnology::SttRam,
    ] {
        let cell = CellModel::tentpole(tech, Tentpole::Optimistic, &node);
        let spec = ArraySpec::llc_16mib(cell, &node);
        samples.push(time(
            &format!("characterize_16mib/{}", tech.name()),
            ITERS,
            || spec.characterize(Objective::EnergyDelayProduct),
        ));
    }

    for dies in [1u8, 2, 4, 8] {
        let cell = CellModel::tentpole(MemoryTechnology::Pcm, Tentpole::Optimistic, &node);
        let mut spec = ArraySpec::llc_16mib(cell, &node);
        if dies > 1 {
            spec = spec.with_dies(dies);
        }
        samples.push(time(
            &format!("characterize_stacked_pcm/{dies}"),
            ITERS,
            || spec.characterize(Objective::EnergyDelayProduct),
        ));
    }

    let spec = ArraySpec::llc_16mib(CellModel::sram(&node), &node);
    samples.push(time("characterize_cryo_sweep", ITERS, || {
        coldtall_cryo::study_temperatures()
            .iter()
            .map(|&t| coldtall_cryo::characterize_at(&spec, t, Objective::EnergyDelayProduct))
            .collect::<Vec<_>>()
    }));
    samples.push(time("characterize_77k_single", ITERS, || {
        coldtall_cryo::characterize_at(&spec, Kelvin::LN2, Objective::EnergyDelayProduct)
    }));

    report("array characterization", &samples);
}
