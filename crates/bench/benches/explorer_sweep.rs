//! Criterion benchmarks of the design-space exploration driver: the
//! end-to-end cost of regenerating the paper's figures and Table II.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use coldtall_core::{selection, Explorer, MemoryConfig};
use coldtall_workloads::benchmark;

fn bench_single_evaluation(c: &mut Criterion) {
    let explorer = Explorer::with_defaults();
    let namd = benchmark("namd").expect("benchmark present");
    let config = MemoryConfig::edram_77k();
    // Prime the characterization cache so this measures the application
    // model alone.
    let _ = explorer.evaluate(&config, namd);
    c.bench_function("evaluate_cached", |b| {
        b.iter(|| black_box(explorer.evaluate(&config, namd)));
    });
}

fn bench_full_sweep(c: &mut Criterion) {
    c.bench_function("study_sweep_cold", |b| {
        b.iter(|| {
            let explorer = Explorer::with_defaults();
            black_box(explorer.sweep().len())
        });
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_selection", |b| {
        let explorer = Explorer::with_defaults();
        let _ = explorer.sweep(); // prime the cache
        b.iter(|| black_box(selection::table2(&explorer).len()));
    });
}

criterion_group!(benches, bench_single_evaluation, bench_full_sweep, bench_table2);
criterion_main!(benches);
