//! Wall-clock benchmarks of the design-space exploration driver: the
//! end-to-end cost of regenerating the paper's figures and Table II,
//! sequential versus the scoped-pool parallel sweep.
//! Std-only timing — the offline workspace has no criterion.

use coldtall_bench::timing::{report, time};
use coldtall_core::{pool, selection, Explorer, MemoryConfig};
use coldtall_workloads::benchmark;

fn main() {
    let mut samples = Vec::new();

    let explorer = Explorer::with_defaults();
    let namd = benchmark("namd").expect("benchmark present");
    let config = MemoryConfig::edram_77k();
    // Prime the characterization cache so this measures the application
    // model alone.
    let _ = explorer.evaluate(&config, namd);
    samples.push(time("evaluate_cached", 1000, || {
        explorer.evaluate(&config, namd)
    }));

    samples.push(time("study_sweep_cold_seq", 3, || {
        let explorer = Explorer::with_defaults();
        explorer.sweep_configs_seq(&MemoryConfig::study_set()).len()
    }));
    samples.push(time(
        &format!("study_sweep_cold_par_{}t", pool::max_threads()),
        3,
        || {
            let explorer = Explorer::with_defaults();
            explorer.par_sweep_configs(&MemoryConfig::study_set()).len()
        },
    ));

    let explorer = Explorer::with_defaults();
    let _ = explorer.sweep(); // prime the cache
    samples.push(time("table2_selection", 10, || {
        selection::table2(&explorer).len()
    }));

    report("explorer sweep", &samples);
}
