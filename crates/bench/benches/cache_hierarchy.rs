//! Criterion benchmarks of the cache-hierarchy simulator (the Sniper
//! substitute feeding the traffic axes of Fig. 5 and Fig. 7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use coldtall_cachesim::{CpuConfig, Hierarchy, MemoryAccess};
use coldtall_workloads::{benchmark, simulate_traffic, AccessGenerator};

fn bench_raw_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy_access");
    const N: u64 = 100_000;
    group.throughput(Throughput::Elements(N));
    group.bench_function("streaming_reads", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(CpuConfig::skylake_desktop());
            for i in 0..N {
                h.access(MemoryAccess::data_read(0, i * 64));
            }
            black_box(h.llc_stats().accesses())
        });
    });
    group.finish();
}

fn bench_synthetic_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthetic_workload");
    const N: u64 = 50_000;
    group.throughput(Throughput::Elements(N));
    for name in ["povray", "namd", "mcf"] {
        let bench = benchmark(name).expect("benchmark present");
        group.bench_with_input(BenchmarkId::from_parameter(name), bench, |b, bench| {
            b.iter(|| {
                let mut h = Hierarchy::new(CpuConfig::skylake_desktop());
                let mut generator = AccessGenerator::new(bench.generator, 0, 7);
                for _ in 0..N {
                    h.access(generator.next().expect("infinite stream"));
                }
                black_box(h.llc_stats().accesses())
            });
        });
    }
    group.finish();
}

fn bench_traffic_extraction(c: &mut Criterion) {
    let bench = benchmark("gcc").expect("benchmark present");
    c.bench_function("simulate_traffic_gcc_8core", |b| {
        b.iter(|| {
            black_box(simulate_traffic(
                bench,
                CpuConfig::skylake_desktop(),
                2_000,
                42,
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_raw_hierarchy,
    bench_synthetic_benchmarks,
    bench_traffic_extraction
);
criterion_main!(benches);
