//! Wall-clock benchmarks of the cache-hierarchy simulator (the Sniper
//! substitute feeding the traffic axes of Fig. 5 and Fig. 7).
//! Std-only timing — the offline workspace has no criterion.

use coldtall_bench::timing::{report, time};
use coldtall_cachesim::{CpuConfig, Hierarchy, MemoryAccess};
use coldtall_workloads::{benchmark, simulate_traffic, AccessGenerator};

fn main() {
    let mut samples = Vec::new();

    const N: u64 = 100_000;
    samples.push(time("hierarchy_access/streaming_reads_100k", 5, || {
        let mut h = Hierarchy::new(CpuConfig::skylake_desktop());
        for i in 0..N {
            h.access(MemoryAccess::data_read(0, i * 64));
        }
        h.llc_stats().accesses()
    }));

    const M: u64 = 50_000;
    for name in ["povray", "namd", "mcf"] {
        let bench = benchmark(name).expect("benchmark present");
        samples.push(time(&format!("synthetic_workload/{name}_50k"), 5, || {
            let mut h = Hierarchy::new(CpuConfig::skylake_desktop());
            let mut generator = AccessGenerator::new(bench.generator, 0, 7);
            for _ in 0..M {
                h.access(generator.next().expect("infinite stream"));
            }
            h.llc_stats().accesses()
        }));
    }

    let gcc = benchmark("gcc").expect("benchmark present");
    samples.push(time("simulate_traffic_gcc_8core", 5, || {
        simulate_traffic(gcc, CpuConfig::skylake_desktop(), 2_000, 42)
    }));

    report("cache hierarchy", &samples);
}
