//! Plain-text report tables used by the experiment binaries.

use std::fmt::Write as _;

/// A simple column-aligned text table with CSV export, used by every
/// figure/table regeneration binary.
///
/// # Examples
///
/// ```
/// use coldtall_core::report::TextTable;
///
/// let mut table = TextTable::new(&["tech", "power"]);
/// table.row(&["SRAM", "1.00"]);
/// table.row(&["77K 3T-eDRAM", "0.0004"]);
/// let text = table.render();
/// assert!(text.contains("SRAM"));
/// assert_eq!(table.to_csv().lines().count(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells.iter().map(ToString::to_string).collect());
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a header rule.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Exports the table as CSV (header line first).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let mut write_line = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_line(&self.headers);
        for row in &self.rows {
            write_line(row);
        }
        out
    }
}

/// Formats a relative value in the fixed-width scientific style the
/// experiment binaries print.
#[must_use]
pub fn sci(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.is_infinite() {
        "inf".to_string()
    } else if (0.01..10_000.0).contains(&value.abs()) {
        format!("{value:.3}")
    } else {
        format!("{value:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(&["a", "benchmark"]);
        t.row(&["x", "1"]);
        t.row(&["long-cell", "2"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].starts_with("long-cell"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(&["name", "note"]);
        t.row(&["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(1.5), "1.500");
        assert_eq!(sci(1.5e-7), "1.500e-7");
        assert_eq!(sci(f64::INFINITY), "inf");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one"]);
    }
}
