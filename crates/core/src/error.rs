//! The exploration's typed error taxonomy.
//!
//! Every invalid input reachable from an untrusted caller — a CLI flag,
//! an environment variable, a future service request — lowers to one
//! variant of [`Error`] instead of a panic, and every evaluation
//! upholds the finite-or-explicitly-infeasible invariant: a
//! [`crate::LlcEvaluation`] field is either a finite number, a
//! documented `f64::INFINITY` sentinel (unserviceable latency,
//! unlimited lifetime), or the row is rejected here. `NaN` is never a
//! legal value anywhere in the exploration's outputs.

use core::fmt;

use coldtall_array::SpecError;
use coldtall_cachesim::InvalidTraffic;
use coldtall_units::InvalidTemperature;

use crate::evaluate::Feasibility;

/// Everything that can go wrong between an untrusted input and a
/// finished evaluation.
///
/// # Examples
///
/// ```
/// use coldtall_core::{Error, Explorer, MemoryConfig};
///
/// let explorer = Explorer::with_defaults();
/// let err = explorer
///     .try_evaluate(&MemoryConfig::sram_350k(), "doom")
///     .unwrap_err();
/// assert!(matches!(err, Error::UnknownBenchmark { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A temperature outside the finite, strictly positive range.
    InvalidTemperature(InvalidTemperature),
    /// An array specification the builder rejected (die count,
    /// stacking, capacity, or line width).
    InvalidSpec(SpecError),
    /// A die count outside the study's 1/2/4/8 set.
    InvalidDieCount {
        /// The rejected die count.
        dies: u8,
    },
    /// A traffic record with negative or non-finite rates.
    InvalidTraffic(InvalidTraffic),
    /// A technology name the exploration does not know.
    UnknownTechnology {
        /// The unrecognized name as supplied.
        name: String,
    },
    /// A benchmark name missing from the workload suite.
    UnknownBenchmark {
        /// The unrecognized name as supplied.
        name: String,
    },
    /// A design point that cannot serve the benchmark's traffic (or
    /// would slow the CPU down) when the caller demanded a viable one.
    Infeasible {
        /// Display label of the configuration.
        config: String,
        /// The benchmark it was evaluated under.
        benchmark: String,
        /// Why the point is not viable.
        feasibility: Feasibility,
    },
    /// An internal model produced a non-finite number where a finite
    /// one is guaranteed — an invariant violation, reported instead of
    /// letting `NaN` leak into downstream screening.
    NonFinite {
        /// What was being computed when the invariant broke.
        context: String,
    },
    /// No registered characterization backend claims the configuration.
    NoBackend {
        /// Display label of the unclaimed configuration.
        config: String,
    },
    /// More than one registered backend claims the configuration, so
    /// resolution is ambiguous.
    BackendConflict {
        /// Display label of the contested configuration.
        config: String,
        /// Names of every claiming backend, in registration order.
        backends: Vec<String>,
    },
    /// An adaptive search was asked to explore a region holding no
    /// design points at all (for example, a CLI filter that matches
    /// nothing). An *infeasible* region is a result (an empty
    /// frontier), not an error; an *empty* one is a caller mistake.
    EmptySearchSpace {
        /// Description of the empty region as the caller named it.
        region: String,
    },
    /// A tentpole name that is neither `optimistic` nor `pessimistic`.
    UnknownTentpole {
        /// The unrecognized name as supplied.
        name: String,
    },
    /// A field combination the exploration deliberately does not model
    /// (for example, a stacked volatile cache at a cryogenic
    /// temperature). The individual fields are each valid; the
    /// combination is out of scope.
    UnsupportedPoint {
        /// Why the combination is out of scope.
        reason: String,
    },
    /// A request ran past the per-request deadline its caller set.
    /// Raised by the serve frontend's [`crate::RequestHandler`], which
    /// checks the budget between pipeline stages — work already
    /// dispatched is finished (and cached), not torn down.
    DeadlineExceeded {
        /// Milliseconds actually elapsed when the check fired.
        elapsed_ms: u64,
        /// The caller's budget in milliseconds.
        budget_ms: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidTemperature(e) => e.fmt(f),
            Self::InvalidSpec(e) => e.fmt(f),
            Self::InvalidDieCount { dies } => {
                write!(f, "the study stacks 1, 2, 4, or 8 dies, got {dies}")
            }
            Self::InvalidTraffic(e) => e.fmt(f),
            Self::UnknownTechnology { name } => write!(f, "unknown technology '{name}'"),
            Self::UnknownBenchmark { name } => write!(f, "unknown benchmark '{name}'"),
            Self::Infeasible {
                config,
                benchmark,
                feasibility,
            } => write!(f, "{config} is not viable under {benchmark}: {feasibility}"),
            Self::NonFinite { context } => {
                write!(f, "internal model produced a non-finite value in {context}")
            }
            Self::NoBackend { config } => {
                write!(f, "no characterization backend supports {config}")
            }
            Self::BackendConflict { config, backends } => {
                write!(
                    f,
                    "ambiguous backend for {config}: {} all claim it",
                    backends.join(", ")
                )
            }
            Self::EmptySearchSpace { region } => {
                write!(f, "the search region '{region}' contains no design points")
            }
            Self::UnknownTentpole { name } => write!(
                f,
                "unknown tentpole '{name}' (expected optimistic or pessimistic)"
            ),
            Self::UnsupportedPoint { reason } => {
                write!(f, "unsupported design point: {reason}")
            }
            Self::DeadlineExceeded {
                elapsed_ms,
                budget_ms,
            } => write!(
                f,
                "request deadline exceeded: {elapsed_ms} ms elapsed against a {budget_ms} ms budget"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::InvalidTemperature(e) => Some(e),
            Self::InvalidSpec(e) => Some(e),
            Self::InvalidTraffic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InvalidTemperature> for Error {
    fn from(e: InvalidTemperature) -> Self {
        Self::InvalidTemperature(e)
    }
}

impl From<SpecError> for Error {
    fn from(e: SpecError) -> Self {
        Self::InvalidSpec(e)
    }
}

impl From<InvalidTraffic> for Error {
    fn from(e: InvalidTraffic) -> Self {
        Self::InvalidTraffic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offending_input() {
        let err = Error::from(coldtall_units::Kelvin::try_new(-3.0).unwrap_err());
        assert!(err.to_string().contains("-3"));
        assert!(Error::UnknownBenchmark {
            name: "doom".into()
        }
        .to_string()
        .contains("'doom'"));
        assert!(Error::InvalidDieCount { dies: 5 }
            .to_string()
            .contains("1, 2, 4, or 8"));
        assert!(Error::NoBackend {
            config: "77K SRAM".into()
        }
        .to_string()
        .contains("77K SRAM"));
        let conflict = Error::BackendConflict {
            config: "SRAM".into(),
            backends: vec!["cryomem".into(), "destiny".into()],
        };
        assert!(conflict.to_string().contains("cryomem, destiny"));
        assert!(Error::EmptySearchSpace {
            region: "edram x 8 dies".into()
        }
        .to_string()
        .contains("'edram x 8 dies'"));
    }

    #[test]
    fn sources_chain_to_the_layer_that_rejected() {
        use std::error::Error as _;
        let err = Error::from(coldtall_units::Kelvin::try_new(f64::NAN).unwrap_err());
        assert!(err.source().is_some());
        assert!(Error::UnknownTechnology { name: "flash".into() }.source().is_none());
    }
}
