//! Typed request/response facade over the [`Explorer`] for service
//! frontends.
//!
//! The serve daemon (and any future RPC frontend) speaks to the engine
//! exclusively through [`RequestHandler`]: a thin, `Send + Sync`
//! dispatcher that owns one warm [`Explorer`], enforces a cooperative
//! per-request deadline, and answers with typed payloads. Wire formats
//! live in the frontends — this module knows nothing about JSON or
//! sockets, which is what keeps responses bit-identical between a
//! daemon round-trip and a direct library call: both render the same
//! [`ResponsePayload`] through the same renderer.
//!
//! Deadlines are cooperative: the handler checks the elapsed budget
//! between pipeline stages (after planning, after characterization,
//! after evaluation), so work already dispatched runs to completion
//! and lands in the cache — a timed-out request wastes no warmth.

use std::sync::Arc;
use std::time::{Duration, Instant};

use coldtall_array::ArrayCharacterization;
use coldtall_obs::{Counter, Histogram, Registry, Span};
use coldtall_units::Kelvin;

use crate::config::MemoryConfig;
use crate::error::Error;
use crate::evaluate::LlcEvaluation;
use crate::explorer::Explorer;
use crate::pareto::Constraints;
use crate::plan::SweepPlan;
use crate::search::SearchOutcome;

/// One design point as a frontend names it: raw strings and numbers,
/// validated by [`MemoryConfig::try_design_point`] at dispatch time.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Technology name (`sram`, `edram`, `pcm`, `stt`, `rram`).
    pub tech: String,
    /// Tentpole name (`optimistic`/`opt`, `pessimistic`/`pess`).
    pub tentpole: String,
    /// Stacked die count (1, 2, 4, or 8).
    pub dies: u8,
    /// Operating temperature in kelvin.
    pub temperature_kelvin: f64,
}

impl DesignPoint {
    /// A 2D SRAM point at the 350 K reference — the protocol's default
    /// when a request names no fields.
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            tech: "sram".to_string(),
            tentpole: "optimistic".to_string(),
            dies: 1,
            temperature_kelvin: 350.0,
        }
    }

    /// Validates the raw fields into a [`MemoryConfig`].
    ///
    /// # Errors
    ///
    /// Returns the same typed errors as
    /// [`MemoryConfig::try_design_point`], plus
    /// [`Error::InvalidTemperature`] for a non-finite or non-positive
    /// temperature and [`Error::UnsupportedPoint`] for one outside the
    /// modeled 60–400 K window.
    pub fn to_config(&self) -> Result<MemoryConfig, Error> {
        let temperature = Kelvin::try_new(self.temperature_kelvin)?;
        if !(60.0..=400.0).contains(&self.temperature_kelvin) {
            return Err(Error::UnsupportedPoint {
                reason: format!(
                    "{:.1} K is outside the modeled 60-400 K window",
                    self.temperature_kelvin
                ),
            });
        }
        MemoryConfig::try_design_point(&self.tech, &self.tentpole, self.dies, temperature)
    }
}

/// One typed request a frontend can dispatch.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Array characteristics of one design point.
    Characterize {
        /// The point to characterize.
        point: DesignPoint,
    },
    /// One design point under one benchmark's traffic.
    Evaluate {
        /// The point to evaluate.
        point: DesignPoint,
        /// Benchmark name from the SPEC2017 suite.
        benchmark: String,
    },
    /// The full study sweep: every study configuration under every
    /// SPEC2017 profile, in row order.
    Sweep,
    /// Adaptive branch-and-bound Pareto search over the study region,
    /// optionally narrowed to one technology and/or die count.
    Search {
        /// Restrict the region to one technology name.
        tech: Option<String>,
        /// Restrict the region to one die count.
        dies: Option<u8>,
        /// Feasibility constraints on the frontier.
        constraints: Constraints,
    },
    /// Engine status: cache occupancy and probe telemetry.
    Status,
}

impl Request {
    /// Short lowercase tag naming the request kind (the wire-protocol
    /// `cmd` field and the per-kind counter suffix).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Characterize { .. } => "characterize",
            Self::Evaluate { .. } => "evaluate",
            Self::Sweep => "sweep",
            Self::Search { .. } => "search",
            Self::Status => "status",
        }
    }
}

/// The typed answer to one [`Request`].
#[derive(Debug, Clone)]
pub enum ResponsePayload {
    /// Answer to [`Request::Characterize`].
    Characterization {
        /// Paper-style label of the configuration.
        label: String,
        /// Name of the backend the registry resolved the point to.
        backend: &'static str,
        /// Hash of the single-point plan that produced it (the run
        /// registry's plan key).
        plan_hash: u64,
        /// The full array characterization.
        characterization: ArrayCharacterization,
    },
    /// Answer to [`Request::Evaluate`].
    Evaluation {
        /// Hash of the single-point plan that produced it.
        plan_hash: u64,
        /// The full evaluation row.
        row: LlcEvaluation,
    },
    /// Answer to [`Request::Sweep`].
    Sweep {
        /// Hash of the compiled study plan.
        plan_hash: u64,
        /// Every evaluation row in (configuration x benchmark) order.
        rows: Vec<LlcEvaluation>,
    },
    /// Answer to [`Request::Search`].
    Search {
        /// The region as the handler named it (mirrors the CLI).
        region: String,
        /// Hash of the compiled region plan.
        plan_hash: u64,
        /// Frontier, stats, and prune audit trail.
        outcome: SearchOutcome,
    },
    /// Answer to [`Request::Status`].
    Status(StatusReport),
}

/// Engine status at one instant: occupancy and probe counters of the
/// characterization and geometry caches plus the handler's own request
/// tally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusReport {
    /// Distinct characterizations currently memoized.
    pub cached_characterizations: usize,
    /// Distinct geometries currently cached.
    pub cached_geometries: usize,
    /// Characterization-cache probe hits.
    pub cache_hits: u64,
    /// Characterization-cache probe misses.
    pub cache_misses: u64,
    /// Publications the characterization cache's admission cap refused.
    pub cache_rejected: u64,
    /// Estimated resident bytes of the characterization cache.
    pub cache_approx_bytes: u64,
    /// Geometry solves that actually ran.
    pub geometry_solves: u64,
    /// Requests this handler has dispatched (all kinds, this one
    /// included).
    pub requests_served: u64,
}

/// Telemetry handles for the handler, registered eagerly so the
/// counter *set* is identical whether or not a kind was ever
/// requested.
#[derive(Debug)]
struct HandlerMetrics {
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    per_kind: Vec<(&'static str, Arc<Counter>)>,
    span: Arc<Histogram>,
}

/// Every request kind, for eager counter registration.
const REQUEST_KINDS: [&str; 5] = ["characterize", "evaluate", "sweep", "search", "status"];

impl HandlerMetrics {
    fn registered(registry: &Registry) -> Self {
        Self {
            requests: registry.counter("serve.requests"),
            errors: registry.counter("serve.errors"),
            deadline_exceeded: registry.counter("serve.deadline_exceeded"),
            per_kind: REQUEST_KINDS
                .iter()
                .map(|kind| (*kind, registry.counter(&format!("serve.{kind}.requests"))))
                .collect(),
            span: registry.span("serve.request"),
        }
    }

    fn count_kind(&self, kind: &str) {
        if let Some((_, counter)) = self.per_kind.iter().find(|(name, _)| *name == kind) {
            counter.inc();
        }
    }
}

/// A cooperative per-request budget: stages call [`Deadline::check`]
/// between units of work; once the elapsed wall-clock passes the
/// budget the next check fails with [`Error::DeadlineExceeded`].
#[derive(Debug, Clone, Copy)]
struct Deadline {
    started: Instant,
    budget: Option<Duration>,
}

impl Deadline {
    fn start(budget: Option<Duration>) -> Self {
        Self {
            started: Instant::now(),
            budget,
        }
    }

    fn check(&self) -> Result<(), Error> {
        let Some(budget) = self.budget else {
            return Ok(());
        };
        let elapsed = self.started.elapsed();
        if elapsed >= budget {
            Err(Error::DeadlineExceeded {
                elapsed_ms: u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX),
                budget_ms: u64::try_from(budget.as_millis()).unwrap_or(u64::MAX),
            })
        } else {
            Ok(())
        }
    }
}

/// The service facade: one warm [`Explorer`], a default deadline, and
/// per-request telemetry. `Send + Sync`, so one handler serves every
/// connection thread of a daemon.
#[derive(Debug)]
pub struct RequestHandler {
    explorer: Explorer,
    default_deadline: Option<Duration>,
    metrics: HandlerMetrics,
}

impl RequestHandler {
    /// Wraps `explorer`, registering `serve.*` telemetry in
    /// `registry`. `default_deadline` bounds requests that carry no
    /// explicit budget; `None` means unbounded.
    #[must_use]
    pub fn new(
        explorer: Explorer,
        registry: &Registry,
        default_deadline: Option<Duration>,
    ) -> Self {
        Self {
            explorer,
            default_deadline,
            metrics: HandlerMetrics::registered(registry),
        }
    }

    /// The wrapped explorer (read-only: cache snapshots, metrics).
    #[must_use]
    pub fn explorer(&self) -> &Explorer {
        &self.explorer
    }

    /// Dispatches `request` under the handler's default deadline.
    ///
    /// # Errors
    ///
    /// Every typed [`Error`], including
    /// [`Error::DeadlineExceeded`] when the budget runs out between
    /// stages.
    pub fn handle(&self, request: &Request) -> Result<ResponsePayload, Error> {
        self.handle_with_deadline(request, self.default_deadline)
    }

    /// Dispatches `request` under an explicit budget (`None` for
    /// unbounded), overriding the handler default.
    ///
    /// # Errors
    ///
    /// Every typed [`Error`], including
    /// [`Error::DeadlineExceeded`] when the budget runs out between
    /// stages.
    pub fn handle_with_deadline(
        &self,
        request: &Request,
        deadline: Option<Duration>,
    ) -> Result<ResponsePayload, Error> {
        let _span = Span::enter(self.metrics.span.clone());
        self.metrics.requests.inc();
        self.metrics.count_kind(request.kind());
        let deadline = Deadline::start(deadline);
        let result = self.dispatch(request, &deadline);
        if let Err(error) = &result {
            self.metrics.errors.inc();
            if matches!(error, Error::DeadlineExceeded { .. }) {
                self.metrics.deadline_exceeded.inc();
            }
        }
        result
    }

    fn dispatch(&self, request: &Request, deadline: &Deadline) -> Result<ResponsePayload, Error> {
        match request {
            Request::Characterize { point } => {
                let config = point.to_config()?;
                deadline.check()?;
                let backend = self.explorer.backends().resolve(&config)?.name();
                let plan_hash = self.plan_hash(std::slice::from_ref(&config))?;
                let characterization = self.explorer.try_characterize(&config)?;
                deadline.check()?;
                Ok(ResponsePayload::Characterization {
                    label: config.label(),
                    backend,
                    plan_hash,
                    characterization,
                })
            }
            Request::Evaluate { point, benchmark } => {
                let config = point.to_config()?;
                deadline.check()?;
                let plan_hash = self.plan_hash(std::slice::from_ref(&config))?;
                let row = self.explorer.try_evaluate(&config, benchmark)?;
                deadline.check()?;
                Ok(ResponsePayload::Evaluation { plan_hash, row })
            }
            Request::Sweep => {
                let configs = MemoryConfig::study_set();
                let plan = self.explorer.plan_sweep(&configs)?;
                let plan_hash = plan.stable_hash();
                deadline.check()?;
                let rows = self.explorer.execute_par(&plan);
                deadline.check()?;
                Ok(ResponsePayload::Sweep { plan_hash, rows })
            }
            Request::Search {
                tech,
                dies,
                constraints,
            } => {
                let (region, configs) = Self::search_region(tech.as_deref(), *dies)?;
                let plan_hash = self.plan_hash(&configs)?;
                deadline.check()?;
                let outcome = self.explorer.search(&region, &configs, constraints)?;
                deadline.check()?;
                Ok(ResponsePayload::Search {
                    region,
                    plan_hash,
                    outcome,
                })
            }
            Request::Status => Ok(ResponsePayload::Status(self.status())),
        }
    }

    /// The study region narrowed by the optional filters, named the
    /// way the CLI names it (`study`, `study x pcm`, ...). Filters
    /// that match nothing surface as [`Error::EmptySearchSpace`] from
    /// the search itself; invalid filter values fail here.
    fn search_region(
        tech: Option<&str>,
        dies: Option<u8>,
    ) -> Result<(String, Vec<MemoryConfig>), Error> {
        let mut configs = MemoryConfig::study_set();
        let mut region = vec!["study".to_string()];
        if let Some(name) = tech {
            let technology = MemoryConfig::parse_technology(name)?;
            configs.retain(|c| c.technology() == technology);
            region.push(name.to_string());
        }
        if let Some(dies) = dies {
            MemoryConfig::validate_dies(dies)?;
            configs.retain(|c| c.dies() == dies);
            region.push(format!("{dies} dies"));
        }
        Ok((region.join(" x "), configs))
    }

    /// Stable hash of the plan over `configs` under the full SPEC2017
    /// suite — the key tying run-registry records back to the work
    /// that produced them.
    fn plan_hash(&self, configs: &[MemoryConfig]) -> Result<u64, Error> {
        Ok(SweepPlan::new(configs.to_vec())
            .compile(self.explorer.backends())?
            .stable_hash())
    }

    /// The current [`StatusReport`].
    #[must_use]
    pub fn status(&self) -> StatusReport {
        let cache = self.explorer.cache_metrics();
        StatusReport {
            cached_characterizations: self.explorer.cached_characterizations(),
            cached_geometries: self.explorer.geometry_cache().len(),
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cache_rejected: cache.rejected(),
            cache_approx_bytes: cache.approx_bytes(),
            geometry_solves: self.explorer.geometry_cache().solves(),
            requests_served: self.metrics.requests.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendRegistry;
    use coldtall_array::Objective;
    use coldtall_tech::ProcessNode;

    fn handler(registry: &Registry) -> RequestHandler {
        let explorer = Explorer::try_with_backends(
            ProcessNode::ptm_22nm_hp(),
            Objective::EnergyDelayProduct,
            BackendRegistry::with_defaults(),
            registry,
        )
        .expect("default backends cover the baseline");
        RequestHandler::new(explorer, registry, None)
    }

    #[test]
    fn characterize_matches_direct_explorer_call() {
        let registry = Registry::new();
        let handler = handler(&registry);
        let request = Request::Characterize {
            point: DesignPoint {
                tech: "pcm".to_string(),
                tentpole: "optimistic".to_string(),
                dies: 4,
                temperature_kelvin: 350.0,
            },
        };
        let ResponsePayload::Characterization {
            label,
            backend,
            characterization,
            ..
        } = handler.handle(&request).unwrap()
        else {
            panic!("characterize must answer with a characterization");
        };
        assert_eq!(label, "4-die PCM (optimistic)");
        assert_eq!(backend, "destiny");
        let config = MemoryConfig::try_design_point(
            "pcm",
            "optimistic",
            4,
            Kelvin::try_new(350.0).unwrap(),
        )
        .unwrap();
        let direct = handler.explorer().try_characterize(&config).unwrap();
        assert_eq!(
            characterization.read_latency.get().to_bits(),
            direct.read_latency.get().to_bits(),
            "handler and direct calls must agree bit-for-bit"
        );
    }

    #[test]
    fn evaluate_and_status_round_trip() {
        let registry = Registry::new();
        let handler = handler(&registry);
        let request = Request::Evaluate {
            point: DesignPoint::baseline(),
            benchmark: "namd".to_string(),
        };
        let ResponsePayload::Evaluation { row, .. } = handler.handle(&request).unwrap() else {
            panic!("evaluate must answer with an evaluation row");
        };
        assert!((row.relative_power - 1.0).abs() < 1e-9);

        let ResponsePayload::Status(status) = handler.handle(&Request::Status).unwrap() else {
            panic!("status must answer with a status report");
        };
        assert_eq!(status.requests_served, 2);
        assert!(status.cached_characterizations >= 1);
        assert_eq!(registry.counter_value("serve.requests"), Some(2));
        assert_eq!(registry.counter_value("serve.evaluate.requests"), Some(1));
        assert_eq!(registry.counter_value("serve.errors"), Some(0));
    }

    #[test]
    fn typed_errors_surface_and_count() {
        let registry = Registry::new();
        let handler = handler(&registry);
        let bad = Request::Evaluate {
            point: DesignPoint {
                tech: "flash".to_string(),
                ..DesignPoint::baseline()
            },
            benchmark: "namd".to_string(),
        };
        assert!(matches!(
            handler.handle(&bad).unwrap_err(),
            Error::UnknownTechnology { .. }
        ));
        let cold = Request::Characterize {
            point: DesignPoint {
                temperature_kelvin: 4.0,
                ..DesignPoint::baseline()
            },
        };
        assert!(matches!(
            handler.handle(&cold).unwrap_err(),
            Error::UnsupportedPoint { .. }
        ));
        assert_eq!(registry.counter_value("serve.errors"), Some(2));
    }

    #[test]
    fn zero_deadline_trips_before_dispatch() {
        let registry = Registry::new();
        let handler = handler(&registry);
        let err = handler
            .handle_with_deadline(&Request::Sweep, Some(Duration::ZERO))
            .unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded { budget_ms: 0, .. }));
        assert_eq!(registry.counter_value("serve.deadline_exceeded"), Some(1));
        // Status never takes the deadline path: it reads counters only.
        let ok = handler.handle_with_deadline(&Request::Status, Some(Duration::ZERO));
        assert!(ok.is_ok());
    }

    #[test]
    fn search_region_mirrors_the_cli_filters() {
        let (region, configs) = RequestHandler::search_region(Some("pcm"), Some(8)).unwrap();
        assert_eq!(region, "study x pcm x 8 dies");
        assert_eq!(configs.len(), 2, "optimistic + pessimistic 8-die PCM");
        assert!(matches!(
            RequestHandler::search_region(Some("flash"), None),
            Err(Error::UnknownTechnology { .. })
        ));
        assert!(matches!(
            RequestHandler::search_region(None, Some(3)),
            Err(Error::InvalidDieCount { dies: 3 })
        ));
    }

    #[test]
    fn sweep_response_carries_the_study_plan_hash() {
        let registry = Registry::new();
        let handler = handler(&registry);
        let ResponsePayload::Sweep { plan_hash, rows } = handler.handle(&Request::Sweep).unwrap()
        else {
            panic!("sweep must answer with rows");
        };
        let expected = handler
            .explorer()
            .plan_sweep(&MemoryConfig::study_set())
            .unwrap()
            .stable_hash();
        assert_eq!(plan_hash, expected);
        assert_eq!(rows.len(), 31 * 23);
    }
}
