//! Hybrid LLC architectures: a fast volatile partition in front of a
//! dense eNVM partition.
//!
//! The paper's related work (Section II-B) surveys SRAM/STT-RAM hybrid
//! caches with adaptive placement (Wang et al.) and PCM/SRAM hybrids
//! (Wu et al., Guo et al.): a few SRAM ways absorb the write-hot lines,
//! shielding the eNVM from its expensive writes while keeping its
//! density and low leakage for the read-mostly majority. This module
//! models that architecture at the same application level as the rest
//! of the exploration.

use coldtall_array::ArrayCharacterization;
use coldtall_cachesim::LlcTraffic;
use coldtall_cell::CellModel;
use coldtall_units::{Capacity, Joules, Watts};
use coldtall_workloads::{spec2017, Benchmark};

use crate::batch::EvalArena;
use crate::config::MemoryConfig;
use crate::evaluate::{Feasibility, LlcEvaluation, RowValues};
use crate::explorer::Explorer;
use crate::lifetime::lifetime_years;
use crate::pool;

/// Exponent of the write-capture law: the fraction of writes the fast
/// partition absorbs is `fast_fraction ^ WRITE_CAPTURE_EXP`. Write-hot
/// lines are few and placement policies find them, so a small partition
/// captures most writes (e.g. 2 of 16 ways captures ~60%).
const WRITE_CAPTURE_EXP: f64 = 0.25;

/// Exponent of the read-capture law: reads are spread across the set,
/// so capture is closer to proportional.
const READ_CAPTURE_EXP: f64 = 0.8;

/// Fraction of dense-partition writes that trigger a migration into the
/// fast partition (each costing one fast write plus one dense read).
const MIGRATION_RATE: f64 = 0.05;

/// A hybrid LLC: a fast (volatile) partition of `fast_ways` ways and a
/// dense partition covering the rest of the 16-way capacity.
///
/// # Examples
///
/// ```
/// use coldtall_cell::{MemoryTechnology, Tentpole};
/// use coldtall_core::{Explorer, HybridLlc, MemoryConfig};
/// use coldtall_workloads::benchmark;
///
/// let hybrid = HybridLlc::new(
///     MemoryConfig::sram_350k(),
///     MemoryConfig::envm_3d(MemoryTechnology::SttRam, Tentpole::Optimistic, 4),
///     2,
/// );
/// let explorer = Explorer::with_defaults();
/// let eval = explorer.evaluate_hybrid(&hybrid, benchmark("lbm").unwrap());
/// // The SRAM ways shield the STT partition from the write storm.
/// assert!(eval.meets_lifetime_target());
/// assert!(eval.relative_latency.is_finite());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HybridLlc {
    fast: MemoryConfig,
    dense: MemoryConfig,
    fast_ways: u8,
}

/// Total ways of the study LLC.
const TOTAL_WAYS: u8 = 16;

impl HybridLlc {
    /// Creates a hybrid with `fast_ways` of the 16 ways in the fast
    /// partition.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= fast_ways < 16`.
    #[must_use]
    pub fn new(fast: MemoryConfig, dense: MemoryConfig, fast_ways: u8) -> Self {
        assert!(
            (1..TOTAL_WAYS).contains(&fast_ways),
            "fast partition must hold between 1 and 15 of the 16 ways"
        );
        Self {
            fast,
            dense,
            fast_ways,
        }
    }

    /// The fast partition's configuration.
    #[must_use]
    pub fn fast(&self) -> &MemoryConfig {
        &self.fast
    }

    /// The dense partition's configuration.
    #[must_use]
    pub fn dense(&self) -> &MemoryConfig {
        &self.dense
    }

    /// Ways in the fast partition.
    #[must_use]
    pub fn fast_ways(&self) -> u8 {
        self.fast_ways
    }

    /// Capacity fraction of the fast partition.
    #[must_use]
    pub fn fast_fraction(&self) -> f64 {
        f64::from(self.fast_ways) / f64::from(TOTAL_WAYS)
    }

    /// Fraction of writes absorbed by the fast partition under the
    /// adaptive placement policy.
    #[must_use]
    pub fn write_capture(&self) -> f64 {
        self.fast_fraction().powf(WRITE_CAPTURE_EXP)
    }

    /// Fraction of reads served by the fast partition.
    #[must_use]
    pub fn read_capture(&self) -> f64 {
        self.fast_fraction().powf(READ_CAPTURE_EXP)
    }

    /// Display label, e.g. `"Hybrid SRAM+4-die STT-RAM (optimistic) (2/16 ways)"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "Hybrid {}+{} ({}/{} ways)",
            self.fast.label(),
            self.dense.label(),
            self.fast_ways,
            TOTAL_WAYS
        )
    }
}

/// The per-hybrid invariants of a sweep, computed once and reused
/// across every benchmark (plane) of that hybrid: the
/// capacity-apportioned partition characterizations (the two
/// organization searches dominate a single hybrid evaluation's cost)
/// plus the hoisted pure-function terms the batched kernel shares —
/// label, cooling wall factor, and the two capture fractions.
#[derive(Debug, Clone)]
struct HybridParts {
    fast: ArrayCharacterization,
    dense: ArrayCharacterization,
    dense_cell: CellModel,
    dense_capacity: Capacity,
    /// [`HybridLlc::label`], formatted once per plane.
    label: String,
    /// The fast partition's cooling multiplier (both partitions share
    /// the die, so a cryogenic hybrid cools both).
    wall_factor: f64,
    /// [`HybridLlc::write_capture`], one `powf` per plane.
    write_capture: f64,
    /// [`HybridLlc::read_capture`], one `powf` per plane.
    read_capture: f64,
}

impl Explorer {
    /// Characterizes both partitions at their share of the 16 MiB
    /// capacity and hoists the hybrid's plane-invariant terms.
    fn hybrid_parts(&self, hybrid: &HybridLlc) -> HybridParts {
        let total_bytes = Capacity::from_mebibytes(16).bytes();
        let fast_capacity =
            Capacity::from_bytes(total_bytes * u64::from(hybrid.fast_ways) / 16);
        let dense_capacity = Capacity::from_bytes(
            total_bytes * u64::from(16 - hybrid.fast_ways) / 16,
        );

        let (fast, _) = self.characterize_scaled(&hybrid.fast, fast_capacity);
        let (dense, dense_cell) = self.characterize_scaled(&hybrid.dense, dense_capacity);
        HybridParts {
            fast,
            dense,
            dense_cell,
            dense_capacity,
            label: hybrid.label(),
            wall_factor: hybrid
                .fast
                .cooling()
                .wall_factor(hybrid.fast.temperature()),
            write_capture: hybrid.write_capture(),
            read_capture: hybrid.read_capture(),
        }
    }

    /// The baseline's raw traffic-weighted service time for the hybrid
    /// latency normalization (undiluted, matching the hybrid model's
    /// own undiluted partition sum).
    fn hybrid_base_service(&self, traffic: &LlcTraffic) -> f64 {
        let baseline = self.baseline();
        traffic.reads_per_sec * baseline.read_latency.get()
            + traffic.writes_per_sec * baseline.write_latency.get()
    }

    /// Evaluates a hybrid LLC under a benchmark's traffic.
    ///
    /// Each partition is characterized at its share of the 16 MiB
    /// capacity; traffic splits by the placement-capture laws, with a
    /// migration surcharge on dense-partition writes.
    #[must_use]
    pub fn evaluate_hybrid(&self, hybrid: &HybridLlc, benchmark: &Benchmark) -> LlcEvaluation {
        self.evaluate_hybrid_parts(&self.hybrid_parts(hybrid), benchmark)
    }

    /// Evaluates every hybrid under every SPEC2017 benchmark on the
    /// worker pool, in row-major (hybrid, benchmark) order.
    ///
    /// Each hybrid's partitions are characterized exactly once (in
    /// parallel across hybrids) before the pair grid fans out, so the
    /// sweep does two organization searches per hybrid instead of two
    /// per (hybrid, benchmark) pair.
    #[must_use]
    pub fn par_sweep_hybrids(&self, hybrids: &[HybridLlc]) -> Vec<LlcEvaluation> {
        let parts = pool::parallel_map_slice(hybrids, |hybrid| self.hybrid_parts(hybrid));
        let benchmarks = spec2017();
        pool::parallel_map(hybrids.len() * benchmarks.len(), |index| {
            let (h, b) = pool::unflatten(index, benchmarks.len());
            self.evaluate_hybrid_parts(&parts[h], &benchmarks[b])
        })
    }

    /// Evaluates every hybrid under every SPEC2017 benchmark
    /// sequentially into a caller-owned arena — the hybrid counterpart
    /// of [`Explorer::execute_into`], emitting rows allocation-free
    /// and bit-identical to [`Explorer::par_sweep_hybrids`].
    pub fn sweep_hybrids_into(&self, hybrids: &[HybridLlc], arena: &mut EvalArena) {
        let benchmarks = spec2017();
        arena.begin(benchmarks);
        let base_services: Vec<f64> = benchmarks
            .iter()
            .map(|b| self.hybrid_base_service(&b.traffic))
            .collect();
        for hybrid in hybrids {
            let parts = self.hybrid_parts(hybrid);
            arena.push_plane_label(parts.label.clone());
            for (b, base_service) in base_services.iter().enumerate() {
                let traffic = arena.traffic.get(b);
                let (values, years) = self.hybrid_row(&parts, &traffic, *base_service);
                arena.push_row(&values, years);
            }
        }
    }

    fn evaluate_hybrid_parts(&self, parts: &HybridParts, benchmark: &Benchmark) -> LlcEvaluation {
        let traffic = benchmark.traffic;
        let base_service = self.hybrid_base_service(&traffic);
        let (values, years) = self.hybrid_row(parts, &traffic, base_service);
        LlcEvaluation::from_values(parts.label.clone(), benchmark.name, traffic, &values, years)
    }

    /// The hybrid model's per-row arithmetic — the single copy of the
    /// float expressions shared by the scalar path
    /// ([`Explorer::evaluate_hybrid`]), the pooled sweep, and the
    /// arena sweep, which is what keeps them bit-identical.
    fn hybrid_row(
        &self,
        parts: &HybridParts,
        traffic: &LlcTraffic,
        base_service: f64,
    ) -> (RowValues, f64) {
        let HybridParts {
            fast,
            dense,
            dense_cell,
            dense_capacity,
            wall_factor,
            write_capture: wc,
            read_capture: rc,
            ..
        } = parts;
        let (r, w) = (traffic.reads_per_sec, traffic.writes_per_sec);
        let (r_fast, r_dense) = (r * rc, r * (1.0 - rc));
        let (w_fast, w_dense) = (w * wc, w * (1.0 - wc));
        let migrations = w_dense * MIGRATION_RATE;

        let dynamic = Joules::new(
            r_fast * fast.read_energy.get()
                + w_fast * fast.write_energy.get()
                + r_dense * dense.read_energy.get()
                + w_dense * dense.write_energy.get()
                + migrations * (fast.write_energy.get() + dense.read_energy.get()),
        );
        let standby = fast.standby_power() + dense.standby_power();
        let device = standby + Watts::new(dynamic.get());
        // Both partitions share the die: a cryogenic hybrid cools both
        // (the hoisted factor is exactly the scalar path's multiplier).
        let wall = device * *wall_factor;

        // Latency: traffic-weighted across partitions, normalized to the
        // baseline on the same benchmark.
        let service = r_fast * fast.read_latency.get()
            + w_fast * fast.write_latency.get()
            + r_dense * dense.read_latency.get()
            + w_dense * dense.write_latency.get();
        let relative_latency = if base_service > 0.0 {
            service / base_service
        } else {
            1.0
        };

        let years = lifetime_years(dense_cell, *dense_capacity, 512, w_dense + migrations);

        let footprint_mm2 = fast.footprint.as_mm2() + dense.footprint.as_mm2();
        let utilization = fast
            .bandwidth_utilization(r_fast, w_fast)
            .max(dense.bandwidth_utilization(r_dense, w_dense));
        // The hybrid model has no refresh-dead partition (its fast side
        // is volatile SRAM/eDRAM kept serviceable by construction), so
        // the verdict reduces to saturation and slowdown.
        let feasibility = if utilization >= 1.0 {
            Feasibility::BandwidthSaturated
        } else if relative_latency > 1.0 {
            Feasibility::Slowdown
        } else {
            Feasibility::Viable
        };
        let values = RowValues {
            device_power: device,
            wall_power: wall,
            relative_power: wall / self.reference_power(),
            relative_latency,
            slowdown: relative_latency > 1.0,
            feasibility,
            footprint_mm2,
            bandwidth_utilization: utilization,
        };
        (values, years)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldtall_cell::{MemoryTechnology, Tentpole};
    use coldtall_workloads::benchmark;

    fn hybrid(fast_ways: u8) -> HybridLlc {
        HybridLlc::new(
            MemoryConfig::sram_350k(),
            MemoryConfig::envm_3d(MemoryTechnology::SttRam, Tentpole::Optimistic, 4),
            fast_ways,
        )
    }

    #[test]
    fn capture_laws_are_superlinear_for_writes() {
        let h = hybrid(2);
        assert!((h.fast_fraction() - 0.125).abs() < 1e-12);
        assert!(h.write_capture() > 0.5, "2 ways capture most writes");
        assert!(h.read_capture() < h.write_capture());
    }

    #[test]
    fn hybrid_beats_pure_sram_on_power_for_write_heavy_traffic() {
        let explorer = Explorer::with_defaults();
        let lbm = benchmark("lbm").unwrap();
        let pure_sram = explorer.evaluate(&MemoryConfig::sram_350k(), lbm);
        let h = explorer.evaluate_hybrid(&hybrid(2), lbm);
        assert!(
            h.relative_power < pure_sram.relative_power,
            "hybrid {} vs SRAM {}",
            h.relative_power,
            pure_sram.relative_power
        );
    }

    #[test]
    fn hybrid_extends_dense_partition_lifetime() {
        let explorer = Explorer::with_defaults();
        let lbm = benchmark("lbm").unwrap();
        let pcm_hybrid = HybridLlc::new(
            MemoryConfig::sram_350k(),
            MemoryConfig::envm_3d(MemoryTechnology::Pcm, Tentpole::Optimistic, 4),
            2,
        );
        let pure_pcm = explorer.evaluate(
            &MemoryConfig::envm_3d(MemoryTechnology::Pcm, Tentpole::Optimistic, 4),
            lbm,
        );
        let h = explorer.evaluate_hybrid(&pcm_hybrid, lbm);
        assert!(
            h.lifetime_years > 2.0 * pure_pcm.lifetime_years,
            "write shielding must extend lifetime: {} vs {}",
            h.lifetime_years,
            pure_pcm.lifetime_years
        );
    }

    #[test]
    fn more_fast_ways_cost_more_leakage() {
        let explorer = Explorer::with_defaults();
        let quiet = benchmark("leela").unwrap();
        let small = explorer.evaluate_hybrid(&hybrid(2), quiet);
        let large = explorer.evaluate_hybrid(&hybrid(8), quiet);
        assert!(large.relative_power > small.relative_power);
    }

    #[test]
    fn hybrid_sweep_matches_pointwise_evaluation() {
        let explorer = Explorer::with_defaults();
        let hybrids = [hybrid(2), hybrid(8)];
        let rows = explorer.par_sweep_hybrids(&hybrids);
        let benchmarks = spec2017();
        assert_eq!(rows.len(), hybrids.len() * benchmarks.len());
        // Row-major order, values identical to the one-off path.
        let direct = explorer.evaluate_hybrid(&hybrids[1], &benchmarks[3]);
        assert_eq!(rows[benchmarks.len() + 3], direct);
    }

    #[test]
    fn arena_hybrid_sweep_is_bit_identical_to_the_pooled_sweep() {
        let explorer = Explorer::with_defaults();
        let hybrids = [hybrid(2), hybrid(8)];
        let mut arena = EvalArena::new();
        explorer.sweep_hybrids_into(&hybrids, &mut arena);
        assert_eq!(arena.rows(), hybrids.len() * spec2017().len());
        assert_eq!(arena.to_rows(), explorer.par_sweep_hybrids(&hybrids));
    }

    #[test]
    fn label_is_descriptive() {
        assert_eq!(
            hybrid(2).label(),
            "Hybrid SRAM+4-die STT-RAM (optimistic) (2/16 ways)"
        );
    }

    #[test]
    #[should_panic(expected = "between 1 and 15")]
    fn rejects_degenerate_partitions() {
        let _ = hybrid(16);
    }
}
