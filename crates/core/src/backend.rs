//! Pluggable array-characterization backends.
//!
//! The paper's toolflow (Fig. 2) dispatches each design point to one of
//! two interchangeable characterization engines: CryoMEM for
//! temperature-swept volatile memories and Destiny for 2D/3D eNVM and
//! stacked-SRAM arrays. This module is that fault line: a
//! [`CharacterizationBackend`] trait with a capability descriptor, the
//! two concrete backends ([`CryoMemBackend`], [`DestinyBackend`]), and
//! a [`BackendRegistry`] that resolves every [`MemoryConfig`] to
//! *exactly one* backend — never a silent pick.
//!
//! Backends are allowed to overlap. When several claim a point,
//! resolution applies two rules in order:
//!
//! 1. **Specificity** — a claimant whose [`BackendCapabilities`]
//!    strictly contain another claimant's yields to the more specific
//!    backend (the generalist defers to the specialist).
//! 2. **Priority** — among the surviving claimants, the unique highest
//!    registration priority wins.
//!
//! Zero claimants is [`Error::NoBackend`]; a priority tie among the
//! survivors is [`Error::BackendConflict`], naming *every* claimant so
//! the ambiguity is auditable. The default registry registers CryoMEM
//! above Destiny: both claim single-die SRAM (neither's capabilities
//! contain the other's), and priority routes that overlap to CryoMEM —
//! exactly the partition the old exclusive registry enforced, point
//! for point. CryoMEM covers single-die volatile memories across the
//! legal 60-400 K span (the paper sweeps 77-400 K; the device models
//! extrapolate to the tool's lower legal bound); Destiny covers every
//! non-volatile technology plus stacked (multi-die) SRAM.

#![deny(missing_docs)]

use core::fmt;
use std::sync::Arc;

use coldtall_array::{ArrayCharacterization, ArraySpec, Objective, OrgGeometry};
use coldtall_cell::{CellModel, MemoryTechnology};
use coldtall_tech::ProcessNode;
use coldtall_units::Kelvin;

use crate::config::MemoryConfig;
use crate::error::Error;
use crate::parcache::GeometryCache;
use crate::plan::DesignPointKey;

/// Lowest operating temperature either default backend accepts — the
/// CLI's legal lower bound, below the paper's 77 K sweep floor.
const MIN_TEMPERATURE_K: f64 = 60.0;

/// Highest operating temperature either default backend accepts.
const MAX_TEMPERATURE_K: f64 = 400.0;

/// What a backend can characterize: the technologies, the operating
/// temperature span, and the die counts it models.
///
/// [`BackendCapabilities::supports`] is the default admission check;
/// backends with constraints the descriptor cannot express
/// additionally override [`CharacterizationBackend::supports`]. The
/// descriptor also drives the resolution policy's specificity rule
/// ([`BackendCapabilities::strictly_contains`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BackendCapabilities {
    technologies: Vec<MemoryTechnology>,
    min_temperature: Kelvin,
    max_temperature: Kelvin,
    die_counts: Vec<u8>,
}

impl BackendCapabilities {
    /// Builds a descriptor from the supported technologies, the
    /// inclusive temperature span, and the supported die counts.
    #[must_use]
    pub fn new(
        technologies: Vec<MemoryTechnology>,
        min_temperature: Kelvin,
        max_temperature: Kelvin,
        die_counts: Vec<u8>,
    ) -> Self {
        Self {
            technologies,
            min_temperature,
            max_temperature,
            die_counts,
        }
    }

    /// Technologies the backend models.
    #[must_use]
    pub fn technologies(&self) -> &[MemoryTechnology] {
        &self.technologies
    }

    /// Lowest supported operating temperature (inclusive).
    #[must_use]
    pub fn min_temperature(&self) -> Kelvin {
        self.min_temperature
    }

    /// Highest supported operating temperature (inclusive).
    #[must_use]
    pub fn max_temperature(&self) -> Kelvin {
        self.max_temperature
    }

    /// Die counts the backend models.
    #[must_use]
    pub fn die_counts(&self) -> &[u8] {
        &self.die_counts
    }

    /// Whether the descriptor admits `config` on all three axes.
    #[must_use]
    pub fn supports(&self, config: &MemoryConfig) -> bool {
        self.technologies.contains(&config.technology())
            && self.die_counts.contains(&config.dies())
            && config.temperature() >= self.min_temperature
            && config.temperature() <= self.max_temperature
    }

    /// Whether `self` admits every point `other` admits: a superset on
    /// all three axes (technologies, temperature span, die counts).
    #[must_use]
    pub fn contains(&self, other: &Self) -> bool {
        other
            .technologies
            .iter()
            .all(|t| self.technologies.contains(t))
            && other.die_counts.iter().all(|d| self.die_counts.contains(d))
            && self.min_temperature <= other.min_temperature
            && self.max_temperature >= other.max_temperature
    }

    /// Strict containment: `self` admits everything `other` does, and
    /// `other` does not admit everything `self` does. This is the
    /// specificity relation of the resolution policy — the strictly
    /// containing (more general) backend yields to the contained (more
    /// specific) one.
    #[must_use]
    pub fn strictly_contains(&self, other: &Self) -> bool {
        self.contains(other) && !other.contains(self)
    }
}

/// One array-characterization engine.
///
/// A backend owns the lowering of a [`MemoryConfig`] to an
/// [`ArraySpec`] and its characterization. All dispatch goes through a
/// [`BackendRegistry`] — nothing outside this module calls
/// `to_spec().characterize()` directly — so swapping or adding an
/// engine (a measured-silicon table, an external simulator binding)
/// touches exactly one seam.
pub trait CharacterizationBackend: Send + Sync + fmt::Debug {
    /// Stable machine-readable name (`cryomem`, `destiny`), used for
    /// CLI selection and per-backend metrics.
    fn name(&self) -> &'static str;

    /// The backend's capability descriptor.
    fn capabilities(&self) -> BackendCapabilities;

    /// Whether this backend claims `config`. Defaults to the
    /// descriptor's three-axis check; override to carve out regions
    /// the descriptor cannot express.
    fn supports(&self, config: &MemoryConfig) -> bool {
        self.capabilities().supports(config)
    }

    /// Lowers the design point to an array specification (cell model,
    /// 16 MiB LLC geometry, stacking, temperature policy). Exposed so
    /// callers that re-shape the array before characterizing — the
    /// hybrid-LLC partitioner overrides capacity — still route through
    /// the backend.
    fn lower(&self, config: &MemoryConfig, node: &ProcessNode) -> ArraySpec {
        config.to_spec(node)
    }

    /// Characterizes the design point's array.
    fn characterize(
        &self,
        config: &MemoryConfig,
        node: &ProcessNode,
        objective: Objective,
    ) -> ArrayCharacterization {
        self.lower(config, node).characterize(objective)
    }

    /// Characterizes a batch of design points sharing one
    /// temperature-stripped geometry key (same technology, tentpole
    /// where the cell model reads it, and die count — the points
    /// differ only in operating temperature), returning one result per
    /// config in order.
    ///
    /// The default implementation loops
    /// [`CharacterizationBackend::characterize`] and never touches the
    /// geometry cache, so custom backends are correct with no extra
    /// work. The two default backends override it with the two-phase
    /// kernel: the organization geometry is solved once per
    /// `geometry_key` (memoized in `geometries`, counted as
    /// `geometry.solves`) and the cheap temperature pass fans out per
    /// point. Overrides must stay **bit-identical** to the per-point
    /// path — the golden suite and `tests/batch.rs` pin this.
    fn characterize_batch(
        &self,
        geometry_key: &DesignPointKey,
        configs: &[MemoryConfig],
        node: &ProcessNode,
        objective: Objective,
        geometries: &GeometryCache,
    ) -> Vec<ArrayCharacterization> {
        let _ = (geometry_key, geometries);
        configs
            .iter()
            .map(|config| self.characterize(config, node, objective))
            .collect()
    }
}

/// The shared two-phase batch kernel of the default backends: one
/// geometry solve per key ([`OrgGeometry::solve`] on the batch's
/// temperature-free base spec, memoized in `geometries`), then the
/// temperature-only pass per point, fanned over the worker pool (the
/// fan-out runs inline when the caller is itself a pool worker).
///
/// Bit-identity with the per-point path holds because both default
/// backends lower every config through the same base spec
/// ([`MemoryConfig::to_base_spec`]) before applying
/// `at_temperature_cryo` — exactly the decomposition
/// [`OrgGeometry::apply_temperature`] replays.
fn two_phase_batch(
    geometry_key: &DesignPointKey,
    configs: &[MemoryConfig],
    node: &ProcessNode,
    objective: Objective,
    geometries: &GeometryCache,
) -> Vec<ArrayCharacterization> {
    let Some(first) = configs.first() else {
        return Vec::new();
    };
    let geometry =
        geometries.get_or_solve(geometry_key, || OrgGeometry::solve(&first.to_base_spec(node)));
    crate::pool::parallel_map_slice(configs, |config| {
        geometry.apply_temperature(config.temperature(), objective)
    })
}

/// The CryoMEM-equivalent backend: single-die volatile memories
/// (SRAM and the eDRAMs) swept across operating temperature, routed
/// through [`coldtall_cryo::characterize_at`] so the cryogenic
/// voltage-scaling policy is applied by the cryo layer itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct CryoMemBackend;

impl CharacterizationBackend for CryoMemBackend {
    fn name(&self) -> &'static str {
        "cryomem"
    }

    fn capabilities(&self) -> BackendCapabilities {
        BackendCapabilities::new(
            vec![
                MemoryTechnology::Sram,
                MemoryTechnology::Edram3T,
                MemoryTechnology::Edram1T1C,
            ],
            Kelvin::new(MIN_TEMPERATURE_K),
            Kelvin::new(MAX_TEMPERATURE_K),
            vec![1],
        )
    }

    fn characterize(
        &self,
        config: &MemoryConfig,
        node: &ProcessNode,
        objective: Objective,
    ) -> ArrayCharacterization {
        // Build the temperature-free base array and hand the operating
        // point to the cryo layer, which applies the voltage-scaling
        // policy — bit-identical to lowering the temperature into the
        // spec first, but keeps the policy in one place.
        let cell = CellModel::tentpole(config.technology(), config.tentpole(), node);
        let base = ArraySpec::llc_16mib(cell, node);
        coldtall_cryo::characterize_at(&base, config.temperature(), objective)
    }

    fn characterize_batch(
        &self,
        geometry_key: &DesignPointKey,
        configs: &[MemoryConfig],
        node: &ProcessNode,
        objective: Objective,
        geometries: &GeometryCache,
    ) -> Vec<ArrayCharacterization> {
        // The temperature sweeps this backend serves are exactly the
        // workload the two-phase kernel amortizes: one geometry solve,
        // then rho(T)/leakage/mobility re-evaluation per temperature.
        two_phase_batch(geometry_key, configs, node, objective, geometries)
    }
}

/// The Destiny-equivalent backend: 2D and 3D (multi-die) eNVM arrays
/// plus stacked-SRAM organizations, lowered through the array engine's
/// stacking model.
#[derive(Debug, Clone, Copy, Default)]
pub struct DestinyBackend;

impl CharacterizationBackend for DestinyBackend {
    fn name(&self) -> &'static str {
        "destiny"
    }

    fn capabilities(&self) -> BackendCapabilities {
        BackendCapabilities::new(
            vec![
                MemoryTechnology::Sram,
                MemoryTechnology::Pcm,
                MemoryTechnology::SttRam,
                MemoryTechnology::Rram,
                MemoryTechnology::SotRam,
            ],
            Kelvin::new(MIN_TEMPERATURE_K),
            Kelvin::new(MAX_TEMPERATURE_K),
            MemoryConfig::VALID_DIES.to_vec(),
        )
    }

    fn characterize_batch(
        &self,
        geometry_key: &DesignPointKey,
        configs: &[MemoryConfig],
        node: &ProcessNode,
        objective: Objective,
        geometries: &GeometryCache,
    ) -> Vec<ArrayCharacterization> {
        two_phase_batch(geometry_key, configs, node, objective, geometries)
    }
}

/// Maps every design point to exactly one registered backend.
///
/// # Examples
///
/// ```
/// use coldtall_core::{BackendRegistry, MemoryConfig};
///
/// let registry = BackendRegistry::with_defaults();
/// assert_eq!(registry.resolve(&MemoryConfig::sram_77k()).unwrap().name(), "cryomem");
/// let stacked = MemoryConfig::envm_3d(
///     coldtall_cell::MemoryTechnology::Pcm,
///     coldtall_cell::Tentpole::Optimistic,
///     8,
/// );
/// assert_eq!(registry.resolve(&stacked).unwrap().name(), "destiny");
/// ```
#[derive(Debug, Clone, Default)]
pub struct BackendRegistry {
    backends: Vec<Arc<dyn CharacterizationBackend>>,
    priorities: Vec<i32>,
}

impl BackendRegistry {
    /// The priority [`BackendRegistry::register`] assigns when none is
    /// given explicitly.
    pub const DEFAULT_PRIORITY: i32 = 0;

    /// The priority [`BackendRegistry::with_defaults`] gives CryoMEM,
    /// above [`DestinyBackend`]'s [`Self::DEFAULT_PRIORITY`]: both
    /// default backends claim single-die SRAM, and priority routes the
    /// overlap to the cryo engine — preserving the historical
    /// partition.
    pub const CRYOMEM_PRIORITY: i32 = 10;

    /// An empty registry. Resolution against it always fails with
    /// [`Error::NoBackend`]; register backends first.
    #[must_use]
    pub fn new() -> Self {
        Self {
            backends: Vec::new(),
            priorities: Vec::new(),
        }
    }

    /// The paper's two engines: [`CryoMemBackend`] (at
    /// [`Self::CRYOMEM_PRIORITY`]) and [`DestinyBackend`] (at
    /// [`Self::DEFAULT_PRIORITY`]).
    #[must_use]
    pub fn with_defaults() -> Self {
        let mut registry = Self::new();
        registry.register_with_priority(Arc::new(CryoMemBackend), Self::CRYOMEM_PRIORITY);
        registry.register(Arc::new(DestinyBackend));
        registry
    }

    /// Registers a backend at [`Self::DEFAULT_PRIORITY`]. Registration
    /// order never decides resolution — overlap is settled by the
    /// specificity-then-priority policy of
    /// [`BackendRegistry::resolve`], and a genuine tie is reported as
    /// [`Error::BackendConflict`], never broken silently.
    pub fn register(&mut self, backend: Arc<dyn CharacterizationBackend>) {
        self.register_with_priority(backend, Self::DEFAULT_PRIORITY);
    }

    /// Registers a backend at an explicit resolution priority. Higher
    /// wins among claimants that specificity does not separate.
    pub fn register_with_priority(
        &mut self,
        backend: Arc<dyn CharacterizationBackend>,
        priority: i32,
    ) {
        self.backends.push(backend);
        self.priorities.push(priority);
    }

    /// The resolution priority of the named backend, if registered.
    #[must_use]
    pub fn priority(&self, name: &str) -> Option<i32> {
        self.backends
            .iter()
            .position(|b| b.name() == name)
            .map(|i| self.priorities[i])
    }

    /// The registered backends, in registration order.
    #[must_use]
    pub fn backends(&self) -> &[Arc<dyn CharacterizationBackend>] {
        &self.backends
    }

    /// Looks a backend up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Arc<dyn CharacterizationBackend>> {
        self.backends.iter().find(|b| b.name() == name)
    }

    /// Resolves `config` to exactly one backend.
    ///
    /// When several backends claim the point, specificity applies
    /// first — a claimant whose [`BackendCapabilities`] strictly
    /// contain another claimant's yields to the more specific one —
    /// then the unique highest-priority survivor wins.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoBackend`] if no registered backend claims the
    /// configuration, or [`Error::BackendConflict`] naming every
    /// claimant if specificity and priority leave the overlap
    /// ambiguous.
    pub fn resolve(&self, config: &MemoryConfig) -> Result<&Arc<dyn CharacterizationBackend>, Error> {
        self.resolve_index(config).map(|i| &self.backends[i])
    }

    /// [`BackendRegistry::resolve`], returning the registration index
    /// (used by the explorer to address per-backend telemetry).
    pub(crate) fn resolve_index(&self, config: &MemoryConfig) -> Result<usize, Error> {
        let claimants: Vec<usize> = self
            .backends
            .iter()
            .enumerate()
            .filter(|(_, b)| b.supports(config))
            .map(|(i, _)| i)
            .collect();
        match claimants.as_slice() {
            [] => Err(Error::NoBackend {
                config: config.label(),
            }),
            [only] => Ok(*only),
            _ => {
                // Specificity: drop every claimant whose capabilities
                // strictly contain another claimant's. Strict
                // containment is a strict partial order, so at least
                // one (minimal) claimant always survives.
                let survivors: Vec<usize> = claimants
                    .iter()
                    .copied()
                    .filter(|&i| {
                        !claimants.iter().any(|&j| {
                            j != i
                                && self.backends[i]
                                    .capabilities()
                                    .strictly_contains(&self.backends[j].capabilities())
                        })
                    })
                    .collect();
                let best = survivors
                    .iter()
                    .copied()
                    .map(|i| self.priorities[i])
                    .max()
                    .expect("specificity keeps at least one claimant");
                let mut winners = survivors.iter().filter(|&&i| self.priorities[i] == best);
                match (winners.next(), winners.next()) {
                    (Some(&index), None) => Ok(index),
                    _ => Err(Error::BackendConflict {
                        config: config.label(),
                        backends: claimants
                            .iter()
                            .map(|&i| self.backends[i].name().to_string())
                            .collect(),
                    }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldtall_cell::Tentpole;

    #[test]
    fn default_backends_partition_the_study_set() {
        let registry = BackendRegistry::with_defaults();
        for config in MemoryConfig::study_set() {
            let backend = registry
                .resolve(&config)
                .unwrap_or_else(|e| panic!("{}: {e}", config.label()));
            let expected = if config.technology().is_nonvolatile() || config.dies() > 1 {
                "destiny"
            } else {
                "cryomem"
            };
            assert_eq!(backend.name(), expected, "{}", config.label());
        }
    }

    #[test]
    fn cryomem_routes_bit_identically_to_the_spec_path() {
        let node = ProcessNode::ptm_22nm_hp();
        let objective = Objective::EnergyDelayProduct;
        for config in [
            MemoryConfig::sram_350k(),
            MemoryConfig::sram_77k(),
            MemoryConfig::edram_77k(),
        ] {
            assert_eq!(
                CryoMemBackend.characterize(&config, &node, objective),
                config.to_spec(&node).characterize(objective),
                "{}",
                config.label()
            );
        }
    }

    #[test]
    fn batched_characterization_is_bit_identical_per_backend() {
        let node = ProcessNode::ptm_22nm_hp();
        let objective = Objective::EnergyDelayProduct;
        let geometries = GeometryCache::unregistered();

        // CryoMEM: one volatile array swept over temperature shares a
        // single geometry solve.
        let cryo_configs: Vec<MemoryConfig> = [77.0, 177.0, 350.0]
            .map(Kelvin::new)
            .map(|t| MemoryConfig::volatile_2d(MemoryTechnology::Edram3T, t))
            .to_vec();
        let key = DesignPointKey::geometry_of(&cryo_configs[0]);
        let batched =
            CryoMemBackend.characterize_batch(&key, &cryo_configs, &node, objective, &geometries);
        assert_eq!(batched.len(), cryo_configs.len());
        for (config, got) in cryo_configs.iter().zip(&batched) {
            assert_eq!(
                got,
                &CryoMemBackend.characterize(config, &node, objective),
                "{}",
                config.label()
            );
        }
        assert_eq!(geometries.solves(), 1);

        // Destiny: a stacked eNVM point at two temperatures.
        let stacked: Vec<MemoryConfig> = [300.0, 350.0]
            .map(Kelvin::new)
            .map(|t| {
                MemoryConfig::envm_3d(MemoryTechnology::Pcm, Tentpole::Optimistic, 4)
                    .at_temperature(t)
            })
            .to_vec();
        let key = DesignPointKey::geometry_of(&stacked[0]);
        let batched =
            DestinyBackend.characterize_batch(&key, &stacked, &node, objective, &geometries);
        for (config, got) in stacked.iter().zip(&batched) {
            assert_eq!(
                got,
                &DestinyBackend.characterize(config, &node, objective),
                "{}",
                config.label()
            );
        }
        assert_eq!(geometries.solves(), 2, "one more solve for the new key");
    }

    #[test]
    fn capability_descriptor_checks_all_three_axes() {
        let caps = CryoMemBackend.capabilities();
        assert!(caps.supports(&MemoryConfig::sram_77k()));
        // Temperature out of span.
        let hot = MemoryConfig::volatile_2d(MemoryTechnology::Sram, Kelvin::new(500.0));
        assert!(!caps.supports(&hot));
        // Technology not modeled.
        assert!(!caps.supports(&MemoryConfig::envm_3d(
            MemoryTechnology::Pcm,
            Tentpole::Optimistic,
            1
        )));
        // Die count not modeled.
        assert!(!caps.supports(&MemoryConfig::envm_3d(
            MemoryTechnology::Sram,
            Tentpole::Optimistic,
            2
        )));
    }

    #[test]
    fn empty_registry_and_overlap_are_typed_errors() {
        let config = MemoryConfig::sram_350k();
        let err = BackendRegistry::new().resolve(&config).unwrap_err();
        assert!(matches!(err, Error::NoBackend { .. }), "{err}");

        // Two identical backends at the same priority: specificity
        // cannot separate equal capabilities and priority ties, so the
        // overlap stays a typed error naming every claimant.
        let mut overlapping = BackendRegistry::new();
        overlapping.register(Arc::new(CryoMemBackend));
        overlapping.register(Arc::new(CryoMemBackend));
        let err = overlapping.resolve(&config).unwrap_err();
        match err {
            Error::BackendConflict { backends, .. } => {
                assert_eq!(backends, ["cryomem", "cryomem"]);
            }
            other => panic!("expected a conflict, got {other}"),
        }
    }

    #[test]
    fn capability_containment_is_a_strict_partial_order() {
        let cryo = CryoMemBackend.capabilities();
        let destiny = DestinyBackend.capabilities();
        // The default backends overlap (single-die SRAM) but neither
        // contains the other: CryoMEM models the eDRAMs, Destiny the
        // eNVMs.
        assert!(!cryo.strictly_contains(&destiny));
        assert!(!destiny.strictly_contains(&cryo));
        // Equal capabilities contain each other, never strictly.
        assert!(cryo.contains(&cryo));
        assert!(!cryo.strictly_contains(&cryo.clone()));
        // A narrowed descriptor is strictly contained.
        let narrow = BackendCapabilities::new(
            vec![MemoryTechnology::Sram],
            Kelvin::new(70.0),
            Kelvin::new(300.0),
            vec![1],
        );
        assert!(cryo.strictly_contains(&narrow));
        assert!(!narrow.strictly_contains(&cryo));
    }

    #[test]
    fn default_overlap_resolves_to_cryomem_by_priority() {
        // Both default backends claim single-die SRAM; the registry
        // routes it to CryoMEM by priority, preserving the historical
        // partition.
        let registry = BackendRegistry::with_defaults();
        let config = MemoryConfig::sram_77k();
        assert!(CryoMemBackend.supports(&config));
        assert!(DestinyBackend.supports(&config));
        assert_eq!(registry.resolve(&config).unwrap().name(), "cryomem");
        assert_eq!(
            registry.priority("cryomem"),
            Some(BackendRegistry::CRYOMEM_PRIORITY)
        );
        assert_eq!(
            registry.priority("destiny"),
            Some(BackendRegistry::DEFAULT_PRIORITY)
        );
        assert_eq!(registry.priority("nvsim"), None);
    }

    #[test]
    fn lookup_by_name() {
        let registry = BackendRegistry::with_defaults();
        assert_eq!(registry.get("destiny").unwrap().name(), "destiny");
        assert!(registry.get("nvsim").is_none());
        assert_eq!(registry.backends().len(), 2);
    }
}
