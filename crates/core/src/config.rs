//! Named design points of the exploration.

use core::fmt;

use coldtall_array::ArraySpec;
use coldtall_cell::{CellModel, MemoryTechnology, Tentpole};
use coldtall_cryo::CoolingSystem;
use coldtall_tech::ProcessNode;
use coldtall_units::Kelvin;

/// One point of the design space: a technology at a tentpole, a die
/// count, an operating temperature, and (for cryogenic points) a cooling
/// tier.
///
/// # Examples
///
/// ```
/// use coldtall_core::MemoryConfig;
///
/// let cryo = MemoryConfig::edram_77k();
/// assert_eq!(cryo.label(), "77K 3T-eDRAM");
/// let pcm = MemoryConfig::envm_3d(coldtall_cell::MemoryTechnology::Pcm,
///                                 coldtall_cell::Tentpole::Optimistic, 8);
/// assert_eq!(pcm.label(), "8-die PCM (optimistic)");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryConfig {
    technology: MemoryTechnology,
    tentpole: Tentpole,
    dies: u8,
    temperature: Kelvin,
    cooling: CoolingSystem,
}

impl MemoryConfig {
    /// The die counts the study stacks. The single source of truth for
    /// die-count validation: [`MemoryConfig::validate_dies`], the CLI,
    /// and the Destiny backend's capability descriptor all read it.
    pub const VALID_DIES: [u8; 4] = [1, 2, 4, 8];

    /// Validates a die count against [`MemoryConfig::VALID_DIES`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidDieCount`] if `dies` is not 1, 2,
    /// 4, or 8.
    pub fn validate_dies(dies: u8) -> Result<(), crate::Error> {
        if Self::VALID_DIES.contains(&dies) {
            Ok(())
        } else {
            Err(crate::Error::InvalidDieCount { dies })
        }
    }

    /// The study baseline: 2D SRAM at 350 K.
    #[must_use]
    pub fn sram_350k() -> Self {
        Self::volatile_2d(MemoryTechnology::Sram, Kelvin::REFERENCE)
    }

    /// 2D SRAM at 77 K under the cryo policy.
    #[must_use]
    pub fn sram_77k() -> Self {
        Self::volatile_2d(MemoryTechnology::Sram, Kelvin::LN2)
    }

    /// 2D 3T-eDRAM at 350 K.
    #[must_use]
    pub fn edram_350k() -> Self {
        Self::volatile_2d(MemoryTechnology::Edram3T, Kelvin::REFERENCE)
    }

    /// 2D 3T-eDRAM at 77 K under the cryo policy.
    #[must_use]
    pub fn edram_77k() -> Self {
        Self::volatile_2d(MemoryTechnology::Edram3T, Kelvin::LN2)
    }

    /// A volatile (SRAM/eDRAM) 2D configuration at temperature `t`.
    #[must_use]
    pub fn volatile_2d(technology: MemoryTechnology, t: Kelvin) -> Self {
        Self {
            technology,
            tentpole: Tentpole::Optimistic,
            dies: 1,
            temperature: t,
            cooling: CoolingSystem::default(),
        }
    }

    /// An eNVM (or SRAM) configuration with `dies` stacked dies at
    /// 350 K, rejecting die counts outside the study's 1/2/4/8 set.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidDieCount`] if `dies` is not 1, 2,
    /// 4, or 8.
    pub fn try_envm_3d(
        technology: MemoryTechnology,
        tentpole: Tentpole,
        dies: u8,
    ) -> Result<Self, crate::Error> {
        Self::validate_dies(dies)?;
        Ok(Self {
            technology,
            tentpole,
            dies,
            temperature: Kelvin::REFERENCE,
            cooling: CoolingSystem::default(),
        })
    }

    /// An eNVM (or SRAM) configuration with `dies` stacked dies at 350 K.
    ///
    /// Precondition: `dies` is 1, 2, 4, or 8. Use
    /// [`MemoryConfig::try_envm_3d`] for untrusted inputs.
    ///
    /// # Panics
    ///
    /// Panics if `dies` is not 1, 2, 4, or 8.
    #[must_use]
    pub fn envm_3d(technology: MemoryTechnology, tentpole: Tentpole, dies: u8) -> Self {
        Self::validate_dies(dies).unwrap_or_else(|e| panic!("{e}"));
        Self {
            technology,
            tentpole,
            dies,
            temperature: Kelvin::REFERENCE,
            cooling: CoolingSystem::default(),
        }
    }

    /// Parses a technology name as the CLI and service frontends spell
    /// them: `sram`, `edram`/`3t-edram`, `pcm`, `stt`/`stt-ram`,
    /// `rram`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::UnknownTechnology`] for anything else.
    pub fn parse_technology(name: &str) -> Result<MemoryTechnology, crate::Error> {
        match name {
            "sram" => Ok(MemoryTechnology::Sram),
            "edram" | "3t-edram" => Ok(MemoryTechnology::Edram3T),
            "pcm" => Ok(MemoryTechnology::Pcm),
            "stt" | "stt-ram" => Ok(MemoryTechnology::SttRam),
            "rram" => Ok(MemoryTechnology::Rram),
            other => Err(crate::Error::UnknownTechnology {
                name: other.to_string(),
            }),
        }
    }

    /// Parses a tentpole name as the frontends spell them:
    /// `optimistic`/`opt` or `pessimistic`/`pess`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::UnknownTentpole`] for anything else.
    pub fn parse_tentpole(name: &str) -> Result<Tentpole, crate::Error> {
        match name {
            "optimistic" | "opt" => Ok(Tentpole::Optimistic),
            "pessimistic" | "pess" => Ok(Tentpole::Pessimistic),
            other => Err(crate::Error::UnknownTentpole {
                name: other.to_string(),
            }),
        }
    }

    /// Builds a design point from frontend-style raw fields — the
    /// typed equivalent of the CLI's flag parsing, shared by the serve
    /// protocol so both frontends accept the same space.
    ///
    /// eNVM technologies take any tentpole, die count, and
    /// temperature. Volatile technologies (SRAM, 3T-eDRAM) are 2D at
    /// any temperature; stacked volatile points are modeled only at
    /// the 350 K reference (the study's 2/4/8-die SRAM points).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::UnknownTechnology`],
    /// [`crate::Error::UnknownTentpole`],
    /// [`crate::Error::InvalidDieCount`], or
    /// [`crate::Error::UnsupportedPoint`] (stacked volatile off the
    /// 350 K reference).
    pub fn try_design_point(
        tech: &str,
        tentpole: &str,
        dies: u8,
        temperature: Kelvin,
    ) -> Result<Self, crate::Error> {
        let technology = Self::parse_technology(tech)?;
        let tentpole = Self::parse_tentpole(tentpole)?;
        Self::validate_dies(dies)?;
        if technology.is_nonvolatile() {
            Ok(Self::try_envm_3d(technology, tentpole, dies)?.at_temperature(temperature))
        } else if dies == 1 {
            Ok(Self::volatile_2d(technology, temperature))
        } else if temperature == Kelvin::REFERENCE {
            Self::try_envm_3d(technology, tentpole, dies)
        } else {
            Err(crate::Error::UnsupportedPoint {
                reason: format!(
                    "{}-die {} at {:.0} K: volatile stacks are modeled at the 350 K \
                     reference only",
                    dies,
                    technology.name(),
                    temperature.get()
                ),
            })
        }
    }

    /// Replaces the operating temperature.
    #[must_use]
    pub fn at_temperature(mut self, t: Kelvin) -> Self {
        self.temperature = t;
        self
    }

    /// Replaces the cooling tier charged for cryogenic operation.
    #[must_use]
    pub fn with_cooling(mut self, cooling: CoolingSystem) -> Self {
        self.cooling = cooling;
        self
    }

    /// Technology of this design point.
    #[must_use]
    pub fn technology(&self) -> MemoryTechnology {
        self.technology
    }

    /// Tentpole of this design point (meaningful for eNVMs).
    #[must_use]
    pub fn tentpole(&self) -> Tentpole {
        self.tentpole
    }

    /// Die count.
    #[must_use]
    pub fn dies(&self) -> u8 {
        self.dies
    }

    /// Operating temperature.
    #[must_use]
    pub fn temperature(&self) -> Kelvin {
        self.temperature
    }

    /// Cooling tier.
    #[must_use]
    pub fn cooling(&self) -> CoolingSystem {
        self.cooling
    }

    /// Whether this point runs in the cryogenic regime.
    #[must_use]
    pub fn is_cryogenic(&self) -> bool {
        self.temperature.is_cryogenic()
    }

    /// Human-readable label matching the paper's figure legends, e.g.
    /// `"77K 3T-eDRAM"` or `"4-die STT-RAM (pessimistic)"`.
    #[must_use]
    pub fn label(&self) -> String {
        let mut parts = String::new();
        if self.temperature != Kelvin::REFERENCE {
            parts.push_str(&format!("{:.0}K ", self.temperature.get()));
        }
        if self.dies > 1 {
            parts.push_str(&format!("{}-die ", self.dies));
        }
        parts.push_str(self.technology.name());
        if self.technology.is_nonvolatile() {
            parts.push_str(&format!(" ({})", self.tentpole));
        }
        parts
    }

    /// Lowers this design point to an array specification.
    ///
    /// This is the default lowering the characterization backends
    /// share (see [`crate::CharacterizationBackend::lower`]);
    /// characterization itself is dispatched through a
    /// [`crate::BackendRegistry`], never chained directly off this
    /// spec.
    #[must_use]
    pub fn to_spec(&self, node: &ProcessNode) -> ArraySpec {
        self.to_base_spec(node).at_temperature_cryo(self.temperature)
    }

    /// The temperature-free half of [`MemoryConfig::to_spec`]: cell,
    /// 16 MiB LLC geometry, and stacking, at the spec's nominal
    /// operating point.
    ///
    /// The batched characterization path solves the organization
    /// geometry on this base spec — two configurations differing only
    /// in temperature lower to the same base, which is exactly the
    /// sharing [`crate::DesignPointKey::geometry_of`] keys.
    #[must_use]
    pub fn to_base_spec(&self, node: &ProcessNode) -> ArraySpec {
        let cell = CellModel::tentpole(self.technology, self.tentpole, node);
        let mut spec = ArraySpec::llc_16mib(cell, node);
        if self.dies > 1 {
            spec = spec.with_dies(self.dies);
        }
        spec
    }

    /// The study's full configuration set: cryogenic and room-temperature
    /// SRAM/3T-eDRAM, plus 2D/3D SRAM and eNVM tentpoles at 350 K.
    #[must_use]
    pub fn study_set() -> Vec<Self> {
        let mut set = vec![
            Self::sram_350k(),
            Self::sram_77k(),
            Self::edram_350k(),
            Self::edram_77k(),
        ];
        for dies in [2, 4, 8] {
            set.push(Self::envm_3d(MemoryTechnology::Sram, Tentpole::Optimistic, dies));
        }
        for tech in MemoryTechnology::ENVM_SET {
            for tentpole in Tentpole::BOTH {
                for dies in [1, 2, 4, 8] {
                    set.push(Self::envm_3d(tech, tentpole, dies));
                }
            }
        }
        set
    }

    /// The cryogenic-NVM study region: STT-RAM at both tentpoles,
    /// every die count, across the study temperature ladder (77-387 K,
    /// inside the backends' 60-400 K span). This is the design space
    /// the Δ(T) thermal-stability model (`coldtall-cell`) exercises:
    /// unlike the room-temperature [`MemoryConfig::study_set`], every
    /// point here carries an explicit operating temperature, so write
    /// energy and retention shift with Δ(T) = Δ_ref · (T_ref / T).
    #[must_use]
    pub fn cryo_stt_study_set() -> Vec<Self> {
        let mut set = Vec::new();
        for tentpole in Tentpole::BOTH {
            for dies in Self::VALID_DIES {
                for &t in coldtall_cryo::study_temperatures() {
                    set.push(
                        Self::envm_3d(MemoryTechnology::SttRam, tentpole, dies)
                            .at_temperature(t),
                    );
                }
            }
        }
        set
    }
}

impl fmt::Display for MemoryConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_style() {
        assert_eq!(MemoryConfig::sram_350k().label(), "SRAM");
        assert_eq!(MemoryConfig::sram_77k().label(), "77K SRAM");
        assert_eq!(MemoryConfig::edram_77k().label(), "77K 3T-eDRAM");
        let stt = MemoryConfig::envm_3d(MemoryTechnology::SttRam, Tentpole::Pessimistic, 4);
        assert_eq!(stt.label(), "4-die STT-RAM (pessimistic)");
    }

    #[test]
    fn study_set_size_and_membership() {
        let set = MemoryConfig::study_set();
        // 4 volatile points + 3 stacked SRAM + 3 techs x 2 tentpoles x 4 dies.
        assert_eq!(set.len(), 4 + 3 + 24);
        assert!(set.iter().any(|c| c.label() == "8-die PCM (optimistic)"));
        assert!(set.iter().any(|c| c.is_cryogenic()));
    }

    #[test]
    fn cryo_stt_study_set_covers_the_region() {
        let set = MemoryConfig::cryo_stt_study_set();
        // 2 tentpoles x 4 die counts x 8 study temperatures.
        assert_eq!(set.len(), 2 * 4 * 8);
        assert!(set.iter().all(|c| c.technology() == MemoryTechnology::SttRam));
        assert!(set.iter().any(|c| c.is_cryogenic()));
        assert!(set.iter().any(|c| c.dies() == 8));
        // Every point is reachable through the frontend constructor.
        for config in &set {
            let tentpole = match config.tentpole() {
                Tentpole::Optimistic => "opt",
                Tentpole::Pessimistic => "pess",
            };
            let rebuilt = MemoryConfig::try_design_point(
                "stt-ram",
                tentpole,
                config.dies(),
                config.temperature(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", config.label()));
            assert_eq!(&rebuilt, config);
        }
    }

    #[test]
    fn to_spec_applies_cryo_policy() {
        let node = ProcessNode::ptm_22nm_hp();
        let spec = MemoryConfig::edram_77k().to_spec(&node);
        assert!(spec.op().vth_override().is_some());
        let warm = MemoryConfig::edram_350k().to_spec(&node);
        assert!(warm.op().vth_override().is_none());
    }

    #[test]
    #[should_panic(expected = "1, 2, 4, or 8")]
    fn bad_die_count_rejected() {
        let _ = MemoryConfig::envm_3d(MemoryTechnology::Pcm, Tentpole::Optimistic, 3);
    }

    #[test]
    fn try_envm_3d_returns_typed_errors() {
        for dies in [0, 3, 5, 7, 9, 255] {
            let err =
                MemoryConfig::try_envm_3d(MemoryTechnology::Pcm, Tentpole::Optimistic, dies)
                    .unwrap_err();
            assert!(matches!(err, crate::Error::InvalidDieCount { dies: d } if d == dies));
        }
        let ok = MemoryConfig::try_envm_3d(MemoryTechnology::Pcm, Tentpole::Optimistic, 8)
            .unwrap();
        assert_eq!(ok, MemoryConfig::envm_3d(MemoryTechnology::Pcm, Tentpole::Optimistic, 8));
    }

    #[test]
    fn try_design_point_covers_the_study_space() {
        // Every study configuration must be reachable through the
        // raw-field constructor the serve frontend uses.
        for config in MemoryConfig::study_set() {
            let tech = match config.technology() {
                MemoryTechnology::Sram => "sram",
                MemoryTechnology::Edram3T => "edram",
                MemoryTechnology::Pcm => "pcm",
                MemoryTechnology::SttRam => "stt",
                MemoryTechnology::Rram => "rram",
                other => panic!("study set grew an unexpected technology {other:?}"),
            };
            let tentpole = match config.tentpole() {
                Tentpole::Optimistic => "optimistic",
                Tentpole::Pessimistic => "pessimistic",
            };
            let rebuilt = MemoryConfig::try_design_point(
                tech,
                tentpole,
                config.dies(),
                config.temperature(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", config.label()));
            assert_eq!(rebuilt, config);
        }
    }

    #[test]
    fn try_design_point_rejects_out_of_scope_combinations() {
        assert!(matches!(
            MemoryConfig::try_design_point("flash", "optimistic", 1, Kelvin::REFERENCE),
            Err(crate::Error::UnknownTechnology { .. })
        ));
        assert!(matches!(
            MemoryConfig::try_design_point("sram", "hopeful", 1, Kelvin::REFERENCE),
            Err(crate::Error::UnknownTentpole { name }) if name == "hopeful"
        ));
        assert!(matches!(
            MemoryConfig::try_design_point("pcm", "opt", 3, Kelvin::REFERENCE),
            Err(crate::Error::InvalidDieCount { dies: 3 })
        ));
        // Stacked volatile off the 350 K reference is out of scope...
        let err = MemoryConfig::try_design_point("sram", "opt", 4, Kelvin::LN2).unwrap_err();
        assert!(matches!(err, crate::Error::UnsupportedPoint { .. }));
        assert!(err.to_string().contains("350 K"));
        // ...but at the reference it is the study's stacked-SRAM point.
        let stacked =
            MemoryConfig::try_design_point("sram", "opt", 4, Kelvin::REFERENCE).unwrap();
        assert_eq!(
            stacked,
            MemoryConfig::envm_3d(MemoryTechnology::Sram, Tentpole::Optimistic, 4)
        );
    }

    #[test]
    fn technology_names_parse_like_the_cli() {
        assert_eq!(
            MemoryConfig::parse_technology("3t-edram").unwrap(),
            MemoryTechnology::Edram3T
        );
        assert_eq!(
            MemoryConfig::parse_technology("stt").unwrap(),
            MemoryTechnology::SttRam
        );
        assert!(matches!(
            MemoryConfig::parse_technology("flash").unwrap_err(),
            crate::Error::UnknownTechnology { name } if name == "flash"
        ));
    }
}
