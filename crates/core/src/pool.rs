//! Scoped worker pool used by the parallel sweep engine.
//!
//! The implementation lives in the bottom-of-stack `coldtall-par`
//! crate so the array-level organization search can share the same
//! pool (and its nested-region guard) without a dependency cycle;
//! this module re-exports it under the explorer's roof and adds the
//! cross-product indexing helper the sweep drivers share.

pub use coldtall_par::{in_worker, max_threads, parallel_map, parallel_map_slice, set_max_threads};

/// Splits a flat work-item index back into `(row, column)` coordinates
/// of a `rows x cols` cross-product (row-major), so sweep drivers can
/// schedule `rows * cols` items over one pool without nested regions.
#[must_use]
pub fn unflatten(index: usize, cols: usize) -> (usize, usize) {
    debug_assert!(cols > 0, "cross-product with zero columns");
    (index / cols, index % cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unflatten_is_row_major() {
        assert_eq!(unflatten(0, 4), (0, 0));
        assert_eq!(unflatten(3, 4), (0, 3));
        assert_eq!(unflatten(4, 4), (1, 0));
        assert_eq!(unflatten(11, 4), (2, 3));
    }

    #[test]
    fn pool_reexports_are_usable() {
        assert!(max_threads() >= 1);
        let v = parallel_map(3, |i| i + 1);
        assert_eq!(v, vec![1, 2, 3]);
    }
}
