//! Struct-of-arrays batch evaluation: the caller-owned [`EvalArena`]
//! row store and the grid-at-once [`evaluate_batch`] entry point.
//!
//! PR 5 batched the *characterization* phase (one geometry solve per
//! temperature-stripped key); this module extends the same two-phase
//! idea through *evaluation*, the hot path of a warm sweep. The scalar
//! oracle ([`crate::Explorer::evaluate`]) pays, per grid cell: one
//! span sample (two clock reads), one canonical-key format + hash, one
//! cache probe with a shard lock, one `CellModel` construction, one
//! label allocation, and one baseline service-time recomputation. The
//! batched kernel ([`crate::Explorer::evaluate_batch`]) hoists every
//! one of those out of the per-row loop:
//!
//! * per grid — the 350 K SRAM baseline and the `reference_power`
//!   normalization denominator (already hoisted into the explorer),
//! * per benchmark column — the baseline's `base_service` term and the
//!   traffic rates, read once into a dense [`TrafficTable`],
//! * per configuration plane — the characterization-cache probe, the
//!   cooling tier's wall-power factor
//!   ([`coldtall_cryo::CoolingSystem::wall_factor`]), the cell's
//!   endurance model, the display label, and one `evaluate` span
//!   sample covering the whole plane.
//!
//! What remains per row is pure float arithmetic — and it is *the
//! same* arithmetic: both paths produce rows through
//! `row_values` (one copy of the float
//! expressions), so batch/scalar bit-identity holds by construction
//! rather than by expression discipline. `tests/eval_batch.rs` pins it
//! over the full study × temperature × SPEC2017 grid, infeasible rows
//! included.
//!
//! Rows land in an [`EvalArena`]: one dense column per numeric field
//! (power, latency, area, utilization, lifetime), one verdict column,
//! plus the per-plane labels and per-benchmark identity shared by all
//! rows of a plane/column. A reused arena reaches steady state after
//! its first sweep and reallocates nothing on subsequent sweeps of the
//! same shape ([`EvalArena::row_capacity`] is how the tests watch
//! this).

#![deny(missing_docs)]

use coldtall_cachesim::{LlcTraffic, TrafficTable};
use coldtall_units::Watts;
use coldtall_workloads::Benchmark;

use crate::evaluate::{Feasibility, LlcEvaluation, RowValues};
use crate::explorer::Explorer;
use crate::plan::ExecutionPlan;

/// A caller-owned struct-of-arrays store for evaluation rows.
///
/// The arena owns its buffers across sweeps: each refill
/// clears contents but keeps capacity, so repeated sweeps of the same
/// grid shape allocate nothing after the first. Row `index` of the
/// grid maps to `(config, benchmark) = (index / benchmark_count,
/// index % benchmark_count)` — row-major, exactly the order of
/// [`crate::Explorer::execute`].
///
/// # Examples
///
/// ```
/// use coldtall_core::{evaluate_batch, EvalArena, Explorer, MemoryConfig};
///
/// let explorer = Explorer::with_defaults();
/// let plan = explorer.plan_sweep(&[MemoryConfig::sram_350k()]).unwrap();
/// let mut arena = EvalArena::new();
/// evaluate_batch(&explorer, &plan, &mut arena);
/// assert_eq!(arena.rows(), plan.rows());
/// assert_eq!(arena.to_rows(), explorer.execute(&plan));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalArena {
    /// Display label of each configuration plane, in plane order.
    pub(crate) labels: Vec<String>,
    /// Benchmark names, in column order.
    pub(crate) benchmarks: Vec<&'static str>,
    /// Benchmark traffic, in column order (the dense per-column hoist).
    pub(crate) traffic: TrafficTable,
    /// Device power in watts, per row.
    pub(crate) device_power_w: Vec<f64>,
    /// Wall power in watts, per row.
    pub(crate) wall_power_w: Vec<f64>,
    /// Relative power, per row.
    pub(crate) relative_power: Vec<f64>,
    /// Relative latency, per row.
    pub(crate) relative_latency: Vec<f64>,
    /// Footprint in mm², per row.
    pub(crate) footprint_mm2: Vec<f64>,
    /// Wear-limited lifetime in years, per row.
    pub(crate) lifetime_years: Vec<f64>,
    /// Bandwidth utilization, per row.
    pub(crate) bandwidth_utilization: Vec<f64>,
    /// Feasibility verdict, per row.
    pub(crate) feasibility: Vec<Feasibility>,
    /// Slowdown flag, per row.
    pub(crate) slowdown: Vec<bool>,
}

impl EvalArena {
    /// An empty arena. Buffers grow on first use and are kept across
    /// sweeps.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new sweep over `benchmarks`: clears every column
    /// (keeping capacity) and loads the benchmark identity and traffic
    /// table.
    pub(crate) fn begin(&mut self, benchmarks: &[Benchmark]) {
        self.labels.clear();
        self.benchmarks.clear();
        self.traffic.clear();
        self.device_power_w.clear();
        self.wall_power_w.clear();
        self.relative_power.clear();
        self.relative_latency.clear();
        self.footprint_mm2.clear();
        self.lifetime_years.clear();
        self.bandwidth_utilization.clear();
        self.feasibility.clear();
        self.slowdown.clear();
        for benchmark in benchmarks {
            self.benchmarks.push(benchmark.name);
            self.traffic.push(benchmark.traffic);
        }
    }

    /// Opens the next configuration plane.
    pub(crate) fn push_plane_label(&mut self, label: String) {
        self.labels.push(label);
    }

    /// Appends one row to the current plane.
    pub(crate) fn push_row(&mut self, values: &RowValues, lifetime_years: f64) {
        self.device_power_w.push(values.device_power.get());
        self.wall_power_w.push(values.wall_power.get());
        self.relative_power.push(values.relative_power);
        self.relative_latency.push(values.relative_latency);
        self.footprint_mm2.push(values.footprint_mm2);
        self.lifetime_years.push(lifetime_years);
        self.bandwidth_utilization.push(values.bandwidth_utilization);
        self.feasibility.push(values.feasibility);
        self.slowdown.push(values.slowdown);
    }

    /// Number of rows currently stored.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.relative_power.len()
    }

    /// Whether the arena holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.relative_power.is_empty()
    }

    /// Number of configuration planes.
    #[must_use]
    pub fn config_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of benchmark columns.
    #[must_use]
    pub fn benchmark_count(&self) -> usize {
        self.benchmarks.len()
    }

    /// Display labels of the configuration planes, in plane order.
    #[must_use]
    pub fn config_labels(&self) -> &[String] {
        &self.labels
    }

    /// Benchmark names, in column order.
    #[must_use]
    pub fn benchmark_names(&self) -> &[&'static str] {
        &self.benchmarks
    }

    /// The per-benchmark traffic table (shared by every plane).
    #[must_use]
    pub fn traffic(&self) -> &TrafficTable {
        &self.traffic
    }

    /// The flat row index of grid cell `(config, benchmark)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of the grid.
    #[must_use]
    pub fn row_index(&self, config: usize, benchmark: usize) -> usize {
        assert!(config < self.config_count(), "config index out of range");
        assert!(benchmark < self.benchmark_count(), "benchmark index out of range");
        config * self.benchmark_count() + benchmark
    }

    /// The dense relative-power column.
    #[must_use]
    pub fn relative_power(&self) -> &[f64] {
        &self.relative_power
    }

    /// The dense relative-latency column.
    #[must_use]
    pub fn relative_latency(&self) -> &[f64] {
        &self.relative_latency
    }

    /// The dense footprint column (mm²).
    #[must_use]
    pub fn footprint_mm2(&self) -> &[f64] {
        &self.footprint_mm2
    }

    /// The dense lifetime column (years).
    #[must_use]
    pub fn lifetime_years(&self) -> &[f64] {
        &self.lifetime_years
    }

    /// The dense bandwidth-utilization column.
    #[must_use]
    pub fn bandwidth_utilization(&self) -> &[f64] {
        &self.bandwidth_utilization
    }

    /// The dense device-power column (watts).
    #[must_use]
    pub fn device_power_watts(&self) -> &[f64] {
        &self.device_power_w
    }

    /// The dense wall-power column (watts).
    #[must_use]
    pub fn wall_power_watts(&self) -> &[f64] {
        &self.wall_power_w
    }

    /// The feasibility-verdict column.
    #[must_use]
    pub fn feasibility(&self) -> &[Feasibility] {
        &self.feasibility
    }

    /// The slowdown-flag column.
    #[must_use]
    pub fn slowdown(&self) -> &[bool] {
        &self.slowdown
    }

    /// Materializes one row as an [`LlcEvaluation`], bit-identical to
    /// what the scalar path produces for the same grid cell.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.rows()`.
    #[must_use]
    pub fn row(&self, index: usize) -> LlcEvaluation {
        let nb = self.benchmark_count();
        let (c, b) = (index / nb, index % nb);
        let values = RowValues {
            device_power: Watts::new(self.device_power_w[index]),
            wall_power: Watts::new(self.wall_power_w[index]),
            relative_power: self.relative_power[index],
            relative_latency: self.relative_latency[index],
            slowdown: self.slowdown[index],
            feasibility: self.feasibility[index],
            footprint_mm2: self.footprint_mm2[index],
            bandwidth_utilization: self.bandwidth_utilization[index],
        };
        LlcEvaluation::from_values(
            self.labels[c].clone(),
            self.benchmarks[b],
            self.traffic.get(b),
            &values,
            self.lifetime_years[index],
        )
    }

    /// Materializes every row, in row-major grid order.
    #[must_use]
    pub fn to_rows(&self) -> Vec<LlcEvaluation> {
        (0..self.rows()).map(|index| self.row(index)).collect()
    }

    /// Iterates the rows lazily, in row-major grid order.
    pub fn iter_rows(&self) -> impl Iterator<Item = LlcEvaluation> + '_ {
        (0..self.rows()).map(|index| self.row(index))
    }

    /// Current row capacity of the numeric columns (the smallest
    /// column capacity): stable across repeated same-shape sweeps, the
    /// zero-reallocation invariant `tests/eval_batch.rs` watches.
    #[must_use]
    pub fn row_capacity(&self) -> usize {
        self.device_power_w
            .capacity()
            .min(self.wall_power_w.capacity())
            .min(self.relative_power.capacity())
            .min(self.relative_latency.capacity())
            .min(self.footprint_mm2.capacity())
            .min(self.lifetime_years.capacity())
            .min(self.bandwidth_utilization.capacity())
            .min(self.feasibility.capacity())
            .min(self.slowdown.capacity())
    }

    /// Reconstructs the traffic record of benchmark column `index` —
    /// bit-identical to the benchmark's own record.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of the benchmark columns.
    #[must_use]
    pub fn traffic_of(&self, index: usize) -> LlcTraffic {
        self.traffic.get(index)
    }
}

/// Evaluates an entire (configuration × benchmark) grid in one call,
/// emitting rows allocation-free into `arena`.
///
/// Free-function form of [`Explorer::evaluate_batch`]; see the module
/// docs for the hoisting rules and the bit-identity contract.
pub fn evaluate_batch(explorer: &Explorer, plan: &ExecutionPlan, arena: &mut EvalArena) {
    explorer.evaluate_batch(plan, arena);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryConfig;

    #[test]
    fn arena_grid_accessors_are_consistent() {
        let explorer = Explorer::with_defaults();
        let configs = [MemoryConfig::sram_350k(), MemoryConfig::edram_77k()];
        let plan = explorer.plan_sweep(&configs).expect("configs resolve");
        let mut arena = EvalArena::new();
        evaluate_batch(&explorer, &plan, &mut arena);

        assert_eq!(arena.config_count(), 2);
        assert_eq!(arena.benchmark_count(), plan.benchmarks().len());
        assert_eq!(arena.rows(), plan.rows());
        assert!(!arena.is_empty());
        let index = arena.row_index(1, 3);
        assert_eq!(index, arena.benchmark_count() + 3);
        let row = arena.row(index);
        assert_eq!(row.config_label, arena.config_labels()[1]);
        assert_eq!(row.benchmark, arena.benchmark_names()[3]);
        assert_eq!(row.traffic, arena.traffic_of(3));
        assert_eq!(row.relative_power, arena.relative_power()[index]);
        assert_eq!(row.relative_latency, arena.relative_latency()[index]);
        assert_eq!(row.footprint_mm2, arena.footprint_mm2()[index]);
        assert_eq!(row.lifetime_years, arena.lifetime_years()[index]);
        assert_eq!(row.feasibility, arena.feasibility()[index]);
        assert_eq!(row.slowdown, arena.slowdown()[index]);
        assert_eq!(
            arena.iter_rows().collect::<Vec<_>>(),
            arena.to_rows(),
        );
    }

    #[test]
    #[should_panic(expected = "benchmark index out of range")]
    fn row_index_rejects_out_of_grid_cells() {
        let explorer = Explorer::with_defaults();
        let plan = explorer
            .plan_sweep(&[MemoryConfig::sram_350k()])
            .expect("config resolves");
        let mut arena = EvalArena::new();
        evaluate_batch(&explorer, &plan, &mut arena);
        let _ = arena.row_index(0, arena.benchmark_count());
    }
}
