//! Constraint filtering and Pareto-frontier extraction.
//!
//! NVMExplorer's inputs include "system design space and constraints";
//! this module implements that side of the flow: screen evaluations
//! against deployment constraints, extract the power/latency/area
//! Pareto frontier, and recommend a configuration.

use crate::batch::EvalArena;
use crate::evaluate::LlcEvaluation;

/// Deployment constraints an LLC evaluation must satisfy.
///
/// The default constraints encode the paper's viability conditions: no
/// slowdown versus the SRAM baseline (relative latency at most 1) and a
/// five-year lifetime.
///
/// # Examples
///
/// ```
/// use coldtall_core::{Constraints, Explorer, MemoryConfig};
/// use coldtall_workloads::benchmark;
///
/// let explorer = Explorer::with_defaults();
/// let eval = explorer.evaluate(&MemoryConfig::sram_350k(), benchmark("namd").unwrap());
/// assert!(Constraints::default().satisfied_by(&eval));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraints {
    /// Maximum relative LLC latency (1 = no slowdown vs 350 K SRAM).
    pub max_relative_latency: f64,
    /// Maximum 2D footprint in square millimeters, if bounded.
    pub max_area_mm2: Option<f64>,
    /// Minimum wear-limited lifetime in years.
    pub min_lifetime_years: f64,
    /// Maximum relative power, if bounded.
    pub max_relative_power: Option<f64>,
}

impl Default for Constraints {
    fn default() -> Self {
        Self {
            max_relative_latency: 1.0,
            max_area_mm2: None,
            min_lifetime_years: crate::lifetime::LIFETIME_TARGET_YEARS,
            max_relative_power: None,
        }
    }
}

impl Constraints {
    /// Unconstrained screening: everything passes except unserviceable
    /// (refresh-dead or bandwidth-saturated) configurations, which
    /// [`Constraints::satisfied_by`] always rejects.
    #[must_use]
    pub fn none() -> Self {
        Self {
            max_relative_latency: f64::INFINITY,
            max_area_mm2: None,
            min_lifetime_years: 0.0,
            max_relative_power: None,
        }
    }

    /// Whether `eval` satisfies every constraint.
    ///
    /// Unserviceable rows (non-finite relative latency) never satisfy
    /// any constraint set — even [`Constraints::none`], whose infinite
    /// latency bound would otherwise let `INFINITY <= INFINITY` pass a
    /// refresh-dead configuration into `recommend`.
    #[must_use]
    pub fn satisfied_by(&self, eval: &LlcEvaluation) -> bool {
        eval.relative_latency.is_finite()
            && eval.relative_latency <= self.max_relative_latency
            && self.max_area_mm2.is_none_or(|a| eval.footprint_mm2 <= a)
            && eval.lifetime_years >= self.min_lifetime_years
            && self
                .max_relative_power
                .is_none_or(|p| eval.relative_power <= p)
    }
}

/// Returns `true` if `a` dominates `b` in the (power, latency, area)
/// minimization sense: no worse everywhere, strictly better somewhere.
///
/// The production paths work on [`coords_dominate`] directly; this row
/// form remains as the test oracle for frontier membership.
#[cfg(test)]
#[must_use]
fn dominates(a: &LlcEvaluation, b: &LlcEvaluation) -> bool {
    coords_dominate(
        &[a.relative_power, a.relative_latency, a.footprint_mm2],
        &[b.relative_power, b.relative_latency, b.footprint_mm2],
    )
}

/// Returns `true` if `a` dominates `b`: no worse than `b` everywhere,
/// strictly better somewhere, in the minimization sense.
fn coords_dominate(a: &[f64; 3], b: &[f64; 3]) -> bool {
    let no_worse = a[0] <= b[0] && a[1] <= b[1] && a[2] <= b[2];
    let better = a[0] < b[0] || a[1] < b[1] || a[2] < b[2];
    no_worse && better
}

/// One accepted point of a [`ParetoFrontier`]: its insertion sequence
/// number, its objective coordinates, and the caller's payload.
#[derive(Debug, Clone)]
struct FrontierPoint<T> {
    seq: usize,
    coords: [f64; 3],
    payload: T,
}

/// An incremental Pareto frontier over up to three minimized
/// coordinates: insert points one at a time, and the structure keeps
/// exactly the non-dominated (maximal) finite points seen so far.
///
/// Each insertion either bounces off an existing dominator, or lands
/// and evicts every point the newcomer dominates. Because dominance is
/// a strict partial order (transitive and irreflexive), the resident
/// set after any insertion sequence is the set of maximal elements of
/// everything inserted — independent of insertion order. That
/// order-invariance is what lets the adaptive search (which visits
/// design points in best-first order) and the exhaustive sweep (which
/// visits them in grid order) produce the same frontier.
///
/// Payloads are built lazily via [`ParetoFrontier::insert_with`], so a
/// rejected point costs three comparisons per resident and no clone.
/// The `seq` number passed at insertion is the global tie-breaker:
/// [`ParetoFrontier::into_sorted`] orders by `(coords[0], seq)`, which
/// reproduces a *stable* sort by the first coordinate whenever `seq`
/// follows the original row order.
#[derive(Debug, Clone)]
pub struct ParetoFrontier<T = LlcEvaluation> {
    points: Vec<FrontierPoint<T>>,
}

impl<T> Default for ParetoFrontier<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ParetoFrontier<T> {
    /// An empty frontier.
    #[must_use]
    pub fn new() -> Self {
        Self { points: Vec::new() }
    }

    /// Number of resident (mutually non-dominated) points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the frontier holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Offers a point; returns `true` if it joined the frontier.
    ///
    /// A point with any non-finite coordinate is rejected outright (a
    /// `NaN`/`INF` coordinate can never be dominated, so admitting one
    /// would seat it on the frontier forever). A point dominated by a
    /// resident is rejected without building its payload. An accepted
    /// point evicts every resident it dominates. Coordinate-equal
    /// points do not dominate each other, so duplicates coexist until
    /// [`ParetoFrontier::into_sorted`] deduplicates by label order.
    pub fn insert_with(&mut self, seq: usize, coords: [f64; 3], make: impl FnOnce() -> T) -> bool {
        if !coords.iter().all(|c| c.is_finite()) {
            return false;
        }
        if self
            .points
            .iter()
            .any(|p| coords_dominate(&p.coords, &coords))
        {
            return false;
        }
        self.points.retain(|p| !coords_dominate(&coords, &p.coords));
        self.points.push(FrontierPoint {
            seq,
            coords,
            payload: make(),
        });
        true
    }

    /// Whether some resident point is *strictly* below `corner` in all
    /// three coordinates.
    ///
    /// This is the region-prune test of the adaptive search: if a
    /// resident beats a region's componentwise lower-bound corner
    /// strictly everywhere, it strictly dominates every member of the
    /// region (member values are `>=` the corner coordinate by
    /// coordinate), so no member can ever join the frontier. Weak
    /// (`<=`) comparison would be unsound here — a coordinate-equal
    /// member belongs *on* the frontier.
    #[must_use]
    pub fn strictly_dominates(&self, corner: [f64; 3]) -> bool {
        self.points.iter().any(|p| {
            p.coords[0] < corner[0] && p.coords[1] < corner[1] && p.coords[2] < corner[2]
        })
    }

    /// The resident point minimizing coordinate `k`, ties broken by the
    /// lowest insertion `seq` — the first-of-equal-minima semantics of
    /// `Iterator::min_by` over the original insertion order. Returns
    /// the point's `seq` and payload.
    ///
    /// # Panics
    ///
    /// Panics if `k >= 3`.
    #[must_use]
    pub fn min_by_coord(&self, k: usize) -> Option<(usize, &T)> {
        assert!(k < 3, "a frontier point has three coordinates");
        self.points
            .iter()
            .min_by(|a, b| a.coords[k].total_cmp(&b.coords[k]).then(a.seq.cmp(&b.seq)))
            .map(|p| (p.seq, &p.payload))
    }

    /// Iterates the resident points as `(seq, coords, payload)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, [f64; 3], &T)> {
        self.points.iter().map(|p| (p.seq, p.coords, &p.payload))
    }
}

impl ParetoFrontier<LlcEvaluation> {
    /// Offers an evaluation under the standard (relative power,
    /// relative latency, footprint) coordinates, cloning it only on
    /// acceptance. Returns `true` if it joined the frontier.
    pub fn insert(&mut self, seq: usize, eval: &LlcEvaluation) -> bool {
        self.insert_with(
            seq,
            [eval.relative_power, eval.relative_latency, eval.footprint_mm2],
            || eval.clone(),
        )
    }

    /// Consumes the frontier into the classic presentation: ascending
    /// relative power (ties in original `seq` order), one row per
    /// configuration label.
    ///
    /// When every row of a set was offered with `seq` equal to its
    /// original index, this is byte-identical to the historical
    /// filter-at-the-end extraction: a stable sort by relative power
    /// followed by consecutive-label deduplication.
    #[must_use]
    pub fn into_sorted(self) -> Vec<LlcEvaluation> {
        let mut points = self.points;
        points.sort_by(|a, b| a.coords[0].total_cmp(&b.coords[0]).then(a.seq.cmp(&b.seq)));
        let mut front: Vec<LlcEvaluation> = points.into_iter().map(|p| p.payload).collect();
        front.dedup_by(|a, b| a.config_label == b.config_label);
        front
    }
}

/// Extracts the power/latency/area Pareto frontier of a set of
/// evaluations (typically one benchmark across all configurations),
/// sorted by ascending relative power.
///
/// Every objective must be finite for a row to be a frontier
/// candidate: a non-finite power or area coordinate can never be
/// dominated (`NaN` fails every `<=`), so filtering latency alone
/// would seat such rows on the frontier forever. Implemented as one
/// pass of [`ParetoFrontier`] insertions in row order; non-finite rows
/// also cannot *dominate* a finite row (the `<=` fails), so skipping
/// them at insertion changes nothing for the finite survivors.
#[must_use]
pub fn pareto_front(evals: &[LlcEvaluation]) -> Vec<LlcEvaluation> {
    let mut frontier = ParetoFrontier::new();
    for (seq, eval) in evals.iter().enumerate() {
        frontier.insert(seq, eval);
    }
    frontier.into_sorted()
}

/// [`pareto_front`] straight off an [`EvalArena`]'s dense columns:
/// dominance screening reads the power/latency/area columns in place
/// and only rows accepted onto the frontier are materialized as
/// [`LlcEvaluation`] values.
///
/// Produces exactly `pareto_front(&arena.to_rows())` without building
/// the full row vector first.
#[must_use]
pub fn pareto_front_arena(arena: &EvalArena) -> Vec<LlcEvaluation> {
    let power = arena.relative_power();
    let latency = arena.relative_latency();
    let area = arena.footprint_mm2();
    let mut frontier = ParetoFrontier::new();
    for i in 0..arena.rows() {
        frontier.insert_with(i, [power[i], latency[i], area[i]], || arena.row(i));
    }
    frontier.into_sorted()
}

/// Recommends the lowest-power configuration satisfying `constraints`
/// for the given pre-computed evaluations, or `None` when nothing
/// qualifies.
///
/// Re-ranks through the incremental frontier in degenerate one-axis
/// form — coordinates `(relative_power, 0, 0)`, so a strictly cheaper
/// satisfier evicts and equal-power satisfiers coexist — then takes
/// the minimum by `(power, seq)`. This is exactly the
/// first-of-equal-minima semantics of the historical
/// `filter().min_by()` scan. Constraint screening happens *before*
/// insertion because lifetime is a constraint, not a frontier
/// coordinate: a constraint-violating row must never evict a
/// satisfier.
#[must_use]
pub fn recommend<'a>(
    evals: &'a [LlcEvaluation],
    constraints: &Constraints,
) -> Option<&'a LlcEvaluation> {
    let mut frontier: ParetoFrontier<()> = ParetoFrontier::new();
    for (seq, eval) in evals.iter().enumerate() {
        if constraints.satisfied_by(eval) {
            frontier.insert_with(seq, [eval.relative_power, 0.0, 0.0], || ());
        }
    }
    frontier.min_by_coord(0).map(|(seq, ())| &evals[seq])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryConfig;
    use crate::explorer::Explorer;
    use coldtall_workloads::benchmark;

    fn evals_for(bench_name: &str) -> Vec<LlcEvaluation> {
        let explorer = Explorer::with_defaults();
        let bench = benchmark(bench_name).unwrap();
        MemoryConfig::study_set()
            .iter()
            .map(|c| explorer.evaluate(c, bench))
            .collect()
    }

    #[test]
    fn front_members_are_mutually_non_dominated() {
        let evals = evals_for("namd");
        let front = pareto_front(&evals);
        assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                if a.config_label != b.config_label {
                    assert!(!dominates(a, b) || !dominates(b, a));
                }
            }
        }
        // Everything off the front is dominated by something on it.
        for e in &evals {
            if e.relative_latency.is_finite()
                && !front.iter().any(|f| f.config_label == e.config_label)
            {
                assert!(
                    evals.iter().any(|other| dominates(other, e)),
                    "{} should be dominated",
                    e.config_label
                );
            }
        }
    }

    #[test]
    fn front_excludes_refresh_dead_configs() {
        let evals = evals_for("namd");
        let front = pareto_front(&evals);
        assert!(front.iter().all(|e| e.relative_latency.is_finite()));
    }

    #[test]
    fn default_constraints_require_viability() {
        let evals = evals_for("lbm");
        let pick = recommend(&evals, &Constraints::default()).unwrap();
        assert!(pick.relative_latency <= 1.0);
        assert!(pick.meets_lifetime_target());
        // Unconstrained pick is at least as low-power.
        let free = recommend(&evals, &Constraints::none()).unwrap();
        assert!(free.relative_power <= pick.relative_power);
    }

    #[test]
    fn impossible_constraints_yield_none() {
        let evals = evals_for("namd");
        let constraints = Constraints {
            max_area_mm2: Some(0.001),
            ..Constraints::default()
        };
        assert!(recommend(&evals, &constraints).is_none());
    }

    /// Regression (ISSUE 3): `Constraints::none()` sets an infinite
    /// latency bound, and `INFINITY <= INFINITY` used to let
    /// refresh-dead rows pass screening — `recommend` could then pick
    /// an LLC that cannot run any workload.
    #[test]
    fn constraints_none_rejects_unserviceable_rows() {
        let explorer = Explorer::with_defaults();
        let dead = explorer.evaluate(
            &MemoryConfig::edram_350k(),
            benchmark("namd").unwrap(),
        );
        assert!(dead.relative_latency.is_infinite(), "precondition");
        assert!(!Constraints::none().satisfied_by(&dead));
        // A pool of only unserviceable rows must recommend nothing.
        assert!(recommend(std::slice::from_ref(&dead), &Constraints::none()).is_none());
        // And in the real study set, the unconstrained pick is never an
        // unserviceable configuration.
        let evals = evals_for("namd");
        let free = recommend(&evals, &Constraints::none()).unwrap();
        assert!(free.relative_latency.is_finite());
        assert!(free.feasibility.is_serviceable());
    }

    /// Regression (ISSUE 3): only latency was finiteness-filtered, so a
    /// row with NaN power or area could never be dominated and landed
    /// on the frontier.
    #[test]
    fn pareto_front_rejects_nan_power_and_area_rows() {
        let evals = evals_for("namd");
        let mut poisoned = evals.clone();
        let mut nan_power = evals[0].clone();
        nan_power.config_label = "nan-power".into();
        nan_power.relative_power = f64::NAN;
        let mut nan_area = evals[0].clone();
        nan_area.config_label = "nan-area".into();
        nan_area.footprint_mm2 = f64::NAN;
        poisoned.push(nan_power);
        poisoned.push(nan_area);
        let front = pareto_front(&poisoned);
        assert!(front
            .iter()
            .all(|e| !e.config_label.starts_with("nan-")));
        assert_eq!(front, pareto_front(&evals), "poison rows change nothing");
    }

    #[test]
    fn arena_front_matches_the_row_vector_front() {
        let explorer = Explorer::with_defaults();
        let plan = explorer
            .plan_sweep(&MemoryConfig::study_set())
            .expect("study set resolves");
        let mut arena = crate::batch::EvalArena::new();
        explorer.execute_into(&plan, &mut arena);
        // Whole-grid frontier (all benchmarks at once) and a
        // single-benchmark slice both agree with the row-vector path.
        assert_eq!(
            pareto_front_arena(&arena),
            pareto_front(&arena.to_rows())
        );
    }

    #[test]
    fn area_constraint_filters_planar_sram() {
        let evals = evals_for("povray");
        let constraints = Constraints {
            max_area_mm2: Some(3.0),
            ..Constraints::none()
        };
        let pick = recommend(&evals, &constraints).unwrap();
        assert!(pick.footprint_mm2 <= 3.0);
        assert_ne!(pick.config_label, "SRAM");
    }
}
