//! Constraint filtering and Pareto-frontier extraction.
//!
//! NVMExplorer's inputs include "system design space and constraints";
//! this module implements that side of the flow: screen evaluations
//! against deployment constraints, extract the power/latency/area
//! Pareto frontier, and recommend a configuration.

use crate::evaluate::LlcEvaluation;

/// Deployment constraints an LLC evaluation must satisfy.
///
/// The default constraints encode the paper's viability conditions: no
/// slowdown versus the SRAM baseline (relative latency at most 1) and a
/// five-year lifetime.
///
/// # Examples
///
/// ```
/// use coldtall_core::{Constraints, Explorer, MemoryConfig};
/// use coldtall_workloads::benchmark;
///
/// let explorer = Explorer::with_defaults();
/// let eval = explorer.evaluate(&MemoryConfig::sram_350k(), benchmark("namd").unwrap());
/// assert!(Constraints::default().satisfied_by(&eval));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraints {
    /// Maximum relative LLC latency (1 = no slowdown vs 350 K SRAM).
    pub max_relative_latency: f64,
    /// Maximum 2D footprint in square millimeters, if bounded.
    pub max_area_mm2: Option<f64>,
    /// Minimum wear-limited lifetime in years.
    pub min_lifetime_years: f64,
    /// Maximum relative power, if bounded.
    pub max_relative_power: Option<f64>,
}

impl Default for Constraints {
    fn default() -> Self {
        Self {
            max_relative_latency: 1.0,
            max_area_mm2: None,
            min_lifetime_years: crate::lifetime::LIFETIME_TARGET_YEARS,
            max_relative_power: None,
        }
    }
}

impl Constraints {
    /// Unconstrained screening (everything passes except refresh-dead
    /// configurations).
    #[must_use]
    pub fn none() -> Self {
        Self {
            max_relative_latency: f64::INFINITY,
            max_area_mm2: None,
            min_lifetime_years: 0.0,
            max_relative_power: None,
        }
    }

    /// Whether `eval` satisfies every constraint.
    #[must_use]
    pub fn satisfied_by(&self, eval: &LlcEvaluation) -> bool {
        eval.relative_latency <= self.max_relative_latency
            && self.max_area_mm2.is_none_or(|a| eval.footprint_mm2 <= a)
            && eval.lifetime_years >= self.min_lifetime_years
            && self
                .max_relative_power
                .is_none_or(|p| eval.relative_power <= p)
    }
}

/// Returns `true` if `a` dominates `b` in the (power, latency, area)
/// minimization sense: no worse everywhere, strictly better somewhere.
#[must_use]
fn dominates(a: &LlcEvaluation, b: &LlcEvaluation) -> bool {
    let no_worse = a.relative_power <= b.relative_power
        && a.relative_latency <= b.relative_latency
        && a.footprint_mm2 <= b.footprint_mm2;
    let better = a.relative_power < b.relative_power
        || a.relative_latency < b.relative_latency
        || a.footprint_mm2 < b.footprint_mm2;
    no_worse && better
}

/// Extracts the power/latency/area Pareto frontier of a set of
/// evaluations (typically one benchmark across all configurations),
/// sorted by ascending relative power.
#[must_use]
pub fn pareto_front(evals: &[LlcEvaluation]) -> Vec<LlcEvaluation> {
    let mut front: Vec<LlcEvaluation> = evals
        .iter()
        .filter(|e| e.relative_latency.is_finite())
        .filter(|candidate| !evals.iter().any(|other| dominates(other, candidate)))
        .cloned()
        .collect();
    front.sort_by(|a, b| a.relative_power.total_cmp(&b.relative_power));
    front.dedup_by(|a, b| a.config_label == b.config_label);
    front
}

/// Recommends the lowest-power configuration satisfying `constraints`
/// for the given pre-computed evaluations, or `None` when nothing
/// qualifies.
#[must_use]
pub fn recommend<'a>(
    evals: &'a [LlcEvaluation],
    constraints: &Constraints,
) -> Option<&'a LlcEvaluation> {
    evals
        .iter()
        .filter(|e| constraints.satisfied_by(e))
        .min_by(|a, b| a.relative_power.total_cmp(&b.relative_power))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryConfig;
    use crate::explorer::Explorer;
    use coldtall_workloads::benchmark;

    fn evals_for(bench_name: &str) -> Vec<LlcEvaluation> {
        let explorer = Explorer::with_defaults();
        let bench = benchmark(bench_name).unwrap();
        MemoryConfig::study_set()
            .iter()
            .map(|c| explorer.evaluate(c, bench))
            .collect()
    }

    #[test]
    fn front_members_are_mutually_non_dominated() {
        let evals = evals_for("namd");
        let front = pareto_front(&evals);
        assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                if a.config_label != b.config_label {
                    assert!(!dominates(a, b) || !dominates(b, a));
                }
            }
        }
        // Everything off the front is dominated by something on it.
        for e in &evals {
            if e.relative_latency.is_finite()
                && !front.iter().any(|f| f.config_label == e.config_label)
            {
                assert!(
                    evals.iter().any(|other| dominates(other, e)),
                    "{} should be dominated",
                    e.config_label
                );
            }
        }
    }

    #[test]
    fn front_excludes_refresh_dead_configs() {
        let evals = evals_for("namd");
        let front = pareto_front(&evals);
        assert!(front.iter().all(|e| e.relative_latency.is_finite()));
    }

    #[test]
    fn default_constraints_require_viability() {
        let evals = evals_for("lbm");
        let pick = recommend(&evals, &Constraints::default()).unwrap();
        assert!(pick.relative_latency <= 1.0);
        assert!(pick.meets_lifetime_target());
        // Unconstrained pick is at least as low-power.
        let free = recommend(&evals, &Constraints::none()).unwrap();
        assert!(free.relative_power <= pick.relative_power);
    }

    #[test]
    fn impossible_constraints_yield_none() {
        let evals = evals_for("namd");
        let constraints = Constraints {
            max_area_mm2: Some(0.001),
            ..Constraints::default()
        };
        assert!(recommend(&evals, &constraints).is_none());
    }

    #[test]
    fn area_constraint_filters_planar_sram() {
        let evals = evals_for("povray");
        let constraints = Constraints {
            max_area_mm2: Some(3.0),
            ..Constraints::none()
        };
        let pick = recommend(&evals, &constraints).unwrap();
        assert!(pick.footprint_mm2 <= 3.0);
        assert_ne!(pick.config_label, "SRAM");
    }
}
