//! Constraint filtering and Pareto-frontier extraction.
//!
//! NVMExplorer's inputs include "system design space and constraints";
//! this module implements that side of the flow: screen evaluations
//! against deployment constraints, extract the power/latency/area
//! Pareto frontier, and recommend a configuration.

use crate::batch::EvalArena;
use crate::evaluate::LlcEvaluation;

/// Deployment constraints an LLC evaluation must satisfy.
///
/// The default constraints encode the paper's viability conditions: no
/// slowdown versus the SRAM baseline (relative latency at most 1) and a
/// five-year lifetime.
///
/// # Examples
///
/// ```
/// use coldtall_core::{Constraints, Explorer, MemoryConfig};
/// use coldtall_workloads::benchmark;
///
/// let explorer = Explorer::with_defaults();
/// let eval = explorer.evaluate(&MemoryConfig::sram_350k(), benchmark("namd").unwrap());
/// assert!(Constraints::default().satisfied_by(&eval));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraints {
    /// Maximum relative LLC latency (1 = no slowdown vs 350 K SRAM).
    pub max_relative_latency: f64,
    /// Maximum 2D footprint in square millimeters, if bounded.
    pub max_area_mm2: Option<f64>,
    /// Minimum wear-limited lifetime in years.
    pub min_lifetime_years: f64,
    /// Maximum relative power, if bounded.
    pub max_relative_power: Option<f64>,
}

impl Default for Constraints {
    fn default() -> Self {
        Self {
            max_relative_latency: 1.0,
            max_area_mm2: None,
            min_lifetime_years: crate::lifetime::LIFETIME_TARGET_YEARS,
            max_relative_power: None,
        }
    }
}

impl Constraints {
    /// Unconstrained screening: everything passes except unserviceable
    /// (refresh-dead or bandwidth-saturated) configurations, which
    /// [`Constraints::satisfied_by`] always rejects.
    #[must_use]
    pub fn none() -> Self {
        Self {
            max_relative_latency: f64::INFINITY,
            max_area_mm2: None,
            min_lifetime_years: 0.0,
            max_relative_power: None,
        }
    }

    /// Whether `eval` satisfies every constraint.
    ///
    /// Unserviceable rows (non-finite relative latency) never satisfy
    /// any constraint set — even [`Constraints::none`], whose infinite
    /// latency bound would otherwise let `INFINITY <= INFINITY` pass a
    /// refresh-dead configuration into `recommend`.
    #[must_use]
    pub fn satisfied_by(&self, eval: &LlcEvaluation) -> bool {
        eval.relative_latency.is_finite()
            && eval.relative_latency <= self.max_relative_latency
            && self.max_area_mm2.is_none_or(|a| eval.footprint_mm2 <= a)
            && eval.lifetime_years >= self.min_lifetime_years
            && self
                .max_relative_power
                .is_none_or(|p| eval.relative_power <= p)
    }
}

/// Returns `true` if `a` dominates `b` in the (power, latency, area)
/// minimization sense: no worse everywhere, strictly better somewhere.
#[must_use]
fn dominates(a: &LlcEvaluation, b: &LlcEvaluation) -> bool {
    let no_worse = a.relative_power <= b.relative_power
        && a.relative_latency <= b.relative_latency
        && a.footprint_mm2 <= b.footprint_mm2;
    let better = a.relative_power < b.relative_power
        || a.relative_latency < b.relative_latency
        || a.footprint_mm2 < b.footprint_mm2;
    no_worse && better
}

/// Extracts the power/latency/area Pareto frontier of a set of
/// evaluations (typically one benchmark across all configurations),
/// sorted by ascending relative power.
///
/// Every objective must be finite for a row to be a frontier
/// candidate: a non-finite power or area coordinate can never be
/// dominated (`NaN` fails every `<=`), so filtering latency alone
/// would seat such rows on the frontier forever.
#[must_use]
pub fn pareto_front(evals: &[LlcEvaluation]) -> Vec<LlcEvaluation> {
    let finite = |e: &LlcEvaluation| {
        e.relative_latency.is_finite()
            && e.relative_power.is_finite()
            && e.footprint_mm2.is_finite()
    };
    let mut front: Vec<LlcEvaluation> = evals
        .iter()
        .filter(|e| finite(e))
        .filter(|candidate| !evals.iter().any(|other| dominates(other, candidate)))
        .cloned()
        .collect();
    front.sort_by(|a, b| a.relative_power.total_cmp(&b.relative_power));
    front.dedup_by(|a, b| a.config_label == b.config_label);
    front
}

/// [`pareto_front`] straight off an [`EvalArena`]'s dense columns:
/// dominance screening reads the power/latency/area columns in place
/// and only the surviving frontier rows are materialized as
/// [`LlcEvaluation`] values.
///
/// Produces exactly `pareto_front(&arena.to_rows())` — same
/// comparisons in the same order — without building the full row
/// vector first.
#[must_use]
pub fn pareto_front_arena(arena: &EvalArena) -> Vec<LlcEvaluation> {
    let power = arena.relative_power();
    let latency = arena.relative_latency();
    let area = arena.footprint_mm2();
    let finite =
        |i: usize| power[i].is_finite() && latency[i].is_finite() && area[i].is_finite();
    // Index form of `dominates`, over the same three objectives.
    let dominates = |a: usize, b: usize| {
        let no_worse =
            power[a] <= power[b] && latency[a] <= latency[b] && area[a] <= area[b];
        let better = power[a] < power[b] || latency[a] < latency[b] || area[a] < area[b];
        no_worse && better
    };
    let mut front: Vec<LlcEvaluation> = (0..arena.rows())
        .filter(|&candidate| finite(candidate))
        .filter(|&candidate| !(0..arena.rows()).any(|other| dominates(other, candidate)))
        .map(|candidate| arena.row(candidate))
        .collect();
    front.sort_by(|a, b| a.relative_power.total_cmp(&b.relative_power));
    front.dedup_by(|a, b| a.config_label == b.config_label);
    front
}

/// Recommends the lowest-power configuration satisfying `constraints`
/// for the given pre-computed evaluations, or `None` when nothing
/// qualifies.
#[must_use]
pub fn recommend<'a>(
    evals: &'a [LlcEvaluation],
    constraints: &Constraints,
) -> Option<&'a LlcEvaluation> {
    evals
        .iter()
        .filter(|e| constraints.satisfied_by(e))
        .min_by(|a, b| a.relative_power.total_cmp(&b.relative_power))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryConfig;
    use crate::explorer::Explorer;
    use coldtall_workloads::benchmark;

    fn evals_for(bench_name: &str) -> Vec<LlcEvaluation> {
        let explorer = Explorer::with_defaults();
        let bench = benchmark(bench_name).unwrap();
        MemoryConfig::study_set()
            .iter()
            .map(|c| explorer.evaluate(c, bench))
            .collect()
    }

    #[test]
    fn front_members_are_mutually_non_dominated() {
        let evals = evals_for("namd");
        let front = pareto_front(&evals);
        assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                if a.config_label != b.config_label {
                    assert!(!dominates(a, b) || !dominates(b, a));
                }
            }
        }
        // Everything off the front is dominated by something on it.
        for e in &evals {
            if e.relative_latency.is_finite()
                && !front.iter().any(|f| f.config_label == e.config_label)
            {
                assert!(
                    evals.iter().any(|other| dominates(other, e)),
                    "{} should be dominated",
                    e.config_label
                );
            }
        }
    }

    #[test]
    fn front_excludes_refresh_dead_configs() {
        let evals = evals_for("namd");
        let front = pareto_front(&evals);
        assert!(front.iter().all(|e| e.relative_latency.is_finite()));
    }

    #[test]
    fn default_constraints_require_viability() {
        let evals = evals_for("lbm");
        let pick = recommend(&evals, &Constraints::default()).unwrap();
        assert!(pick.relative_latency <= 1.0);
        assert!(pick.meets_lifetime_target());
        // Unconstrained pick is at least as low-power.
        let free = recommend(&evals, &Constraints::none()).unwrap();
        assert!(free.relative_power <= pick.relative_power);
    }

    #[test]
    fn impossible_constraints_yield_none() {
        let evals = evals_for("namd");
        let constraints = Constraints {
            max_area_mm2: Some(0.001),
            ..Constraints::default()
        };
        assert!(recommend(&evals, &constraints).is_none());
    }

    /// Regression (ISSUE 3): `Constraints::none()` sets an infinite
    /// latency bound, and `INFINITY <= INFINITY` used to let
    /// refresh-dead rows pass screening — `recommend` could then pick
    /// an LLC that cannot run any workload.
    #[test]
    fn constraints_none_rejects_unserviceable_rows() {
        let explorer = Explorer::with_defaults();
        let dead = explorer.evaluate(
            &MemoryConfig::edram_350k(),
            benchmark("namd").unwrap(),
        );
        assert!(dead.relative_latency.is_infinite(), "precondition");
        assert!(!Constraints::none().satisfied_by(&dead));
        // A pool of only unserviceable rows must recommend nothing.
        assert!(recommend(std::slice::from_ref(&dead), &Constraints::none()).is_none());
        // And in the real study set, the unconstrained pick is never an
        // unserviceable configuration.
        let evals = evals_for("namd");
        let free = recommend(&evals, &Constraints::none()).unwrap();
        assert!(free.relative_latency.is_finite());
        assert!(free.feasibility.is_serviceable());
    }

    /// Regression (ISSUE 3): only latency was finiteness-filtered, so a
    /// row with NaN power or area could never be dominated and landed
    /// on the frontier.
    #[test]
    fn pareto_front_rejects_nan_power_and_area_rows() {
        let evals = evals_for("namd");
        let mut poisoned = evals.clone();
        let mut nan_power = evals[0].clone();
        nan_power.config_label = "nan-power".into();
        nan_power.relative_power = f64::NAN;
        let mut nan_area = evals[0].clone();
        nan_area.config_label = "nan-area".into();
        nan_area.footprint_mm2 = f64::NAN;
        poisoned.push(nan_power);
        poisoned.push(nan_area);
        let front = pareto_front(&poisoned);
        assert!(front
            .iter()
            .all(|e| !e.config_label.starts_with("nan-")));
        assert_eq!(front, pareto_front(&evals), "poison rows change nothing");
    }

    #[test]
    fn arena_front_matches_the_row_vector_front() {
        let explorer = Explorer::with_defaults();
        let plan = explorer
            .plan_sweep(&MemoryConfig::study_set())
            .expect("study set resolves");
        let mut arena = crate::batch::EvalArena::new();
        explorer.execute_into(&plan, &mut arena);
        // Whole-grid frontier (all benchmarks at once) and a
        // single-benchmark slice both agree with the row-vector path.
        assert_eq!(
            pareto_front_arena(&arena),
            pareto_front(&arena.to_rows())
        );
    }

    #[test]
    fn area_constraint_filters_planar_sram() {
        let evals = evals_for("povray");
        let constraints = Constraints {
            max_area_mm2: Some(3.0),
            ..Constraints::none()
        };
        let pick = recommend(&evals, &constraints).unwrap();
        assert!(pick.footprint_mm2 <= 3.0);
        assert_ne!(pick.config_label, "SRAM");
    }
}
