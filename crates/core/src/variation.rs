//! Monte-Carlo variation analysis between the tentpoles.
//!
//! The tentpole methodology bounds each technology by its field-wise
//! best and worst published characteristics; real devices land
//! somewhere in between. This module samples synthetic cells
//! log-uniformly between the tentpole extrema (independently per field,
//! matching the tentpoles' own field-wise construction), characterizes
//! each sample, and reports percentile bands — turning the paper's
//! two-point envelopes into distributions.

use coldtall_array::{ArraySpec, Objective};
use coldtall_cell::{CellModel, MemoryTechnology, SurveyEntry, Tentpole};
use coldtall_tech::ProcessNode;
use coldtall_rng::SmallRng;

/// Percentile summary of one metric across the sampled population,
/// relative to the 350 K 2D SRAM baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricBand {
    /// 5th percentile.
    pub p5: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

/// The variation study's result for one (technology, die count).
#[derive(Debug, Clone, PartialEq)]
pub struct VariationSummary {
    /// Technology sampled.
    pub technology: MemoryTechnology,
    /// Die count.
    pub dies: u8,
    /// Samples drawn.
    pub samples: usize,
    /// Read latency relative to the SRAM baseline.
    pub read_latency: MetricBand,
    /// Write latency relative to the SRAM baseline.
    pub write_latency: MetricBand,
    /// Read energy relative to the SRAM baseline.
    pub read_energy: MetricBand,
    /// Footprint relative to the SRAM baseline.
    pub area: MetricBand,
}

fn log_uniform(rng: &mut SmallRng, lo: f64, hi: f64) -> f64 {
    if (hi - lo).abs() < 1e-12 {
        return lo;
    }
    let (lo, hi) = (lo.min(hi), lo.max(hi));
    (rng.gen_f64() * (hi.ln() - lo.ln()) + lo.ln()).exp()
}

/// Draws `n` synthetic survey entries between the technology's tentpole
/// extrema (log-uniform, independent per field).
///
/// # Panics
///
/// Panics for technologies without survey entries (SRAM, the eDRAMs).
#[must_use]
pub fn sample_cells(
    technology: MemoryTechnology,
    n: usize,
    seed: u64,
    node: &ProcessNode,
) -> Vec<CellModel> {
    let opt = Tentpole::Optimistic
        .bounding_entry(technology)
        .expect("variation sampling needs a surveyed technology");
    let pess = Tentpole::Pessimistic
        .bounding_entry(technology)
        .expect("variation sampling needs a surveyed technology");
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let entry = SurveyEntry {
                id: "monte-carlo-sample",
                year: opt.year,
                venue: opt.venue,
                technology,
                cell_area_f2: log_uniform(&mut rng, opt.cell_area_f2, pess.cell_area_f2),
                read_sense_ns: log_uniform(&mut rng, opt.read_sense_ns, pess.read_sense_ns),
                read_energy_pj: log_uniform(&mut rng, opt.read_energy_pj, pess.read_energy_pj),
                write_latency_ns: log_uniform(
                    &mut rng,
                    opt.write_latency_ns,
                    pess.write_latency_ns,
                ),
                write_energy_pj: log_uniform(
                    &mut rng,
                    opt.write_energy_pj,
                    pess.write_energy_pj,
                ),
                endurance_writes: log_uniform(
                    &mut rng,
                    pess.endurance_writes,
                    opt.endurance_writes,
                ),
                retention_years: opt.retention_years.min(pess.retention_years),
                mlc_bits: 1,
            };
            CellModel::from_survey(&entry, node)
        })
        .collect()
}

fn band(mut values: Vec<f64>) -> MetricBand {
    values.sort_by(f64::total_cmp);
    let pick = |q: f64| {
        let idx = ((values.len() - 1) as f64 * q).round() as usize;
        values[idx]
    };
    MetricBand {
        p5: pick(0.05),
        p50: pick(0.50),
        p95: pick(0.95),
    }
}

/// Runs the Monte-Carlo study: `samples` synthetic cells of `technology`
/// at `dies` stacked dies, each characterized at 350 K and normalized to
/// the 2D SRAM baseline.
///
/// # Panics
///
/// Panics if `samples` is zero or the technology has no survey.
#[must_use]
pub fn monte_carlo(
    technology: MemoryTechnology,
    dies: u8,
    samples: usize,
    seed: u64,
) -> VariationSummary {
    assert!(samples > 0, "need at least one sample");
    let node = ProcessNode::ptm_22nm_hp();
    let objective = Objective::EnergyDelayProduct;
    let baseline = ArraySpec::llc_16mib(CellModel::sram(&node), &node).characterize(objective);

    // Sampling is sequential (one RNG stream keeps seeds meaningful);
    // the expensive part — one organization search per sampled cell —
    // fans out over the worker pool as a keyed job set. Sample keys are
    // synthetic: every draw is a distinct device, so nothing dedups.
    let cells = sample_cells(technology, samples, seed, &node);
    let jobs = crate::plan::KeyedJobs::build(cells, |i, _| {
        crate::plan::DesignPointKey::synthetic(&format!(
            "mc|{}|d{dies}|s{seed}|{i}",
            technology.name()
        ))
    });
    let characterized = jobs.execute(|_, cell| {
        let mut spec = ArraySpec::llc_16mib(cell.clone(), &node);
        if dies > 1 {
            spec = spec.with_dies(dies);
        }
        spec.characterize(objective)
    });
    let mut read_latency = Vec::with_capacity(samples);
    let mut write_latency = Vec::with_capacity(samples);
    let mut read_energy = Vec::with_capacity(samples);
    let mut area = Vec::with_capacity(samples);
    for a in characterized {
        read_latency.push(a.read_latency / baseline.read_latency);
        write_latency.push(a.write_latency / baseline.write_latency);
        read_energy.push(a.read_energy / baseline.read_energy);
        area.push(a.footprint / baseline.footprint);
    }
    VariationSummary {
        technology,
        dies,
        samples,
        read_latency: band(read_latency),
        write_latency: band(write_latency),
        read_energy: band(read_energy),
        area: band(area),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tentpole_metric(
        technology: MemoryTechnology,
        tentpole: Tentpole,
        dies: u8,
    ) -> (f64, f64) {
        let node = ProcessNode::ptm_22nm_hp();
        let objective = Objective::EnergyDelayProduct;
        let baseline =
            ArraySpec::llc_16mib(CellModel::sram(&node), &node).characterize(objective);
        let mut spec =
            ArraySpec::llc_16mib(CellModel::tentpole(technology, tentpole, &node), &node);
        if dies > 1 {
            spec = spec.with_dies(dies);
        }
        let a = spec.characterize(objective);
        (
            a.read_latency / baseline.read_latency,
            a.footprint / baseline.footprint,
        )
    }

    #[test]
    fn samples_are_bounded_by_the_tentpoles() {
        let summary = monte_carlo(MemoryTechnology::Pcm, 1, 40, 7);
        let (opt_lat, opt_area) = tentpole_metric(MemoryTechnology::Pcm, Tentpole::Optimistic, 1);
        let (pess_lat, pess_area) =
            tentpole_metric(MemoryTechnology::Pcm, Tentpole::Pessimistic, 1);
        assert!(summary.read_latency.p5 >= opt_lat * 0.99);
        assert!(summary.read_latency.p95 <= pess_lat * 1.01);
        assert!(summary.area.p5 >= opt_area * 0.99);
        assert!(summary.area.p95 <= pess_area * 1.01);
    }

    #[test]
    fn percentiles_are_ordered() {
        let s = monte_carlo(MemoryTechnology::SttRam, 4, 30, 11);
        for b in [s.read_latency, s.write_latency, s.read_energy, s.area] {
            assert!(b.p5 <= b.p50 && b.p50 <= b.p95);
        }
        assert_eq!(s.samples, 30);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = monte_carlo(MemoryTechnology::Rram, 1, 10, 3);
        let b = monte_carlo(MemoryTechnology::Rram, 1, 10, 3);
        assert_eq!(a, b);
        let c = monte_carlo(MemoryTechnology::Rram, 1, 10, 4);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "surveyed technology")]
    fn sram_cannot_be_sampled() {
        let node = ProcessNode::ptm_22nm_hp();
        let _ = sample_cells(MemoryTechnology::Sram, 5, 0, &node);
    }
}
