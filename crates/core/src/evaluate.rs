//! The application-level model: array characteristics + traffic ->
//! total LLC power, latency, and area.

use core::fmt;

use coldtall_array::ArrayCharacterization;
use coldtall_cachesim::LlcTraffic;
use coldtall_units::{Joules, Seconds, Watts};

use crate::config::MemoryConfig;
use crate::error::Error;

/// Refresh-busy fraction beyond which an array cannot serve its traffic
/// at all (the paper's "cannot run ordinary workloads" regime).
///
/// `pub(crate)` so the adaptive search can prove a whole configuration
/// plane unserviceable from its refresh-busy *floor* (the minimum over
/// every candidate organization) without characterizing it.
pub(crate) const REFRESH_INFEASIBLE: f64 = 0.999;

/// Why a design point is (or is not) a viable LLC for a benchmark.
///
/// Every [`LlcEvaluation`] carries one of these verdicts, computed from
/// the array model's own feasibility checks rather than re-derived from
/// the `f64::INFINITY` latency sentinel downstream — so a `NaN` can
/// never masquerade as "viable" and screening code never has to guess
/// which failure an infinite latency encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feasibility {
    /// Serves the traffic with no slowdown versus the 350 K SRAM
    /// baseline.
    Viable,
    /// Serves the traffic, but slower than the baseline (relative
    /// latency above 1).
    Slowdown,
    /// Refresh consumes essentially all array availability (the paper's
    /// "cannot run ordinary workloads" regime); latency is reported as
    /// `f64::INFINITY`.
    RefreshDead,
    /// The offered traffic meets or exceeds the array's bank bandwidth;
    /// latency is reported as `f64::INFINITY`.
    BandwidthSaturated,
}

impl Feasibility {
    /// Classifies an evaluation from the model's primitive checks.
    ///
    /// The order encodes causality: an array that cannot refresh fast
    /// enough is dead regardless of traffic, saturation is next, and
    /// only a serviceable array can be merely slow.
    fn classify(refresh_dead: bool, utilization: f64, relative_latency: f64) -> Self {
        if refresh_dead {
            Self::RefreshDead
        } else if utilization >= 1.0 {
            Self::BandwidthSaturated
        } else if relative_latency > 1.0 {
            Self::Slowdown
        } else {
            Self::Viable
        }
    }

    /// Whether the point serves the traffic at all (viable or merely
    /// slow).
    #[must_use]
    pub fn is_serviceable(self) -> bool {
        matches!(self, Self::Viable | Self::Slowdown)
    }

    /// Whether the point is fully viable (no slowdown, serviceable).
    #[must_use]
    pub fn is_viable(self) -> bool {
        self == Self::Viable
    }
}

impl fmt::Display for Feasibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Viable => "viable",
            Self::Slowdown => "slows the CPU",
            Self::RefreshDead => "refresh-dead",
            Self::BandwidthSaturated => "bandwidth-saturated",
        })
    }
}

/// One row of the exploration: a design point evaluated under one
/// benchmark's traffic.
///
/// Power follows the paper's total-LLC-power model (leakage + refresh +
/// traffic-weighted dynamic energy, multiplied by the cryocooler factor
/// at 77 K), normalized to the 350 K SRAM baseline running the reference
/// benchmark. Latency is the traffic-weighted access latency normalized
/// to the 350 K SRAM baseline running the *same* benchmark — values
/// above 1 flag a solution that would slow the CPU down.
#[derive(Debug, Clone, PartialEq)]
pub struct LlcEvaluation {
    /// Display label of the configuration.
    pub config_label: String,
    /// Benchmark name.
    pub benchmark: &'static str,
    /// The benchmark's LLC traffic.
    pub traffic: LlcTraffic,
    /// Device power at the operating temperature (no cooling).
    pub device_power: Watts,
    /// Wall power including refrigeration for cryogenic points.
    pub wall_power: Watts,
    /// Wall power relative to the study reference (350 K SRAM @ namd).
    pub relative_power: f64,
    /// Traffic-weighted LLC latency relative to 350 K SRAM on the same
    /// benchmark; `f64::INFINITY` when refresh cannot keep up.
    pub relative_latency: f64,
    /// Whether this solution would negatively impact performance
    /// (relative latency above 1, including unserviceable points).
    pub slowdown: bool,
    /// Why this point is (or is not) viable; the authoritative verdict
    /// derived from the array model's own checks, never from parsing
    /// the latency sentinel back.
    pub feasibility: Feasibility,
    /// 2D footprint in square millimeters.
    pub footprint_mm2: f64,
    /// Wear-limited lifetime in years (infinite for unlimited endurance).
    pub lifetime_years: f64,
    /// Fraction of the array's bank bandwidth this traffic consumes;
    /// at or above 1 the array cannot keep up (the paper's bandwidth
    /// feasibility check).
    pub bandwidth_utilization: f64,
}

/// Traffic-weighted seconds of LLC service per second of execution,
/// diluted by refresh unavailability and by bank-bandwidth queueing.
pub(crate) fn service_time(array: &ArrayCharacterization, traffic: &LlcTraffic) -> f64 {
    let raw = traffic.reads_per_sec * array.read_latency.get()
        + traffic.writes_per_sec * array.write_latency.get();
    if array.refresh_busy_fraction >= REFRESH_INFEASIBLE {
        return f64::INFINITY;
    }
    let utilization =
        array.bandwidth_utilization(traffic.reads_per_sec, traffic.writes_per_sec);
    if utilization >= 1.0 {
        return f64::INFINITY;
    }
    // Refresh steals availability; queueing dilates service as the
    // offered load approaches the bank bandwidth.
    raw / (1.0 - array.refresh_busy_fraction) / (1.0 - utilization)
}

/// Device power of `array` under `traffic`: standby plus dynamic.
#[must_use]
pub(crate) fn device_power(array: &ArrayCharacterization, traffic: &LlcTraffic) -> Watts {
    let dynamic = Joules::new(
        traffic.reads_per_sec * array.read_energy.get()
            + traffic.writes_per_sec * array.write_energy.get(),
    );
    array.standby_power() + dynamic / Seconds::new(1.0)
}

/// The per-row numeric core of an [`LlcEvaluation`]: every field that
/// is pure arithmetic over an array characterization, one benchmark's
/// traffic, and the pre-hoisted grid invariants.
///
/// Both the scalar path ([`LlcEvaluation::build`]) and the batched
/// kernel (`crate::batch`) produce their rows through
/// [`row_values`], so batch/scalar bit-identity holds *by
/// construction* — there is exactly one copy of the float expressions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct RowValues {
    /// Device power at the operating temperature (no cooling).
    pub device_power: Watts,
    /// Wall power including refrigeration.
    pub wall_power: Watts,
    /// Wall power relative to the study reference.
    pub relative_power: f64,
    /// Service time relative to the baseline on the same benchmark.
    pub relative_latency: f64,
    /// Whether the row slows the CPU (`relative_latency > 1`).
    pub slowdown: bool,
    /// The authoritative feasibility verdict.
    pub feasibility: Feasibility,
    /// 2D footprint in square millimeters.
    pub footprint_mm2: f64,
    /// Fraction of bank bandwidth this traffic consumes.
    pub bandwidth_utilization: f64,
}

/// Computes one row's numeric fields from the array characterization,
/// the benchmark's traffic, and the grid-invariant terms the batched
/// kernel hoists: `wall_factor` (the cooling multiplier, constant per
/// configuration plane — [`coldtall_cryo::CoolingSystem::wall_factor`]),
/// `base_service` (the baseline's service time on this benchmark,
/// constant per benchmark column), and `reference_power` (constant for
/// the whole grid).
pub(crate) fn row_values(
    array: &ArrayCharacterization,
    traffic: &LlcTraffic,
    wall_factor: f64,
    base_service: f64,
    reference_power: Watts,
) -> RowValues {
    let device = device_power(array, traffic);
    let wall = device * wall_factor;
    let own_service = service_time(array, traffic);
    // An unserviceable candidate is infinitely slow no matter what
    // the baseline does: dividing two infinite service times would
    // fabricate a NaN that compares "not a slowdown" downstream.
    let relative_latency = if !own_service.is_finite() {
        f64::INFINITY
    } else if base_service.is_finite() && base_service > 0.0 {
        own_service / base_service
    } else {
        1.0
    };
    let utilization =
        array.bandwidth_utilization(traffic.reads_per_sec, traffic.writes_per_sec);
    RowValues {
        device_power: device,
        wall_power: wall,
        relative_power: wall / reference_power,
        relative_latency,
        slowdown: relative_latency > 1.0,
        feasibility: Feasibility::classify(
            array.refresh_busy_fraction >= REFRESH_INFEASIBLE,
            utilization,
            relative_latency,
        ),
        footprint_mm2: array.footprint.as_mm2(),
        bandwidth_utilization: utilization,
    }
}

impl LlcEvaluation {
    /// Builds an evaluation row.
    ///
    /// `baseline` is the 350 K SRAM characterization; `reference_power`
    /// is the baseline's wall power on the reference benchmark (namd).
    #[must_use]
    pub(crate) fn build(
        config: &MemoryConfig,
        benchmark: &'static str,
        traffic: LlcTraffic,
        array: &ArrayCharacterization,
        baseline: &ArrayCharacterization,
        reference_power: Watts,
        lifetime_years: f64,
    ) -> Self {
        let wall_factor = config.cooling().wall_factor(config.temperature());
        let base_service = service_time(baseline, &traffic);
        let values = row_values(array, &traffic, wall_factor, base_service, reference_power);
        Self::from_values(config.label(), benchmark, traffic, &values, lifetime_years)
    }

    /// Assembles a row from its pre-computed numeric core plus the
    /// identity and lifetime fields.
    pub(crate) fn from_values(
        config_label: String,
        benchmark: &'static str,
        traffic: LlcTraffic,
        values: &RowValues,
        lifetime_years: f64,
    ) -> Self {
        Self {
            config_label,
            benchmark,
            traffic,
            device_power: values.device_power,
            wall_power: values.wall_power,
            relative_power: values.relative_power,
            relative_latency: values.relative_latency,
            slowdown: values.slowdown,
            feasibility: values.feasibility,
            footprint_mm2: values.footprint_mm2,
            lifetime_years,
            bandwidth_utilization: values.bandwidth_utilization,
        }
    }

    /// Whether this row's lifetime meets the selection target.
    #[must_use]
    pub fn meets_lifetime_target(&self) -> bool {
        self.lifetime_years >= crate::lifetime::LIFETIME_TARGET_YEARS
    }

    /// Demands full viability, converting an infeasible (or merely
    /// slow) row into a typed [`Error::Infeasible`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] unless the feasibility verdict is
    /// [`Feasibility::Viable`].
    pub fn require_viable(self) -> Result<Self, Error> {
        if self.feasibility.is_viable() {
            Ok(self)
        } else {
            Err(Error::Infeasible {
                config: self.config_label,
                benchmark: self.benchmark.to_string(),
                feasibility: self.feasibility,
            })
        }
    }

    /// Checks the finite-or-explicitly-infeasible invariant: no field
    /// is `NaN`, and an infinite relative latency only appears on rows
    /// whose feasibility verdict says the point is unserviceable.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonFinite`] naming the offending field.
    pub fn validate(&self) -> Result<(), Error> {
        let non_finite = |field: &str| Error::NonFinite {
            context: format!("{} @ {}: {field}", self.config_label, self.benchmark),
        };
        for (field, value) in [
            ("device_power", self.device_power.get()),
            ("wall_power", self.wall_power.get()),
            ("relative_power", self.relative_power),
            ("footprint_mm2", self.footprint_mm2),
            ("bandwidth_utilization", self.bandwidth_utilization),
        ] {
            if !value.is_finite() {
                return Err(non_finite(field));
            }
        }
        // Latency and lifetime carry documented infinity sentinels
        // (unserviceable / unlimited endurance) but never NaN.
        if self.relative_latency.is_nan() {
            return Err(non_finite("relative_latency"));
        }
        if self.lifetime_years.is_nan() {
            return Err(non_finite("lifetime_years"));
        }
        if self.relative_latency.is_infinite() && self.feasibility.is_serviceable() {
            return Err(non_finite("relative_latency (sentinel without verdict)"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldtall_array::{ArraySpec, Objective};
    use coldtall_cell::CellModel;
    use coldtall_tech::ProcessNode;

    use crate::backend::CharacterizationBackend;

    fn sram_array() -> ArrayCharacterization {
        let node = ProcessNode::ptm_22nm_hp();
        ArraySpec::llc_16mib(CellModel::sram(&node), &node)
            .characterize(Objective::EnergyDelayProduct)
    }

    #[test]
    fn device_power_combines_static_and_dynamic() {
        let array = sram_array();
        let idle = device_power(&array, &LlcTraffic::new(0.0, 0.0));
        assert_eq!(idle, array.standby_power());
        let busy = device_power(&array, &LlcTraffic::new(1e8, 0.0));
        let expected = array.standby_power().get() + 1e8 * array.read_energy.get();
        assert!((busy.get() - expected).abs() < 1e-12);
    }

    #[test]
    fn service_time_is_traffic_weighted_with_queueing_dilation() {
        let array = sram_array();
        let traffic = LlcTraffic::new(1e6, 2e6);
        let t = service_time(&array, &traffic);
        let raw = 1e6 * array.read_latency.get() + 2e6 * array.write_latency.get();
        let dilation = 1.0 / (1.0 - array.bandwidth_utilization(1e6, 2e6));
        assert!((t - raw * dilation).abs() < 1e-12);
        assert!(t >= raw, "queueing can only dilate");
    }

    #[test]
    fn saturated_bandwidth_is_infeasible() {
        let array = sram_array();
        // Offer more traffic than the banks can serve.
        let capacity = array.read_bandwidth();
        let t = service_time(&array, &LlcTraffic::new(capacity * 1.5, 0.0));
        assert!(t.is_infinite());
    }

    /// Regression (ISSUE 3): when candidate *and* baseline are both
    /// unserviceable, `INF / INF` used to produce a NaN latency whose
    /// `NaN > 1.0` comparison reported the row as viable.
    #[test]
    fn infinite_over_infinite_is_explicit_infeasibility_not_nan() {
        let node = ProcessNode::ptm_22nm_hp();
        let dead = crate::backend::CryoMemBackend.characterize(
            &MemoryConfig::edram_350k(),
            &node,
            Objective::EnergyDelayProduct,
        );
        assert!(
            dead.refresh_busy_fraction >= 0.999,
            "precondition: 350 K 3T-eDRAM is refresh-dead"
        );
        let eval = LlcEvaluation::build(
            &MemoryConfig::edram_350k(),
            "namd",
            LlcTraffic::new(1e6, 1e5),
            &dead,
            &dead, // hostile baseline: also unserviceable
            Watts::new(1.0),
            f64::INFINITY,
        );
        assert!(eval.relative_latency.is_infinite(), "INF, not NaN");
        assert!(eval.slowdown, "an unserviceable point is never 'viable'");
        assert_eq!(eval.feasibility, Feasibility::RefreshDead);
        eval.validate().expect("row upholds the NaN-free invariant");
    }

    #[test]
    fn feasibility_verdicts_track_the_model_checks() {
        let array = sram_array();
        let build = |traffic: LlcTraffic| {
            LlcEvaluation::build(
                &MemoryConfig::sram_350k(),
                "namd",
                traffic,
                &array,
                &array,
                Watts::new(1.0),
                f64::INFINITY,
            )
        };
        let idle = build(LlcTraffic::new(1e6, 1e5));
        assert_eq!(idle.feasibility, Feasibility::Viable);
        assert!(idle.feasibility.is_viable() && idle.feasibility.is_serviceable());
        let saturated = build(LlcTraffic::new(array.read_bandwidth() * 1.5, 0.0));
        assert_eq!(saturated.feasibility, Feasibility::BandwidthSaturated);
        assert!(!saturated.feasibility.is_serviceable());
        assert!(saturated.relative_latency.is_infinite());
        saturated.validate().expect("sentinel backed by a verdict");
        assert!(saturated.require_viable().is_err());
    }
}
