//! The application-level model: array characteristics + traffic ->
//! total LLC power, latency, and area.

use coldtall_array::ArrayCharacterization;
use coldtall_cachesim::LlcTraffic;
use coldtall_units::{Joules, Seconds, Watts};

use crate::config::MemoryConfig;

/// Refresh-busy fraction beyond which an array cannot serve its traffic
/// at all (the paper's "cannot run ordinary workloads" regime).
const REFRESH_INFEASIBLE: f64 = 0.999;

/// One row of the exploration: a design point evaluated under one
/// benchmark's traffic.
///
/// Power follows the paper's total-LLC-power model (leakage + refresh +
/// traffic-weighted dynamic energy, multiplied by the cryocooler factor
/// at 77 K), normalized to the 350 K SRAM baseline running the reference
/// benchmark. Latency is the traffic-weighted access latency normalized
/// to the 350 K SRAM baseline running the *same* benchmark — values
/// above 1 flag a solution that would slow the CPU down.
#[derive(Debug, Clone, PartialEq)]
pub struct LlcEvaluation {
    /// Display label of the configuration.
    pub config_label: String,
    /// Benchmark name.
    pub benchmark: &'static str,
    /// The benchmark's LLC traffic.
    pub traffic: LlcTraffic,
    /// Device power at the operating temperature (no cooling).
    pub device_power: Watts,
    /// Wall power including refrigeration for cryogenic points.
    pub wall_power: Watts,
    /// Wall power relative to the study reference (350 K SRAM @ namd).
    pub relative_power: f64,
    /// Traffic-weighted LLC latency relative to 350 K SRAM on the same
    /// benchmark; `f64::INFINITY` when refresh cannot keep up.
    pub relative_latency: f64,
    /// Whether this solution would negatively impact performance
    /// (relative latency above 1).
    pub slowdown: bool,
    /// 2D footprint in square millimeters.
    pub footprint_mm2: f64,
    /// Wear-limited lifetime in years (infinite for unlimited endurance).
    pub lifetime_years: f64,
    /// Fraction of the array's bank bandwidth this traffic consumes;
    /// at or above 1 the array cannot keep up (the paper's bandwidth
    /// feasibility check).
    pub bandwidth_utilization: f64,
}

/// Traffic-weighted seconds of LLC service per second of execution,
/// diluted by refresh unavailability and by bank-bandwidth queueing.
fn service_time(array: &ArrayCharacterization, traffic: &LlcTraffic) -> f64 {
    let raw = traffic.reads_per_sec * array.read_latency.get()
        + traffic.writes_per_sec * array.write_latency.get();
    if array.refresh_busy_fraction >= REFRESH_INFEASIBLE {
        return f64::INFINITY;
    }
    let utilization =
        array.bandwidth_utilization(traffic.reads_per_sec, traffic.writes_per_sec);
    if utilization >= 1.0 {
        return f64::INFINITY;
    }
    // Refresh steals availability; queueing dilates service as the
    // offered load approaches the bank bandwidth.
    raw / (1.0 - array.refresh_busy_fraction) / (1.0 - utilization)
}

/// Device power of `array` under `traffic`: standby plus dynamic.
#[must_use]
pub(crate) fn device_power(array: &ArrayCharacterization, traffic: &LlcTraffic) -> Watts {
    let dynamic = Joules::new(
        traffic.reads_per_sec * array.read_energy.get()
            + traffic.writes_per_sec * array.write_energy.get(),
    );
    array.standby_power() + dynamic / Seconds::new(1.0)
}

impl LlcEvaluation {
    /// Builds an evaluation row.
    ///
    /// `baseline` is the 350 K SRAM characterization; `reference_power`
    /// is the baseline's wall power on the reference benchmark (namd).
    #[must_use]
    pub(crate) fn build(
        config: &MemoryConfig,
        benchmark: &'static str,
        traffic: LlcTraffic,
        array: &ArrayCharacterization,
        baseline: &ArrayCharacterization,
        reference_power: Watts,
        lifetime_years: f64,
    ) -> Self {
        let device = device_power(array, &traffic);
        let wall = config.cooling().wall_power(device, config.temperature());
        let own_service = service_time(array, &traffic);
        let base_service = service_time(baseline, &traffic);
        let relative_latency = if base_service > 0.0 {
            own_service / base_service
        } else {
            1.0
        };
        Self {
            config_label: config.label(),
            benchmark,
            traffic,
            device_power: device,
            wall_power: wall,
            relative_power: wall / reference_power,
            relative_latency,
            slowdown: relative_latency > 1.0,
            footprint_mm2: array.footprint.as_mm2(),
            lifetime_years,
            bandwidth_utilization: array
                .bandwidth_utilization(traffic.reads_per_sec, traffic.writes_per_sec),
        }
    }

    /// Whether this row's lifetime meets the selection target.
    #[must_use]
    pub fn meets_lifetime_target(&self) -> bool {
        self.lifetime_years >= crate::lifetime::LIFETIME_TARGET_YEARS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coldtall_array::{ArraySpec, Objective};
    use coldtall_cell::CellModel;
    use coldtall_tech::ProcessNode;

    fn sram_array() -> ArrayCharacterization {
        let node = ProcessNode::ptm_22nm_hp();
        ArraySpec::llc_16mib(CellModel::sram(&node), &node)
            .characterize(Objective::EnergyDelayProduct)
    }

    #[test]
    fn device_power_combines_static_and_dynamic() {
        let array = sram_array();
        let idle = device_power(&array, &LlcTraffic::new(0.0, 0.0));
        assert_eq!(idle, array.standby_power());
        let busy = device_power(&array, &LlcTraffic::new(1e8, 0.0));
        let expected = array.standby_power().get() + 1e8 * array.read_energy.get();
        assert!((busy.get() - expected).abs() < 1e-12);
    }

    #[test]
    fn service_time_is_traffic_weighted_with_queueing_dilation() {
        let array = sram_array();
        let traffic = LlcTraffic::new(1e6, 2e6);
        let t = service_time(&array, &traffic);
        let raw = 1e6 * array.read_latency.get() + 2e6 * array.write_latency.get();
        let dilation = 1.0 / (1.0 - array.bandwidth_utilization(1e6, 2e6));
        assert!((t - raw * dilation).abs() < 1e-12);
        assert!(t >= raw, "queueing can only dilate");
    }

    #[test]
    fn saturated_bandwidth_is_infeasible() {
        let array = sram_array();
        // Offer more traffic than the banks can serve.
        let capacity = array.read_bandwidth();
        let t = service_time(&array, &LlcTraffic::new(capacity * 1.5, 0.0));
        assert!(t.is_infinite());
    }
}
