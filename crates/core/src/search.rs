//! Best-first branch-and-bound exploration of the design space.
//!
//! The exhaustive sweep evaluates every (configuration × benchmark)
//! row and filters a Pareto frontier at the end. This module inverts
//! that: it carves the (technology × dies × temperature ×
//! organization) space into a region tree, bounds every region from
//! *below* on the three frontier coordinates (relative power, relative
//! latency, footprint), and expands regions best-first — refining a
//! leaf (one configuration plane) through the existing batched
//! plan/execute kernels only when no incumbent frontier point provably
//! dominates the whole region.
//!
//! # Bound soundness
//!
//! Region bounds generalize the organization optimizer's
//! [`coldtall_array::score_lower_bound`] from one candidate's score to
//! a whole plane's field vector. Per plane,
//! [`coldtall_array::OrgGeometry::floors_at_temperature`] takes the
//! componentwise minimum of read latency, read energy, standby power,
//! footprint, and refresh-busy fraction over *every* candidate
//! organization; whatever objective the search-time characterization
//! minimizes, the chosen organization is one of those candidates, so
//! each floor bounds the chosen array's field. The application model
//! then maps floors to row bounds by *dropping nonnegative terms and
//! divisors in `(0, 1]`* from the exact expressions of
//! `crate::evaluate`:
//!
//! * power: `(standby_floor + reads · read_energy_floor) · wall_factor
//!   / reference_power` drops the write-energy term;
//! * latency: `reads · read_latency_floor / base_service` drops the
//!   write term and the refresh/queueing dilation divisors;
//! * area: the footprint floor is temperature-invariant and exact up
//!   to the candidate choice.
//!
//! Every step is monotone under IEEE-754 round-to-nearest (rounding is
//! monotone, and adding a nonnegative float never moves a sum below
//! either operand), so each bound is `<=` the bit-exact row value the
//! refinement kernel would produce. A region's corner takes the
//! componentwise minimum over its members' bounds, preserving the
//! inequality for every member row.
//!
//! # Prune soundness
//!
//! A region is pruned only when an incumbent frontier point is
//! *strictly* below its corner in all three coordinates
//! ([`ParetoFrontier::strictly_dominates`]): the incumbent then
//! strictly dominates every member row, so no member can ever join the
//! frontier. Dominance eviction preserves the incumbent's role — an
//! evictor is componentwise `<=` the evicted point, so strictness
//! against the corner survives eviction chains. Weak (`<=`) pruning
//! would be unsound: a coordinate-equal member belongs *on* the
//! frontier, and in particular a duplicated configuration can never be
//! pruned by its own twin. Separately, a plane whose refresh-busy
//! *floor* already sits in the refresh-dead regime is skipped without
//! characterization: every candidate organization is refresh-dead, so
//! every row of the plane carries the infinite-latency sentinel and
//! can never join the frontier.
//!
//! Because membership in the incremental frontier is insertion-order
//! invariant and every skipped row is provably non-frontier, the
//! search's frontier is byte-identical to the exhaustive sweep's —
//! `tests/search.rs` pins this across thread counts and constraint
//! sets.

#![deny(missing_docs)]

use std::collections::HashMap;

use coldtall_array::{ComponentFloors, OrgGeometry};
use coldtall_cachesim::TrafficTable;
use coldtall_obs::{Counter, Histogram, Registry};
use coldtall_units::SquareMeters;
use std::sync::Arc;

use crate::config::MemoryConfig;
use crate::error::Error;
use crate::evaluate::{LlcEvaluation, REFRESH_INFEASIBLE};
use crate::explorer::Explorer;
use crate::pareto::{Constraints, ParetoFrontier};
use crate::plan::{DesignPointKey, ExecutionPlan};

/// Registry handles for the search's work-avoidance telemetry.
///
/// Counters are logical-work counts, deterministic under any thread
/// count (the search control loop is sequential by construction); the
/// bound-tightness histograms record the ratio of each refined leaf's
/// lower bound to its plane's actual minimum, in permille, so a sweep
/// of the telemetry shows how close the bounds run to the truth.
#[derive(Debug)]
pub(crate) struct SearchMetrics {
    /// Regions popped and expanded into children.
    regions_expanded: Arc<Counter>,
    /// Regions pruned (dominated, constraint-capped, or infeasible).
    regions_pruned: Arc<Counter>,
    /// Leaf regions refined through the batch kernels.
    regions_refined: Arc<Counter>,
    /// Rows evaluated by refinement.
    points_evaluated: Arc<Counter>,
    /// Rows provably skipped (never evaluated).
    points_skipped: Arc<Counter>,
    /// Skipped rows of refresh-dead planes.
    skipped_infeasible: Arc<Counter>,
    /// Skipped rows of dominated or constraint-capped regions.
    skipped_pruned: Arc<Counter>,
    /// Plane lower-bound computations (componentwise floors).
    bounds_computed: Arc<Counter>,
    /// Power bound tightness (permille of the plane's actual minimum).
    tightness_power: Arc<Histogram>,
    /// Latency bound tightness (permille).
    tightness_latency: Arc<Histogram>,
    /// Area bound tightness (permille).
    tightness_area: Arc<Histogram>,
}

impl SearchMetrics {
    /// Registers every handle under the `search.*` namespace.
    pub(crate) fn registered(registry: &Registry) -> Self {
        Self {
            regions_expanded: registry.counter("search.regions.expanded"),
            regions_pruned: registry.counter("search.regions.pruned"),
            regions_refined: registry.counter("search.regions.refined"),
            points_evaluated: registry.counter("search.points.evaluated"),
            points_skipped: registry.counter("search.points.skipped"),
            skipped_infeasible: registry.counter("search.points.skipped_infeasible"),
            skipped_pruned: registry.counter("search.points.skipped_pruned"),
            bounds_computed: registry.counter("search.bounds.computed"),
            tightness_power: registry.span("search.tightness.power"),
            tightness_latency: registry.span("search.tightness.latency"),
            tightness_area: registry.span("search.tightness.area"),
        }
    }
}

/// Work-avoidance statistics of one [`Explorer::search`] run.
///
/// The accounting is exact: `points_evaluated + points_skipped ==
/// rows_total`, and `points_skipped == skipped_infeasible +
/// skipped_pruned`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Rows of the full (configuration × benchmark) grid.
    pub rows_total: u64,
    /// Rows actually evaluated by leaf refinement.
    pub points_evaluated: u64,
    /// Rows provably skipped without evaluation.
    pub points_skipped: u64,
    /// Skipped rows of planes whose refresh-busy floor proves every
    /// candidate organization refresh-dead.
    pub skipped_infeasible: u64,
    /// Skipped rows of regions pruned by frontier dominance or by a
    /// constraint cap on a lower bound.
    pub skipped_pruned: u64,
    /// Regions popped and expanded into children.
    pub regions_expanded: u64,
    /// Regions pruned whole (any reason).
    pub regions_pruned: u64,
    /// Leaf regions refined through the batch kernels.
    pub regions_refined: u64,
    /// Plane lower-bound computations (one per distinct design point).
    pub bounds_computed: u64,
}

/// Why a region was pruned without refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneReason {
    /// The plane's refresh-busy floor is in the refresh-dead regime:
    /// every candidate organization is unserviceable, so every row
    /// carries the infinite-latency sentinel.
    Infeasible,
    /// An incumbent frontier point is strictly below the region's
    /// lower-bound corner in all three coordinates.
    Dominated,
    /// A lower bound already exceeds a constraint cap, so every member
    /// row violates the constraints.
    Constrained,
}

/// One pruned region, reported for auditability: the member design
/// points and the lower-bound corner that justified skipping them.
///
/// The bound-soundness property test brute-forces these members and
/// asserts each bound is `<=` every member row's true value.
#[derive(Debug, Clone)]
pub struct PrunedRegion {
    /// The design points the region covered (duplicates preserved, in
    /// plan order).
    pub configs: Vec<MemoryConfig>,
    /// Lower bound on every member row's relative power.
    pub power_lb: f64,
    /// Lower bound on every member row's relative latency.
    pub latency_lb: f64,
    /// Lower bound on every member row's footprint in mm².
    pub area_lb: f64,
    /// Why the region was pruned.
    pub reason: PruneReason,
}

/// The result of one [`Explorer::search`] run: the frontier (sorted by
/// ascending relative power, byte-identical to the exhaustive
/// extraction), the work-avoidance statistics, and every pruned region
/// with the bounds that justified it.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The Pareto frontier over constraint-satisfying rows.
    pub frontier: Vec<LlcEvaluation>,
    /// Exact work accounting of the run.
    pub stats: SearchStats,
    /// Every pruned region, for bound auditing.
    pub pruned: Vec<PrunedRegion>,
}

/// One leaf of the region tree: a configuration plane with its
/// lower-bound corner.
struct Leaf {
    /// Index into the plan's configuration list.
    config_index: usize,
    /// The plane's canonical design-point key.
    key: DesignPointKey,
    /// Position of the plane's backend in the explorer's registry.
    backend_index: usize,
    /// Componentwise lower bound on every row of the plane:
    /// `[power, latency, area]`.
    corner: [f64; 3],
    /// Whether the refresh-busy floor proves the plane unserviceable.
    infeasible: bool,
}

/// A region of the search tree with its lower-bound corner.
struct Region {
    /// Componentwise minimum over the member leaves' corners.
    corner: [f64; 3],
    /// Lowest member leaf index — the deterministic tie-breaker of the
    /// best-first pop.
    first_leaf: usize,
    /// Children or the leaf itself.
    kind: RegionKind,
}

/// What a region holds.
enum RegionKind {
    /// An internal region expanding into children.
    Internal(Vec<Region>),
    /// A single configuration plane (index into the leaf list).
    Leaf(usize),
}

impl Region {
    /// Collects the member leaf indices, in tree order.
    fn members(&self, into: &mut Vec<usize>) {
        match &self.kind {
            RegionKind::Internal(children) => {
                for child in children {
                    child.members(into);
                }
            }
            RegionKind::Leaf(i) => into.push(*i),
        }
    }
}

/// Builds an internal region over non-empty `children`.
fn internal(children: Vec<Region>) -> Region {
    debug_assert!(!children.is_empty());
    let mut corner = [f64::INFINITY; 3];
    let mut first_leaf = usize::MAX;
    for child in &children {
        for (k, bound) in corner.iter_mut().enumerate() {
            *bound = bound.min(child.corner[k]);
        }
        first_leaf = first_leaf.min(child.first_leaf);
    }
    Region {
        corner,
        first_leaf,
        kind: RegionKind::Internal(children),
    }
}

/// Groups `items` by `key` preserving first-appearance order.
fn group_by<K: PartialEq>(items: &[usize], mut key: impl FnMut(usize) -> K) -> Vec<Vec<usize>> {
    let mut groups: Vec<(K, Vec<usize>)> = Vec::new();
    for &item in items {
        let k = key(item);
        match groups.iter_mut().find(|(existing, _)| *existing == k) {
            Some((_, members)) => members.push(item),
            None => groups.push((k, vec![item])),
        }
    }
    groups.into_iter().map(|(_, members)| members).collect()
}

/// Builds the region tree: root → (technology, tentpole) → die count →
/// temperature-plane leaves, every level in first-appearance order of
/// the plan's configuration list.
fn build_tree(leaves: &[Leaf], plan: &ExecutionPlan) -> Region {
    let all: Vec<usize> = (0..leaves.len()).collect();
    let config = |i: usize| &plan.configs()[leaves[i].config_index];
    let tech_groups = group_by(&all, |i| {
        let c = config(i);
        let tentpole = if c.technology().is_nonvolatile() {
            c.tentpole().to_string()
        } else {
            "-".to_string()
        };
        (c.technology().name(), tentpole)
    });
    let children = tech_groups
        .into_iter()
        .map(|tech_members| {
            let dies_groups = group_by(&tech_members, |i| config(i).dies());
            internal(
                dies_groups
                    .into_iter()
                    .map(|dies_members| {
                        internal(
                            dies_members
                                .into_iter()
                                .map(|i| Region {
                                    corner: leaves[i].corner,
                                    first_leaf: i,
                                    kind: RegionKind::Leaf(i),
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            )
        })
        .collect();
    internal(children)
}

/// Computes one plane's lower-bound corner from its componentwise
/// floors (see the module docs for the monotonicity argument).
fn plane_corner(
    floors: &ComponentFloors,
    wall_factor: f64,
    base_services: &[f64],
    traffic: &TrafficTable,
    reference_power: f64,
) -> [f64; 3] {
    let area_lb = SquareMeters::new(floors.footprint_m2).as_mm2();
    let mut power_lb = f64::INFINITY;
    let mut latency_lb = f64::INFINITY;
    for (b, &base) in base_services.iter().enumerate() {
        let reads = traffic.get(b).reads_per_sec;
        let power = (floors.standby_power_w + reads * floors.read_energy_j) * wall_factor
            / reference_power;
        // Mirrors `row_values`: a non-positive or non-finite baseline
        // denominator pins relative latency, so the bound drops to 0.
        let latency = if base.is_finite() && base > 0.0 {
            (reads * floors.read_latency_s) / base
        } else {
            0.0
        };
        power_lb = power_lb.min(power);
        latency_lb = latency_lb.min(latency);
    }
    [power_lb, latency_lb, area_lb]
}

/// Whether a lower-bound corner already violates a constraint cap —
/// in which case every member row violates it too.
fn exceeds_caps(corner: &[f64; 3], constraints: &Constraints) -> bool {
    corner[1] > constraints.max_relative_latency
        || constraints.max_area_mm2.is_some_and(|a| corner[2] > a)
        || constraints.max_relative_power.is_some_and(|p| corner[0] > p)
}

/// Pops the open region minimizing `(power, latency, area, first_leaf)`
/// — a deterministic total order (`total_cmp` plus the unique leaf
/// index), so the expansion sequence never depends on container order.
fn pop_best(open: &mut Vec<Region>) -> Option<Region> {
    let best = (0..open.len()).min_by(|&a, &b| {
        let (ra, rb) = (&open[a], &open[b]);
        ra.corner[0]
            .total_cmp(&rb.corner[0])
            .then(ra.corner[1].total_cmp(&rb.corner[1]))
            .then(ra.corner[2].total_cmp(&rb.corner[2]))
            .then(ra.first_leaf.cmp(&rb.first_leaf))
    })?;
    Some(open.swap_remove(best))
}

/// Records one bound-tightness sample: the ratio of the lower bound to
/// the plane's actual minimum, in permille (1000 = exact).
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn record_tightness(histogram: &Histogram, lower_bound: f64, actual: f64) {
    if actual.is_finite() && actual > 0.0 && lower_bound.is_finite() && lower_bound >= 0.0 {
        histogram.record(((lower_bound / actual) * 1000.0).clamp(0.0, 1000.0) as u64);
    }
}

/// Runs the adaptive search (the engine behind [`Explorer::search`]).
///
/// `region` is the caller's name for the searched space; it only
/// surfaces in the [`Error::EmptySearchSpace`] diagnostic.
pub(crate) fn run(
    explorer: &Explorer,
    region: &str,
    configs: &[MemoryConfig],
    constraints: &Constraints,
) -> Result<SearchOutcome, Error> {
    if configs.is_empty() {
        return Err(Error::EmptySearchSpace {
            region: region.to_string(),
        });
    }
    let plan = explorer.plan_sweep(configs)?;
    let benchmarks = plan.benchmarks();
    let nb = benchmarks.len() as u64;
    let base_services = explorer.base_services(benchmarks);
    let traffic: TrafficTable = benchmarks.iter().map(|b| b.traffic).collect();
    let reference_power = explorer.reference_power().get();

    let mut stats = SearchStats {
        rows_total: plan.rows() as u64,
        ..SearchStats::default()
    };

    // Phase 1: bound every plane. Floors are cached per design-point
    // key (duplicate planes share one computation); geometry solves go
    // through the explorer's geometry cache, shared with the batched
    // refinement phase.
    let mut floors_cache: HashMap<DesignPointKey, ComponentFloors> = HashMap::new();
    let mut leaves: Vec<Leaf> = Vec::with_capacity(plan.configs().len());
    for (config_index, config) in plan.configs().iter().enumerate() {
        let key = DesignPointKey::of_config(config);
        let job = plan
            .job_for(&key)
            .expect("every plan configuration has a compiled job");
        let backend_index = explorer.backend_position(job.backend());
        let floors = *floors_cache.entry(key.clone()).or_insert_with(|| {
            stats.bounds_computed += 1;
            let geometry_key = DesignPointKey::geometry_of(config);
            let geometry = explorer.geometry_cache().get_or_solve(&geometry_key, || {
                OrgGeometry::solve(&config.to_base_spec(explorer.node()))
            });
            geometry.floors_at_temperature(config.temperature())
        });
        let wall_factor = config.cooling().wall_factor(config.temperature());
        leaves.push(Leaf {
            config_index,
            key,
            backend_index,
            corner: plane_corner(&floors, wall_factor, &base_services, &traffic, reference_power),
            infeasible: floors.refresh_busy_fraction >= REFRESH_INFEASIBLE,
        });
    }

    // Phase 2: best-first expansion. The loop is sequential (regions
    // pop one at a time), so every counter and the frontier itself are
    // trivially deterministic under any pool width; the refinement
    // kernels underneath parallelize characterization batches exactly
    // as the exhaustive path does.
    let mut frontier: ParetoFrontier = ParetoFrontier::new();
    let mut pruned: Vec<PrunedRegion> = Vec::new();
    let mut open = vec![build_tree(&leaves, &plan)];
    let metrics = explorer.search_metrics();
    while let Some(region) = pop_best(&mut open) {
        let mut prune = |region: &Region, reason: PruneReason, stats: &mut SearchStats| {
            let mut members = Vec::new();
            region.members(&mut members);
            let rows = members.len() as u64 * nb;
            stats.regions_pruned += 1;
            stats.points_skipped += rows;
            match reason {
                PruneReason::Infeasible => stats.skipped_infeasible += rows,
                PruneReason::Dominated | PruneReason::Constrained => {
                    stats.skipped_pruned += rows;
                }
            }
            pruned.push(PrunedRegion {
                configs: members
                    .iter()
                    .map(|&i| plan.configs()[leaves[i].config_index].clone())
                    .collect(),
                power_lb: region.corner[0],
                latency_lb: region.corner[1],
                area_lb: region.corner[2],
                reason,
            });
        };
        if matches!(region.kind, RegionKind::Leaf(i) if leaves[i].infeasible) {
            prune(&region, PruneReason::Infeasible, &mut stats);
            continue;
        }
        if exceeds_caps(&region.corner, constraints) {
            prune(&region, PruneReason::Constrained, &mut stats);
            continue;
        }
        if frontier.strictly_dominates(region.corner) {
            prune(&region, PruneReason::Dominated, &mut stats);
            continue;
        }
        match region.kind {
            RegionKind::Internal(children) => {
                stats.regions_expanded += 1;
                open.extend(children);
            }
            RegionKind::Leaf(i) => {
                let leaf = &leaves[i];
                let config = &plan.configs()[leaf.config_index];
                explorer.characterize_search_plane(&leaf.key, config, leaf.backend_index);
                let rows =
                    explorer.evaluate_plane_rows(config, benchmarks, &traffic, &base_services);
                stats.regions_refined += 1;
                stats.points_evaluated += rows.len() as u64;
                let mut actual = [f64::INFINITY; 3];
                for (b, row) in rows.iter().enumerate() {
                    actual[0] = actual[0].min(row.relative_power);
                    if row.relative_latency.is_finite() {
                        actual[1] = actual[1].min(row.relative_latency);
                    }
                    actual[2] = actual[2].min(row.footprint_mm2);
                    if constraints.satisfied_by(row) {
                        frontier.insert(leaf.config_index * benchmarks.len() + b, row);
                    }
                }
                record_tightness(&metrics.tightness_power, region.corner[0], actual[0]);
                record_tightness(&metrics.tightness_latency, region.corner[1], actual[1]);
                record_tightness(&metrics.tightness_area, region.corner[2], actual[2]);
            }
        }
    }

    debug_assert_eq!(stats.points_evaluated + stats.points_skipped, stats.rows_total);
    metrics.regions_expanded.add(stats.regions_expanded);
    metrics.regions_pruned.add(stats.regions_pruned);
    metrics.regions_refined.add(stats.regions_refined);
    metrics.points_evaluated.add(stats.points_evaluated);
    metrics.points_skipped.add(stats.points_skipped);
    metrics.skipped_infeasible.add(stats.skipped_infeasible);
    metrics.skipped_pruned.add(stats.skipped_pruned);
    metrics.bounds_computed.add(stats.bounds_computed);

    Ok(SearchOutcome {
        frontier: frontier.into_sorted(),
        stats,
        pruned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::pareto_front;

    #[test]
    fn adaptive_frontier_matches_the_exhaustive_front_on_the_study() {
        let explorer = Explorer::with_defaults();
        let configs = MemoryConfig::study_set();
        let outcome = explorer
            .search("study", &configs, &Constraints::none())
            .expect("the study set searches");
        let exhaustive = explorer.sweep_configs(&configs);
        assert_eq!(outcome.frontier, pareto_front(&exhaustive));
        assert_eq!(
            outcome.stats.points_evaluated + outcome.stats.points_skipped,
            outcome.stats.rows_total
        );
        assert!(
            outcome.stats.points_skipped > 0,
            "the study set holds a refresh-dead plane (350 K 3T-eDRAM), so the prune must fire"
        );
    }

    #[test]
    fn empty_region_is_a_typed_error() {
        let explorer = Explorer::with_defaults();
        let err = explorer
            .search("nothing at all", &[], &Constraints::none())
            .expect_err("an empty region cannot be searched");
        assert!(matches!(err, Error::EmptySearchSpace { .. }), "{err}");
    }

    #[test]
    fn infeasible_everywhere_space_yields_an_empty_frontier() {
        let explorer = Explorer::with_defaults();
        let outcome = explorer
            .search("350 K eDRAM", &[MemoryConfig::edram_350k()], &Constraints::none())
            .expect("an infeasible space is a result, not an error");
        assert!(outcome.frontier.is_empty());
        assert_eq!(outcome.stats.points_evaluated, 0);
        assert_eq!(outcome.stats.skipped_infeasible, outcome.stats.rows_total);
        assert!(outcome
            .pruned
            .iter()
            .all(|p| p.reason == PruneReason::Infeasible));
    }
}
