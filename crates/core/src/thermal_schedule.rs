//! Dynamic operating-temperature scheduling.
//!
//! The paper's future-work section proposes exposing temperature as a
//! design knob: "a processor which has the capability to dynamically
//! adjust the operating temperature of the processor may be the optimal
//! method". This module implements that proposal: given a phased
//! workload (traffic levels with durations), it plans the
//! energy-optimal temperature per phase by dynamic programming, charging
//! a thermal-mass transition cost for each temperature change.

use coldtall_cachesim::LlcTraffic;
use coldtall_cell::MemoryTechnology;
use coldtall_units::{Joules, Kelvin, Seconds};
use coldtall_workloads::Benchmark;

use crate::config::MemoryConfig;
use crate::evaluate::LlcEvaluation;
use crate::explorer::Explorer;

/// Energy to move the cold plate and die stack by one kelvin
/// (joules per kelvin of transition, both directions: pumping heat in
/// or out of the thermal mass).
const TRANSITION_J_PER_K: f64 = 0.5;

/// One phase of a phased workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPhase {
    /// Label for reports.
    pub name: String,
    /// LLC traffic during the phase.
    pub traffic: LlcTraffic,
    /// Phase duration.
    pub duration: Seconds,
}

impl WorkloadPhase {
    /// Builds a phase from a benchmark profile and a duration.
    #[must_use]
    pub fn from_benchmark(benchmark: &Benchmark, duration: Seconds) -> Self {
        Self {
            name: benchmark.name.to_string(),
            traffic: benchmark.traffic,
            duration,
        }
    }
}

/// The planned schedule: a temperature per phase plus the energy
/// accounting against fixed-temperature operation.
#[derive(Debug, Clone, PartialEq)]
pub struct TemperatureSchedule {
    /// Chosen temperature per phase, aligned with the input phases.
    pub temperatures: Vec<Kelvin>,
    /// Total energy of the dynamic schedule (including transitions).
    pub total_energy: Joules,
    /// Energy of running every phase at the best single fixed
    /// temperature.
    pub best_fixed_energy: Joules,
    /// The best single fixed temperature.
    pub best_fixed_temperature: Kelvin,
}

impl TemperatureSchedule {
    /// Energy saved by going dynamic, as a fraction of the best fixed
    /// schedule (0 means no benefit).
    #[must_use]
    pub fn savings_fraction(&self) -> f64 {
        1.0 - self.total_energy / self.best_fixed_energy
    }

    /// Number of temperature transitions in the schedule.
    #[must_use]
    pub fn transitions(&self) -> usize {
        self.temperatures.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

/// Wall power of `technology` at temperature `t` under `traffic`,
/// including cooling.
fn phase_power(
    explorer: &Explorer,
    technology: MemoryTechnology,
    t: Kelvin,
    traffic: LlcTraffic,
) -> f64 {
    let config = MemoryConfig::volatile_2d(technology, t);
    let array = explorer.characterize(&config);
    let device = crate::evaluate::device_power(&array, &traffic);
    config.cooling().wall_power(device, t).get()
}

/// Plans the energy-optimal temperature schedule for a phased workload
/// on a volatile (SRAM or 3T-eDRAM) LLC, choosing per phase among
/// `candidates` by dynamic programming with thermal transition costs.
///
/// # Panics
///
/// Panics if `phases` or `candidates` is empty.
#[must_use]
pub fn plan_schedule(
    explorer: &Explorer,
    technology: MemoryTechnology,
    phases: &[WorkloadPhase],
    candidates: &[Kelvin],
) -> TemperatureSchedule {
    assert!(!phases.is_empty(), "need at least one phase");
    assert!(!candidates.is_empty(), "need at least one temperature");

    // Per-phase, per-candidate energies: warm the characterization
    // cache (one keyed job per candidate temperature, dispatched
    // through the backend registry) in parallel, then fan the
    // (phase x candidate) grid out over the worker pool.
    let temp_configs: Vec<MemoryConfig> = candidates
        .iter()
        .map(|&t| MemoryConfig::volatile_2d(technology, t))
        .collect();
    explorer.precharacterize(&temp_configs);
    let flat = crate::pool::parallel_map(phases.len() * candidates.len(), |index| {
        let (p, c) = crate::pool::unflatten(index, candidates.len());
        phase_power(explorer, technology, candidates[c], phases[p].traffic)
            * phases[p].duration.get()
    });
    let energy: Vec<Vec<f64>> = flat
        .chunks(candidates.len())
        .map(<[f64]>::to_vec)
        .collect();

    // DP over (phase, temperature state).
    let n = candidates.len();
    let mut cost = energy[0].clone();
    let mut back: Vec<Vec<usize>> = vec![vec![0; n]];
    for phase_energy in energy.iter().skip(1) {
        let mut next = vec![f64::INFINITY; n];
        let mut choice = vec![0usize; n];
        for (j, &e) in phase_energy.iter().enumerate() {
            for (i, &prev) in cost.iter().enumerate() {
                let transition =
                    TRANSITION_J_PER_K * (candidates[i].get() - candidates[j].get()).abs();
                let total = prev + transition + e;
                if total < next[j] {
                    next[j] = total;
                    choice[j] = i;
                }
            }
        }
        cost = next;
        back.push(choice);
    }

    // Recover the dynamic schedule.
    let (mut state, &best_cost) = cost
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("candidates non-empty");
    let mut picks = vec![state; phases.len()];
    for p in (1..phases.len()).rev() {
        state = back[p][state];
        picks[p - 1] = state;
    }
    let temperatures: Vec<Kelvin> = picks.iter().map(|&i| candidates[i]).collect();

    // Best fixed temperature for comparison.
    let (fixed_idx, fixed_energy) = (0..n)
        .map(|j| (j, energy.iter().map(|row| row[j]).sum::<f64>()))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("candidates non-empty");

    TemperatureSchedule {
        temperatures,
        total_energy: Joules::new(best_cost),
        best_fixed_energy: Joules::new(fixed_energy),
        best_fixed_temperature: candidates[fixed_idx],
    }
}

/// Convenience: evaluates what a phase would look like as a standalone
/// steady-state workload (for reporting alongside the schedule).
#[must_use]
pub fn phase_evaluation(
    explorer: &Explorer,
    technology: MemoryTechnology,
    t: Kelvin,
    phase: &WorkloadPhase,
) -> LlcEvaluation {
    let config = MemoryConfig::volatile_2d(technology, t);
    let bench = Benchmark {
        name: "phase",
        suite: coldtall_workloads::Suite::Accelerator,
        traffic: phase.traffic,
        generator: coldtall_workloads::GeneratorParams {
            working_set_bytes: 1 << 20,
            hot_fraction: 0.05,
            hot_probability: 0.9,
            write_fraction: phase.traffic.write_fraction(),
            sequential_run: 16,
            instructions_per_access: 4.0,
            shared_fraction: 0.0,
        },
        ipc: 1.0,
    };
    explorer.evaluate(&config, &bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phases() -> Vec<WorkloadPhase> {
        vec![
            WorkloadPhase {
                name: "idle".into(),
                traffic: LlcTraffic::new(1e3, 2e2),
                duration: Seconds::new(10_000.0),
            },
            WorkloadPhase {
                name: "burst".into(),
                traffic: LlcTraffic::new(2e8, 5e7),
                duration: Seconds::new(100.0),
            },
            WorkloadPhase {
                name: "idle2".into(),
                traffic: LlcTraffic::new(1e3, 2e2),
                duration: Seconds::new(10_000.0),
            },
        ]
    }

    fn candidates() -> Vec<Kelvin> {
        vec![Kelvin::LN2, Kelvin::new(227.0), Kelvin::REFERENCE]
    }

    #[test]
    fn dynamic_beats_the_best_fixed_temperature_with_discrete_setpoints() {
        // A real system offers discrete operating points (an LN2 loop or
        // ambient); between those, bursty workloads reward switching.
        let explorer = Explorer::with_defaults();
        let schedule = plan_schedule(
            &explorer,
            MemoryTechnology::Sram,
            &phases(),
            &[Kelvin::LN2, Kelvin::REFERENCE],
        );
        assert!(
            schedule.savings_fraction() > 0.1,
            "savings = {}",
            schedule.savings_fraction()
        );
        assert!(schedule.transitions() >= 1);
        // Quiet phases run colder than the burst phase.
        assert!(schedule.temperatures[0] < schedule.temperatures[1]);
    }

    #[test]
    fn a_tunable_setpoint_settles_on_an_intermediate_temperature() {
        // The paper's future-work observation: "sometimes the optimal
        // temperature is in-between these two operating points". With a
        // continuously tunable set-point and Carnot-scaled cooling, a
        // single intermediate temperature dominates and no switching is
        // warranted.
        let explorer = Explorer::with_defaults();
        let schedule = plan_schedule(
            &explorer,
            MemoryTechnology::Sram,
            &phases(),
            &candidates(),
        );
        let t = schedule.best_fixed_temperature;
        assert!(t > Kelvin::LN2 && t < Kelvin::REFERENCE, "fixed = {t}");
        assert!(schedule.savings_fraction() < 0.05);
    }

    #[test]
    fn steady_workloads_stay_at_one_temperature() {
        let explorer = Explorer::with_defaults();
        let steady: Vec<WorkloadPhase> = (0..4)
            .map(|i| WorkloadPhase {
                name: format!("p{i}"),
                traffic: LlcTraffic::new(1e6, 3e5),
                duration: Seconds::new(50.0),
            })
            .collect();
        let schedule =
            plan_schedule(&explorer, MemoryTechnology::Edram3T, &steady, &candidates());
        assert_eq!(schedule.transitions(), 0);
        assert!(schedule.savings_fraction().abs() < 1e-9);
    }

    #[test]
    fn single_candidate_degenerates_to_fixed() {
        let explorer = Explorer::with_defaults();
        let schedule = plan_schedule(
            &explorer,
            MemoryTechnology::Sram,
            &phases(),
            &[Kelvin::REFERENCE],
        );
        assert_eq!(schedule.transitions(), 0);
        assert_eq!(schedule.best_fixed_temperature, Kelvin::REFERENCE);
        assert!((schedule.total_energy / schedule.best_fixed_energy - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_rejected() {
        let explorer = Explorer::with_defaults();
        let _ = plan_schedule(&explorer, MemoryTechnology::Sram, &[], &candidates());
    }
}
